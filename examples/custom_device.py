"""Bring your own hardware and assets: HBO beyond the paper's set-up.

HBO is device- and content-agnostic: everything it needs is an isolation
latency profile per (model, resource), a SoC contention description, and
per-object quality parameters. This example builds all three from
scratch — a fictional mid-range phone with a weak NPU, a custom taskset,
and virtual objects whose Eq. 1 parameters are *fitted* by the offline
training pipeline (mesh → decimation sweep → distortion fit) instead of
taken from the catalog — then lets HBO tune the system.

Run:  python examples/custom_device.py
"""

import numpy as np

from repro import HBOConfig, HBOController, MARSystem, Scene
from repro.ar.objects import VirtualObject
from repro.ar.renderer import RenderLoadModel
from repro.device.executor import DeviceSimulator
from repro.device.profiles import StaticProfile
from repro.device.resources import Processor, Resource
from repro.device.soc import RenderCostModel, SoCSpec
from repro.models.tasks import AITask, TaskSet
from repro.rng import make_rng


def build_budget_phone() -> SoCSpec:
    """A fictional budget SoC: decent CPU, small GPU, weak NPU."""
    return SoCSpec(
        name="Fictional Budget Phone",
        capacity={Processor.CPU: 1.4, Processor.GPU: 1.1, Processor.NPU: 0.8},
        queue_exponent={Processor.CPU: 1.1, Processor.GPU: 1.2, Processor.NPU: 1.1},
        nnapi_comm_ms=3.0,
        nnapi_comm_gpu_factor=0.9,
        gpu_render_saturation=0.7,
        gpu_render_exponent=2.5,
        gpu_render_rho_max=0.8,
        render_cost=RenderCostModel(
            gpu_triangles_per_stream=300_000.0,
            gpu_objects_per_stream=14.0,
            cpu_objects_per_stream=20.0,
            cpu_triangles_per_stream=3_000_000.0,
        ),
    )


def profile(name, task_type, gpu, nnapi, cpu, coverage, **kwargs):
    return StaticProfile(
        model=name,
        task_type=task_type,
        latency_ms={
            Resource.GPU_DELEGATE: gpu,
            Resource.NNAPI: nnapi,
            Resource.CPU: cpu,
        },
        npu_coverage=coverage,
        **kwargs,
    )


def main() -> None:
    # 1. Custom AI taskset: profile each model on YOUR device (here, made
    #    up numbers for the fictional phone — slower than the Pixel 7).
    profiles = [
        profile("hand-tracker", "GD", 30.0, 44.0, 35.0, 0.5, gpu_demand=0.6),
        profile("scene-classifier", "IC", 55.0, 24.0, 60.0, 0.85, cpu_demand=0.8),
        profile("plane-detector", "OD", 70.0, 31.0, 66.0, 0.75),
        profile("ocr-lite", "IC", 48.0, 21.0, 52.0, 0.9, cpu_demand=0.7),
    ]
    tasks = [AITask(p.model, p.model, p) for p in profiles]
    taskset = TaskSet("custom", tasks)

    # 2. Custom assets: run the offline Eq. 1 training per object.
    print("Fitting degradation parameters from geometry (eAR-style)...")
    scene = Scene()
    rng = make_rng(3)
    for name, triangles in (
        ("statue", 220_000),
        ("fresco", 90_000),
        ("vase", 40_000),
        ("plinth", 15_000),
    ):
        obj = VirtualObject.with_fitted_params(name, triangles, seed=1)
        a, b, c, d = obj.params.as_tuple()
        print(f"  {name:<8s} a={a:+.2f} b={b:+.2f} c={c:+.2f} d={d:.2f}")
        scene.add(name, obj, position=rng.uniform(-1.0, 1.0, 3) + [0, 0, 1.3])

    # 3. Assemble and tune.
    device = DeviceSimulator(build_budget_phone(), seed=5)
    system = MARSystem(taskset, device, scene, render_model=RenderLoadModel())

    before = system.measure()
    controller = HBOController(system, HBOConfig(w=2.5), seed=5)
    result = controller.activate()
    after = result.final_measurement

    print("\nFictional budget phone, custom taskset and assets:")
    print(f"  before: eps={before.epsilon:.2f} Q={before.quality:.2f} "
          f"B={before.reward(2.5):+.2f}")
    print(f"  after:  eps={after.epsilon:.2f} Q={after.quality:.2f} "
          f"B={after.reward(2.5):+.2f}")
    print(f"  chosen ratio x={result.best.triangle_ratio:.2f}; allocation:")
    for task_id, resource in sorted(result.best.allocation.items()):
        print(f"    {task_id:<18s} -> {resource}")


if __name__ == "__main__":
    main()

"""Tracing a run: where an HBO activation spends its (simulated) time.

Runs the same SC1-CF1 activation as ``quickstart.py`` but with the
observability layer switched on: a :class:`~repro.obs.Tracer` records a
hierarchical span tree stamped in simulated seconds, and a
:class:`~repro.obs.MetricsRegistry` counts GP fits, proposals, and
per-task latency distributions along the way. The trace is written in
Chrome trace-event format — drag ``traced_run.trace.json`` onto
https://ui.perfetto.dev (or chrome://tracing) to see the timeline.

Both outputs are bit-reproducible for a fixed seed: spans carry sim time,
not host time. Pass ``capture_wall=True`` to the Tracer to additionally
record non-reproducible host-clock durations per span.

Run:  python examples/traced_run.py
"""

from repro import (
    EventBasedPolicy,
    HBOConfig,
    HBOController,
    MetricsRegistry,
    MonitoringEngine,
    Tracer,
    build_system,
    instrumented,
)
from repro.obs import write_metrics_json, write_trace_json

TRACE_PATH = "traced_run.trace.json"
METRICS_PATH = "traced_run.metrics.json"


def main() -> None:
    system = build_system("SC1", "CF1", seed=7)
    controller = HBOController(system, HBOConfig(w=2.5), seed=7)
    engine = MonitoringEngine(controller, EventBasedPolicy())

    # Spans are stamped from the engine's deterministic SimClock; the
    # registry starts empty. `instrumented` installs both for the run and
    # restores the zero-overhead no-op instrumentation afterwards.
    tracer = Tracer(clock=engine.clock)
    metrics = MetricsRegistry()
    with instrumented(tracer, metrics):
        report = engine.run([], duration_s=60.0)

    print(f"Monitored 60 simulated seconds: {report.n_activations} "
          f"activation(s), final reward B = {report.final_reward:+.3f}\n")

    # The span tree, indented by depth, in open order.
    print("Span tree (sim-time):")
    for span in tracer.spans_by_start():
        print(f"  {'  ' * span.depth}{span.name:<30s} "
              f"[{span.start_s:7.2f} s .. {span.end_s:7.2f} s]")

    snapshot = metrics.snapshot()
    print("\nCounters:")
    for name, value in snapshot["counters"].items():
        print(f"  {name:<30s} {value:g}")
    latency = snapshot["histograms"]["device_task_latency_ms"]
    print(f"\nPer-task latency over the session: "
          f"p50={latency['p50']:.1f} ms  p95={latency['p95']:.1f} ms  "
          f"({latency['count']} task-period means)")

    write_trace_json(tracer, TRACE_PATH)
    write_metrics_json(metrics, METRICS_PATH)
    print(f"\nwrote {TRACE_PATH} (open in https://ui.perfetto.dev) "
          f"and {METRICS_PATH}")


if __name__ == "__main__":
    main()

"""Baseline face-off: reproduce the paper's Fig. 5 comparison end to end.

Runs HBO and all four baselines (SMQ, SML, BNT, AllN) on identically
built SC1-CF1 systems and prints the quality/latency table — the same
numbers the Fig. 5 benchmark regenerates, but as a minimal script you can
tweak (change the scenario, the weight w, the seed) to explore the
trade-off space.

Run:  python examples/baseline_faceoff.py [scenario] [taskset]
"""

import sys

from repro import (
    AllNNAPIBaseline,
    BayesianNoTriangleBaseline,
    HBOConfig,
    HBOController,
    StaticMatchLatencyBaseline,
    StaticMatchQualityBaseline,
    build_system,
)
from repro.experiments.report import format_table
from repro.rng import derive_seed

SEED = 2024


def main() -> None:
    scenario = sys.argv[1] if len(sys.argv) > 1 else "SC1"
    taskset = sys.argv[2] if len(sys.argv) > 2 else "CF1"
    config = HBOConfig()

    def fresh():
        return build_system(
            scenario, taskset, seed=derive_seed(SEED, scenario, taskset)
        )

    print(f"Scenario {scenario}-{taskset}, w={config.w}, "
          f"{config.total_evaluations} evaluations per activation.\n")

    hbo_system = fresh()
    controller = HBOController(hbo_system, config, seed=SEED)
    hbo = controller.activate()
    hbo_measurement = hbo.final_measurement

    rows = [
        [
            "HBO",
            hbo.best.triangle_ratio,
            hbo_measurement.quality,
            hbo_measurement.epsilon,
            hbo_measurement.mean_latency_ms,
        ]
    ]
    baselines = [
        StaticMatchQualityBaseline(hbo.best.triangle_ratio),
        StaticMatchLatencyBaseline(hbo_measurement.epsilon),
        BayesianNoTriangleBaseline(config=config, seed=derive_seed(SEED, "bnt")),
        AllNNAPIBaseline(),
    ]
    for baseline in baselines:
        outcome = baseline.run(fresh())
        rows.append(
            [
                outcome.name,
                outcome.triangle_ratio,
                outcome.quality,
                outcome.epsilon,
                outcome.mean_latency_ms,
            ]
        )

    print(
        format_table(
            ["Policy", "triangle ratio", "quality Q", "norm. latency", "mean ms"],
            rows,
            title="HBO vs baselines",
        )
    )
    hbo_eps = hbo_measurement.epsilon
    print("\nLatency multiples vs HBO:")
    for row in rows[1:]:
        print(f"  {row[0]:<5s} {row[3] / hbo_eps:5.2f}x")


if __name__ == "__main__":
    main()

"""An AR museum tour: the event-based activation policy at work.

The paper's §VI motivates HBO with educational/professional AR apps where
users inspect objects for extended periods — a museum guide is the
canonical case. This example scripts such a session: exhibits (virtual
objects) appear one by one as the visitor walks the gallery, a heavy
exhibit lands mid-tour, and at the end the visitor steps back for an
overview. The event-based policy re-optimizes only when the reward
actually drifts, and we print the activation log alongside a periodic
policy's for contrast.

Run:  python examples/adaptive_museum.py
"""

from repro import EventBasedPolicy, HBOConfig, HBOController, MonitoringEngine, PeriodicPolicy
from repro.ar.objects import object_by_name
from repro.sim.events import DistanceChange, ObjectPlacement
from repro.sim.scenarios import build_system

# Gallery script: (time s, exhibit asset, position).
TOUR = [
    (0.0, "cabin", (0.5, 0.0, 1.2)),
    (30.0, "andy", (-0.6, 0.2, 1.0)),
    (60.0, "hammer", (0.2, -0.3, 1.5)),
    (95.0, "ATV", (-0.4, 0.1, 1.8)),
    (130.0, "Cocacola", (0.7, 0.0, 1.1)),  # first heavier piece
    (170.0, "bike", (0.0, 0.2, 1.4)),  # the 178k-triangle centerpiece
]
STEP_BACK_AT = 230.0
TOUR_END = 300.0


def run_session(policy, label: str) -> None:
    system = build_system("SC2", "CF1", seed=42, place_objects=False)
    controller = HBOController(
        system, HBOConfig(n_initial=4, n_iterations=8), seed=42
    )
    engine = MonitoringEngine(controller, policy, monitor_interval_s=2.0)

    events = [
        ObjectPlacement(
            time_s=t, instance_id=f"exhibit_{i}_{name}",
            obj=object_by_name(name), position=pos,
        )
        for i, (t, name, pos) in enumerate(TOUR)
    ]
    events.append(DistanceChange(time_s=STEP_BACK_AT, user_position=(0, 0, -1.5)))

    report = engine.run(events, duration_s=TOUR_END)
    print(f"\n=== {label}: {report.n_activations} activations ===")
    for activation in report.trace.activations:
        print(
            f"  t={activation.start_time_s:5.0f}s  trigger: "
            f"{activation.trigger:<45s} reward {activation.reward_before:+.2f}"
            f" -> {activation.reward_after:+.2f}  (x={activation.best_triangle_ratio:.2f})"
        )
    print(f"  final reward: {report.final_reward:+.2f}")


def main() -> None:
    print("AR museum tour: six exhibits placed over 3 simulated minutes,")
    print("then the visitor steps back for an overview.")
    run_session(EventBasedPolicy(), "event-based policy (the paper's)")
    run_session(PeriodicPolicy(period=15), "periodic policy (every 30 s)")
    print(
        "\nThe event-based policy re-optimizes only when the placement or"
        "\nmovement actually moved the reward; the periodic policy burns"
        "\nexploration periods on a schedule whether needed or not."
    )


if __name__ == "__main__":
    main()

"""Quickstart: one HBO activation on the paper's hardest scenario.

Builds the SC1-CF1 set-up (nine heavy virtual objects, six AI tasks on a
simulated Pixel 7), measures the naive configuration (every task on its
isolation-best delegate, objects at full quality), runs one HBO
activation, and prints what changed.

Run:  python examples/quickstart.py
"""

from repro import HBOConfig, HBOController, build_system


def main() -> None:
    system = build_system("SC1", "CF1", seed=7)
    config = HBOConfig(w=2.5)  # the paper's latency/quality weight

    before = system.measure()
    print("Before HBO (affinity allocation, full-quality objects):")
    print(f"  normalized AI latency eps = {before.epsilon:.3f}")
    print(f"  average object quality Q  = {before.quality:.3f}")
    print(f"  reward B = Q - w*eps      = {before.reward(config.w):.3f}")

    controller = HBOController(system, config, seed=7)
    result = controller.activate()
    best = result.best

    print(f"\nHBO explored {len(result.iterations)} configurations "
          f"({config.n_initial} random + {config.n_iterations} BO-guided "
          f"+ the incumbent).")
    print("\nAfter HBO:")
    print(f"  chosen triangle ratio x   = {best.triangle_ratio:.2f}")
    print("  chosen allocation:")
    for task_id, resource in sorted(best.allocation.items()):
        print(f"    {task_id:<22s} -> {resource}")
    after = result.final_measurement
    print(f"  normalized AI latency eps = {after.epsilon:.3f} "
          f"(was {before.epsilon:.3f})")
    print(f"  average object quality Q  = {after.quality:.3f} "
          f"(was {before.quality:.3f})")
    print(f"  reward B                  = {after.reward(config.w):.3f} "
          f"(was {before.reward(config.w):.3f})")

    speedup = before.epsilon / max(after.epsilon, 1e-9)
    print(f"\nHBO cut the normalized AI latency by {speedup:.1f}x while "
          f"giving up {100 * (before.quality - after.quality):.1f} points "
          f"of object quality.")


if __name__ == "__main__":
    main()

# Convenience entries mirroring .github/workflows/ci.yml.
# `make check` is the full pre-merge gate.

PYTHON ?= python

.PHONY: reprolint ruff mypy lint test fleet-smoke trace-smoke check

reprolint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src benchmarks examples

# ruff/mypy come from `pip install -e .[dev]`; skip with a notice when the
# container doesn't have them so `make lint` stays useful everywhere.
ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		ruff check src tools benchmarks examples; \
	else \
		echo "ruff not installed (pip install -e .[dev]) — skipping"; \
	fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed (pip install -e .[dev]) — skipping"; \
	fi

lint: reprolint ruff mypy

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# A small end-to-end fleet run (8 sessions, reduced budget): exercises the
# scheduler, the batched GP service, and the warm-start store in one shot.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fleet --sessions 8 --initial 3 --iterations 5

# A tiny traced fleet: `repro trace` exits non-zero unless the emitted
# file is a non-empty, schema-valid Chrome trace that round-trips.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace --fleet 4 --initial 2 --iterations 3 \
		--out /tmp/repro-trace-smoke.trace.json \
		--metrics /tmp/repro-trace-smoke.metrics.json

check: lint test fleet-smoke trace-smoke

# Convenience entries mirroring .github/workflows/ci.yml.
# `make check` is the full pre-merge gate.

PYTHON ?= python

.PHONY: reprolint ruff mypy lint test check

reprolint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src benchmarks examples

# ruff/mypy come from `pip install -e .[dev]`; skip with a notice when the
# container doesn't have them so `make lint` stays useful everywhere.
ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		ruff check src tools benchmarks examples; \
	else \
		echo "ruff not installed (pip install -e .[dev]) — skipping"; \
	fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed (pip install -e .[dev]) — skipping"; \
	fi

lint: reprolint ruff mypy

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

check: lint test

# Convenience entries mirroring .github/workflows/ci.yml.
# `make check` is the full pre-merge gate.

PYTHON ?= python

.PHONY: reprolint ruff mypy lint test fleet-smoke trace-smoke edge-smoke edge-topology-smoke gp-smoke fleet-scale-smoke scenario-smoke bench bench-smoke check

reprolint:
	PYTHONPATH=tools $(PYTHON) -m reprolint src benchmarks examples \
		--baseline reprolint_baseline.json

# ruff/mypy come from `pip install -e .[dev]`; skip with a notice when the
# container doesn't have them so `make lint` stays useful everywhere.
ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null; then \
		ruff check src tools benchmarks examples; \
	else \
		echo "ruff not installed (pip install -e .[dev]) — skipping"; \
	fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed (pip install -e .[dev]) — skipping"; \
	fi

lint: reprolint ruff mypy

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# A small end-to-end fleet run (8 sessions, reduced budget): exercises the
# scheduler, the batched GP service, and the warm-start store in one shot.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fleet --sessions 8 --initial 3 --iterations 5

# A tiny traced fleet: `repro trace` exits non-zero unless the emitted
# file is a non-empty, schema-valid Chrome trace that round-trips.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace --fleet 4 --initial 2 --iterations 3 \
		--out /tmp/repro-trace-smoke.trace.json \
		--metrics /tmp/repro-trace-smoke.metrics.json

# Edge offloading smoke: a 16-session fleet sharing ONE edge server must
# be bit-reproducible — run it twice at seed 2024 and byte-compare.
edge-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fleet --edge --sessions 16 --seed 2024 \
		--initial 2 --iterations 3 > /tmp/repro-edge-smoke-a.txt
	PYTHONPATH=src $(PYTHON) -m repro fleet --edge --sessions 16 --seed 2024 \
		--initial 2 --iterations 3 > /tmp/repro-edge-smoke-b.txt
	cmp /tmp/repro-edge-smoke-a.txt /tmp/repro-edge-smoke-b.txt
	@echo "edge-smoke: 16-session --edge fleet is bit-reproducible"

# Multi-server topology smoke: a 16-session fleet placed across FOUR edge
# servers (admission + shedding live) must be bit-reproducible — run it
# twice at seed 2024 and byte-compare.
edge-topology-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fleet --edge-servers 4 --sessions 16 \
		--seed 2024 --initial 2 --iterations 3 > /tmp/repro-edge-topo-smoke-a.txt
	PYTHONPATH=src $(PYTHON) -m repro fleet --edge-servers 4 --sessions 16 \
		--seed 2024 --initial 2 --iterations 3 > /tmp/repro-edge-topo-smoke-b.txt
	cmp /tmp/repro-edge-topo-smoke-a.txt /tmp/repro-edge-topo-smoke-b.txt
	@echo "edge-topology-smoke: 4-server topology fleet is bit-reproducible"

# Sparse GP tier smoke: a fleet on the sparse tier with a tiny switch
# threshold (so support-set selection actually fires) must be
# bit-reproducible — run it twice at seed 2024 and byte-compare.
gp-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fleet --gp-tier sparse --gp-threshold 6 \
		--sessions 8 --seed 2024 --initial 3 --iterations 8 \
		> /tmp/repro-gp-smoke-a.txt
	PYTHONPATH=src $(PYTHON) -m repro fleet --gp-tier sparse --gp-threshold 6 \
		--sessions 8 --seed 2024 --initial 3 --iterations 8 \
		> /tmp/repro-gp-smoke-b.txt
	cmp /tmp/repro-gp-smoke-a.txt /tmp/repro-gp-smoke-b.txt
	@echo "gp-smoke: sparse-tier fleet is bit-reproducible"

# Shard-parallel determinism smoke: the seed-2024 fleet stepped in 4
# worker-process cohorts must render byte-identically to `--shards 1`
# (the SoA core's headline contract — see docs/fleet.md).
fleet-scale-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fleet --sessions 12 --seed 2024 \
		--edge-servers 3 --initial 2 --iterations 3 --shards 1 \
		> /tmp/repro-fleet-scale-a.txt
	PYTHONPATH=src $(PYTHON) -m repro fleet --sessions 12 --seed 2024 \
		--edge-servers 3 --initial 2 --iterations 3 --shards 4 \
		> /tmp/repro-fleet-scale-b.txt
	cmp /tmp/repro-fleet-scale-a.txt /tmp/repro-fleet-scale-b.txt
	@echo "fleet-scale-smoke: 4-shard fleet is byte-identical to shards=1"

# Scenario replay smoke: compile-and-run one catalog scenario twice at a
# fixed seed and byte-compare the replay artifacts (the catalog's
# name+seed→identical-trace contract — see docs/scenarios.md).
scenario-smoke:
	PYTHONPATH=src $(PYTHON) -m repro scenario run flash-crowd --seed 2024 \
		--sessions 6 --initial 2 --iterations 3 \
		--export /tmp/repro-scenario-smoke-a.json > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro scenario run flash-crowd --seed 2024 \
		--sessions 6 --initial 2 --iterations 3 \
		--export /tmp/repro-scenario-smoke-b.json > /dev/null
	cmp /tmp/repro-scenario-smoke-a.json /tmp/repro-scenario-smoke-b.json
	@echo "scenario-smoke: flash-crowd replay is byte-identical at seed 2024"

# Time the hot kernels and distill the scalar-vs-batched backend numbers
# into the committed BENCH_pr4.json (see docs/performance.md).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_microbench.py -q \
		--benchmark-only --benchmark-json=/tmp/repro-bench-pr4.json
	$(PYTHON) tools/bench_pr4.py /tmp/repro-bench-pr4.json BENCH_pr4.json
	PYTHONPATH=src $(PYTHON) tools/bench_pr5.py BENCH_pr5.json
	PYTHONPATH=src $(PYTHON) tools/bench_pr7.py BENCH_pr7.json
	PYTHONPATH=src $(PYTHON) tools/bench_pr8.py BENCH_pr8.json
	PYTHONPATH=src $(PYTHON) tools/bench_pr9.py BENCH_pr9.json
	PYTHONPATH=src $(PYTHON) tools/bench_pr10.py BENCH_pr10.json

# Run every microbench body once, untimed: catches API drift in the bench
# suite without paying for calibration rounds.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_microbench.py -q \
		--benchmark-disable

check: lint test fleet-smoke trace-smoke edge-smoke edge-topology-smoke gp-smoke fleet-scale-smoke scenario-smoke bench-smoke

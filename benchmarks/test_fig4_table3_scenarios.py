"""Fig. 4 + Table III — HBO behavior across the four Table II scenarios.

Paper shapes asserted: heavy-object scenarios (SC1) reduce the triangle
ratio and move GPU-preferring tasks off the GPU delegate; light-object
scenarios (SC2) keep near-full triangle budgets; convergence settles well
before the iteration budget is exhausted."""

import numpy as np
from conftest import BENCH_SEED, run_once

from repro.device.resources import Resource
from repro.experiments import fig4


def test_fig4_table3_scenarios(benchmark, paper_config):
    result = run_once(
        benchmark, fig4.run_fig4, seed=BENCH_SEED, config=paper_config
    )
    print("\n" + fig4.render(result))

    sc1cf1 = result.runs["SC1-CF1"]
    sc2cf2 = result.runs["SC2-CF2"]
    sc1cf2 = result.runs["SC1-CF2"]
    sc2cf1 = result.runs["SC2-CF1"]

    # Fig. 4b: SC1 scenarios decimate; SC2 scenarios keep (near-)full quality.
    assert sc1cf1.best_triangle_ratio < 0.8
    assert sc1cf2.best_triangle_ratio < 0.85
    assert sc2cf2.best_triangle_ratio > 0.7
    assert sc2cf2.best_triangle_ratio >= sc1cf2.best_triangle_ratio

    # Table III: NNAPI-affine tasks stay on NNAPI everywhere.
    for run in (sc1cf1, sc2cf1):
        assert run.best_allocation["mobilenetDetv1"] is Resource.NNAPI
        assert run.best_allocation["efficientclass-lite0"] is Resource.NNAPI
    # SC1-CF1: the GPU-preferring model-metadata pair cannot both stay on
    # the rendering-contended GPU delegate.
    gpu_mmdata = sum(
        1
        for t in ("model-metadata_1", "model-metadata_2")
        if sc1cf1.best_allocation[t] is Resource.GPU_DELEGATE
    )
    assert gpu_mmdata <= 1

    # Fig. 4c: every scenario converges (best cost at the end is within a
    # whisker of the best cost at 3/4 budget).
    for key in result.keys():
        trajectory = result.convergence(key)
        assert trajectory[-1] <= trajectory[0] + 1e-9
        three_quarters = trajectory[int(0.75 * len(trajectory))]
        assert trajectory[-1] >= three_quarters - 0.5

"""Ablation benches for the design choices DESIGN.md calls out.

- Acquisition function: EI (the paper's pick) vs PI vs LCB (§IV-C).
- Kernel: Matérn-5/2 (Eq. 7) vs Matérn-3/2 vs RBF.
- Triangle distribution: TD (sensitivity-weighted) vs uniform vs the
  marginal-gain greedy reference.
- Allocation translation: the greedy priority-queue drain vs a random
  assignment under the same count vector.

Each ablation prints a small comparison table; assertions pin the
*defensible* claims (the paper's choice is at least competitive) rather
than strict dominance, which would be seed-dependent.
"""

import numpy as np
import pytest
from conftest import BENCH_SEED, run_once

from repro.ar.distribution import (
    distribute_triangles,
    greedy_optimal_distribution,
    uniform_distribution,
)
from repro.ar.quality import average_quality
from repro.bo.acquisition import make_acquisition
from repro.bo.kernels import make_kernel
from repro.core.allocation import allocate_tasks, proportions_to_counts
from repro.core.controller import HBOConfig, HBOController
from repro.device.resources import ALL_RESOURCES
from repro.experiments.report import format_table
from repro.rng import derive_seed, make_rng
from repro.sim.scenarios import build_system

CONFIG = HBOConfig()


def _mean_best_cost(seeds, **controller_kwargs):
    costs = []
    for seed in seeds:
        system = build_system("SC1", "CF1", seed=derive_seed(seed, "abl"))
        controller = HBOController(system, CONFIG, seed=seed, **controller_kwargs)
        costs.append(controller.activate().best.cost)
    return float(np.mean(costs)), costs


def test_ablation_acquisition(benchmark):
    """EI vs PI vs LCB over repeated SC1-CF1 activations."""
    seeds = [BENCH_SEED + i for i in range(3)]

    def run():
        results = {}
        for name in ("ei", "pi", "lcb"):
            mean, costs = _mean_best_cost(
                seeds, acquisition=make_acquisition(name)
            )
            results[name] = (mean, costs)
        return results

    results = run_once(benchmark, run)
    rows = [
        [name.upper(), mean, " ".join(f"{c:.3f}" for c in costs)]
        for name, (mean, costs) in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["Acquisition", "mean best cost", "per-run"],
            rows,
            title="Ablation — acquisition function (SC1-CF1, lower is better)",
        )
    )
    # The paper's EI must be at least competitive with the alternatives.
    assert results["ei"][0] <= min(r[0] for r in results.values()) + 0.25


def test_ablation_kernel(benchmark):
    """Matérn-5/2 (the paper's Eq. 7) vs Matérn-3/2 vs RBF."""
    seeds = [BENCH_SEED + i for i in range(3)]

    def run():
        results = {}
        for name in ("matern52", "matern32", "rbf"):
            mean, costs = _mean_best_cost(seeds, kernel=make_kernel(name))
            results[name] = (mean, costs)
        return results

    results = run_once(benchmark, run)
    rows = [
        [name, mean, " ".join(f"{c:.3f}" for c in costs)]
        for name, (mean, costs) in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["Kernel", "mean best cost", "per-run"],
            rows,
            title="Ablation — GP kernel (SC1-CF1, lower is better)",
        )
    )
    assert results["matern52"][0] <= min(r[0] for r in results.values()) + 0.25


def test_ablation_triangle_distribution(benchmark):
    """TD vs uniform vs greedy marginal-gain on SC1 across budgets."""

    def run():
        system = build_system("SC1", "CF1", seed=BENCH_SEED)
        objects = system.objects_map()
        distances = system.scene.distances()
        ids = sorted(objects)
        models = [objects[i].degradation for i in ids]
        dists = [distances[i] for i in ids]
        rows = []
        td_wins = 0
        for x in (0.8, 0.65, 0.5, 0.35):
            qualities = {}
            for name, fn in (
                ("TD", distribute_triangles),
                ("uniform", uniform_distribution),
                ("greedy", greedy_optimal_distribution),
            ):
                ratios = fn(objects, distances, x)
                qualities[name] = average_quality(
                    models, [ratios[i] for i in ids], dists
                )
            rows.append(
                [x, qualities["TD"], qualities["uniform"], qualities["greedy"]]
            )
            if qualities["TD"] >= qualities["uniform"] - 0.01:
                td_wins += 1
        return rows, td_wins

    rows, td_wins = run_once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["budget x", "Q (TD)", "Q (uniform)", "Q (greedy)"],
            rows,
            title="Ablation — triangle distribution (SC1, Eq. 2 quality)",
        )
    )
    # TD is a heuristic: it must stay competitive with the uniform split
    # across budgets; the marginal-gain greedy is the near-optimal upper
    # reference and must dominate the uniform split.
    assert td_wins >= 3
    for _x, q_td, q_uni, q_greedy in rows:
        assert q_td >= q_uni - 0.02
        assert q_greedy >= q_uni - 1e-6


def test_ablation_greedy_vs_random_allocation(benchmark):
    """The Lines 13-22 priority-queue drain vs random assignment under the
    same count vector: greedy must place the fast pairs better."""

    def run():
        system = build_system("SC1", "CF1", seed=BENCH_SEED, noise_sigma=0.0)
        taskset = system.taskset
        rng = make_rng(BENCH_SEED)
        c = np.array([0.5, 0.0, 0.5])
        counts = proportions_to_counts(c, len(taskset))

        greedy_alloc = allocate_tasks(taskset, counts)
        system.apply(greedy_alloc, 0.6)
        greedy_eps = system.measure(samples=1).epsilon

        random_eps = []
        for _ in range(20):
            ids = list(taskset.task_ids)
            rng.shuffle(ids)
            alloc = {}
            pool = []
            for res, k in zip(ALL_RESOURCES, counts):
                pool.extend([res] * k)
            feasible = True
            for tid, res in zip(ids, pool):
                if not taskset.by_id(tid).profile.supports(res):
                    feasible = False
                    break
                alloc[tid] = res
            if not feasible:
                continue
            system.apply(alloc, 0.6)
            random_eps.append(system.measure(samples=1).epsilon)
        return greedy_eps, float(np.mean(random_eps)), len(random_eps)

    greedy_eps, random_mean, n = run_once(benchmark, run)
    print(
        f"\nAblation — allocation drain: greedy eps={greedy_eps:.3f}, "
        f"random-mean eps={random_mean:.3f} over {n} shuffles"
    )
    assert greedy_eps <= random_mean + 1e-6

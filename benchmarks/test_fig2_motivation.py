"""Fig. 2 — the motivation study time series (three scripted runs).

Checks the paper's §III-B narrative arcs hold in the simulator: NNAPI
pile-up grows latency, virtual objects spike every NNAPI task, a CPU
relocation under load helps everyone, and a second CPU relocation
backfires for the CPU residents."""

import numpy as np
from conftest import BENCH_SEED, run_once

from repro.experiments import fig2


def test_fig2_motivation(benchmark):
    runs = run_once(benchmark, fig2.run_all, seed=BENCH_SEED)
    print("\n" + fig2.render(runs))
    by_name = {run.name: run for run in runs}

    b = by_name["fig2b-deeplab-cpu-nnapi"]
    # Objects arriving spike the NNAPI residents (Fig. 2b, t ≈ 150-200 s).
    pre_objects = b.mean_at(100, 115)
    with_objects = b.mean_at(182, 198)
    assert with_objects > 1.2 * pre_objects
    # Relocating to CPU under load recovers latency for the others.
    final_nnapi = float(np.nanmean(b.series("deeplabv3_1")[-4:]))
    assert final_nnapi < float(np.nanmean(b.series("deeplabv3_1")[37:40]))
    # ...but the CPU pair ends worse off than the NNAPI residents.
    cpu_final = float(np.nanmean(b.series("deeplabv3_4")[-3:]))
    assert cpu_final > 1.05 * final_nnapi

    a = by_name["fig2a-deconv-cpu-gpu"]
    # Moving deconv_1 CPU→GPU at t=25 improves it (GPU affinity).
    before = float(np.nanmean(a.series("deconv_1")[2:5]))
    after = float(np.nanmean(a.series("deconv_1")[6:9]))
    assert after < before

"""Table I — baseline response times of the models on both devices.

Regenerates the isolation-latency table and verifies the simulator
reproduces the paper's profiles (they are calibration inputs, so the
fidelity bound is tight)."""

from conftest import BENCH_SEED, run_once

from repro.experiments import table1


def test_table1_profiles(benchmark):
    result = run_once(benchmark, table1.run_table1, seed=BENCH_SEED, samples=40)
    print("\n" + table1.render(result))
    assert result.max_relative_error() < 0.03
    assert len(result.rows) == 18

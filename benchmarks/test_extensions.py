"""Benches for the §VI extensions and the sweep experiments.

- The lookup table on a repetitive (fast-paced) session: hit rate and the
  evaluation budget it saves vs always re-optimizing.
- Edge-offloaded BO: network bytes and milliseconds per activation (the
  paper claims "a few Bytes" per exchange).
- The w sensitivity sweep and the Pixel 7 / Galaxy S22 comparison.
"""

import numpy as np
import pytest
from conftest import BENCH_SEED, run_once

from repro.core.controller import HBOConfig, HBOController
from repro.core.lookup import LookupAwareController, LookupTable
from repro.core.remote import NetworkLink
from repro.device.power import PowerModel
from repro.experiments import sweep
from repro.experiments.report import format_table
from repro.rng import derive_seed
from repro.sim.scenarios import build_system

CONFIG = HBOConfig(n_initial=4, n_iterations=8)


def test_lookup_table_on_repetitive_session(benchmark):
    """A user revisiting the same few environments (the paper's fast-paced
    case): after the first visit each environment is a table hit."""

    def run():
        system = build_system("SC2", "CF1", seed=BENCH_SEED, noise_sigma=0.02)
        controller = LookupAwareController(
            HBOController(system, CONFIG, seed=BENCH_SEED),
            table=LookupTable(similarity_threshold=0.15),
        )
        # Two rooms the user bounces between: near the objects and far.
        rooms = [(0.0, 0.0, 0.0), (0.0, 0.0, -2.0)]
        evaluations = 0
        decisions = []
        for visit in range(6):
            system.scene.move_user(rooms[visit % 2])
            system.refresh_load()
            decision = controller.activate()
            decisions.append(decision.from_table)
            if decision.run_result is not None:
                evaluations += len(decision.run_result.iterations)
            else:
                evaluations += 1  # a hit costs one verification period
        return decisions, evaluations, controller.table.hit_rate

    decisions, evaluations, hit_rate = run_once(benchmark, run)
    print(
        f"\nLookup-table session: hits={decisions} "
        f"(total control periods spent: {evaluations}, hit rate {hit_rate:.2f})"
    )
    # First visit to each room misses; the four revisits hit.
    assert decisions[0] is False and decisions[1] is False
    assert all(decisions[2:])
    # Budget saved: 2 full activations + 4 single periods << 6 activations.
    assert evaluations < 3 * (CONFIG.total_evaluations + 1)


def test_offloaded_bo_overhead(benchmark):
    """§VI: BO on an edge server — payloads of a few dozen bytes and
    single-digit milliseconds per exchange over a Wi-Fi-class link."""

    def run():
        system = build_system("SC1", "CF1", seed=BENCH_SEED, noise_sigma=0.02)
        controller = HBOController(
            system,
            CONFIG,
            offload_link=NetworkLink(rtt_ms=8.0, jitter_ms=2.0),
            seed=BENCH_SEED,
        )
        result = controller.activate()
        return result, controller.last_offload_stats

    result, stats = run_once(benchmark, run)
    per_exchange_bytes = stats.total_bytes / stats.exchanges
    print(
        f"\nOffloaded BO: {stats.exchanges} exchanges, "
        f"{stats.total_bytes} B total ({per_exchange_bytes:.0f} B/exchange), "
        f"{stats.network_ms:.1f} ms network time for the whole activation"
    )
    assert per_exchange_bytes < 100  # "a few Bytes" of payload
    assert stats.network_ms / stats.exchanges < 20.0
    assert result.final_measurement is not None


def test_energy_model_orders_configurations(benchmark):
    """The energy extension exposes a trade-off the paper's cost ignores:
    HBO's CPU relocation buys latency at a *power* premium — AllN leaves
    the big cores idle, the HBO-like configuration spins them up. This is
    exactly the kind of finding an energy-aware cost (``energy_aware_cost``)
    would fold into the optimization."""

    def run():
        system = build_system("SC1", "CF1", seed=BENCH_SEED, noise_sigma=0.0)
        model = PowerModel()
        soc = system.device.soc
        rows = []
        from repro.device.resources import Resource

        tasks = list(system.taskset.task_ids)
        configs = {
            "AllN @ x=1.0": ({t: Resource.NNAPI for t in tasks}, 1.0),
            "HBO-like @ x=0.5": (
                {
                    t: (Resource.CPU if "metadata" in t or t == "mnist" else Resource.NNAPI)
                    for t in tasks
                },
                0.5,
            ),
            "HBO-like @ x=0.2": (
                {
                    t: (Resource.CPU if "metadata" in t or t == "mnist" else Resource.NNAPI)
                    for t in tasks
                },
                0.2,
            ),
        }
        for name, (alloc, ratio) in configs.items():
            system.apply(alloc, ratio)
            power = model.system_power_w(
                soc, system.device.placements(), system.device.load
            )
            rows.append([name, power])
        return rows

    rows = run_once(benchmark, run)
    print(
        "\n"
        + format_table(
            ["Configuration", "system power (W)"],
            rows,
            title="Energy extension — average draw per configuration",
        )
    )
    powers = {name: p for name, p in rows}
    # The CPU relocation costs power: AllN (idle CPU) draws less than the
    # HBO-like config, and deeper decimation never increases the draw.
    assert powers["AllN @ x=1.0"] < powers["HBO-like @ x=0.5"]
    assert powers["HBO-like @ x=0.2"] <= powers["HBO-like @ x=0.5"] + 1e-9
    for _name, power in rows:
        assert 2.0 < power < 12.0  # sane phone-scale wattage


def test_w_sweep(benchmark):
    """Weight sensitivity: larger w must not increase the achieved
    latency; smaller w keeps more triangles."""
    result = run_once(
        benchmark, sweep.run_w_sweep, weights=(0.5, 2.5, 8.0),
        seed=BENCH_SEED, config=CONFIG,
    )
    print("\n" + sweep.render_w_sweep(result))
    points = {p.w: p for p in result.points}
    # Heavier latency weight must not leave more latency on the table
    # (tolerances absorb single-run BO noise).
    assert points[8.0].epsilon <= points[0.5].epsilon + 0.15
    assert points[2.5].epsilon <= points[0.5].epsilon + 0.15


def test_device_comparison(benchmark):
    """Both Table I devices adapt the same way on SC1-CF1 (§V-A says the
    S22 results were 'similar')."""
    result = run_once(
        benchmark, sweep.run_device_comparison, scenario="SC1", taskset="CF1",
        seed=BENCH_SEED, config=CONFIG,
    )
    print("\n" + sweep.render_device_comparison(result))
    for run in result.runs:
        assert run.triangle_ratio < 0.9  # both decimate the heavy scene
        assert run.epsilon < 1.5  # both escape the contention cliff


def test_greedy_dynamic_vs_hbo(benchmark):
    """The extra GreedyDyn baseline: reactive relocation finds a similar
    allocation to HBO's but pays ~2-3x the probing budget and cannot
    touch quality — so HBO wins the reward at the paper's weight."""
    from repro.baselines import GreedyDynamicBaseline

    def run():
        greedy_system = build_system("SC1", "CF1", seed=BENCH_SEED, noise_sigma=0.02)
        greedy = GreedyDynamicBaseline(max_rounds=3, samples_per_probe=3)
        greedy_out = greedy.run(greedy_system)

        hbo_system = build_system("SC1", "CF1", seed=BENCH_SEED, noise_sigma=0.02)
        controller = HBOController(hbo_system, CONFIG, seed=BENCH_SEED)
        hbo = controller.activate()
        return greedy_out, greedy.probes, hbo

    greedy_out, probes, hbo = run_once(benchmark, run)
    hbo_measurement = hbo.final_measurement
    print(
        f"\nGreedyDyn: eps={greedy_out.epsilon:.3f} at x=1.0 using {probes} "
        f"probe periods\nHBO:       eps={hbo_measurement.epsilon:.3f} "
        f"Q={hbo_measurement.quality:.2f} at x={hbo.best.triangle_ratio:.2f} "
        f"using {len(hbo.iterations)} control periods"
    )
    w = 2.5
    assert hbo_measurement.reward(w) > greedy_out.measurement.reward(w)
    assert probes > len(hbo.iterations)  # measurement-driven search is pricier

"""Fig. 9 — the simulated user study: HBO vs SML perceived quality.

Paper shapes asserted (§V-E): HBO keeps a substantially higher triangle
ratio than SML at comparable AI latency, so its panel ratings stay near
the ceiling while SML's drop — the paper reports 4.9/5.0 vs 3.0/3.6,
"up to 38.7%" better."""

from conftest import BENCH_SEED, run_once

from repro.experiments import fig9


def test_fig9_userstudy(benchmark, paper_config):
    result = run_once(
        benchmark, fig9.run_fig9, seed=BENCH_SEED, config=paper_config
    )
    print("\n" + fig9.render(result))

    # HBO retains a higher triangle budget than latency-matched SML.
    assert result.hbo_ratio > result.sml_ratio
    # Ratings: HBO at or above SML in both viewing conditions, with a
    # positive best-case improvement.
    assert result.mean("HBO/close") >= result.mean("SML/close")
    assert result.mean("HBO/far") >= result.mean("SML/far") - 0.2
    assert result.improvement() > 0.02
    # Scores live on the questionnaire scale.
    for key in ("HBO/close", "HBO/far", "SML/close", "SML/far"):
        assert 1.0 <= result.mean(key) <= 5.0

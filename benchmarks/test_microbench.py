"""Microbenchmarks of the hot kernels (proper multi-round timings).

The paper reports HBO's on-device overhead at ~50 ms per activation step
(§VI); these benches track the simulator-side analogues: one contention
evaluation, one GP fit+acquisition maximization, one TD distribution, one
mesh decimation.
"""

import numpy as np
import pytest

from repro.ar.decimation import decimate
from repro.ar.distribution import distribute_triangles
from repro.ar.mesh import make_procedural
from repro.bo.acquisition import ExpectedImprovement
from repro.bo.gp import GaussianProcess
from repro.bo.space import HBOSpace
from repro.core.allocation import allocate_tasks, proportions_to_counts
from repro.models.tasks import taskset_cf1
from repro.rng import make_rng
from repro.sim.scenarios import build_system


@pytest.fixture(scope="module")
def system():
    return build_system("SC1", "CF1", seed=1, noise_sigma=0.0)


def test_contention_evaluation(benchmark, system):
    """One full per-task latency evaluation under contention."""
    device = system.device
    placements = device.placements()
    load = device.load
    result = benchmark(device.contention.latencies, placements, load)
    assert len(result) == 6


def test_measure_period(benchmark, system):
    """One 20-sample control-period measurement (Algorithm 1, Line 24)."""
    result = benchmark(system.measure)
    assert result.mean_latency_ms > 0


def test_gp_fit_and_acquisition(benchmark):
    """Surrogate fit + EI maximization over 512 candidates (Line 1)."""
    space = HBOSpace(3, r_min=0.1)
    rng = make_rng(0)
    x = space.sample(rng, 20)
    y = np.sin(x[:, 0] * 3) + x[:, 3]
    acquisition = ExpectedImprovement()

    def step():
        gp = GaussianProcess().fit(x, y)
        candidates = space.sample(rng, 512)
        return acquisition(gp, candidates, float(y.min()))

    scores = benchmark(step)
    assert scores.shape == (512,)


def test_heuristic_allocation(benchmark):
    """Lines 2-22: counts + priority-queue drain for CF1."""
    taskset = taskset_cf1()

    def step():
        counts = proportions_to_counts([0.4, 0.1, 0.5], len(taskset))
        return allocate_tasks(taskset, counts)

    allocation = benchmark(step)
    assert len(allocation) == 6


def test_triangle_distribution(benchmark, system):
    """Line 23: TD across the SC1 scene."""
    objects = system.objects_map()
    distances = system.scene.distances()
    ratios = benchmark(distribute_triangles, objects, distances, 0.6)
    assert len(ratios) == 9


def test_mesh_decimation(benchmark):
    """One LOD generation on a 4k-triangle asset (the Fig. 3 server)."""
    mesh = make_procedural("bench-asset", 4_000)
    decimated = benchmark(decimate, mesh, 0.4)
    assert 0 < decimated.n_triangles < mesh.n_triangles

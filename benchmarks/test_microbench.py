"""Microbenchmarks of the hot kernels (proper multi-round timings).

The paper reports HBO's on-device overhead at ~50 ms per activation step
(§VI); these benches track the simulator-side analogues: one contention
evaluation, one GP fit+acquisition maximization, one TD distribution, one
mesh decimation.
"""

import itertools

import numpy as np
import pytest

from repro.ar.decimation import decimate
from repro.ar.distribution import distribute_triangles
from repro.ar.mesh import make_procedural
from repro.bo.acquisition import ExpectedImprovement
from repro.bo.gp import GaussianProcess
from repro.bo.space import HBOSpace
from repro.core.allocation import allocate_tasks, proportions_to_counts
from repro.core.controller import HBOConfig
from repro.core.frontier import FrontierEvaluator
from repro.device.resources import ALL_RESOURCES
from repro.fleet import FleetConfig, SessionSpec, run_fleet
from repro.models.tasks import taskset_cf1
from repro.rng import make_rng
from repro.sim.scenarios import build_system

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def system():
    return build_system("SC1", "CF1", seed=1, noise_sigma=0.0)


def test_contention_evaluation(benchmark, system):
    """One full per-task latency evaluation under contention."""
    device = system.device
    placements = device.placements()
    load = device.load
    result = benchmark(device.contention.latencies, placements, load)
    assert len(result) == 6


def test_measure_period(benchmark, system):
    """One 20-sample control-period measurement (Algorithm 1, Line 24)."""
    result = benchmark(system.measure)
    assert result.mean_latency_ms > 0


def test_gp_fit_and_acquisition(benchmark):
    """Surrogate fit + EI maximization over 512 candidates (Line 1)."""
    space = HBOSpace(3, r_min=0.1)
    rng = make_rng(0)
    x = space.sample(rng, 20)
    y = np.sin(x[:, 0] * 3) + x[:, 3]
    acquisition = ExpectedImprovement()

    def step():
        gp = GaussianProcess().fit(x, y)
        candidates = space.sample(rng, 512)
        return acquisition(gp, candidates, float(y.min()))

    scores = benchmark(step)
    assert scores.shape == (512,)


def test_heuristic_allocation(benchmark):
    """Lines 2-22: counts + priority-queue drain for CF1."""
    taskset = taskset_cf1()

    def step():
        counts = proportions_to_counts([0.4, 0.1, 0.5], len(taskset))
        return allocate_tasks(taskset, counts)

    allocation = benchmark(step)
    assert len(allocation) == 6


def test_triangle_distribution(benchmark, system):
    """Line 23: TD across the SC1 scene."""
    objects = system.objects_map()
    distances = system.scene.distances()
    ratios = benchmark(distribute_triangles, objects, distances, 0.6)
    assert len(ratios) == 9


def test_mesh_decimation(benchmark):
    """One LOD generation on a 4k-triangle asset (the Fig. 3 server)."""
    mesh = make_procedural("bench-asset", 4_000)
    decimated = benchmark(decimate, mesh, 0.4)
    assert 0 < decimated.n_triangles < mesh.n_triangles


# --------------------------------------------------------- backend (PR 4)
# The scalar-vs-batched pair below is the backend's headline number:
# scoring the same configuration grid one row at a time versus as one
# EvalPlan. `make bench` distills both (plus the fleet tick rate) into
# BENCH_pr4.json via tools/bench_pr4.py, keyed on these test names.


def _frontier_grid(system):
    """A 224-configuration slice of the Alg. 1 decision lattice."""
    n_tasks = len(system.taskset)
    count_vectors = [
        ks
        for ks in itertools.product(range(n_tasks + 1), repeat=len(ALL_RESOURCES))
        if sum(ks) == n_tasks
    ]
    ratios = np.linspace(0.1, 1.0, 8)
    return np.array(
        [
            [k / n_tasks for k in ks] + [float(x)]
            for ks in count_vectors
            for x in ratios
        ]
    )


def test_frontier_grid_scalar(benchmark, system):
    """The grid scored one configuration per solve (the pre-batching shape)."""
    evaluator = FrontierEvaluator(system, w=2.5)
    zs = _frontier_grid(system)
    benchmark.extra_info["n_configs"] = int(zs.shape[0])

    def loop():
        return [float(evaluator.evaluate(row).phi[0]) for row in zs]

    phis = benchmark.pedantic(loop, rounds=3, iterations=1)
    assert len(phis) == zs.shape[0]


def test_frontier_grid_batched(benchmark, system):
    """The same grid as one EvalPlan through one batched solve."""
    evaluator = FrontierEvaluator(system, w=2.5)
    zs = _frontier_grid(system)
    benchmark.extra_info["n_configs"] = int(zs.shape[0])
    result = benchmark.pedantic(evaluator.evaluate, args=(zs,), rounds=10, iterations=1)
    assert result.phi.shape == (zs.shape[0],)


def test_fleet_tick_throughput(benchmark):
    """A 4-session fleet drained end to end; ticks/s comes from the
    recorded tick count divided by the median round time."""
    specs = [
        SessionSpec(session_id=f"s{i}", arrival_s=0.5 * i, noise_sigma=0.02)
        for i in range(4)
    ]
    config = FleetConfig(hbo=HBOConfig(n_initial=2, n_iterations=3))

    def drain():
        return run_fleet(specs, seed=BENCH_SEED, config=config)

    result = benchmark.pedantic(drain, rounds=1, iterations=1)
    benchmark.extra_info["ticks"] = int(result.ticks)
    assert result.ticks > 0

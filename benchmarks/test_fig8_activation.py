"""Fig. 8 — event-based vs periodic activation over the §V-D session.

Paper shape asserted: the event policy activates a handful of times
(first placement, heavy objects, the user stepping away) while the
periodic policy re-optimizes on schedule regardless of need — the paper's
periodic run activates seven times, "potentially imposing unnecessary
burdens"."""

from conftest import BENCH_SEED, run_once

from repro.core.controller import HBOConfig
from repro.experiments import fig8


def test_fig8_activation(benchmark):
    # A moderate per-activation budget keeps the scripted session (two
    # full 400-second sessions, each with several activations) tractable.
    config = HBOConfig(n_initial=4, n_iterations=8)
    result = run_once(
        benchmark,
        fig8.run_fig8,
        seed=BENCH_SEED,
        config=config,
        periodic_interval_steps=18,
    )
    print("\n" + fig8.render(result))

    assert result.event_activations >= 2  # first placement + real drifts
    assert result.event_activations < result.periodic_activations
    # The event trace must show the first activation at the first object.
    first = result.event_report.trace.activations[0]
    assert first.start_time_s == 0.0

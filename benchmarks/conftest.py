"""Benchmark-suite configuration.

Each paper artifact gets one benchmark module. Heavy experiment drivers
run exactly once per session (cached here) and are timed with
``benchmark.pedantic(rounds=1)``; the rendered rows/series are printed so
``pytest benchmarks/ --benchmark-only -s`` regenerates every table and
figure of the paper in one go.
"""

from __future__ import annotations

import pytest

from repro.core.controller import HBOConfig

#: The paper's exploration budget (§V-B): 5 random + 15 guided iterations.
PAPER_CONFIG = HBOConfig()
#: Seed used across the benchmark suite.
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def paper_config() -> HBOConfig:
    return PAPER_CONFIG


def run_once(benchmark, fn, *args, **kwargs):
    """Time a heavy experiment exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Fleet serving benches: throughput, batched GP, warm-vs-cold.

The fleet layer's two performance claims are (1) one batched GP pass per
tick serves every guided session without per-session Python-loop fits,
and (2) cross-session warm starting gets late arrivals to the cohort's
best cost in strictly fewer control periods than cold starts. Both are
pinned here, alongside a sessions/second throughput figure for the
default 8-session mixed fleet.
"""

import numpy as np
from conftest import BENCH_SEED, run_once

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern
from repro.core.controller import HBOConfig
from repro.experiments.fleet import run_fleet_experiment
from repro.experiments.report import format_kv
from repro.fleet import BatchedGPService
from repro.rng import make_rng


def test_fleet_throughput(benchmark):
    """Sessions/second for an 8-session mixed fleet (small budget)."""
    config = HBOConfig(n_initial=3, n_iterations=5)
    n_sessions = 8

    experiment = run_once(
        benchmark,
        run_fleet_experiment,
        seed=BENCH_SEED,
        config=config,
        n_sessions=n_sessions,
    )
    result = experiment.result
    elapsed_s = benchmark.stats.stats.mean
    benchmark.extra_info["sessions"] = n_sessions
    benchmark.extra_info["control_periods"] = result.aggregates.n_evaluations
    benchmark.extra_info["sessions_per_s"] = n_sessions / elapsed_s
    benchmark.extra_info["periods_per_s"] = (
        result.aggregates.n_evaluations / elapsed_s
    )
    print(
        "\n"
        + format_kv(
            "Fleet throughput",
            [
                ["sessions", n_sessions],
                ["control periods", result.aggregates.n_evaluations],
                ["sessions / s", n_sessions / elapsed_s],
                ["control periods / s", result.aggregates.n_evaluations / elapsed_s],
                ["batched GP passes", result.service_stats["batches"]],
            ],
        )
    )
    # Every session drained its full budget and produced a usable best.
    assert all(len(r.costs) == config.total_evaluations for r in result.reports)
    assert all(np.isfinite(r.best_cost) for r in result.reports)


def test_batched_gp_vs_per_session_loop(benchmark):
    """One (B=16, n=12, C=256) batched posterior vs 16 sequential fits."""
    kernel = Matern(length_scale=1.0, nu=2.5)
    rng = make_rng(BENCH_SEED)
    n_batch, n_train, n_query, dim = 16, 12, 256, 4
    xs = [rng.uniform(0.1, 1.0, size=(n_train, dim)) for _ in range(n_batch)]
    ys = [rng.normal(0.0, 1.0, size=n_train) for _ in range(n_batch)]
    queries = rng.uniform(0.1, 1.0, size=(n_batch, n_query, dim))
    service = BatchedGPService(kernel=kernel, noise=1e-3)

    mean, std = benchmark(service.posterior, xs, ys, queries)

    assert mean.shape == (n_batch, n_query)
    for b in range(n_batch):  # the batch must reproduce per-session fits
        post = GaussianProcess(kernel=kernel, noise=1e-3).fit(xs[b], ys[b]).predict(
            queries[b]
        )
        np.testing.assert_allclose(mean[b], post.mean, atol=1e-8)
        np.testing.assert_allclose(std[b], post.std, atol=1e-8)
    benchmark.extra_info["batch"] = n_batch
    benchmark.extra_info["candidates_scored"] = n_batch * n_query


def test_warm_vs_cold_convergence(benchmark):
    """The headline fleet claim: warm-started sessions reach the cohort's
    best cost in strictly fewer median control periods than cold ones."""
    experiment = run_once(
        benchmark, run_fleet_experiment, seed=BENCH_SEED, n_sessions=16
    )
    warm = experiment.median_converged_warm
    cold = experiment.median_converged_cold
    assert warm is not None and cold is not None
    stats = experiment.result.store_stats
    print(
        "\n"
        + format_kv(
            "Warm vs cold convergence (16 sessions, paper budget)",
            [
                ["median periods to cohort best (cold)", cold],
                ["median periods to cohort best (warm)", warm],
                ["speed-up (cold/warm)", cold / warm],
                ["store hit rate", stats["hit_rate"]],
                ["observations transferred", stats["transfers"]],
            ],
        )
    )
    benchmark.extra_info["median_converged_cold"] = cold
    benchmark.extra_info["median_converged_warm"] = warm
    assert warm < cold

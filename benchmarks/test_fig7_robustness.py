"""Fig. 7 — convergence robustness across six runs on two scenarios.

Paper shape asserted: independent runs (different random initializations)
may settle on slightly different allocations or ratios but land on
similar-cost solutions."""

import numpy as np
from conftest import BENCH_SEED, run_once

from repro.experiments import fig7


def test_fig7_robustness(benchmark, paper_config):
    result = run_once(
        benchmark, fig7.run_fig7, seed=BENCH_SEED, config=paper_config
    )
    print("\n" + fig7.render(result))

    for key in ("SC1-CF2", "SC2-CF2"):
        runs = result.runs[key]
        assert len(runs) == 6
        costs = result.final_costs(key)
        # Most runs agree tightly; the paper itself shows occasional runs
        # settling on a different (similar-reward) allocation cell.
        spread_of_best_four = np.sort(costs)[3] - costs.min()
        assert spread_of_best_four < 0.4
        # Every run's trajectory is monotone non-increasing.
        for trajectory in result.trajectories(key):
            assert np.all(np.diff(trajectory) <= 1e-12)

"""Fig. 5 + Table IV — HBO vs SMQ/SML/BNT/AllN on SC1-CF1.

Paper shapes asserted (§V-C): SMQ needs noticeably more latency at the
same quality; SML sacrifices quality at comparable (or its best
achievable) latency; BNT and AllN keep full quality but pay large latency
multiples — AllN worst of all (the paper's 3.5× headline; ours is checked
as a wide-margin ordering in both the ε and raw-ms views)."""

from conftest import BENCH_SEED, run_once

from repro.device.resources import Resource
from repro.experiments import fig5


def test_fig5_table4_comparison(benchmark, paper_config):
    result = run_once(
        benchmark, fig5.run_fig5, seed=BENCH_SEED, config=paper_config
    )
    print("\n" + fig5.render(result))

    # Table IV shapes.
    smq_alloc = result.baselines["SMQ"].allocation
    assert smq_alloc["model-metadata_1"] is Resource.GPU_DELEGATE  # static affinity
    assert all(
        r is Resource.NNAPI for r in result.baselines["AllN"].allocation.values()
    )
    assert result.baselines["BNT"].triangle_ratio == 1.0

    # Fig. 5b: matched quality between HBO and SMQ (same ratio + TD).
    assert result.baselines["SMQ"].quality == (
        __import__("pytest").approx(result.hbo.best_quality, abs=0.05)
    )
    # SML gives up quality relative to HBO.
    assert result.baselines["SML"].quality < result.hbo.best_quality

    # Fig. 5c orderings (paper: SMQ 1.5x, BNT 2.2x, AllN 3.5x).
    assert result.epsilon_ratio("SMQ") > 1.2
    assert result.epsilon_ratio("BNT") > 1.3
    assert result.epsilon_ratio("AllN") > 2.5
    assert result.latency_ratio("AllN") > 2.0
    assert result.epsilon_ratio("AllN") == max(
        result.epsilon_ratio(name) for name in ("SMQ", "SML", "BNT", "AllN")
    )

"""Fig. 6 — in-depth analysis of one HBO execution on SC1-CF1.

Paper shapes asserted: the consecutive-configuration distances show both
exploration (large) and exploitation (small) moves; the best cost
converges; the per-task comparison against SMQ shows HBO improving the
NNAPI residents (the paper reports +103% best / +23.8% worst)."""

import numpy as np
from conftest import BENCH_SEED, run_once

from repro.experiments import fig6


def test_fig6_analysis(benchmark, paper_config):
    result = run_once(
        benchmark, fig6.run_fig6, seed=BENCH_SEED, config=paper_config
    )
    print("\n" + fig6.render(result))

    distances = result.consecutive_distances
    # Fig. 6a: exploration and exploitation both present.
    assert distances.max() > 3 * max(distances.min(), 1e-6)

    # Fig. 6b: monotone best-cost, improving over the first evaluation.
    trajectory = result.best_cost_trajectory
    assert np.all(np.diff(trajectory) <= 1e-12)
    assert trajectory[-1] < trajectory[0] + 1e-9

    # Fig. 6c: the selected iteration is the arg-min of the cost series.
    costs = [it.cost for it in result.hbo.result.iterations]
    assert result.best_index == int(np.argmin(costs))

    # Fig. 6d: on average HBO's per-task latency beats SMQ's at the same
    # triangle ratio, and at least one NNAPI-resident task improves by a
    # decent margin (the paper's best case is +103%).
    improvements = result.per_task_improvement()
    assert np.mean(list(improvements.values())) > 0.1
    assert max(improvements.values()) > 0.2

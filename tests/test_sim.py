"""Unit tests for repro.sim (clock, events, trace, scenarios, engine)."""

import numpy as np
import pytest

from repro.ar.objects import object_by_name
from repro.ar.scene import Scene
from repro.core.activation import EventBasedPolicy, PeriodicPolicy
from repro.core.controller import HBOConfig, HBOController
from repro.errors import ConfigurationError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import MonitoringEngine
from repro.sim.events import (
    DistanceChange,
    ObjectPlacement,
    ObjectRemoval,
    validate_script,
)
from repro.sim.scenarios import (
    build_system,
    fig8_event_script,
    place_catalog,
    scenario_catalog,
    scenario_taskset,
)
from repro.sim.trace import ActivationRecord, RewardSample, SessionTrace


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0
        assert clock.now_s == 3.0

    def test_advance_to(self):
        clock = SimClock(start_s=1.0)
        clock.advance_to(5.0)
        assert clock.now_s == 5.0
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(10)
        clock.reset()
        assert clock.now_s == 0.0


class TestEvents:
    def test_placement_applies(self):
        scene = Scene()
        event = ObjectPlacement(
            time_s=1.0, instance_id="b", obj=object_by_name("bike"),
            position=(0, 0, 2),
        )
        note = event.apply(scene)
        assert "b" in scene
        assert "178,552" in note

    def test_removal_applies(self):
        scene = Scene()
        scene.add("b", object_by_name("bike"), (0, 0, 2))
        ObjectRemoval(time_s=2.0, instance_id="b").apply(scene)
        assert len(scene) == 0

    def test_distance_change_applies(self):
        scene = Scene()
        DistanceChange(time_s=0.0, user_position=(1, 2, 3)).apply(scene)
        assert np.allclose(scene.user_position, [1, 2, 3])

    def test_validation(self):
        with pytest.raises(SimulationError):
            ObjectPlacement(time_s=-1.0, instance_id="x", obj=object_by_name("bike"))
        with pytest.raises(SimulationError):
            ObjectPlacement(time_s=0.0, instance_id="", obj=object_by_name("bike"))
        with pytest.raises(SimulationError):
            ObjectRemoval(time_s=0.0, instance_id="")

    def test_validate_script_sorts_and_checks(self):
        bike = object_by_name("bike")
        script = validate_script(
            [
                ObjectRemoval(time_s=5.0, instance_id="a"),
                ObjectPlacement(time_s=1.0, instance_id="a", obj=bike),
            ]
        )
        assert [e.time_s for e in script] == [1.0, 5.0]
        with pytest.raises(SimulationError, match="duplicate placement"):
            validate_script(
                [
                    ObjectPlacement(time_s=0.0, instance_id="a", obj=bike),
                    ObjectPlacement(time_s=1.0, instance_id="a", obj=bike),
                ]
            )
        with pytest.raises(SimulationError, match="never-placed"):
            validate_script([ObjectRemoval(time_s=0.0, instance_id="ghost")])


class TestTrace:
    def test_samples_must_be_time_ordered(self):
        trace = SessionTrace()
        trace.add_sample(RewardSample(time_s=1.0, reward=0.5, n_objects=1))
        with pytest.raises(SimulationError):
            trace.add_sample(RewardSample(time_s=0.5, reward=0.5, n_objects=1))

    def test_series_and_windows(self):
        trace = SessionTrace()
        for t in (0.0, 2.0, 4.0):
            trace.add_sample(
                RewardSample(time_s=t, reward=-t, n_objects=1,
                             event="placed" if t == 2.0 else None)
            )
        trace.add_activation(
            ActivationRecord(
                start_time_s=2.0, end_time_s=6.0, trigger="placed",
                best_cost=0.1, best_triangle_ratio=0.8,
                reward_before=-1.0, reward_after=-0.1, n_iterations=4,
            )
        )
        times, rewards = trace.reward_series()
        assert np.allclose(times, [0, 2, 4])
        assert trace.activation_windows() == [(2.0, 6.0)]
        assert trace.events() == [(2.0, "placed")]
        assert trace.n_activations == 1


class TestScenarios:
    def test_build_system_places_all_instances(self):
        system = build_system("SC1", "CF1", seed=3)
        assert len(system.scene) == 9
        assert len(system.taskset) == 6

    def test_build_system_defer_placement(self):
        system = build_system("SC2", "CF2", seed=3, place_objects=False)
        assert len(system.scene) == 0

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_catalog("SC3")
        with pytest.raises(ConfigurationError):
            scenario_taskset("CF9")
        with pytest.raises(ConfigurationError):
            build_system("SC1", "CF1", device="OnePlus")

    def test_same_seed_same_placement(self):
        a = build_system("SC1", "CF1", seed=3)
        b = build_system("SC1", "CF1", seed=3)
        for iid in a.scene.instance_ids:
            assert np.allclose(a.scene.get(iid).position, b.scene.get(iid).position)

    def test_place_catalog_distances_reasonable(self):
        scene = Scene()
        place_catalog(scene, scenario_catalog("SC1"), seed=1)
        distances = list(scene.distances().values())
        assert min(distances) >= 0.3
        assert max(distances) <= 4.0

    def test_fig8_script_shape(self):
        events, duration = fig8_event_script(seed=2)
        placements = [e for e in events if isinstance(e, ObjectPlacement)]
        moves = [e for e in events if isinstance(e, DistanceChange)]
        assert len(placements) == 10
        assert len(moves) == 1
        assert moves[0].time_s == pytest.approx(320.0)
        assert duration > moves[0].time_s
        # The 10th object is the heavy one.
        assert placements[-1].obj.max_triangles > 100_000


class TestMonitoringEngine:
    def _make_engine(self, policy, seed=5):
        system = build_system("SC2", "CF2", seed=seed, place_objects=False)
        controller = HBOController(
            system, HBOConfig(n_initial=2, n_iterations=2), seed=seed
        )
        return MonitoringEngine(
            controller, policy, monitor_interval_s=2.0, control_period_s=2.0,
            monitor_samples=2,
        )

    def test_event_policy_session(self):
        engine = self._make_engine(EventBasedPolicy())
        bike = object_by_name("bike")
        events = [
            ObjectPlacement(time_s=4.0, instance_id="b1", obj=bike, position=(0, 0, 1.2)),
        ]
        report = engine.run(events, duration_s=40.0)
        assert report.n_activations >= 1  # first placement triggers
        assert report.trace.activations[0].trigger.startswith("place") or (
            "first" in report.trace.activations[0].trigger
        )
        times, _rewards = report.trace.reward_series()
        assert np.all(np.diff(times) > 0)

    def test_no_objects_no_activation(self):
        engine = self._make_engine(EventBasedPolicy())
        report = engine.run([], duration_s=20.0)
        assert report.n_activations == 0

    def test_periodic_policy_activates_repeatedly(self):
        engine = self._make_engine(PeriodicPolicy(period=4))
        bike = object_by_name("cabin")
        events = [
            ObjectPlacement(time_s=0.0, instance_id="c", obj=object_by_name("cabin"),
                            position=(0, 0, 1.0)),
        ]
        report = engine.run(events, duration_s=120.0)
        assert report.n_activations >= 2

    def test_invalid_construction(self):
        system = build_system("SC2", "CF2", seed=1, place_objects=False)
        controller = HBOController(system, HBOConfig(n_initial=2, n_iterations=1))
        with pytest.raises(ConfigurationError):
            MonitoringEngine(controller, EventBasedPolicy(), monitor_interval_s=0)
        with pytest.raises(ConfigurationError):
            MonitoringEngine(controller, EventBasedPolicy(), monitor_samples=0)
        engine = MonitoringEngine(controller, EventBasedPolicy())
        with pytest.raises(ConfigurationError):
            engine.run([], duration_s=0)

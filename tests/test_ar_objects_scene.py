"""Unit tests for repro.ar.objects, repro.ar.scene and repro.ar.renderer."""

import numpy as np
import pytest

from repro.ar.objects import (
    VirtualObject,
    catalog_sc1,
    catalog_sc2,
    expand_instances,
    object_by_name,
    total_max_triangles,
)
from repro.ar.renderer import RenderLoadModel
from repro.ar.scene import MIN_DISTANCE_M, PlacedObject, Scene
from repro.errors import ConfigurationError, SceneError


class TestCatalogs:
    def test_sc1_matches_table2(self):
        catalog = dict((obj.name, (obj.max_triangles, count)) for obj, count in catalog_sc1())
        assert catalog["apricot"] == (86_016, 1)
        assert catalog["bike"] == (178_552, 1)
        assert catalog["plane"] == (146_803, 4)
        assert catalog["splane"] == (146_803, 1)
        assert catalog["Cocacola"] == (94_080, 2)
        assert total_max_triangles(catalog_sc1()) == 1_186_743

    def test_sc2_matches_table2(self):
        catalog = dict((obj.name, (obj.max_triangles, count)) for obj, count in catalog_sc2())
        assert catalog["cabin"] == (2_324, 1)
        assert catalog["andy"] == (2_304, 2)
        assert catalog["ATV"] == (4_907, 2)
        assert catalog["hammer"] == (6_250, 2)

    def test_sc1_much_heavier_than_sc2(self):
        assert total_max_triangles(catalog_sc1()) > 30 * total_max_triangles(
            catalog_sc2()
        )

    def test_expand_instances_naming(self):
        ids = [iid for iid, _obj in expand_instances(catalog_sc1())]
        assert "apricot" in ids  # single instance keeps asset name
        assert "plane_1" in ids and "plane_4" in ids
        assert len(ids) == 9

    def test_object_by_name(self):
        assert object_by_name("bike").max_triangles == 178_552
        with pytest.raises(SceneError):
            object_by_name("teapot")

    def test_mesh_generation_capped(self):
        bike = object_by_name("bike")
        mesh = bike.mesh(mesh_triangles=2_000)
        assert mesh.n_triangles <= 2_600  # capped, not 178k

    def test_with_fitted_params_runs_pipeline(self):
        obj = VirtualObject.with_fitted_params("custom-vase", 5_000, seed=1)
        assert obj.degradation.error(0.2, 1.0) > obj.degradation.error(0.9, 1.0)

    def test_tiny_object_rejected(self):
        params = catalog_sc1()[0][0].params
        with pytest.raises(ConfigurationError):
            VirtualObject(name="dust", max_triangles=4, params=params)


class TestScene:
    @pytest.fixture
    def scene(self):
        scene = Scene(user_position=(0, 0, 0))
        scene.add("bike", object_by_name("bike"), position=(0, 0, 2.0))
        scene.add("apricot", object_by_name("apricot"), position=(1.0, 0, 0))
        return scene

    def test_add_and_query(self, scene):
        assert len(scene) == 2
        assert "bike" in scene
        assert scene.get("bike").obj.name == "bike"

    def test_duplicate_instance_rejected(self, scene):
        with pytest.raises(SceneError, match="already placed"):
            scene.add("bike", object_by_name("bike"), position=(0, 0, 1))

    def test_remove(self, scene):
        scene.remove("apricot")
        assert len(scene) == 1
        with pytest.raises(SceneError):
            scene.remove("apricot")

    def test_distances(self, scene):
        assert scene.distance("bike") == pytest.approx(2.0)
        assert scene.distance("apricot") == pytest.approx(1.0)

    def test_distance_clamped_near_user(self, scene):
        scene.add("near", object_by_name("cabin"), position=(0, 0, 0.01))
        assert scene.distance("near") == MIN_DISTANCE_M

    def test_move_user_updates_distances(self, scene):
        scene.move_user((0, 0, 1.0))
        assert scene.distance("bike") == pytest.approx(1.0)

    def test_ratios_and_triangle_accounting(self, scene):
        assert scene.triangle_ratio == pytest.approx(1.0)
        scene.apply_ratios({"bike": 0.5, "apricot": 0.5})
        assert scene.triangle_ratio == pytest.approx(0.5)
        expected_drawn = 0.5 * (178_552 + 86_016)
        assert scene.drawn_triangles == pytest.approx(expected_drawn)

    def test_apply_ratios_unknown_id_rejected(self, scene):
        with pytest.raises(SceneError, match="unknown instance"):
            scene.apply_ratios({"ghost": 0.5})

    def test_quality_full_ratio_is_one(self, scene):
        assert scene.average_quality() == pytest.approx(1.0, abs=1e-9)

    def test_quality_drops_with_decimation(self, scene):
        scene.apply_ratios({"bike": 0.3, "apricot": 0.3})
        assert scene.average_quality() < 0.95

    def test_invalid_ratio_rejected(self, scene):
        with pytest.raises(SceneError):
            scene.set_ratio("bike", 0.0)
        with pytest.raises(SceneError):
            scene.set_ratio("bike", 1.2)

    def test_empty_scene_aggregates(self):
        scene = Scene()
        assert scene.triangle_ratio == 1.0
        assert scene.average_quality() == 1.0
        assert scene.drawn_triangles == 0.0

    def test_invalid_positions_rejected(self):
        scene = Scene()
        with pytest.raises(SceneError):
            scene.add("x", object_by_name("bike"), position=(1.0, 2.0))
        with pytest.raises(SceneError):
            scene.move_user((np.nan, 0, 0))


class TestRenderLoadModel:
    def test_culled_fraction_decreases_with_distance(self):
        model = RenderLoadModel()
        fractions = [model.culled_fraction(d) for d in (0.5, 1.0, 2.0, 4.0)]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))

    def test_culled_fraction_floor(self):
        model = RenderLoadModel(min_fraction=0.35, backface_fraction=0.6)
        assert model.culled_fraction(100.0) == pytest.approx(0.6 * 0.35)

    def test_rendered_triangles_scale_with_ratio(self):
        scene = Scene()
        scene.add("bike", object_by_name("bike"), position=(0, 0, 1.0))
        model = RenderLoadModel()
        full = model.rendered_triangles(scene)
        scene.set_ratio("bike", 0.5)
        assert model.rendered_triangles(scene) == pytest.approx(0.5 * full)

    def test_system_load_fields(self):
        scene = Scene()
        scene.add("bike", object_by_name("bike"), position=(0, 0, 1.0))
        model = RenderLoadModel(base_gpu_streams=0.5)
        load = model.system_load(scene)
        assert load.n_objects == 1
        assert load.base_gpu_streams == 0.5
        assert load.submitted_triangles == pytest.approx(scene.drawn_triangles)
        assert load.rendered_triangles < load.submitted_triangles

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RenderLoadModel(backface_fraction=0.0)
        with pytest.raises(ConfigurationError):
            RenderLoadModel(min_fraction=1.5)
        with pytest.raises(ConfigurationError):
            RenderLoadModel(base_gpu_streams=-0.1)
        with pytest.raises(ConfigurationError):
            RenderLoadModel().culled_fraction(0.0)

"""Unit tests for repro.device.soc and repro.device.resources."""

import pytest

from repro.device.resources import (
    ALL_RESOURCES,
    Processor,
    Resource,
    resource_from_name,
    resource_index,
)
from repro.device.soc import RenderCostModel, SoCSpec, galaxy_s22_soc, pixel7_soc
from repro.errors import ConfigurationError, DeviceError


class TestResources:
    def test_canonical_ordering(self):
        assert ALL_RESOURCES == (
            Resource.CPU,
            Resource.GPU_DELEGATE,
            Resource.NNAPI,
        )

    def test_short_codes_match_fig2_annotations(self):
        assert Resource.CPU.short == "C"
        assert Resource.GPU_DELEGATE.short == "G"
        assert Resource.NNAPI.short == "N"

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("cpu", Resource.CPU),
            ("CPU", Resource.CPU),
            ("g", Resource.GPU_DELEGATE),
            ("gpu_delegate", Resource.GPU_DELEGATE),
            ("NNAPI", Resource.NNAPI),
            (" n ", Resource.NNAPI),
        ],
    )
    def test_resource_from_name(self, name, expected):
        assert resource_from_name(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(DeviceError):
            resource_from_name("tpu")

    def test_resource_index_roundtrip(self):
        for i, res in enumerate(ALL_RESOURCES):
            assert resource_index(res) == i


class TestRenderCostModel:
    def test_gpu_channels_split(self):
        model = RenderCostModel(
            gpu_triangles_per_stream=100_000, gpu_objects_per_stream=10
        )
        assert model.gpu_triangle_streams(250_000) == pytest.approx(2.5)
        assert model.gpu_object_streams(5) == pytest.approx(0.5)
        assert model.gpu_streams(250_000, 5) == pytest.approx(3.0)

    def test_cpu_streams(self):
        model = RenderCostModel(
            cpu_objects_per_stream=10, cpu_triangles_per_stream=1_000_000
        )
        assert model.cpu_streams(5, 500_000) == pytest.approx(1.0)

    def test_negative_inputs_raise(self):
        model = RenderCostModel()
        with pytest.raises(ConfigurationError):
            model.gpu_triangle_streams(-1)
        with pytest.raises(ConfigurationError):
            model.gpu_object_streams(-1)
        with pytest.raises(ConfigurationError):
            model.cpu_streams(-1, 0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            RenderCostModel(gpu_triangles_per_stream=0)


class TestSoCSpec:
    def test_slowdown_identity_below_capacity(self):
        soc = pixel7_soc()
        for proc in Processor:
            assert soc.slowdown(proc, 0.0) == 1.0
            assert soc.slowdown(proc, soc.capacity[proc]) == 1.0

    def test_slowdown_superlinear_above_capacity(self):
        soc = pixel7_soc()
        cap = soc.capacity[Processor.CPU]
        s2 = soc.slowdown(Processor.CPU, 2 * cap)
        s4 = soc.slowdown(Processor.CPU, 4 * cap)
        assert s2 > 1.0
        assert s4 >= 2 * s2 * 0.99  # at least ~linear growth

    def test_slowdown_negative_raises(self):
        with pytest.raises(ConfigurationError):
            pixel7_soc().slowdown(Processor.GPU, -0.1)

    def test_render_penalty_monotone_and_clamped(self):
        soc = pixel7_soc()
        values = [soc.render_penalty(s) for s in (0.0, 0.5, 1.0, 2.0, 10.0)]
        assert values[0] == 1.0
        assert all(b >= a for a, b in zip(values, values[1:]))
        # Clamp: beyond saturation the penalty stops growing.
        assert soc.render_penalty(100.0) == soc.render_penalty(1000.0)
        assert soc.render_penalty(100.0) == pytest.approx(
            1.0 / (1.0 - soc.gpu_render_rho_max)
        )

    def test_render_penalty_negative_raises(self):
        with pytest.raises(ConfigurationError):
            pixel7_soc().render_penalty(-1.0)

    def test_missing_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="missing capacity"):
            SoCSpec(name="bad", capacity={Processor.CPU: 1.0})

    def test_sub_one_queue_exponent_rejected(self):
        with pytest.raises(ConfigurationError, match="queue_exponent"):
            SoCSpec(
                name="bad",
                queue_exponent={
                    Processor.CPU: 0.9,
                    Processor.GPU: 1.0,
                    Processor.NPU: 1.0,
                },
            )

    def test_factories_produce_distinct_devices(self):
        pixel, s22 = pixel7_soc(), galaxy_s22_soc()
        assert pixel.name != s22.name
        assert pixel.capacity != s22.capacity

"""Unit tests for repro.bo.gp (Gaussian-process regression)."""

import numpy as np
import pytest

from repro.bo.gp import GaussianProcess, GPPosterior
from repro.bo.kernels import Matern, RBF
from repro.errors import GPFitError


def _toy_function(x):
    return np.sin(3 * x[:, 0]) + 0.5 * x[:, 0]


class TestFit:
    def test_fit_returns_self_and_sets_state(self, rng):
        x = rng.uniform(0, 1, size=(10, 2))
        y = x[:, 0] + x[:, 1]
        gp = GaussianProcess()
        assert not gp.is_fit
        assert gp.fit(x, y) is gp
        assert gp.is_fit
        assert gp.n_observations == 10

    def test_fit_zero_points_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess().fit(np.empty((0, 2)), np.empty(0))

    def test_fit_shape_mismatch_raises(self, rng):
        with pytest.raises(GPFitError, match="rows"):
            GaussianProcess().fit(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_fit_nan_raises(self, rng):
        x = rng.normal(size=(5, 2))
        y = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        with pytest.raises(GPFitError, match="NaN"):
            GaussianProcess().fit(x, y)

    def test_duplicate_points_survive_via_jitter(self):
        """Identical rows make K singular without jitter escalation."""
        x = np.tile([[0.5, 0.5]], (6, 1))
        y = np.full(6, 2.0)
        gp = GaussianProcess(noise=0.0)
        gp.fit(x, y)  # must not raise
        assert gp.predict(x).mean == pytest.approx(np.full(6, 2.0), abs=1e-3)

    def test_negative_noise_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess(noise=-1.0)


class TestPredict:
    def test_predict_before_fit_raises(self):
        with pytest.raises(GPFitError, match="before fit"):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_interpolates_training_points(self, rng):
        x = rng.uniform(0, 2, size=(15, 1))
        y = _toy_function(x)
        gp = GaussianProcess(kernel=Matern(length_scale=0.5), noise=1e-8)
        gp.fit(x, y)
        post = gp.predict(x)
        assert np.allclose(post.mean, y, atol=1e-3)
        assert np.all(post.std < 0.05)

    def test_uncertainty_grows_away_from_data(self, rng):
        x = rng.uniform(0, 1, size=(12, 1))
        gp = GaussianProcess(kernel=Matern(length_scale=0.3)).fit(x, _toy_function(x))
        near = gp.predict(np.array([[0.5]])).std[0]
        far = gp.predict(np.array([[4.0]])).std[0]
        assert far > near

    def test_far_field_reverts_to_prior_mean(self, rng):
        x = rng.uniform(0, 1, size=(10, 1))
        y = _toy_function(x)
        gp = GaussianProcess(kernel=Matern(length_scale=0.3)).fit(x, y)
        far_mean = gp.predict(np.array([[50.0]])).mean[0]
        assert far_mean == pytest.approx(float(np.mean(y)), abs=0.1)

    def test_generalizes_smooth_function(self, rng):
        x = np.linspace(0, 2, 25)[:, None]
        gp = GaussianProcess(kernel=RBF(length_scale=0.5), noise=1e-6)
        gp.fit(x, _toy_function(x))
        x_test = np.linspace(0.1, 1.9, 10)[:, None]
        post = gp.predict(x_test)
        assert np.allclose(post.mean, _toy_function(x_test), atol=0.05)

    def test_posterior_shapes(self, rng):
        x = rng.normal(size=(8, 3))
        gp = GaussianProcess().fit(x, rng.normal(size=8))
        post = gp.predict(rng.normal(size=(5, 3)))
        assert post.mean.shape == (5,)
        assert post.std.shape == (5,)
        assert np.all(post.std > 0)

    def test_y_normalization_invariance(self, rng):
        """Scaling targets by 1000 scales predictions by 1000."""
        x = rng.uniform(0, 1, size=(12, 2))
        y = rng.normal(size=12)
        base = GaussianProcess().fit(x, y).predict(x[:4])
        scaled = GaussianProcess().fit(x, 1000 * y).predict(x[:4])
        assert np.allclose(scaled.mean, 1000 * base.mean, rtol=1e-6)
        assert np.allclose(scaled.std, 1000 * base.std, rtol=1e-6)

    def test_constant_targets_handled(self, rng):
        """Zero-variance targets must not divide by zero."""
        x = rng.normal(size=(6, 2))
        gp = GaussianProcess().fit(x, np.full(6, 3.0))
        post = gp.predict(x)
        assert np.allclose(post.mean, 3.0, atol=1e-6)


class TestGPPosterior:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(GPFitError):
            GPPosterior(mean=np.zeros(3), std=np.zeros(4))


class TestLogMarginalLikelihood:
    def test_prefers_correct_length_scale(self, rng):
        """LML is higher for a kernel whose scale matches the data."""
        x = np.linspace(0, 3, 30)[:, None]
        y = np.sin(4 * x[:, 0])  # wiggly: short length scale fits
        lml_short = (
            GaussianProcess(kernel=Matern(length_scale=0.3)).fit(x, y)
        ).log_marginal_likelihood()
        lml_long = (
            GaussianProcess(kernel=Matern(length_scale=5.0)).fit(x, y)
        ).log_marginal_likelihood()
        assert lml_short > lml_long

    def test_before_fit_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess().log_marginal_likelihood()


class TestSamplePosterior:
    def test_samples_match_posterior_moments(self, rng):
        x = rng.uniform(0, 1, size=(10, 1))
        gp = GaussianProcess(kernel=Matern(length_scale=0.5)).fit(
            x, _toy_function(x)
        )
        x_test = np.array([[0.2], [0.9]])
        draws = gp.sample_posterior(x_test, n_samples=4000, rng=rng)
        post = gp.predict(x_test)
        assert draws.shape == (4000, 2)
        assert np.allclose(draws.mean(axis=0), post.mean, atol=0.05)

    def test_before_fit_raises(self, rng):
        with pytest.raises(GPFitError):
            GaussianProcess().sample_posterior(np.zeros((1, 1)), 10, rng)


class TestUpdate:
    """Rank-1 Cholesky extension: update() must agree with a full refit."""

    def _data(self, rng, n=12):
        x = rng.uniform(0, 1, size=(n, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        return x, y

    def test_matches_full_refit(self, rng):
        x, y = self._data(rng)
        inc = GaussianProcess(noise=1e-3).fit(x[:8], y[:8])
        for i in range(8, 12):
            inc = inc.update(x[i], y[i])
        full = GaussianProcess(noise=1e-3).fit(x, y)
        grid = rng.uniform(0, 1, size=(25, 2))
        np.testing.assert_allclose(
            inc.predict(grid).mean, full.predict(grid).mean, atol=1e-9
        )
        np.testing.assert_allclose(
            inc.predict(grid).std, full.predict(grid).std, atol=1e-9
        )
        np.testing.assert_allclose(
            inc.log_marginal_likelihood(),
            full.log_marginal_likelihood(),
            atol=1e-8,
        )

    def test_returns_self_and_grows(self, rng):
        x, y = self._data(rng, n=6)
        gp = GaussianProcess().fit(x[:5], y[:5])
        assert gp.update(x[5], y[5]) is gp
        assert gp.n_observations == 6

    def test_duplicate_point_falls_back_to_full_fit(self, rng):
        """A repeated row degenerates the extension (l22² ≈ 0); update()
        must survive via the jitter-escalating refit."""
        x, y = self._data(rng, n=5)
        gp = GaussianProcess(noise=0.0).fit(x, y)
        gp.update(x[0], y[0])  # must not raise
        assert gp.n_observations == 6
        post = gp.predict(x)
        assert np.all(np.isfinite(post.mean))
        assert np.all(post.std > 0)

    def test_before_fit_raises(self):
        with pytest.raises(GPFitError, match="before fit"):
            GaussianProcess().update(np.zeros(2), 1.0)

    def test_dim_mismatch_raises(self, rng):
        x, y = self._data(rng, n=5)
        gp = GaussianProcess().fit(x, y)
        with pytest.raises(GPFitError, match="dim"):
            gp.update(np.zeros(3), 1.0)

    def test_nonfinite_raises(self, rng):
        x, y = self._data(rng, n=5)
        gp = GaussianProcess().fit(x, y)
        with pytest.raises(GPFitError, match="NaN"):
            gp.update(np.array([0.5, np.nan]), 1.0)
        with pytest.raises(GPFitError, match="NaN"):
            gp.update(np.array([0.5, 0.5]), float("inf"))

"""Failure injection and the energy-aware cost variant."""

import pytest

from repro.core.controller import HBOConfig, HBOController
from repro.device.executor import DeviceSimulator
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile
from repro.device.resources import Resource
from repro.device.soc import galaxy_s22_soc
from repro.errors import ConfigurationError, DeviceError
from repro.sim.scenarios import build_system


class TestFailureInjection:
    @pytest.fixture
    def sim(self):
        sim = DeviceSimulator(galaxy_s22_soc(), noise_sigma=0.0, seed=0)
        sim.add_task("seg", get_profile(GALAXY_S22, "deeplabv3"), Resource.NNAPI)
        sim.add_task("cls", get_profile(GALAXY_S22, "mobilenet-v1"), Resource.NNAPI)
        return sim

    def test_failure_relocates_resident_tasks(self, sim):
        sim.fail_resource(Resource.NNAPI)
        assert Resource.NNAPI in sim.failed_resources
        # deeplabv3 falls back to GPU (45 ms < 46 ms CPU on the S22).
        assert sim.allocation["seg"] is Resource.GPU_DELEGATE
        assert sim.allocation["cls"] is Resource.GPU_DELEGATE
        assert len(sim.failure_log) == 2
        task_id, failed, fallback = sim.failure_log[0]
        assert failed is Resource.NNAPI

    def test_assignment_to_failed_resource_falls_back(self, sim):
        sim.fail_resource(Resource.NNAPI)
        sim.set_allocation("seg", Resource.NNAPI)  # controller unaware
        assert sim.allocation["seg"] is not Resource.NNAPI
        assert sim.failure_log[-1][0] == "seg"

    def test_measurements_continue_after_failure(self, sim):
        sim.fail_resource(Resource.NNAPI)
        latencies = sim.measure_period(n_samples=3)
        assert set(latencies) == {"seg", "cls"}
        assert all(v > 0 for v in latencies.values())

    def test_restore_allows_reassignment(self, sim):
        sim.fail_resource(Resource.NNAPI)
        sim.restore_resource(Resource.NNAPI)
        sim.set_allocation("seg", Resource.NNAPI)
        assert sim.allocation["seg"] is Resource.NNAPI

    def test_total_loss_raises(self, sim):
        sim.fail_resource(Resource.NNAPI)
        sim.fail_resource(Resource.GPU_DELEGATE)
        with pytest.raises(DeviceError, match="no working resource"):
            sim.fail_resource(Resource.CPU)

    def test_hbo_recovers_from_mid_session_failure(self, fast_config):
        """End to end: NNAPI dies mid-session; the next activation finds a
        working configuration and the system keeps running."""
        system = build_system("SC2", "CF2", seed=6, noise_sigma=0.02)
        controller = HBOController(system, fast_config, seed=6)
        controller.activate()
        system.device.fail_resource(Resource.NNAPI)
        # Monitoring still works and HBO can re-optimize around the loss.
        reward_after_failure = system.measure_reward(fast_config.w, samples=3)
        result = controller.activate()
        assert result.final_measurement is not None
        assert Resource.NNAPI not in set(system.device.allocation.values())
        assert result.final_measurement.reward(fast_config.w) >= (
            reward_after_failure - 0.5
        )


class TestEnergyAwareHBO:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HBOConfig(w_power=-0.1)

    def test_energy_weight_changes_the_cost_surface(self):
        """With a large power weight, the same measurements must map to
        different costs than the vanilla formulation."""
        cfg = HBOConfig(n_initial=3, n_iterations=3, w_power=2.0)
        system = build_system("SC1", "CF1", seed=8, noise_sigma=0.0)
        controller = HBOController(system, cfg, seed=8)
        result = controller.activate()
        for iteration in result.iterations:
            vanilla = -(
                iteration.measurement.quality
                - cfg.w * iteration.measurement.epsilon
            )
            assert iteration.cost != pytest.approx(vanilla, abs=1e-6)

    def test_energy_weight_zero_is_vanilla(self):
        cfg = HBOConfig(n_initial=3, n_iterations=3, w_power=0.0)
        system = build_system("SC1", "CF1", seed=8, noise_sigma=0.0)
        controller = HBOController(system, cfg, seed=8)
        result = controller.activate()
        iteration = result.iterations[-1]
        vanilla = -(
            iteration.measurement.quality - cfg.w * iteration.measurement.epsilon
        )
        assert iteration.cost == pytest.approx(vanilla, abs=1e-9)

    def test_heavy_power_weight_discourages_cpu_spinup(self):
        """With power priced very high, the chosen configuration should
        draw less than the vanilla choice (or at worst equal)."""
        from repro.device.power import PowerModel

        def chosen_power(w_power):
            cfg = HBOConfig(n_initial=4, n_iterations=8, w_power=w_power)
            system = build_system("SC1", "CF1", seed=9, noise_sigma=0.02)
            controller = HBOController(system, cfg, seed=9)
            controller.activate()
            return PowerModel().system_power_w(
                system.device.soc, system.device.placements(), system.device.load
            )

        assert chosen_power(3.0) <= chosen_power(0.0) + 0.4

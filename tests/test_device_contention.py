"""Unit tests for repro.device.contention — the Fig. 2 mechanics."""

import pytest

from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile
from repro.device.resources import Processor, Resource
from repro.device.soc import galaxy_s22_soc, pixel7_soc
from repro.errors import DeviceError, IncompatibleDelegateError


def _place(device, model, task_id, resource):
    return TaskPlacement(
        task_id=task_id, profile=get_profile(device, model), resource=resource
    )


@pytest.fixture
def model():
    return ContentionModel(galaxy_s22_soc())


class TestSystemLoad:
    def test_defaults(self):
        load = SystemLoad()
        assert load.rendered_triangles == 0
        assert load.submitted_triangles == 0
        assert load.base_gpu_streams == 0

    def test_submitted_defaults_to_rendered(self):
        load = SystemLoad(rendered_triangles=100.0, n_objects=2)
        assert load.submitted_triangles == 100.0

    def test_submitted_below_rendered_rejected(self):
        with pytest.raises(DeviceError):
            SystemLoad(rendered_triangles=100.0, submitted_triangles=50.0)

    def test_negative_values_rejected(self):
        with pytest.raises(DeviceError):
            SystemLoad(rendered_triangles=-1)
        with pytest.raises(DeviceError):
            SystemLoad(n_objects=-1)
        with pytest.raises(DeviceError):
            SystemLoad(base_gpu_streams=-0.1)


class TestTaskPlacement:
    def test_incompatible_delegate_rejected(self):
        with pytest.raises(IncompatibleDelegateError):
            _place(PIXEL7, "deeplabv3", "t", Resource.NNAPI)  # NA in Table I


class TestIsolationFidelity:
    """In isolation the contention model must return Table I exactly."""

    @pytest.mark.parametrize(
        "device,model_name",
        [(GALAXY_S22, "deeplabv3"), (GALAXY_S22, "mnist"), (PIXEL7, "mobilenet-v1")],
    )
    def test_isolation_latency_matches_profile(self, device, model_name):
        soc = galaxy_s22_soc() if device == GALAXY_S22 else pixel7_soc()
        contention = ContentionModel(soc)
        profile = get_profile(device, model_name)
        for resource in Resource:
            if not profile.supports(resource):
                continue
            placement = TaskPlacement("t", profile, resource)
            latencies = contention.latencies([placement], SystemLoad())
            assert latencies["t"] == pytest.approx(profile.latency(resource))


class TestColocation:
    def test_cpu_colocation_slows_heavy_models(self, model):
        one = [_place(GALAXY_S22, "deeplabv3", "a", Resource.CPU)]
        two = one + [_place(GALAXY_S22, "deeplabv3", "b", Resource.CPU)]
        lat_one = model.latencies(one, SystemLoad())["a"]
        lat_two = model.latencies(two, SystemLoad())["a"]
        assert lat_two > lat_one

    def test_nnapi_pileup_grows_latency(self, model):
        placements = []
        previous = 0.0
        for i in range(5):
            placements.append(
                _place(GALAXY_S22, "deeplabv3", f"t{i}", Resource.NNAPI)
            )
            latency = model.latencies(placements, SystemLoad())["t0"]
            assert latency >= previous - 1e-9
            previous = latency
        assert previous > model.latencies(placements[:1], SystemLoad())["t0"]

    def test_tasks_on_disjoint_processors_do_not_interact(self, model):
        cpu_only = [_place(GALAXY_S22, "deeplabv3", "c", Resource.CPU)]
        with_gpu = cpu_only + [
            _place(GALAXY_S22, "deconv-munet", "g", Resource.GPU_DELEGATE)
        ]
        # One light GPU task below capacity leaves the CPU task untouched.
        assert model.latencies(with_gpu, SystemLoad())["c"] == pytest.approx(
            model.latencies(cpu_only, SystemLoad())["c"]
        )


class TestRenderingInterference:
    """The paper's central observation: triangles hurt AI latency."""

    def test_triangles_hurt_all_nnapi_tasks(self, model):
        placements = [
            _place(GALAXY_S22, "deeplabv3", f"t{i}", Resource.NNAPI) for i in range(3)
        ]
        quiet = model.latencies(placements, SystemLoad())
        busy = model.latencies(
            placements,
            SystemLoad(rendered_triangles=600_000, n_objects=8,
                       submitted_triangles=1_200_000),
        )
        for tid in quiet:
            assert busy[tid] > quiet[tid] * 1.3

    def test_cpu_tasks_shielded_from_gpu_rendering(self, model):
        """Rendering hits CPU only via driving cost, far less than GPU."""
        nnapi = [_place(GALAXY_S22, "deeplabv3", "n", Resource.NNAPI)]
        cpu = [_place(GALAXY_S22, "deeplabv3", "c", Resource.CPU)]
        load = SystemLoad(
            rendered_triangles=600_000, n_objects=8, submitted_triangles=1_200_000
        )
        nnapi_inflation = (
            model.latencies(nnapi, load)["n"] / model.latencies(nnapi, SystemLoad())["n"]
        )
        cpu_inflation = (
            model.latencies(cpu, load)["c"] / model.latencies(cpu, SystemLoad())["c"]
        )
        assert nnapi_inflation > cpu_inflation

    def test_more_triangles_monotonically_worse_for_gpu_tasks(self, model):
        placements = [_place(GALAXY_S22, "deconv-munet", "g", Resource.GPU_DELEGATE)]
        latencies = [
            model.latencies(
                placements, SystemLoad(rendered_triangles=t, n_objects=4,
                                       submitted_triangles=2 * t)
            )["g"]
            for t in (0, 200_000, 400_000, 800_000)
        ]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))
        assert latencies[-1] > latencies[0]

    def test_fig2b_relocation_under_load_helps_everyone(self, model):
        """Under heavy rendering, moving one NNAPI task to the CPU improves
        both the moved task and the ones left behind (Fig. 2b, t≈200 s)."""
        load = SystemLoad(
            rendered_triangles=700_000, n_objects=8, submitted_triangles=1_400_000
        )
        all_nnapi = [
            _place(GALAXY_S22, "deeplabv3", f"t{i}", Resource.NNAPI) for i in range(5)
        ]
        moved = all_nnapi[:4] + [_place(GALAXY_S22, "deeplabv3", "t4", Resource.CPU)]
        before = model.latencies(all_nnapi, load)
        after = model.latencies(moved, load)
        assert after["t4"] < before["t4"]  # the moved task improves
        assert after["t0"] < before["t0"]  # the remaining tasks improve too


class TestCommunicationOverhead:
    def test_comm_multiplier_grows_with_gpu_slowdown(self, model):
        assert model.nnapi_comm_multiplier(1.0) == pytest.approx(1.0)
        assert model.nnapi_comm_multiplier(3.0) > model.nnapi_comm_multiplier(2.0)


class TestValidation:
    def test_duplicate_task_ids_rejected(self, model):
        placements = [
            _place(GALAXY_S22, "mnist", "same", Resource.CPU),
            _place(GALAXY_S22, "mnist", "same", Resource.NNAPI),
        ]
        with pytest.raises(DeviceError, match="duplicate"):
            model.latencies(placements, SystemLoad())

    def test_empty_placement_set(self, model):
        assert model.latencies([], SystemLoad()) == {}

    def test_processor_state_reports_all_processors(self, model):
        placements = [_place(GALAXY_S22, "deeplabv3", "t", Resource.NNAPI)]
        state = model.processor_state(placements, SystemLoad(n_objects=3))
        assert set(state.streams) == set(Processor)
        assert set(state.slowdown) == set(Processor)
        assert state.streams[Processor.NPU] > 0  # NNAPI puts work on NPU
        assert state.streams[Processor.GPU] > 0  # fallback ops + draw calls

"""Unit tests for repro.device.executor and repro.device.thermal."""

import numpy as np
import pytest

from repro.device.contention import SystemLoad
from repro.device.executor import DeviceSimulator, LatencySample
from repro.device.profiles import GALAXY_S22, get_profile
from repro.device.resources import Resource
from repro.device.soc import galaxy_s22_soc
from repro.device.thermal import ThermalModel
from repro.errors import ConfigurationError, DeviceError, IncompatibleDelegateError


@pytest.fixture
def sim():
    return DeviceSimulator(galaxy_s22_soc(), noise_sigma=0.0, seed=0)


@pytest.fixture
def deeplab():
    return get_profile(GALAXY_S22, "deeplabv3")


class TestTaskManagement:
    def test_add_defaults_to_affinity(self, sim, deeplab):
        sim.add_task("t", deeplab)
        assert sim.allocation["t"] is Resource.NNAPI  # deeplab's S22 affinity

    def test_add_duplicate_id_rejected(self, sim, deeplab):
        sim.add_task("t", deeplab)
        with pytest.raises(DeviceError, match="already registered"):
            sim.add_task("t", deeplab)

    def test_remove(self, sim, deeplab):
        sim.add_task("t", deeplab)
        sim.remove_task("t")
        assert sim.task_ids == ()
        with pytest.raises(DeviceError):
            sim.remove_task("t")

    def test_incompatible_add_rejected(self, sim):
        profile = get_profile(GALAXY_S22, "efficientdet-lite")  # no NNAPI
        with pytest.raises(IncompatibleDelegateError):
            sim.add_task("t", profile, Resource.NNAPI)

    def test_profile_of_unknown_raises(self, sim):
        with pytest.raises(DeviceError):
            sim.profile_of("ghost")


class TestAllocation:
    def test_set_allocation_moves_task(self, sim, deeplab):
        sim.add_task("t", deeplab, Resource.NNAPI)
        sim.set_allocation("t", Resource.CPU)
        assert sim.allocation["t"] is Resource.CPU

    def test_apply_allocation_full_map_required(self, sim, deeplab):
        sim.add_task("a", deeplab)
        sim.add_task("b", deeplab)
        with pytest.raises(DeviceError, match="mismatch"):
            sim.apply_allocation({"a": Resource.CPU})
        with pytest.raises(DeviceError, match="mismatch"):
            sim.apply_allocation(
                {"a": Resource.CPU, "b": Resource.CPU, "ghost": Resource.CPU}
            )
        sim.apply_allocation({"a": Resource.CPU, "b": Resource.NNAPI})
        assert sim.allocation == {"a": Resource.CPU, "b": Resource.NNAPI}

    def test_allocation_returns_copy(self, sim, deeplab):
        sim.add_task("t", deeplab)
        snapshot = sim.allocation
        snapshot["t"] = Resource.CPU
        assert sim.allocation["t"] is Resource.NNAPI


class TestMeasurement:
    def test_noiseless_samples_equal_steady_state(self, sim, deeplab):
        sim.add_task("t", deeplab)
        steady = sim.steady_state_latencies()["t"]
        for sample in sim.sample_latencies():
            assert isinstance(sample, LatencySample)
            assert sample.latency_ms == pytest.approx(steady)

    def test_noise_is_multiplicative_and_centered(self, deeplab):
        sim = DeviceSimulator(galaxy_s22_soc(), noise_sigma=0.05, seed=42)
        sim.add_task("t", deeplab)
        steady = sim.steady_state_latencies()["t"]
        measured = sim.measure_period(n_samples=400)["t"]
        assert measured == pytest.approx(steady, rel=0.02)

    def test_measure_period_validates_samples(self, sim, deeplab):
        sim.add_task("t", deeplab)
        with pytest.raises(DeviceError):
            sim.measure_period(n_samples=0)

    def test_load_changes_measured_latency(self, sim, deeplab):
        sim.add_task("t", deeplab, Resource.NNAPI)
        quiet = sim.steady_state_latencies()["t"]
        sim.set_load(
            SystemLoad(rendered_triangles=700_000, n_objects=8,
                       submitted_triangles=1_400_000)
        )
        assert sim.steady_state_latencies()["t"] > quiet

    def test_isolation_latency_lookup(self, sim, deeplab):
        sim.add_task("t", deeplab)
        assert sim.isolation_latency("t", Resource.NNAPI) == pytest.approx(27.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSimulator(galaxy_s22_soc(), noise_sigma=-0.1)

    def test_seeded_noise_reproducible(self, deeplab):
        def run():
            sim = DeviceSimulator(galaxy_s22_soc(), noise_sigma=0.05, seed=9)
            sim.add_task("t", deeplab)
            return sim.measure_period(5)["t"]

        assert run() == pytest.approx(run())


class TestThermal:
    def test_temperature_rises_under_load(self):
        thermal = ThermalModel()
        start = thermal.temperature_c
        for _ in range(100):
            thermal.step(1.0)
        assert thermal.temperature_c > start
        assert thermal.temperature_c <= thermal.ambient_c + thermal.max_heat_c + 1e-6

    def test_throttle_kicks_in_above_threshold(self):
        thermal = ThermalModel(throttle_start_c=45.0, throttle_slope=0.02)
        assert thermal.throttle_factor() == 1.0
        thermal.temperature_c = 50.0
        assert thermal.throttle_factor() == pytest.approx(1.1)

    def test_reset(self):
        thermal = ThermalModel()
        thermal.step(1.0)
        thermal.reset()
        assert thermal.temperature_c == thermal.ambient_c

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalModel().step(1.5)

    def test_thermal_inflates_simulator_latencies(self, deeplab):
        thermal = ThermalModel(
            ambient_c=44.0, max_heat_c=30.0, time_constant_steps=2.0,
            throttle_start_c=45.0, throttle_slope=0.05,
        )
        sim = DeviceSimulator(
            galaxy_s22_soc(), noise_sigma=0.0, thermal=thermal, seed=0
        )
        sim.add_task("t", deeplab)
        cold = sim.steady_state_latencies()["t"]
        for _ in range(50):
            sim.sample_latencies()  # heats the SoC
        hot = sim.steady_state_latencies()["t"]
        assert hot > cold

    def test_invalid_thermal_params(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(time_constant_steps=0)
        with pytest.raises(ConfigurationError):
            ThermalModel(throttle_slope=-0.1)

"""Unit tests for the cross-session warm-start store."""

import numpy as np
import pytest

from repro.bo.optimizer import Observation
from repro.core.lookup import EnvironmentSignature, LookupTable, StoredConfiguration
from repro.device.resources import Resource
from repro.errors import ConfigurationError
from repro.fleet.store import (
    SharedConfigStore,
    WarmStartEntry,
    warm_start_entry_from_dict,
    warm_start_entry_to_dict,
)


def _signature(tri=1_000_000, n=5, dist=1.5, tasks=("a", "b")):
    return EnvironmentSignature(
        total_max_triangles=tri,
        n_objects=n,
        mean_distance_m=dist,
        taskset_key=tuple(tasks),
    )


_ALLOCATION = {"a": Resource.CPU, "b": Resource.NNAPI}


def _observations(costs):
    return [
        Observation(z=np.array([0.2, 0.3, 0.5, 0.4 + 0.01 * i]), cost=c)
        for i, c in enumerate(costs)
    ]


class TestWarmStartEntry:
    def test_to_observations_round_trip(self):
        entry = WarmStartEntry(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.7,
            reward=0.4,
            observations=(((0.2, 0.3, 0.5, 0.4), -0.4), ((0.1, 0.4, 0.5, 0.6), 0.1)),
            source_session="donor",
        )
        observations = entry.to_observations()
        assert len(observations) == 2
        assert observations[0].cost == pytest.approx(-0.4)
        assert np.allclose(observations[0].z, [0.2, 0.3, 0.5, 0.4])

    def test_dict_round_trip(self):
        entry = WarmStartEntry(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.7,
            reward=0.4,
            observations=(((0.2, 0.3, 0.5, 0.4), -0.4),),
            source_session="donor",
        )
        rebuilt = warm_start_entry_from_dict(warm_start_entry_to_dict(entry))
        assert rebuilt == entry


class TestSharedConfigStoreProtocol:
    def test_donate_then_warm_start(self):
        store = SharedConfigStore()
        store.donate(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.7,
            reward=0.4,
            observations=_observations([0.5, -0.2, 0.1]),
            scope="pixel7",
            session_id="donor",
        )
        entry = store.warm_start_for(_signature(), scope="pixel7")
        assert entry is not None
        assert entry.source_session == "donor"
        assert len(entry.observations) == 3
        assert store.donations == 1
        assert store.transfers == 1
        assert store.hit_rate == pytest.approx(1.0)
        assert store.transfer_rate == pytest.approx(1.0)

    def test_scopes_are_isolated(self):
        store = SharedConfigStore()
        store.donate(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.7,
            reward=0.4,
            observations=_observations([0.1]),
            scope="pixel7",
        )
        assert store.warm_start_for(_signature(), scope="s22") is None
        assert store.warm_start_for(_signature(), scope="pixel7") is not None
        assert store.scopes() == ("pixel7", "s22")

    def test_keeps_lowest_cost_observations(self):
        store = SharedConfigStore(max_observations=2)
        entry = store.donate(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.7,
            reward=0.4,
            observations=_observations([0.5, -0.2, 0.1, 0.9]),
        )
        kept_costs = [cost for _z, cost in entry.observations]
        assert kept_costs == [-0.2, 0.1]

    def test_miss_counts_but_does_not_transfer(self):
        store = SharedConfigStore()
        assert store.warm_start_for(_signature()) is None
        assert store.misses == 1
        assert store.transfers == 0
        assert store.transfer_rate == 0.0

    def test_legacy_entry_without_observations(self):
        """A plain StoredConfiguration hit returns a configuration-only
        entry and does not count as a transfer."""
        store = SharedConfigStore()
        store.table_for("").store(
            StoredConfiguration(
                signature=_signature(),
                allocation=_ALLOCATION,
                triangle_ratio=0.6,
                reward=0.2,
            )
        )
        entry = store.warm_start_for(_signature())
        assert isinstance(entry, WarmStartEntry)
        assert entry.observations == ()
        assert store.transfers == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SharedConfigStore(max_observations=0)


class TestSharedConfigStorePersistence:
    def _populated(self):
        store = SharedConfigStore(max_entries_per_scope=8, similarity_threshold=0.3)
        store.donate(
            signature=_signature(tri=900_000),
            allocation=_ALLOCATION,
            triangle_ratio=0.6,
            reward=0.3,
            observations=_observations([0.4, -0.1]),
            scope="pixel7",
            session_id="p0",
        )
        store.donate(
            signature=_signature(tri=2_000_000, tasks=("x", "y")),
            allocation=_ALLOCATION,
            triangle_ratio=0.9,
            reward=0.8,
            observations=_observations([0.2]),
            scope="s22",
            session_id="g0",
        )
        store.warm_start_for(_signature(tri=900_000), scope="pixel7")
        store.warm_start_for(_signature(tri=5, n=99), scope="pixel7")  # miss
        return store

    def test_dict_round_trip(self):
        store = self._populated()
        rebuilt = SharedConfigStore.from_dict(store.to_dict())
        assert rebuilt.stats() == store.stats()
        assert rebuilt.to_dict() == store.to_dict()
        entry = rebuilt.warm_start_for(_signature(tri=900_000), scope="pixel7")
        assert entry is not None and entry.source_session == "p0"

    def test_save_load(self, tmp_path):
        store = self._populated()
        path = tmp_path / "store.json"
        store.save(path)
        rebuilt = SharedConfigStore.load(path)
        assert rebuilt.to_dict() == store.to_dict()

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError):
            SharedConfigStore.load(path)


class TestLookupTablePersistence:
    """JSON round-trip of the underlying single-device table."""

    def test_round_trip_preserves_entries_and_counters(self, tmp_path):
        table = LookupTable(max_entries=4, similarity_threshold=0.2)
        table.store(
            StoredConfiguration(
                signature=_signature(tri=500_000),
                allocation=_ALLOCATION,
                triangle_ratio=0.5,
                reward=0.1,
            )
        )
        table.store(
            StoredConfiguration(
                signature=_signature(tri=3_000_000, tasks=("q",)),
                allocation={"q": Resource.GPU_DELEGATE},
                triangle_ratio=0.8,
                reward=0.5,
            )
        )
        table.lookup(_signature(tri=500_000))  # hit
        table.lookup(_signature(tri=500, n=50))  # miss
        path = tmp_path / "table.json"
        table.save(path)
        rebuilt = LookupTable.load(path)
        assert len(rebuilt) == 2
        assert rebuilt.hits == 1 and rebuilt.misses == 1
        assert rebuilt.to_dict() == table.to_dict()
        hit = rebuilt.lookup(_signature(tri=3_000_000, tasks=("q",)))
        assert hit is not None
        assert hit.allocation["q"] is Resource.GPU_DELEGATE


class TestObservationBudget:
    """Store-wide eviction budget (docs/fleet.md, eviction semantics)."""

    def _budgeted(self, budget):
        # Three far-apart signatures so entries never merge as duplicates.
        store = SharedConfigStore(max_observations=4, observation_budget=budget)
        for i, tri in enumerate((500_000, 2_000_000, 8_000_000)):
            store.donate(
                signature=_signature(tri=tri),
                allocation=_ALLOCATION,
                triangle_ratio=0.5,
                reward=0.1,
                observations=_observations([0.1 * i, 0.2, 0.3, 0.4]),
                scope="pixel7",
                session_id=f"s{i}",
            )
        return store

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SharedConfigStore(observation_budget=0)
        SharedConfigStore(observation_budget=None)  # unbounded is fine

    def test_unbounded_by_default(self):
        store = self._budgeted(None)
        assert store.total_observations == 12
        assert store.evicted_observations == 0

    def test_budget_trims_to_the_cap(self):
        store = self._budgeted(6)
        assert store.total_observations == 6
        assert store.evicted_observations == 6

    def test_trim_hits_least_recently_used_entries_first(self):
        store = self._budgeted(None)
        # Touch the first donation so it becomes most-recently-hit.
        store.warm_start_for(_signature(tri=500_000), scope="pixel7")
        store.observation_budget = 6
        store._enforce_budget()
        fresh = store.warm_start_for(_signature(tri=500_000), scope="pixel7")
        assert fresh is not None
        # The recently-hit donor kept all 4 observations; the 6 evicted
        # ones came out of the two stale entries.
        assert len(fresh.observations) == 4
        assert store.total_observations == 6

    def test_within_an_entry_highest_cost_goes_first(self):
        store = SharedConfigStore(max_observations=4, observation_budget=2)
        store.donate(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.5,
            reward=0.1,
            observations=_observations([0.4, 0.1, 0.3, 0.2]),
            scope="pixel7",
        )
        entry = store.warm_start_for(_signature(), scope="pixel7")
        assert entry is not None
        costs = [cost for _, cost in entry.observations]
        assert costs == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_fully_trimmed_entry_still_serves_lookups(self):
        store = self._budgeted(4)
        # The oldest entry lost every observation but keeps its config.
        entries = store.table_for("pixel7").entries()
        empty = [e for e in entries if not e.observations]
        assert empty and empty[0].triangle_ratio == pytest.approx(0.5)

    def test_budget_round_trips_through_json(self, tmp_path):
        store = self._budgeted(6)
        path = tmp_path / "store.json"
        store.save(path)
        rebuilt = SharedConfigStore.load(path)
        assert rebuilt.observation_budget == 6
        assert rebuilt.evicted_observations == 6
        assert rebuilt.to_dict() == store.to_dict()

    def test_pre_budget_json_loads_with_defaults(self):
        # A pre-PR8 save has no budget fields: loading must default to
        # unbounded with zero evictions, not KeyError.
        store = SharedConfigStore()
        store.donate(
            signature=_signature(),
            allocation=_ALLOCATION,
            triangle_ratio=0.5,
            reward=0.1,
            observations=_observations([0.1]),
            scope="pixel7",
        )
        legacy = store.to_dict()
        del legacy["observation_budget"]
        del legacy["evicted_observations"]
        rebuilt = SharedConfigStore.from_dict(legacy)
        assert rebuilt.observation_budget is None
        assert rebuilt.evicted_observations == 0
        assert rebuilt.total_observations == 1


class TestLookupTableReplace:
    def _entry(self, tri):
        return StoredConfiguration(
            signature=_signature(tri=tri),
            allocation=_ALLOCATION,
            triangle_ratio=0.5,
            reward=0.1,
        )

    def test_replace_preserves_recency(self):
        table = LookupTable(max_entries=2, similarity_threshold=0.2)
        oldest = self._entry(500_000)
        newest = self._entry(5_000_000)
        table.store(oldest)
        table.store(newest)
        swapped = self._entry(500_000)
        table.replace(oldest, swapped)
        # The swapped-in entry inherited the oldest slot's recency, so the
        # next overflow still evicts it (a plain store() would have made
        # it the freshest entry instead).
        table.store(self._entry(20_000_000))
        assert swapped not in table.entries()
        assert newest in table.entries()

    def test_replace_unknown_entry_raises(self):
        table = LookupTable()
        table.store(self._entry(500_000))
        with pytest.raises(ConfigurationError):
            table.replace(self._entry(500_000), self._entry(900_000))

"""Tests for the observability layer: tracer span trees, the no-op fast
path, histogram bucket semantics, snapshot determinism, Chrome-trace
export round trips, and the ``repro trace`` CLI."""

import json

import pytest

from repro.core.controller import HBOConfig
from repro.errors import ObservabilityError, ReproError
from repro.experiments.fleet import default_fleet_specs
from repro.fleet.scheduler import FleetConfig, FleetScheduler
from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    active,
    install,
    instrumented,
    load_trace_json,
    snapshot_delta,
    trace_events,
    uninstall,
    validate_events,
    write_metrics_json,
    write_trace_json,
)
from repro.obs import runtime as obs
from repro.rng import derive_seed
from repro.sim.clock import SimClock, wall_now_ms


def tiny_fleet_config():
    return HBOConfig(n_initial=2, n_iterations=3)


def run_traced_fleet(n_sessions=3, seed=7, capture_wall=False):
    """One instrumented tiny fleet run; returns (tracer, metrics, result)."""
    config = tiny_fleet_config()
    specs = default_fleet_specs(n_sessions, config, seed=seed)
    scheduler = FleetScheduler(
        specs, seed=derive_seed(seed, "fleet"), config=FleetConfig(hbo=config)
    )
    tracer = Tracer(clock=scheduler.clock, capture_wall=capture_wall)
    metrics = MetricsRegistry()
    with instrumented(tracer, metrics):
        result = scheduler.run()
    return tracer, metrics, result


class TestNullFastPath:
    def test_disabled_by_default(self):
        assert active().tracer is NULL_TRACER
        assert active().metrics is NULL_METRICS
        assert not active().enabled

    def test_span_returns_shared_singleton(self):
        assert obs.span("a") is NULL_SPAN
        assert obs.span("b", category="x", k=1) is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with obs.span("anything") as span:
            assert span.set(key="value") is span
        assert NULL_TRACER.spans == ()

    def test_null_metrics_shared_and_inert(self):
        c1 = obs.counter("some_counter")
        c2 = obs.counter("other_counter", label="x")
        assert c1 is c2
        c1.inc(5)
        assert c1.value == 0.0
        obs.gauge("g").set(3.0)
        h = obs.histogram("h")
        h.observe(1.0)
        assert h.quantile(0.5) is None
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_null_metrics_skip_name_validation(self):
        # The whole point of the fast path: no validation, no allocation.
        assert obs.counter("bad latency name!") is obs.counter("x")

    def test_instrumented_restores_previous(self):
        tracer = Tracer()
        with instrumented(tracer):
            assert active().tracer is tracer
            with instrumented():
                assert active().tracer is NULL_TRACER
            assert active().tracer is tracer
        assert active().tracer is NULL_TRACER

    def test_install_uninstall(self):
        tracer = Tracer()
        install(tracer)
        try:
            assert active().tracer is tracer
            assert active().metrics is NULL_METRICS
        finally:
            uninstall()
        assert active().tracer is NULL_TRACER


class TestTracer:
    def test_nesting_parents_and_depth(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root", category="test"):
            clock.advance(1.0)
            with tracer.span("child"):
                clock.advance(0.5)
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                clock.advance(0.25)
        assert [s.name for s in tracer.spans] == [
            "grandchild", "child", "sibling", "root",
        ]  # close order = post-order
        by_name = {s.name: s for s in tracer.spans}
        root, child = by_name["root"], by_name["child"]
        assert root.parent_id is None and root.depth == 0
        assert child.parent_id == root.span_id and child.depth == 1
        assert by_name["grandchild"].parent_id == child.span_id
        assert by_name["grandchild"].depth == 2
        assert by_name["sibling"].parent_id == root.span_id
        assert root.start_s == 0.0 and root.end_s == 1.75
        assert child.start_s == 1.0 and child.end_s == 1.5
        assert root.duration_s == pytest.approx(1.75)

    def test_spans_by_start_is_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.spans_by_start()] == ["a", "b", "c"]
        assert [s.name for s in tracer.children_of(None)] == ["a", "c"]

    def test_seq_breaks_sim_time_ties(self):
        # Clock never advances: all spans share start_s == end_s == 0,
        # but seq numbers still order and contain them.
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert outer.start_s == outer.end_s == inner.start_s
        assert outer.seq_open < inner.seq_open
        assert inner.seq_close < outer.seq_close

    def test_set_attaches_args(self):
        tracer = Tracer()
        with tracer.span("s", k=1) as span:
            span.set(found=3)
        assert dict(tracer.spans[0].args) == {"found": 3, "k": 1}

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(ObservabilityError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_empty_name_raises(self):
        with pytest.raises(ObservabilityError, match="non-empty"):
            Tracer().span("")

    def test_reset_requires_closed_spans(self):
        tracer = Tracer()
        span = tracer.span("open")
        with pytest.raises(ObservabilityError, match="still open"):
            tracer.reset()
        span.__exit__(None, None, None)
        tracer.reset()
        assert tracer.spans == [] and tracer.depth == 0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert tracer.spans[0].name == "failing"
        assert tracer.depth == 0

    def test_wall_capture_isolated_to_wall_ms(self):
        clock = SimClock()
        tracer = Tracer(clock=clock, capture_wall=True)
        with tracer.span("timed"):
            clock.advance(1.0)
        record = tracer.spans[0]
        assert record.wall_ms is not None and record.wall_ms >= 0.0
        assert "wall_ms" not in record.to_dict(include_wall=False)
        assert "wall_ms" in record.to_dict(include_wall=True)

    def test_no_wall_capture_by_default(self):
        tracer = Tracer()
        with tracer.span("untimed"):
            pass
        assert tracer.spans[0].wall_ms is None

    def test_wall_shim_is_monotonic_nonneg(self):
        a = wall_now_ms()
        b = wall_now_ms()
        assert b >= a >= 0.0


class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram(edges=(1.0, 2.0, 5.0))
        h.observe(1.0)  # le-semantics: exactly 1.0 -> first bucket
        h.observe(2.0)
        h.observe(5.0)
        assert h.bucket_counts == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram(edges=(1.0, 2.0))
        h.observe(100.0)
        assert h.bucket_counts == [0, 0, 1]
        assert h.count == 1 and h.sum == 100.0

    def test_below_first_edge(self):
        h = Histogram(edges=(10.0, 20.0))
        h.observe(0.5)
        assert h.bucket_counts == [1, 0, 0]

    def test_min_max_sum_count(self):
        h = Histogram(edges=(10.0, 20.0, 50.0))
        for v in (5.0, 15.0, 45.0):
            h.observe(v)
        assert (h.min, h.max, h.count) == (5.0, 45.0, 3)
        assert h.sum == pytest.approx(65.0)

    def test_quantiles_interpolate_within_buckets(self):
        h = Histogram(edges=(10.0, 20.0))
        for _ in range(100):
            h.observe(15.0)
        # All mass in (10, 20]: every quantile must land inside it.
        for q in (0.5, 0.95, 0.99):
            assert 10.0 <= h.quantile(q) <= 20.0

    def test_quantile_empty_is_none(self):
        assert Histogram().quantile(0.5) is None

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ObservabilityError, match="quantile"):
            Histogram().quantile(1.5)

    def test_bad_edges_raise(self):
        with pytest.raises(ObservabilityError, match="edges"):
            Histogram(edges=())
        with pytest.raises(ObservabilityError, match="edges"):
            Histogram(edges=(5.0, 1.0))
        with pytest.raises(ObservabilityError, match="edges"):
            Histogram(edges=(1.0, 1.0, 2.0))

    def test_summary_keys(self):
        h = Histogram(edges=(1.0,))
        h.observe(0.5)
        summary = h.summary()
        assert set(summary) == {
            "count", "sum", "min", "max", "p50", "p95", "p99", "buckets",
        }
        assert summary["buckets"] == {"1.0": 1, "+inf": 0}


class TestMetricsRegistry:
    def test_counter_identity_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", scope="x")
        b = registry.counter("hits", scope="x")
        c = registry.counter("hits", scope="y")
        assert a is b and a is not c
        a.inc()
        a.inc(2.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"hits{scope=x}": 3.0, "hits{scope=y}": 0.0}

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError, match=">= 0"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == pytest.approx(4.0)

    def test_temporal_name_requires_unit_suffix(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="RL004"):
            registry.counter("task_latency")
        with pytest.raises(ObservabilityError, match="RL004"):
            registry.histogram("render_time")
        registry.counter("task_latency_ms")  # suffixed: fine
        registry.histogram("render_time_s")

    def test_malformed_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "with space", "dash-name", "brace{name}"):
            with pytest.raises(ObservabilityError, match="snake_case"):
                registry.counter(bad)

    def test_histogram_edge_reregistration_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("payload_bytes", edges=(1.0, 2.0))
        registry.histogram("payload_bytes", edges=(1.0, 2.0))  # same: fine
        with pytest.raises(ObservabilityError, match="re-register"):
            registry.histogram("payload_bytes", edges=(1.0, 3.0))

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert list(registry.snapshot()["counters"]) == ["aa", "zz"]

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        hist = registry.histogram("payload_bytes", edges=(10.0,))
        counter.inc(2)
        hist.observe(4.0)
        before = registry.snapshot()
        counter.inc(3)
        hist.observe(6.0)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"]["events"] == 3.0
        assert delta["histograms"]["payload_bytes"] == {"count": 1, "sum": 6.0}

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("bad name")


class TestTraceExport:
    def test_round_trip_and_strict_json(self, tmp_path):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", category="test", n=1):
            clock.advance(2.0)
            with tracer.span("inner"):
                clock.advance(0.5)
        path = str(tmp_path / "trace.json")
        events = write_trace_json(tracer, path)
        validate_events(events)
        # One event per line AND a strict JSON array.
        lines = open(path).read().splitlines()
        assert lines[0] == "[" and lines[-1] == "]"
        assert len(lines) == len(events) + 2
        assert json.load(open(path)) == events
        assert load_trace_json(path) == events

    def test_load_tolerates_trace_events_wrapper_and_jsonl(self, tmp_path):
        event = {"name": "e", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"traceEvents": [event]}))
        assert load_trace_json(str(wrapped)) == [event]
        jsonl = tmp_path / "events.jsonl"
        jsonl.write_text(json.dumps(event) + "\n" + json.dumps(event) + "\n")
        assert load_trace_json(str(jsonl)) == [event, event]

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all {{{")
        with pytest.raises(ObservabilityError):
            load_trace_json(str(bad))
        scalar = tmp_path / "scalar.json"
        scalar.write_text("42")
        with pytest.raises(ObservabilityError, match="trace-event array"):
            load_trace_json(str(scalar))

    def test_validate_rejects_malformed_events(self):
        with pytest.raises(ObservabilityError, match="missing required"):
            validate_events([{"name": "x", "ph": "X"}])
        with pytest.raises(ObservabilityError, match="phase"):
            validate_events(
                [{"name": "x", "ph": "B", "ts": 0, "dur": 0, "pid": 0, "tid": 0}]
            )
        with pytest.raises(ObservabilityError, match="integer"):
            validate_events(
                [{"name": "x", "ph": "X", "ts": 0.5, "dur": 0, "pid": 0, "tid": 0}]
            )

    def test_tick_tie_break_preserves_containment(self):
        tracer = Tracer()  # clock never advances: all sim times equal
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = {e["name"]: e for e in trace_events(tracer)}
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] < inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_include_wall_false_strips_wall_fields(self, tmp_path):
        clock = SimClock()
        tracer = Tracer(clock=clock, capture_wall=True)
        with tracer.span("timed"):
            clock.advance(1.0)
        stripped = trace_events(tracer, include_wall=False)
        assert all("wall_ms" not in e["args"] for e in stripped)
        kept = trace_events(tracer, include_wall=True)
        assert any("wall_ms" in e["args"] for e in kept)

    def test_sim_bounds_ride_in_args(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        clock.advance(3.0)
        with tracer.span("s"):
            clock.advance(2.0)
        (event,) = trace_events(tracer)
        assert event["args"]["sim_start_s"] == 3.0
        assert event["args"]["sim_end_s"] == 5.0
        assert event["ts"] == 3_000_000  # µs + seq 0

    def test_write_metrics_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events").inc(4)
        path = str(tmp_path / "metrics.json")
        snapshot = write_metrics_json(registry, path)
        assert json.load(open(path)) == snapshot


class TestInstrumentedRuns:
    def test_traced_fleet_bit_reproducible(self):
        tracer_a, metrics_a, _ = run_traced_fleet(seed=11)
        tracer_b, metrics_b, _ = run_traced_fleet(seed=11)
        assert [s.to_dict() for s in tracer_a.spans] == [
            s.to_dict() for s in tracer_b.spans
        ]
        assert metrics_a.snapshot() == metrics_b.snapshot()
        assert trace_events(tracer_a) == trace_events(tracer_b)

    def test_wall_capture_does_not_change_sim_spans(self):
        tracer_a, _, _ = run_traced_fleet(seed=11, capture_wall=False)
        tracer_b, _, _ = run_traced_fleet(seed=11, capture_wall=True)
        assert [s.to_dict(include_wall=False) for s in tracer_a.spans] == [
            s.to_dict(include_wall=False) for s in tracer_b.spans
        ]
        assert trace_events(tracer_a, include_wall=False) == trace_events(
            tracer_b, include_wall=False
        )

    def test_fleet_probes_fire(self):
        tracer, metrics, result = run_traced_fleet()
        names = {s.name for s in tracer.spans}
        assert "fleet.tick" in names
        assert "fleet.batched_gp" in names
        assert "device.measure_period" in names
        snap = metrics.snapshot()
        assert snap["counters"]["fleet_ticks"] == result.ticks
        assert snap["counters"]["fleet_gp_batches"] > 0
        assert snap["histograms"]["device_task_latency_ms"]["count"] > 0

    def test_uninstrumented_run_records_nothing(self):
        config = tiny_fleet_config()
        specs = default_fleet_specs(2, config, seed=3)
        scheduler = FleetScheduler(
            specs, seed=derive_seed(3, "fleet"), config=FleetConfig(hbo=config)
        )
        scheduler.run()
        assert NULL_TRACER.spans == ()
        assert NULL_METRICS.snapshot()["counters"] == {}

    def test_fleet_export_embeds_metrics_snapshot(self):
        from repro.sim.export import fleet_result_to_dict

        tracer, metrics, result = run_traced_fleet()
        exported = fleet_result_to_dict(result, metrics=metrics)
        assert exported["metrics"] == metrics.snapshot()
        assert "metrics" not in fleet_result_to_dict(result)

    def test_fleet_tick_span_covers_tick_duration(self):
        tracer, _, result = run_traced_fleet()
        ticks = [s for s in tracer.spans if s.name == "fleet.tick"]
        assert len(ticks) == result.ticks
        assert all(s.duration_s == pytest.approx(result.tick_s) for s in ticks)


class TestTraceCLI:
    def test_trace_command_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "trace.json")
        metrics_out = str(tmp_path / "metrics.json")
        code = main([
            "trace", "--fleet", "2", "--initial", "2", "--iterations", "2",
            "--seed", "5", "--out", out, "--metrics", metrics_out,
        ])
        assert code == 0
        events = load_trace_json(out)
        validate_events(events)
        assert events
        snapshot = json.load(open(metrics_out))
        assert snapshot["counters"]["fleet_ticks"] > 0
        captured = capsys.readouterr().out
        assert "spans" in captured

    def test_trace_command_deterministic(self, tmp_path):
        from repro.cli import main

        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        for out in (out_a, out_b):
            assert main([
                "trace", "--scenario", "SC2", "--taskset", "CF2",
                "--seed", "9", "--initial", "2", "--iterations", "2",
                "--duration", "20", "--out", str(out),
            ]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_trace_command_leaves_runtime_disabled(self, tmp_path):
        from repro.cli import main

        main([
            "trace", "--fleet", "2", "--initial", "2", "--iterations", "2",
            "--out", str(tmp_path / "t.json"),
        ])
        assert active().tracer is NULL_TRACER

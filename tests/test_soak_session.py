"""Soak test: a long, adversarial session end to end.

One simulated ~13-minute MAR session that exercises everything at once:
object churn (placements *and* removals), user movement, an NNAPI
delegate failure mid-session, the event-based activation policy, and the
lookup table — asserting the system stays consistent and responsive
throughout. This is the closest thing to a production burn-in the
simulator can express.
"""

import numpy as np
import pytest

from repro.ar.objects import catalog_sc2, expand_instances, object_by_name
from repro.core.activation import EventBasedPolicy
from repro.core.controller import HBOConfig, HBOController
from repro.core.lookup import LookupAwareController, LookupTable
from repro.device.resources import Resource
from repro.sim.engine import MonitoringEngine
from repro.sim.events import DistanceChange, ObjectPlacement, ObjectRemoval
from repro.sim.scenarios import build_system


@pytest.fixture(scope="module")
def soak_report():
    system = build_system("SC2", "CF2", seed=31, place_objects=False,
                          noise_sigma=0.03)
    controller = HBOController(
        system, HBOConfig(n_initial=3, n_iterations=5), seed=31
    )
    engine = MonitoringEngine(
        controller, EventBasedPolicy(), monitor_interval_s=2.0,
        control_period_s=2.0,
    )

    # Build a churny script: waves of placements, removals, movement.
    events = []
    instances = expand_instances(catalog_sc2())
    rng = np.random.default_rng(31)
    t = 0.0
    for i, (iid, obj) in enumerate(instances):
        events.append(
            ObjectPlacement(
                time_s=t, instance_id=iid, obj=obj,
                position=tuple(rng.uniform(-1.0, 1.0, 3) + [0, 0, 1.2]),
            )
        )
        t += 25.0
    # A heavy intruder, then remove it again.
    events.append(
        ObjectPlacement(time_s=t, instance_id="intruder",
                        obj=object_by_name("plane"), position=(0, 0, 1.0))
    )
    events.append(ObjectRemoval(time_s=t + 80.0, instance_id="intruder"))
    # The user wanders.
    events.append(DistanceChange(time_s=t + 120.0, user_position=(0, 0, -1.5)))
    events.append(DistanceChange(time_s=t + 200.0, user_position=(0, 0, 0.5)))
    # Remove a couple of originals near the end.
    events.append(ObjectRemoval(time_s=t + 260.0, instance_id=instances[0][0]))
    events.append(ObjectRemoval(time_s=t + 280.0, instance_id=instances[1][0]))
    duration = t + 340.0

    report = engine.run(events, duration)
    return system, report


class TestSoakSession:
    def test_session_completes_with_activity(self, soak_report):
        system, report = soak_report
        assert report.n_activations >= 1
        times, rewards = report.trace.reward_series()
        assert times[-1] > 500.0  # the session actually ran long
        assert np.all(np.isfinite(rewards))

    def test_scene_state_consistent_at_end(self, soak_report):
        system, report = soak_report
        # 7 placed + intruder placed, then 3 removals → 5 objects remain.
        assert len(system.scene) == 5
        assert "intruder" not in system.scene
        # Every remaining object draws within its bounds.
        for placed in system.scene:
            assert 0.0 < placed.ratio <= 1.0

    def test_device_allocation_covers_exactly_the_taskset(self, soak_report):
        system, _report = soak_report
        assert set(system.device.allocation) == set(system.taskset.task_ids)

    def test_reward_recovers_after_intruder_leaves(self, soak_report):
        _system, report = soak_report
        times, rewards = report.trace.reward_series()
        # Mean reward over the final stretch beats the worst moment of the
        # session (the system recovered from the churn).
        closing = rewards[times > times[-1] - 60.0]
        assert closing.mean() > rewards.min()

    def test_activation_windows_are_disjoint_and_ordered(self, soak_report):
        _system, report = soak_report
        windows = report.trace.activation_windows()
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2
            assert s1 < e1


class TestSoakWithFailureAndLookup:
    def test_failure_midway_through_lookup_session(self):
        """Lookup hits must respect delegate failures: a remembered
        configuration targeting a dead delegate falls back safely."""
        system = build_system("SC2", "CF2", seed=33, noise_sigma=0.02)
        controller = LookupAwareController(
            HBOController(system, HBOConfig(n_initial=3, n_iterations=4), seed=33),
            table=LookupTable(),
        )
        first = controller.activate()
        assert not first.from_table

        system.device.fail_resource(Resource.NNAPI)
        decision = controller.activate()  # same environment → table hit
        # Whatever path was taken, nothing may sit on the dead delegate.
        assert Resource.NNAPI not in set(system.device.allocation.values())
        assert np.isfinite(decision.measurement.epsilon)

    def test_repeated_activations_do_not_leak_tasks(self):
        system = build_system("SC2", "CF2", seed=34, noise_sigma=0.02)
        controller = HBOController(
            system, HBOConfig(n_initial=2, n_iterations=2), seed=34
        )
        for _ in range(5):
            controller.activate()
        assert set(system.device.allocation) == set(system.taskset.task_ids)
        assert len(controller.activations) == 5

"""Unit tests for repro.models (zoo, op graphs, tasksets)."""

import pytest

from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile, model_names
from repro.device.resources import ALL_RESOURCES, Processor, Resource
from repro.errors import ConfigurationError, UnknownModelError
from repro.models.ops import build_op_graph, partition_for_nnapi
from repro.models.tasks import AITask, TaskSet, build_taskset, taskset_cf1, taskset_cf2
from repro.models.zoo import ModelZoo


class TestModelZoo:
    def test_names_cover_table1_plus_mnist(self):
        zoo = ModelZoo(PIXEL7)
        assert "deeplabv3" in zoo.names()
        assert "mnist" in zoo.names()
        assert len(zoo.names()) == 9

    def test_affinity_and_expected_latency_consistent(self):
        zoo = ModelZoo(PIXEL7)
        for model in zoo.names():
            res = zoo.affinity(model)
            assert zoo.profile(model).latency(res) == zoo.expected_latency(model)

    def test_compatible_resources_excludes_na(self):
        zoo = ModelZoo(PIXEL7)
        assert Resource.NNAPI not in zoo.compatible_resources("deeplabv3")
        assert set(zoo.compatible_resources("mnist")) == set(ALL_RESOURCES)

    def test_isolation_table_shape(self):
        table = ModelZoo(GALAXY_S22).isolation_table()
        assert set(table) == set(model_names(GALAXY_S22))
        for row in table.values():
            assert set(row) == set(ALL_RESOURCES)

    def test_priority_entries_one_per_compatible_pair(self):
        zoo = ModelZoo(PIXEL7)
        entries = zoo.priority_entries(["mnist", "deeplabv3"])
        # mnist: 3 resources; deeplabv3 on Pixel 7: 2 (no NNAPI).
        assert len(entries) == 5

    def test_unknown_device_raises(self):
        with pytest.raises(UnknownModelError):
            ModelZoo("Nokia 3310")


class TestOpGraphs:
    @pytest.mark.parametrize("model", ["mobilenet-v1", "deeplabv3", "mnist"])
    def test_coverage_matches_profile(self, model):
        profile = get_profile(GALAXY_S22, model)
        graph = build_op_graph(profile)
        assert graph.npu_coverage() == pytest.approx(profile.npu_coverage, abs=0.06)

    def test_zero_coverage_model_has_no_npu_ops(self):
        profile = get_profile(PIXEL7, "deeplabv3")  # npu_coverage = 0
        graph = build_op_graph(profile)
        assert graph.npu_flops() == 0.0

    def test_flops_normalized(self):
        graph = build_op_graph(get_profile(PIXEL7, "mobilenet-v1"))
        assert graph.total_flops() == pytest.approx(1.0)

    def test_deterministic(self):
        profile = get_profile(PIXEL7, "mobilenet-v1")
        g1, g2 = build_op_graph(profile), build_op_graph(profile)
        assert g1 == g2

    def test_partition_respects_support_flags(self):
        graph = build_op_graph(get_profile(GALAXY_S22, "inception-v1-q"))
        partition = partition_for_nnapi(graph)
        assert all(op.npu_supported for op in partition[Processor.NPU])
        assert all(not op.npu_supported for op in partition[Processor.GPU])
        total = len(partition[Processor.NPU]) + len(partition[Processor.GPU])
        assert total == len(graph.ops)

    def test_partition_count_positive(self):
        graph = build_op_graph(get_profile(GALAXY_S22, "mobilenet-v1"))
        assert graph.partition_count() >= 1


class TestTaskSets:
    def test_cf1_composition_matches_table2(self):
        cf1 = taskset_cf1(PIXEL7)
        assert len(cf1) == 6
        counts = cf1.count_by_model()
        assert counts == {
            "mnist": 1,
            "mobilenetDetv1": 1,
            "model-metadata": 2,
            "mobilenet-v1": 1,
            "efficientclass-lite0": 1,
        }

    def test_cf2_composition_matches_table2(self):
        cf2 = taskset_cf2(PIXEL7)
        assert len(cf2) == 3
        assert cf2.count_by_model() == {
            "mnist": 1,
            "mobilenetDetv1": 1,
            "efficientclass-lite0": 1,
        }

    def test_instance_naming_matches_paper(self):
        cf1 = taskset_cf1(PIXEL7)
        assert "model-metadata_1" in cf1.task_ids
        assert "model-metadata_2" in cf1.task_ids
        assert "mnist" in cf1.task_ids  # single instance keeps the name

    def test_cf1_affinity_split(self):
        """§V-B: three GPU-preferring tasks, three NNAPI-preferring."""
        cf1 = taskset_cf1(PIXEL7)
        alloc = cf1.affinity_allocation()
        gpu = [t for t, r in alloc.items() if r is Resource.GPU_DELEGATE]
        nnapi = [t for t, r in alloc.items() if r is Resource.NNAPI]
        assert len(gpu) == 3 and len(nnapi) == 3

    def test_expected_latencies_are_best_isolation(self):
        cf2 = taskset_cf2(PIXEL7)
        expected = cf2.expected_latencies()
        assert expected["mobilenetDetv1"] == pytest.approx(18.1)
        assert expected["efficientclass-lite0"] == pytest.approx(18.3)

    def test_by_id(self):
        cf2 = taskset_cf2(PIXEL7)
        assert cf2.by_id("mnist").model == "mnist"
        with pytest.raises(ConfigurationError):
            cf2.by_id("ghost")

    def test_iteration_and_indexing(self):
        cf2 = taskset_cf2(PIXEL7)
        assert [t.task_id for t in cf2] == list(cf2.task_ids)
        assert isinstance(cf2[0], AITask)

    def test_duplicate_ids_rejected(self):
        task = taskset_cf2(PIXEL7)[0]
        with pytest.raises(ConfigurationError, match="duplicate"):
            TaskSet("bad", [task, task])

    def test_build_taskset_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            build_taskset("bad", [("mnist", 0)])

    def test_build_taskset_on_s22(self):
        ts = build_taskset("s22", [("deeplabv3", 2)], device=GALAXY_S22)
        assert ts.by_id("deeplabv3_1").affinity is Resource.NNAPI

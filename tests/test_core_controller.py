"""Unit tests for repro.core.algorithm, repro.core.activation and
repro.core.controller."""

import numpy as np
import pytest

from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import BoxSpace, HBOSpace
from repro.core.activation import EventBasedPolicy, PeriodicPolicy
from repro.core.algorithm import HBOIteration
from repro.core.controller import HBOConfig, HBOController, HBORunResult
from repro.errors import ConfigurationError


class TestHBOIteration:
    def test_one_iteration_produces_consistent_result(self, sc1cf1_system):
        optimizer = BayesianOptimizer(HBOSpace(3, r_min=0.1), seed=0)
        step = HBOIteration(sc1cf1_system, optimizer, w=2.5)
        result = step.run_once()
        assert np.isclose(result.proportions.sum(), 1.0)
        assert 0.1 <= result.triangle_ratio <= 1.0
        assert set(result.allocation) == set(sc1cf1_system.taskset.task_ids)
        assert result.cost == pytest.approx(
            -(result.measurement.quality - 2.5 * result.measurement.epsilon)
        )
        assert optimizer.n_observations == 1

    def test_latency_only_pins_ratio_to_one(self, sc1cf1_system):
        optimizer = BayesianOptimizer(HBOSpace(3, r_min=0.1), seed=0)
        step = HBOIteration(sc1cf1_system, optimizer, w=2.5, latency_only=True)
        result = step.run_once()
        assert result.triangle_ratio == 1.0
        assert result.cost == pytest.approx(2.5 * result.measurement.epsilon)

    def test_wrong_space_type_rejected(self, sc1cf1_system):
        optimizer = BayesianOptimizer(BoxSpace([(0, 1)] * 4), seed=0)
        with pytest.raises(ConfigurationError, match="HBOSpace"):
            HBOIteration(sc1cf1_system, optimizer, w=2.5)

    def test_space_resource_mismatch_rejected(self, sc1cf1_system):
        optimizer = BayesianOptimizer(HBOSpace(5), seed=0)
        with pytest.raises(ConfigurationError, match="resources"):
            HBOIteration(sc1cf1_system, optimizer, w=2.5)

    def test_negative_w_rejected(self, sc1cf1_system):
        optimizer = BayesianOptimizer(HBOSpace(3), seed=0)
        with pytest.raises(ConfigurationError):
            HBOIteration(sc1cf1_system, optimizer, w=-1.0)


class TestHBOConfig:
    def test_paper_defaults(self):
        config = HBOConfig()
        assert config.w == 2.5
        assert config.n_initial == 5
        assert config.n_iterations == 15
        assert config.total_evaluations == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HBOConfig(w=-1)
        with pytest.raises(ConfigurationError):
            HBOConfig(n_initial=0)
        with pytest.raises(ConfigurationError):
            HBOConfig(r_min=1.0)


class TestHBORunResult:
    def test_best_and_trajectory_empty_raises(self):
        with pytest.raises(ConfigurationError):
            HBORunResult().best_index


class TestController:
    def test_activation_runs_budget_and_applies_best(
        self, sc1cf1_system, fast_config
    ):
        controller = HBOController(sc1cf1_system, fast_config, seed=3)
        result = controller.activate()
        # total budget + the incumbent seeding evaluation
        assert len(result.iterations) == fast_config.total_evaluations + 1
        best = result.best
        # The best configuration must be live on the system afterwards.
        assert sc1cf1_system.device.allocation == dict(best.allocation)
        assert sc1cf1_system.scene.triangle_ratio == pytest.approx(
            best.measurement.triangle_ratio, abs=0.05
        )
        assert result.final_measurement is not None

    def test_trajectory_monotone(self, sc1cf1_system, fast_config):
        controller = HBOController(sc1cf1_system, fast_config, seed=3)
        result = controller.activate()
        trajectory = result.best_cost_trajectory()
        assert len(trajectory) == fast_config.total_evaluations + 1
        assert np.all(np.diff(trajectory) <= 1e-12)

    def test_activation_improves_over_first_random_config(
        self, sc1cf1_system, fast_config
    ):
        controller = HBOController(sc1cf1_system, fast_config, seed=5)
        result = controller.activate()
        assert result.best.cost <= result.iterations[0].cost

    def test_activations_accumulate(self, sc2cf2_system, fast_config):
        controller = HBOController(sc2cf2_system, fast_config, seed=1)
        controller.activate()
        controller.activate()
        assert len(controller.activations) == 2

    def test_consecutive_distances_shape(self, sc2cf2_system, fast_config):
        controller = HBOController(sc2cf2_system, fast_config, seed=1)
        result = controller.activate()
        distances = result.consecutive_distances()
        assert len(distances) == fast_config.total_evaluations
        assert np.all(distances >= 0)


class TestEventBasedPolicy:
    def test_first_call_always_activates(self):
        policy = EventBasedPolicy()
        assert policy.should_activate(0.5)

    def test_thresholds_asymmetric(self):
        policy = EventBasedPolicy(
            increase_threshold=0.05, decrease_threshold=0.10, confirmations=1
        )
        policy.record_reference(1.0)
        assert not policy.should_activate(1.0)
        assert not policy.should_activate(1.04)  # +4% < 5%
        assert policy.should_activate(1.06)  # +6% > 5%
        policy.record_reference(1.0)
        assert not policy.should_activate(0.92)  # −8% < 10%
        assert policy.should_activate(0.89)  # −11% > 10%

    def test_negative_reference_relative_drift(self):
        """Rewards are often negative; drift must be scale-relative."""
        policy = EventBasedPolicy(confirmations=1)
        policy.record_reference(-1.0)
        assert not policy.should_activate(-1.05)
        assert policy.should_activate(-1.2)

    def test_confirmation_hysteresis(self):
        """A single noisy out-of-band sample must not fire; two
        consecutive ones must; an in-band sample resets the streak."""
        policy = EventBasedPolicy(confirmations=2)
        policy.record_reference(1.0)
        assert not policy.should_activate(1.5)  # first drifting sample
        assert not policy.should_activate(1.0)  # back in band: reset
        assert not policy.should_activate(1.5)
        assert policy.should_activate(1.5)  # second consecutive: fire

    def test_invalid_confirmations(self):
        with pytest.raises(ConfigurationError):
            EventBasedPolicy(confirmations=0)

    def test_reset(self):
        policy = EventBasedPolicy()
        policy.record_reference(1.0)
        policy.reset()
        assert policy.reference is None
        assert policy.should_activate(1.0)

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            EventBasedPolicy(increase_threshold=0.0)
        with pytest.raises(ConfigurationError):
            EventBasedPolicy(decrease_threshold=-0.1)


class TestPeriodicPolicy:
    def test_fires_on_schedule(self):
        policy = PeriodicPolicy(period=3)
        assert policy.should_activate(0.0)  # first call
        policy.record_reference(0.0)
        fired = []
        for i in range(9):
            if policy.should_activate(0.0):
                fired.append(i)
                policy.record_reference(0.0)
            else:
                policy.step()
        # An activation consumes its own monitoring slot, so with period 3
        # the cadence over 9 slots is fires at indices 3 and 7.
        assert fired == [3, 7]

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicPolicy(period=0)

"""Tests for OBJ I/O, the frame-time estimate, and GP model selection."""

import numpy as np
import pytest

from repro.ar.mesh import make_procedural, make_sphere
from repro.ar.meshio import load_obj, save_obj
from repro.ar.objects import object_by_name
from repro.ar.renderer import RenderLoadModel
from repro.ar.scene import Scene
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern, RBF, WhiteNoise
from repro.errors import ConfigurationError, GPFitError, MeshError


class TestObjIO:
    def test_roundtrip_preserves_geometry(self, tmp_path):
        mesh = make_procedural("roundtrip", 800)
        path = tmp_path / "asset.obj"
        save_obj(mesh, path, precision=12)
        loaded = load_obj(path)
        assert loaded.n_vertices == mesh.n_vertices
        assert loaded.n_triangles == mesh.n_triangles
        assert np.allclose(loaded.vertices, mesh.vertices, atol=1e-9)
        assert np.array_equal(loaded.faces, mesh.faces)

    def test_quad_faces_are_fan_triangulated(self, tmp_path):
        path = tmp_path / "quad.obj"
        path.write_text(
            "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n"
        )
        mesh = load_obj(path)
        assert mesh.n_triangles == 2

    def test_slash_index_forms_supported(self, tmp_path):
        path = tmp_path / "tex.obj"
        path.write_text(
            "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
            "vt 0 0\nvn 0 0 1\n"
            "f 1/1 2/1/1 3//1\n"
        )
        mesh = load_obj(path)
        assert mesh.n_triangles == 1

    def test_negative_indices(self, tmp_path):
        path = tmp_path / "neg.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n")
        assert load_obj(path).n_triangles == 1

    def test_comments_and_unknown_tags_ignored(self, tmp_path):
        path = tmp_path / "noise.obj"
        path.write_text(
            "# header\no thing\ng group\nusemtl m\n"
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n"
        )
        assert load_obj(path).n_triangles == 1

    @pytest.mark.parametrize(
        "content,match",
        [
            ("v 0 0\n", "malformed vertex"),
            ("v 0 0 0\nf 1 2\n", "face needs"),
            ("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n", "out of range"),
            ("# nothing\n", "no vertices"),
            ("v 0 0 0\n", "no faces"),
            ("v a b c\nf 1 1 1\n", "bad vertex"),
        ],
    )
    def test_malformed_files_rejected(self, tmp_path, content, match):
        path = tmp_path / "bad.obj"
        path.write_text(content)
        with pytest.raises(MeshError, match=match):
            load_obj(path)

    def test_invalid_precision(self, tmp_path):
        with pytest.raises(MeshError):
            save_obj(make_sphere(50), tmp_path / "x.obj", precision=0)


class TestFrameTime:
    def test_scales_with_triangles_and_objects(self):
        model = RenderLoadModel()
        empty = Scene()
        assert model.frame_time_ms(empty) == pytest.approx(4.0)

        scene = Scene()
        scene.add("bike", object_by_name("bike"), position=(0, 0, 1.0))
        one = model.frame_time_ms(scene)
        scene.add("plane", object_by_name("plane"), position=(0.5, 0, 1.0))
        two = model.frame_time_ms(scene)
        assert two > one > 4.0

    def test_decimation_reduces_frame_time(self):
        model = RenderLoadModel()
        scene = Scene()
        scene.add("bike", object_by_name("bike"), position=(0, 0, 1.0))
        full = model.frame_time_ms(scene)
        scene.set_ratio("bike", 0.2)
        assert model.frame_time_ms(scene) < full

    def test_invalid_costs_rejected(self):
        scene = Scene()
        with pytest.raises(ConfigurationError):
            RenderLoadModel().frame_time_ms(scene, base_frame_ms=-1.0)


class TestLengthScaleSelection:
    def test_selects_matching_scale_for_wiggly_data(self, rng):
        x = np.linspace(0, 3, 40)[:, None]
        y = np.sin(6 * x[:, 0])  # short correlation length
        gp = GaussianProcess(kernel=Matern(length_scale=1.0), noise=1e-6)
        tuned = gp.optimized_over_length_scales(x, y, (0.25, 1.0, 4.0))
        assert tuned.kernel.length_scale == 0.25

    def test_selects_long_scale_for_smooth_data(self, rng):
        x = np.linspace(0, 3, 25)[:, None]
        y = 0.5 * x[:, 0]  # very smooth
        gp = GaussianProcess(kernel=RBF(length_scale=1.0), noise=1e-6)
        tuned = gp.optimized_over_length_scales(x, y, (0.25, 4.0))
        assert tuned.kernel.length_scale == 4.0

    def test_tuned_model_predicts_better(self, rng):
        x = rng.uniform(0, 3, size=(35, 1))
        y = np.sin(6 * x[:, 0])
        x_test = rng.uniform(0.2, 2.8, size=(20, 1))
        y_test = np.sin(6 * x_test[:, 0])
        wide = GaussianProcess(kernel=Matern(length_scale=4.0), noise=1e-6).fit(x, y)
        tuned = GaussianProcess(
            kernel=Matern(length_scale=4.0), noise=1e-6
        ).optimized_over_length_scales(x, y, (0.25, 0.5, 4.0))
        err_wide = np.mean((wide.predict(x_test).mean - y_test) ** 2)
        err_tuned = np.mean((tuned.predict(x_test).mean - y_test) ** 2)
        assert err_tuned <= err_wide

    def test_invalid_grid_rejected(self, rng):
        x = rng.uniform(0, 1, size=(5, 1))
        y = x[:, 0]
        gp = GaussianProcess()
        with pytest.raises(GPFitError):
            gp.optimized_over_length_scales(x, y, ())
        with pytest.raises(GPFitError):
            gp.optimized_over_length_scales(x, y, (0.0,))

    def test_unsupported_kernel_rejected(self, rng):
        x = rng.uniform(0, 1, size=(5, 1))
        gp = GaussianProcess(kernel=WhiteNoise(0.1))
        with pytest.raises(GPFitError, match="cannot vary"):
            gp.optimized_over_length_scales(x, x[:, 0], (1.0,))

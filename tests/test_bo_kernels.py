"""Unit tests for repro.bo.kernels."""

import math

import numpy as np
import pytest

from repro.bo.kernels import (
    RBF,
    Matern,
    Sum,
    WhiteNoise,
    make_kernel,
    pairwise_distances,
)
from repro.errors import ConfigurationError


class TestPairwiseDistances:
    def test_matches_norm(self, rng):
        x = rng.normal(size=(7, 3))
        z = rng.normal(size=(5, 3))
        d = pairwise_distances(x, z)
        assert d.shape == (7, 5)
        for i in range(7):
            for j in range(5):
                assert d[i, j] == pytest.approx(np.linalg.norm(x[i] - z[j]))

    def test_zero_on_identical_rows(self, rng):
        x = rng.normal(size=(4, 2))
        d = pairwise_distances(x, x)
        assert np.allclose(np.diag(d), 0.0)

    def test_accepts_1d_input(self):
        d = pairwise_distances(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert d.shape == (1, 1)
        assert d[0, 0] == pytest.approx(0.0)

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ConfigurationError):
            pairwise_distances(rng.normal(size=(3, 2)), rng.normal(size=(3, 4)))

    def test_never_negative_under_cancellation(self):
        # Large-magnitude nearly-identical points stress the x²+z²-2xz form.
        x = np.full((2, 3), 1e8)
        x[1] += 1e-4
        d = pairwise_distances(x, x)
        assert np.all(d >= 0)


class TestMatern:
    def test_paper_kernel_formula_matches_eq7(self, rng):
        """Eq. 7: k = σ²(1 + √5r/l + 5r²/3l²)exp(−√5r/l)."""
        kernel = Matern(length_scale=1.0, nu=2.5, variance=1.0)
        x = rng.normal(size=(4, 4))
        z = rng.normal(size=(3, 4))
        k = kernel(x, z)
        r = pairwise_distances(x, z)
        expected = (1 + math.sqrt(5) * r + 5 * r**2 / 3) * np.exp(-math.sqrt(5) * r)
        assert np.allclose(k, expected)

    @pytest.mark.parametrize("nu", [0.5, 1.5, 2.5])
    def test_unit_variance_at_zero_distance(self, nu):
        kernel = Matern(nu=nu)
        x = np.array([[0.3, 0.7]])
        assert kernel(x, x)[0, 0] == pytest.approx(1.0)

    @pytest.mark.parametrize("nu", [0.5, 1.5, 2.5])
    def test_monotone_decreasing_in_distance(self, nu):
        kernel = Matern(nu=nu)
        origin = np.zeros((1, 1))
        points = np.linspace(0.1, 5.0, 30)[:, None]
        values = kernel(points, origin).ravel()
        assert np.all(np.diff(values) < 0)

    def test_length_scale_widens_kernel(self):
        x, z = np.zeros((1, 2)), np.ones((1, 2))
        narrow = Matern(length_scale=0.5)(x, z)[0, 0]
        wide = Matern(length_scale=2.0)(x, z)[0, 0]
        assert wide > narrow

    def test_smoother_nu_higher_at_moderate_distance(self):
        x, z = np.zeros((1, 1)), np.array([[0.5]])
        v12 = Matern(nu=0.5)(x, z)[0, 0]
        v52 = Matern(nu=2.5)(x, z)[0, 0]
        assert v52 > v12

    def test_diag_is_variance(self, rng):
        kernel = Matern(variance=2.5)
        x = rng.normal(size=(6, 3))
        assert np.allclose(kernel.diag(x), 2.5)

    def test_gram_matrix_positive_semidefinite(self, rng):
        kernel = Matern()
        x = rng.normal(size=(15, 3))
        eigenvalues = np.linalg.eigvalsh(kernel(x, x))
        assert eigenvalues.min() > -1e-9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"length_scale": 0.0},
            {"length_scale": -1.0},
            {"variance": 0.0},
            {"nu": 2.0},
            {"nu": 3.5},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            Matern(**kwargs)


class TestRBF:
    def test_formula(self, rng):
        kernel = RBF(length_scale=1.5, variance=2.0)
        x = rng.normal(size=(3, 2))
        z = rng.normal(size=(4, 2))
        r = pairwise_distances(x, z) / 1.5
        assert np.allclose(kernel(x, z), 2.0 * np.exp(-0.5 * r**2))

    def test_rbf_upper_bounds_matern(self, rng):
        """RBF is the ν→∞ Matérn limit; at moderate r it sits above ν=2.5."""
        x, z = np.zeros((1, 1)), np.array([[0.8]])
        assert RBF()(x, z)[0, 0] > Matern(nu=2.5)(x, z)[0, 0]

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            RBF(length_scale=-0.1)


class TestWhiteNoise:
    def test_identity_on_same_rows(self, rng):
        x = rng.normal(size=(5, 2))
        k = WhiteNoise(noise=0.3)(x, x)
        assert np.allclose(k, 0.3 * np.eye(5))

    def test_zero_cross_covariance(self, rng):
        x = rng.normal(size=(5, 2))
        z = rng.normal(size=(4, 2))
        assert np.allclose(WhiteNoise(noise=0.3)(x, z), 0.0)

    def test_negative_noise_raises(self):
        with pytest.raises(ConfigurationError):
            WhiteNoise(noise=-1e-9)


class TestSum:
    def test_sum_adds_pointwise(self, rng):
        x = rng.normal(size=(4, 2))
        combined = Matern() + WhiteNoise(noise=0.1)
        assert isinstance(combined, Sum)
        assert np.allclose(
            combined(x, x), Matern()(x, x) + 0.1 * np.eye(4)
        )
        assert np.allclose(combined.diag(x), Matern().diag(x) + 0.1)


class TestMakeKernel:
    @pytest.mark.parametrize(
        "name,expected_type,expected_nu",
        [
            ("matern12", Matern, 0.5),
            ("matern32", Matern, 1.5),
            ("matern52", Matern, 2.5),
            ("MATERN52", Matern, 2.5),
        ],
    )
    def test_matern_names(self, name, expected_type, expected_nu):
        kernel = make_kernel(name)
        assert isinstance(kernel, expected_type)
        assert kernel.nu == expected_nu

    def test_rbf_name(self):
        assert isinstance(make_kernel("rbf"), RBF)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            make_kernel("laplacian")

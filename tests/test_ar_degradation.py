"""Unit tests for repro.ar.degradation and repro.ar.quality (Eq. 1 / Eq. 2)."""

import numpy as np
import pytest

from repro.ar.degradation import (
    DegradationModel,
    DegradationParams,
    fit_degradation_params,
    synthesize_training_samples,
)
from repro.ar.mesh import make_procedural
from repro.ar.quality import average_quality, average_quality_from_map, object_quality
from repro.errors import ConfigurationError


def _typical_params():
    return DegradationParams(a=1.25, b=-2.90, c=1.65, d=1.0)


class TestDegradationParams:
    def test_negative_error_at_full_quality_rejected(self):
        with pytest.raises(ConfigurationError, match="negative error"):
            DegradationParams(a=0.5, b=-2.0, c=1.0, d=1.0)  # a+b+c = -0.5

    def test_negative_distance_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradationParams(a=0.5, b=-1.0, c=0.5, d=-0.1)

    def test_as_tuple(self):
        params = _typical_params()
        assert params.as_tuple() == (1.25, -2.90, 1.65, 1.0)


class TestDegradationModel:
    def test_zero_error_at_full_quality(self):
        model = DegradationModel(_typical_params())
        assert model.error(1.0, 1.5) == pytest.approx(0.0, abs=1e-9)
        assert model.quality(1.0, 1.5) == pytest.approx(1.0)

    def test_error_decreases_with_ratio(self):
        model = DegradationModel(_typical_params())
        errors = [model.error(r, 1.0) for r in (0.2, 0.4, 0.6, 0.8, 1.0)]
        assert all(b <= a for a, b in zip(errors, errors[1:]))

    def test_error_decreases_with_distance(self):
        """Eq. 1: far objects show less perceptible degradation."""
        model = DegradationModel(_typical_params())
        near = model.error(0.5, 0.5)
        far = model.error(0.5, 3.0)
        assert far < near

    def test_error_clamped_to_unit_interval(self):
        model = DegradationModel(DegradationParams(a=2.0, b=-6.0, c=4.0, d=1.0))
        assert model.error(0.1, 0.4) == 1.0  # would exceed 1 unclamped
        assert 0.0 <= model.error(0.9, 10.0) <= 1.0

    def test_batch_matches_scalar(self, rng):
        model = DegradationModel(_typical_params())
        ratios = rng.uniform(0.1, 1.0, 20)
        distances = rng.uniform(0.5, 3.0, 20)
        batch = model.error_batch(ratios, distances)
        scalar = [model.error(r, d) for r, d in zip(ratios, distances)]
        assert np.allclose(batch, scalar)

    def test_invalid_inputs_rejected(self):
        model = DegradationModel(_typical_params())
        with pytest.raises(ConfigurationError):
            model.error(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            model.error(1.2, 1.0)
        with pytest.raises(ConfigurationError):
            model.error(0.5, 0.0)

    def test_sensitivity_sign(self):
        """At a current ratio above the reference, sensitivity is negative
        (the object is *better* than the reference); below, positive."""
        model = DegradationModel(_typical_params())
        assert model.sensitivity(0.9, 1.0, reference_ratio=0.5) < 0
        assert model.sensitivity(0.2, 1.0, reference_ratio=0.5) > 0


class TestOfflineFitting:
    def test_fit_recovers_known_parameters(self, rng):
        """Generate samples from a known Eq. 1 and refit."""
        true = DegradationParams(a=0.9, b=-2.1, c=1.2, d=1.0)
        model = DegradationModel(true)
        samples = []
        for r in np.linspace(0.1, 1.0, 12):
            for dist in (0.6, 1.0, 1.8, 3.0):
                numerator = true.a * r**2 + true.b * r + true.c
                samples.append((float(r), float(dist), numerator / dist**true.d))
        fitted = fit_degradation_params(samples)
        assert fitted.a == pytest.approx(true.a, abs=0.1)
        assert fitted.b == pytest.approx(true.b, abs=0.15)
        assert fitted.d == pytest.approx(true.d, abs=0.15)

    def test_fit_enforces_anchor(self):
        samples = [(r, d, (1 - r) * 0.8 / d) for r in (0.2, 0.5, 0.8, 1.0) for d in (1.0, 2.0)]
        fitted = fit_degradation_params(samples)
        assert fitted.a + fitted.b + fitted.c == pytest.approx(0.0, abs=1e-9)

    def test_fit_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_degradation_params([(0.5, 1.0, 0.2)])

    def test_fit_out_of_range_samples_rejected(self):
        bad = [(1.5, 1.0, 0.1)] * 5
        with pytest.raises(ConfigurationError):
            fit_degradation_params(bad)

    def test_end_to_end_pipeline_on_real_mesh(self):
        """Mesh → synthetic GMSD sweep → fit: errors must decrease in R."""
        mesh = make_procedural("plane", 1_500)
        samples = synthesize_training_samples(
            mesh, ratios=(0.15, 0.4, 0.7, 1.0), distances=(0.8, 1.5), seed=3
        )
        fitted = fit_degradation_params(samples)
        model = DegradationModel(fitted)
        assert model.error(0.15, 1.0) > model.error(0.7, 1.0)

    def test_synthesize_noise_validation(self):
        mesh = make_procedural("andy", 500)
        with pytest.raises(ConfigurationError):
            synthesize_training_samples(mesh, noise_sigma=-0.1)


class TestAverageQuality:
    def test_eq2_is_mean_of_complements(self):
        models = [DegradationModel(_typical_params()) for _ in range(3)]
        ratios = [1.0, 0.5, 0.3]
        distances = [1.0, 1.0, 2.0]
        expected = np.mean(
            [1 - m.error(r, d) for m, r, d in zip(models, ratios, distances)]
        )
        assert average_quality(models, ratios, distances) == pytest.approx(expected)

    def test_empty_scene_is_perfect(self):
        assert average_quality([], [], []) == 1.0

    def test_length_mismatch_rejected(self):
        model = DegradationModel(_typical_params())
        with pytest.raises(ConfigurationError):
            average_quality([model], [0.5, 0.6], [1.0])

    def test_map_variant_matches_positional(self):
        model = DegradationModel(_typical_params())
        by_map = average_quality_from_map(
            {"a": model, "b": model}, {"a": 0.5, "b": 0.9}, {"a": 1.0, "b": 2.0}
        )
        positional = average_quality([model, model], [0.5, 0.9], [1.0, 2.0])
        assert by_map == pytest.approx(positional)

    def test_map_variant_key_mismatch_rejected(self):
        model = DegradationModel(_typical_params())
        with pytest.raises(ConfigurationError):
            average_quality_from_map({"a": model}, {"b": 0.5}, {"a": 1.0})

    def test_object_quality_complement(self):
        model = DegradationModel(_typical_params())
        assert object_quality(model, 0.5, 1.0) == pytest.approx(
            1.0 - model.error(0.5, 1.0)
        )

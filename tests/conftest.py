"""Shared fixtures.

Systems are expensive enough (scene placement + device registration) that
scenario fixtures are module-scoped where tests only read; tests that
mutate build their own via the factory fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import HBOConfig
from repro.core.system import MARSystem
from repro.device.executor import DeviceSimulator
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile
from repro.device.soc import galaxy_s22_soc, pixel7_soc
from repro.sim.scenarios import build_system


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def pixel_device():
    """A noiseless Pixel 7 simulator (deterministic latencies)."""
    return DeviceSimulator(pixel7_soc(), noise_sigma=0.0, seed=1)


@pytest.fixture
def s22_device():
    return DeviceSimulator(galaxy_s22_soc(), noise_sigma=0.0, seed=1)


@pytest.fixture
def deeplab_profile():
    return get_profile(GALAXY_S22, "deeplabv3")


@pytest.fixture
def mobilenet_profile():
    return get_profile(PIXEL7, "mobilenet-v1")


@pytest.fixture
def sc1cf1_system() -> MARSystem:
    """A fresh SC1-CF1 system (function-scoped: tests mutate it)."""
    return build_system("SC1", "CF1", seed=7, noise_sigma=0.0)


@pytest.fixture
def sc2cf2_system() -> MARSystem:
    return build_system("SC2", "CF2", seed=7, noise_sigma=0.0)


@pytest.fixture
def fast_config() -> HBOConfig:
    """A small HBO budget for integration tests (3 random + 4 guided)."""
    return HBOConfig(n_initial=3, n_iterations=4)

"""Unit + integration tests for the §VI lookup-table extension."""

import pytest

from repro.core.controller import HBOConfig, HBOController
from repro.core.lookup import (
    EnvironmentSignature,
    LookupAwareController,
    LookupTable,
    StoredConfiguration,
)
from repro.device.resources import Resource
from repro.errors import ConfigurationError
from repro.sim.scenarios import build_system


def _signature(tri=1_000_000, n=5, dist=1.5, tasks=("a", "b")):
    return EnvironmentSignature(
        total_max_triangles=tri,
        n_objects=n,
        mean_distance_m=dist,
        taskset_key=tuple(tasks),
    )


def _entry(signature, ratio=0.7, reward=0.1):
    return StoredConfiguration(
        signature=signature,
        allocation={"a": Resource.CPU, "b": Resource.NNAPI},
        triangle_ratio=ratio,
        reward=reward,
    )


class TestEnvironmentSignature:
    def test_of_live_system(self, sc1cf1_system):
        signature = EnvironmentSignature.of(sc1cf1_system)
        assert signature.total_max_triangles == pytest.approx(1_186_743)
        assert signature.n_objects == 9
        assert signature.mean_distance_m > 0
        assert len(signature.taskset_key) == 6

    def test_distance_zero_for_identical(self):
        assert _signature().distance_to(_signature()) == pytest.approx(0.0)

    def test_distance_infinite_across_tasksets(self):
        a = _signature(tasks=("a", "b"))
        b = _signature(tasks=("a", "c"))
        assert a.distance_to(b) == float("inf")

    def test_distance_relative_in_triangles(self):
        """A 10% triangle change scores the same at any absolute scale."""
        small = _signature(tri=100_000).distance_to(_signature(tri=110_000))
        large = _signature(tri=1_000_000).distance_to(_signature(tri=1_100_000))
        assert small == pytest.approx(large, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _signature(tri=-1)
        with pytest.raises(ConfigurationError):
            _signature(n=-1)


class TestLookupTable:
    def test_miss_then_hit(self):
        table = LookupTable(similarity_threshold=0.15)
        signature = _signature()
        assert table.lookup(signature) is None
        table.store(_entry(signature))
        hit = table.lookup(signature)
        assert hit is not None
        assert hit.triangle_ratio == 0.7
        assert table.hits == 1 and table.misses == 1
        assert table.hit_rate == pytest.approx(0.5)

    def test_near_signature_hits(self):
        table = LookupTable(similarity_threshold=0.15)
        table.store(_entry(_signature(tri=1_000_000)))
        assert table.lookup(_signature(tri=1_050_000)) is not None  # 5% off

    def test_far_signature_misses(self):
        table = LookupTable(similarity_threshold=0.15)
        table.store(_entry(_signature(n=5)))
        assert table.lookup(_signature(n=9)) is None  # +4 objects

    def test_near_duplicate_store_replaces(self):
        table = LookupTable()
        table.store(_entry(_signature(), ratio=0.7))
        table.store(_entry(_signature(), ratio=0.4))
        assert len(table) == 1
        assert table.lookup(_signature()).triangle_ratio == 0.4

    def test_lru_eviction_keeps_hot_entries(self):
        table = LookupTable(max_entries=2, similarity_threshold=0.05)
        hot = _signature(n=1)
        cold = _signature(n=10)
        table.store(_entry(hot))
        table.store(_entry(cold))
        table.lookup(hot)  # refresh
        table.store(_entry(_signature(n=20)))  # evicts the cold entry
        assert table.lookup(hot) is not None
        assert table.lookup(cold) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LookupTable(max_entries=0)
        with pytest.raises(ConfigurationError):
            LookupTable(similarity_threshold=0.0)


class TestLookupAwareController:
    def test_second_visit_to_same_environment_hits(self, fast_config):
        system = build_system("SC2", "CF2", seed=5, noise_sigma=0.02)
        controller = LookupAwareController(
            HBOController(system, fast_config, seed=5)
        )
        first = controller.activate()
        assert not first.from_table
        assert first.run_result is not None

        second = controller.activate()  # unchanged environment
        assert second.from_table
        assert second.entry is not None
        # The stored configuration is live on the system.
        assert system.device.allocation == dict(second.entry.allocation)

    def test_changed_environment_misses(self, fast_config):
        system = build_system("SC2", "CF2", seed=5, noise_sigma=0.02)
        controller = LookupAwareController(
            HBOController(system, fast_config, seed=5)
        )
        controller.activate()
        # A heavy new object changes T^max by far more than the threshold.
        from repro.ar.objects import object_by_name

        system.scene.add("newcomer", object_by_name("bike"), position=(0, 0, 1.0))
        system.refresh_load()
        decision = controller.activate()
        assert not decision.from_table
        assert len(controller.table) == 2

    def test_hit_is_much_cheaper_than_activation(self, fast_config):
        """A table hit consumes one control period; a full activation
        consumes the whole exploration budget."""
        system = build_system("SC2", "CF2", seed=5, noise_sigma=0.02)
        controller = LookupAwareController(
            HBOController(system, fast_config, seed=5)
        )
        miss = controller.activate()
        evaluations_on_miss = len(miss.run_result.iterations)
        hit = controller.activate()
        assert hit.run_result is None
        assert evaluations_on_miss >= fast_config.total_evaluations

    def test_hit_quality_close_to_fresh_activation(self, fast_config):
        """The remembered configuration's reward should be close to what a
        fresh activation achieves in the same environment."""
        system = build_system("SC2", "CF2", seed=5, noise_sigma=0.02)
        controller = LookupAwareController(
            HBOController(system, fast_config, seed=5)
        )
        miss = controller.activate()
        hit = controller.activate()
        w = fast_config.w
        assert hit.measurement.reward(w) == pytest.approx(
            miss.measurement.reward(w), abs=0.3
        )

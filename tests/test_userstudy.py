"""Unit tests for repro.userstudy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.userstudy import PerceptionModel, RaterPanel
from repro.userstudy.panel import StudyResult


class TestPerceptionModel:
    def test_monotone_in_quality(self):
        model = PerceptionModel()
        scores = [model.mean_opinion_score(q) for q in np.linspace(0, 1, 11)]
        assert all(b >= a for a, b in zip(scores, scores[1:]))

    def test_bounded_1_to_5(self):
        model = PerceptionModel()
        assert model.mean_opinion_score(0.0) >= 1.0
        assert model.mean_opinion_score(1.0) <= 5.0

    def test_paper_anchor_points(self):
        """HBO at Q≈0.87 rates ≈4.9; heavy degradation (Q≈0.5) rates ≈3."""
        model = PerceptionModel()
        assert model.mean_opinion_score(0.87) > 4.5
        assert model.mean_opinion_score(0.5) == pytest.approx(3.0, abs=0.3)

    def test_batch_matches_scalar(self, rng):
        model = PerceptionModel()
        qualities = rng.uniform(0, 1, 15)
        batch = model.mean_opinion_score_batch(qualities)
        assert np.allclose(
            batch, [model.mean_opinion_score(q) for q in qualities]
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerceptionModel(steepness=0)
        with pytest.raises(ConfigurationError):
            PerceptionModel(midpoint=1.0)
        with pytest.raises(ConfigurationError):
            PerceptionModel().mean_opinion_score(1.5)


class TestRaterPanel:
    def test_ratings_are_integers_in_range(self):
        panel = RaterPanel(n_raters=7, seed=1)
        result = panel.rate("cond", 0.7)
        assert result.n_raters == 7
        assert all(isinstance(r, int) and 1 <= r <= 5 for r in result.ratings)

    def test_high_quality_beats_low_quality(self):
        panel = RaterPanel(n_raters=7, seed=2)
        high = panel.rate("high", 0.95).mean_score
        low = panel.rate("low", 0.3).mean_score
        assert high > low

    def test_same_panel_is_consistent_across_conditions(self):
        """Rater biases are fixed: two panels with the same seed produce
        identical ratings for the same sequence of conditions."""
        a = RaterPanel(seed=3).rate("x", 0.6).ratings
        b = RaterPanel(seed=3).rate("x", 0.6).ratings
        assert a == b

    def test_noise_free_panel_matches_perception_curve(self):
        panel = RaterPanel(n_raters=200, bias_sigma=0.0, noise_sigma=0.0, seed=0)
        expected = panel.perception.mean_opinion_score(0.8)
        assert panel.rate("c", 0.8).mean_score == pytest.approx(expected, abs=0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RaterPanel(n_raters=0)
        with pytest.raises(ConfigurationError):
            RaterPanel(bias_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            StudyResult("empty", []).mean_score

"""Unit tests for repro.baselines (SMQ, SML, BNT, AllN)."""

import pytest

from repro.baselines import (
    AllNNAPIBaseline,
    BayesianNoTriangleBaseline,
    StaticMatchLatencyBaseline,
    StaticMatchQualityBaseline,
)
from repro.core.controller import HBOConfig
from repro.device.profiles import PIXEL7
from repro.device.resources import Resource
from repro.errors import ConfigurationError
from repro.models.tasks import build_taskset
from repro.sim.scenarios import build_system


class TestSMQ:
    def test_static_affinity_allocation(self, sc1cf1_system):
        outcome = StaticMatchQualityBaseline(0.6).run(sc1cf1_system)
        assert outcome.name == "SMQ"
        affinity = sc1cf1_system.taskset.affinity_allocation()
        assert dict(outcome.allocation) == affinity
        assert outcome.triangle_ratio == 0.6

    def test_quality_matches_td_at_same_ratio(self, sc1cf1_system):
        """SMQ uses HBO's TD distribution, so its quality equals the
        scene quality at the matched ratio."""
        outcome = StaticMatchQualityBaseline(0.6).run(sc1cf1_system)
        assert outcome.quality == pytest.approx(
            sc1cf1_system.scene.average_quality()
        )

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticMatchQualityBaseline(0.0)
        with pytest.raises(ConfigurationError):
            StaticMatchQualityBaseline(1.5)


class TestSML:
    def test_reaches_easy_target(self, sc1cf1_system):
        """With a generous target, SML should stop early at high ratio."""
        generous = 100.0
        outcome = StaticMatchLatencyBaseline(generous).run(sc1cf1_system)
        assert outcome.triangle_ratio == pytest.approx(1.0)

    def test_reduces_triangles_toward_tight_target(self, sc1cf1_system):
        outcome = StaticMatchLatencyBaseline(target_epsilon=0.7).run(sc1cf1_system)
        assert outcome.triangle_ratio < 1.0

    def test_unreachable_target_stops_at_knee(self, sc1cf1_system):
        """An impossible target must not grind the scene to the minimum:
        SML settles where further decimation stops paying."""
        outcome = StaticMatchLatencyBaseline(target_epsilon=0.0).run(sc1cf1_system)
        assert outcome.triangle_ratio > 0.05  # not the floor
        assert outcome.quality > 0.1

    def test_static_allocation_kept(self, sc1cf1_system):
        outcome = StaticMatchLatencyBaseline(0.5).run(sc1cf1_system)
        assert dict(outcome.allocation) == sc1cf1_system.taskset.affinity_allocation()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticMatchLatencyBaseline(0.5, step=0.0)
        with pytest.raises(ConfigurationError):
            StaticMatchLatencyBaseline(0.5, min_ratio=0.0)
        with pytest.raises(ConfigurationError):
            StaticMatchLatencyBaseline(0.5, knee_tolerance=-0.1)


class TestBNT:
    def test_keeps_full_quality(self, sc1cf1_system, fast_config):
        outcome = BayesianNoTriangleBaseline(config=fast_config, seed=0).run(
            sc1cf1_system
        )
        assert outcome.triangle_ratio == 1.0
        assert outcome.quality == pytest.approx(1.0, abs=1e-6)

    def test_reallocates_some_task_off_nnapi_under_load(self, sc1cf1_system):
        """Under SC1's rendering pressure BNT should not park everything
        on a single delegate — some relocation spread is expected."""
        config = HBOConfig(n_initial=5, n_iterations=10)
        outcome = BayesianNoTriangleBaseline(config=config, seed=0).run(
            sc1cf1_system
        )
        resources = set(outcome.allocation.values())
        assert len(resources) >= 2

    def test_uses_latency_only_cost(self, fast_config):
        baseline = BayesianNoTriangleBaseline(config=fast_config)
        assert baseline.config.latency_only


class TestAllN:
    def test_everything_on_nnapi(self, sc1cf1_system):
        outcome = AllNNAPIBaseline().run(sc1cf1_system)
        assert all(r is Resource.NNAPI for r in outcome.allocation.values())
        assert outcome.triangle_ratio == 1.0
        assert outcome.quality == pytest.approx(1.0, abs=1e-6)

    def test_incompatible_models_fall_back(self):
        """deeplabv3 has no NNAPI path on the Pixel 7: AllN must fall back
        to its affinity instead of crashing."""
        system = build_system("SC2", "CF2", seed=1, noise_sigma=0.0)
        # Swap in a taskset containing the incompatible model.
        taskset = build_taskset(
            "mixed", [("deeplabv3", 1), ("mnist", 1)], device=PIXEL7
        )
        system2 = build_system("SC2", "CF2", seed=1, noise_sigma=0.0)
        from repro.core.system import MARSystem
        from repro.device.executor import DeviceSimulator
        from repro.device.soc import pixel7_soc

        device = DeviceSimulator(pixel7_soc(), noise_sigma=0.0, seed=0)
        system = MARSystem(taskset, device, system2.scene)
        outcome = AllNNAPIBaseline().run(system)
        assert outcome.allocation["mnist"] is Resource.NNAPI
        assert outcome.allocation["deeplabv3"] is not Resource.NNAPI


class TestOrdering:
    def test_dynamic_beats_all_nnapi_on_latency(self, fast_config):
        """The headline ordering on SC1-CF1: any reasonable joint policy
        beats AllN's latency by a wide margin."""
        hbo_system = build_system("SC1", "CF1", seed=7, noise_sigma=0.0)
        from repro.core.controller import HBOController

        controller = HBOController(hbo_system, fast_config, seed=4)
        hbo_eps = controller.activate().best.measurement.epsilon

        alln_system = build_system("SC1", "CF1", seed=7, noise_sigma=0.0)
        alln_eps = AllNNAPIBaseline().run(alln_system).epsilon
        assert alln_eps > 2.0 * hbo_eps

"""Unit tests for repro.ar.mesh and repro.ar.decimation."""

import numpy as np
import pytest

from repro.ar.decimation import cluster_vertices, decimate, decimation_error_proxy
from repro.ar.mesh import (
    TriangleMesh,
    make_box,
    make_cylinder,
    make_procedural,
    make_sphere,
)
from repro.errors import MeshError


class TestTriangleMesh:
    def test_basic_properties(self):
        mesh = TriangleMesh(
            vertices=np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float),
            faces=np.array([[0, 1, 2]]),
        )
        assert mesh.n_vertices == 3
        assert mesh.n_triangles == 1
        assert mesh.surface_area() == pytest.approx(0.5)

    def test_face_index_out_of_range_rejected(self):
        with pytest.raises(MeshError):
            TriangleMesh(
                vertices=np.zeros((3, 3)), faces=np.array([[0, 1, 5]])
            )

    def test_bad_shapes_rejected(self):
        with pytest.raises(MeshError):
            TriangleMesh(vertices=np.zeros((3, 2)), faces=np.zeros((1, 3), int))
        with pytest.raises(MeshError):
            TriangleMesh(vertices=np.zeros((3, 3)), faces=np.zeros((1, 4), int))

    def test_face_normals_unit_length(self):
        mesh = make_sphere(200)
        norms = np.linalg.norm(mesh.face_normals(), axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_remove_degenerate_faces(self):
        vertices = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        faces = np.array([[0, 1, 2], [0, 0, 1], [1, 1, 1]])
        cleaned = TriangleMesh(vertices, faces).remove_degenerate_faces()
        assert cleaned.n_triangles == 1

    def test_bounding_box(self):
        mesh = make_box(50, extents=(2.0, 4.0, 6.0))
        lo, hi = mesh.bounding_box()
        assert np.allclose(hi - lo, [2.0, 4.0, 6.0])


class TestGenerators:
    @pytest.mark.parametrize("target", [100, 1_000, 10_000])
    def test_sphere_hits_target_roughly(self, target):
        mesh = make_sphere(target)
        assert abs(mesh.n_triangles - target) / target < 0.35

    def test_sphere_radius(self):
        mesh = make_sphere(500, radius=2.0)
        assert np.allclose(np.linalg.norm(mesh.vertices, axis=1), 2.0, atol=1e-9)

    @pytest.mark.parametrize("target", [48, 1_200])
    def test_box_triangle_count(self, target):
        mesh = make_box(target)
        assert abs(mesh.n_triangles - target) / target < 0.5

    def test_cylinder_closed_surface_area(self):
        mesh = make_cylinder(800, radius=0.5, height=2.0)
        # Lateral surface of a cylinder: 2πrh.
        assert mesh.surface_area() == pytest.approx(2 * np.pi * 0.5 * 2.0, rel=0.05)

    def test_procedural_deterministic_per_name(self):
        a1 = make_procedural("bike", 1000)
        a2 = make_procedural("bike", 1000)
        assert np.allclose(a1.vertices, a2.vertices)

    def test_procedural_differs_across_names(self):
        bike = make_procedural("bike", 1000)
        apricot = make_procedural("apricot", 1000)
        assert bike.vertices.shape == apricot.vertices.shape
        assert not np.allclose(bike.vertices, apricot.vertices)

    def test_too_small_targets_rejected(self):
        with pytest.raises(MeshError):
            make_sphere(4)
        with pytest.raises(MeshError):
            make_box(6)
        with pytest.raises(MeshError):
            make_procedural("x", 2)


class TestDecimation:
    @pytest.mark.parametrize("ratio", [0.8, 0.5, 0.25, 0.1])
    def test_hits_requested_ratio(self, ratio):
        mesh = make_procedural("plane", 4_000)
        decimated = decimate(mesh, ratio)
        achieved = decimated.n_triangles / mesh.n_triangles
        assert achieved == pytest.approx(ratio, rel=0.25)

    def test_ratio_one_returns_original(self):
        mesh = make_sphere(500)
        assert decimate(mesh, 1.0) is mesh

    def test_decimated_mesh_is_valid(self):
        mesh = make_procedural("hammer", 3_000)
        decimated = decimate(mesh, 0.3)
        assert decimated.n_triangles > 0
        assert decimated.faces.max() < decimated.n_vertices
        # No degenerate faces survive.
        f = decimated.faces
        assert np.all(f[:, 0] != f[:, 1])
        assert np.all(f[:, 1] != f[:, 2])

    def test_preserves_rough_shape(self):
        mesh = make_sphere(4_000, radius=1.0)
        decimated = decimate(mesh, 0.3)
        radii = np.linalg.norm(decimated.vertices, axis=1)
        assert radii.mean() == pytest.approx(1.0, abs=0.1)

    def test_invalid_ratio_rejected(self):
        mesh = make_sphere(200)
        for ratio in (0.0, -0.5, 1.5):
            with pytest.raises(MeshError):
                decimate(mesh, ratio)

    def test_cluster_vertices_monotone_in_cell_size(self):
        mesh = make_procedural("ATV", 3_000)
        fine = cluster_vertices(mesh, 0.01)
        coarse = cluster_vertices(mesh, 0.3)
        assert coarse.n_triangles < fine.n_triangles

    def test_cluster_invalid_cell_rejected(self):
        with pytest.raises(MeshError):
            cluster_vertices(make_sphere(100), 0.0)


class TestErrorProxy:
    def test_zero_for_identical_mesh(self):
        mesh = make_sphere(1_000)
        assert decimation_error_proxy(mesh, mesh) == pytest.approx(0.0, abs=1e-6)

    def test_grows_with_decimation_depth(self):
        mesh = make_procedural("bike", 3_000)
        light = decimation_error_proxy(mesh, decimate(mesh, 0.7))
        heavy = decimation_error_proxy(mesh, decimate(mesh, 0.1))
        assert heavy > light

    def test_bounded_unit_interval(self):
        mesh = make_procedural("cabin", 2_000)
        for ratio in (0.9, 0.5, 0.1):
            error = decimation_error_proxy(mesh, decimate(mesh, ratio))
            assert 0.0 <= error <= 1.0

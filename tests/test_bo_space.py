"""Unit tests for repro.bo.space (Constraints 8-10 of the paper)."""

import numpy as np
import pytest

from repro.bo.space import BoxSpace, HBOSpace, SimplexSpace
from repro.errors import SearchSpaceError


class TestSimplexSpace:
    def test_samples_live_on_simplex(self, rng):
        space = SimplexSpace(4)
        samples = space.sample(rng, size=200)
        assert samples.shape == (200, 4)
        assert np.allclose(samples.sum(axis=1), 1.0)
        assert np.all(samples >= 0)

    def test_contains(self):
        space = SimplexSpace(3)
        assert space.contains(np.array([0.2, 0.3, 0.5]))
        assert not space.contains(np.array([0.5, 0.5, 0.5]))  # sums to 1.5
        assert not space.contains(np.array([1.2, -0.2, 0.0]))
        assert not space.contains(np.array([0.5, 0.5]))  # wrong dim

    def test_projection_is_identity_on_feasible_points(self):
        space = SimplexSpace(3)
        c = np.array([0.1, 0.6, 0.3])
        assert np.allclose(space.project(c), c)

    def test_projection_produces_feasible_point(self, rng):
        space = SimplexSpace(5)
        for _ in range(50):
            raw = rng.normal(scale=3.0, size=5)
            projected = space.project(raw)
            assert space.contains(projected)

    def test_projection_is_euclidean_nearest(self, rng):
        """The projection must beat random feasible points in distance."""
        space = SimplexSpace(3)
        raw = np.array([0.9, 0.9, -0.5])
        projected = space.project(raw)
        others = space.sample(rng, 500)
        proj_dist = np.linalg.norm(raw - projected)
        other_dists = np.linalg.norm(others - raw, axis=1)
        assert proj_dist <= other_dists.min() + 1e-9

    def test_project_nonfinite_raises(self):
        with pytest.raises(SearchSpaceError):
            SimplexSpace(2).project(np.array([np.inf, 0.0]))

    def test_perturb_stays_on_simplex(self, rng):
        space = SimplexSpace(4)
        c = np.array([0.25, 0.25, 0.25, 0.25])
        for scale in (0.01, 0.5, 5.0):
            assert space.contains(space.perturb(c, scale, rng))

    def test_single_coordinate_simplex(self, rng):
        space = SimplexSpace(1)
        assert np.allclose(space.sample(rng, 3), 1.0)
        assert np.allclose(space.project(np.array([42.0])), 1.0)

    def test_invalid_size_raises(self):
        with pytest.raises(SearchSpaceError):
            SimplexSpace(0)


class TestBoxSpace:
    def test_samples_in_bounds(self, rng):
        space = BoxSpace([(0.1, 1.0), (-2.0, 2.0)])
        samples = space.sample(rng, 100)
        assert np.all(samples[:, 0] >= 0.1) and np.all(samples[:, 0] <= 1.0)
        assert np.all(samples[:, 1] >= -2.0) and np.all(samples[:, 1] <= 2.0)

    def test_project_clips(self):
        space = BoxSpace([(0.0, 1.0)])
        assert space.project(np.array([1.7]))[0] == pytest.approx(1.0)
        assert space.project(np.array([-0.4]))[0] == pytest.approx(0.0)

    def test_inverted_bounds_raise(self):
        with pytest.raises(SearchSpaceError):
            BoxSpace([(1.0, 0.0)])

    def test_perturb_stays_inside(self, rng):
        space = BoxSpace([(0.2, 0.8)])
        for _ in range(20):
            assert space.contains(space.perturb(np.array([0.5]), 2.0, rng))


class TestHBOSpace:
    def test_dim_and_split_join_roundtrip(self):
        space = HBOSpace(3, r_min=0.1)
        assert space.dim == 4
        z = np.array([0.2, 0.3, 0.5, 0.7])
        point = space.split(z)
        assert np.allclose(point.proportions, [0.2, 0.3, 0.5])
        assert point.triangle_ratio == pytest.approx(0.7)
        assert np.allclose(space.join(point.proportions, point.triangle_ratio), z)
        assert np.allclose(point.as_vector(), z)

    def test_samples_satisfy_constraints_8_to_10(self, rng):
        space = HBOSpace(3, r_min=0.25)
        samples = space.sample(rng, 300)
        c, x = samples[:, :3], samples[:, 3]
        assert np.allclose(c.sum(axis=1), 1.0)  # Constraint 9
        assert np.all((c >= 0) & (c <= 1))  # Constraint 8
        assert np.all((x >= 0.25) & (x <= 1.0))  # Constraint 10

    def test_project_fixes_both_parts(self):
        space = HBOSpace(3, r_min=0.1)
        z = space.project(np.array([2.0, -1.0, 0.5, 7.0]))
        assert space.contains(z)
        assert z[3] == pytest.approx(1.0)

    def test_contains_rejects_bad_ratio(self):
        space = HBOSpace(2, r_min=0.3)
        assert not space.contains(np.array([0.5, 0.5, 0.1]))
        assert space.contains(np.array([0.5, 0.5, 0.3]))

    def test_perturb_feasible(self, rng):
        space = HBOSpace(3, r_min=0.1)
        z = space.sample(rng)[0]
        for scale in (0.05, 1.0):
            assert space.contains(space.perturb(z, scale, rng))

    def test_invalid_r_min_raises(self):
        with pytest.raises(SearchSpaceError):
            HBOSpace(3, r_min=1.0)
        with pytest.raises(SearchSpaceError):
            HBOSpace(3, r_min=-0.1)

    def test_split_wrong_length_raises(self):
        with pytest.raises(SearchSpaceError):
            HBOSpace(3).split(np.zeros(3))

    def test_join_wrong_length_raises(self):
        with pytest.raises(SearchSpaceError):
            HBOSpace(3).join(np.array([0.5, 0.5]), 0.5)

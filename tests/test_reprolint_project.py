"""Self-tests for reprolint v2's project-wide machinery.

Where ``test_reprolint.py`` pins the per-file rules RL001–RL005, this
suite covers the multi-pass analyzer introduced with reprolint 2.0:

- RL006 layering conformance over fixture mini-packages (upward edges,
  TYPE_CHECKING-gated edges, the documented allowlist);
- RL007 RNG-stream discipline and RL008 parity single-source on scoped
  fixture sources;
- RL009 stale/unknown suppression auditing, including the rules for when
  a directive is auditable at all;
- the content-hash incremental cache (warm runs reanalyze only changed
  files; graph changes propagate through cached import records);
- baseline load/filter/update semantics and the checked-in empty
  ``reprolint_baseline.json``;
- SARIF 2.1.0 emission (schema fields, rule catalog coverage, relative
  POSIX artifact URIs);
- CLI exit codes and the summary line, including the engine-error → 2
  contract;
- suppression-parsing edge cases (``disable=all`` combos, file+line
  interaction, malformed ids, continuation-line anchoring).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from reprolint import ALL_RULES, analyze_paths, lint_source, rules_by_id  # noqa: E402
from reprolint.baseline import (  # noqa: E402
    filter_baselined,
    load_baseline,
    write_baseline,
)
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.engine import Violation, parse_suppressions  # noqa: E402
from reprolint.project import collect_imports, module_name  # noqa: E402
from reprolint.rules.layering import ALLOWLIST, band_of  # noqa: E402
from reprolint.sarif import to_sarif  # noqa: E402

import ast  # noqa: E402


def dedent(source: str) -> str:
    return textwrap.dedent(source)


def write_package(root: Path, files: "dict[str, str]") -> Path:
    """Materialize a mini ``repro`` package tree under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source), encoding="utf-8")
        # Every ancestor dir up to root needs an __init__.py so
        # module_name() resolves the dotted path.
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


def run_all(root: Path, cache_dir: "Path | None" = None):
    return analyze_paths([root], ALL_RULES, cache_dir=cache_dir)


def by_rule(violations, rule_id: str):
    return [v for v in violations if v.rule_id == rule_id]


# --------------------------------------------------------------- RL006


class TestLayeringRule:
    def test_band_assignment_longest_prefix_wins(self):
        assert band_of("repro.edge.share") < band_of("repro.edge.runtime")
        assert band_of("repro.sim.clock") < band_of("repro.core.controller")
        assert band_of("repro.sim") > band_of("repro.core")
        assert band_of("repro.device.load") < band_of("repro.ar.renderer")
        assert band_of("repro") == band_of("repro.cli")
        assert band_of("notrepro.thing") is None

    def test_upward_import_fires(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/sim/export.py": """\
                    from repro.fleet.scheduler import FleetResult
                    """,
            },
        )
        report = run_all(tmp_path)
        found = by_rule(report.violations, "RL006")
        assert len(found) == 1
        assert "`repro.sim.export`" in found[0].message
        assert "`repro.fleet.scheduler`" in found[0].message
        assert "upward" in found[0].message

    def test_type_checking_gated_upward_import_still_fires(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/device/soc.py": """\
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from repro.core.controller import HBOController
                    """,
            },
        )
        report = run_all(tmp_path)
        found = by_rule(report.violations, "RL006")
        assert len(found) == 1
        assert "[TYPE_CHECKING-gated]" in found[0].message

    def test_downward_and_sideways_imports_clean(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/core/controller.py": """\
                    from repro.errors import ConfigurationError
                    from repro.bo.gp import GaussianProcess
                    from repro.core.cost import cost_from_measurement
                    import repro.device.resources
                    """,
            },
        )
        report = run_all(tmp_path)
        assert by_rule(report.violations, "RL006") == []

    def test_allowlisted_seam_passes(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/core/remote.py": """\
                    from repro.edge.link import NetworkLink
                    """,
            },
        )
        report = run_all(tmp_path)
        assert by_rule(report.violations, "RL006") == []

    def test_relative_import_resolution(self, tmp_path):
        # `from ..fleet import scheduler` inside repro/sim/export.py is
        # the same upward edge as the absolute spelling.
        write_package(
            tmp_path,
            {
                "repro/fleet/scheduler.py": "X = 1\n",
                "repro/sim/export.py": """\
                    from ..fleet import scheduler
                    """,
            },
        )
        report = run_all(tmp_path)
        found = by_rule(report.violations, "RL006")
        assert len(found) == 1
        assert "`repro.fleet.scheduler`" in found[0].message

    def test_suppression_silences_project_rule(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/sim/export.py": """\
                    from repro.fleet.scheduler import FleetResult  # reprolint: disable=RL006
                    """,
            },
        )
        report = run_all(tmp_path)
        assert by_rule(report.violations, "RL006") == []
        assert by_rule(report.violations, "RL009") == []  # directive used
        assert report.suppressed == 1

    def test_allowlist_entries_are_documented(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text()
        for importer, target in ALLOWLIST:
            assert importer in text and target in text, (
                f"allowlist edge {importer} -> {target} must be documented "
                "in docs/architecture.md"
            )


# --------------------------------------------------------------- RL007


RNG_PATH = Path("src/repro/fleet/fixture.py")


def lint_rng(source: str, path: Path = RNG_PATH):
    registry = rules_by_id()
    return lint_source(dedent(source), path, [registry["RL007"]])


class TestRngStreamRule:
    def test_module_level_rng_state_fires(self):
        violations = lint_rng(
            """\
            from repro.rng import make_rng

            rng = make_rng(0)
            """
        )
        assert [v.rule_id for v in violations] == ["RL007"]
        assert "module-level" in violations[0].message

    def test_draw_after_spawn_fires(self):
        violations = lint_rng(
            """\
            from repro.rng import spawn_rngs

            def run(rng, n):
                children = spawn_rngs(rng, n)
                return rng.normal()
            """
        )
        assert [v.rule_id for v in violations] == ["RL007"]
        assert "spawn" in violations[0].message

    def test_rebound_rng_after_spawn_is_clean(self):
        violations = lint_rng(
            """\
            from repro.rng import make_rng, spawn_rngs

            def run(rng, n):
                children = spawn_rngs(rng, n)
                rng = make_rng(7)
                return rng.normal()
            """
        )
        assert violations == []

    def test_threading_outer_rng_into_constructed_siblings_fires(self):
        violations = lint_rng(
            """\
            def build(rng, specs):
                return [Session(spec, rng) for spec in specs]
            """
        )
        assert [v.rule_id for v in violations] == ["RL007"]
        assert "sibling" in violations[0].message or "shared" in violations[0].message

    def test_sequential_draw_helpers_in_loops_are_clean(self):
        violations = lint_rng(
            """\
            def sample_all(space, rng, specs):
                return [space.sample(rng, 3) for _ in specs]
            """
        )
        assert violations == []

    def test_per_item_spawned_rngs_are_clean(self):
        violations = lint_rng(
            """\
            from repro.rng import spawn_rngs

            def build(rng, specs):
                out = []
                for spec, child_rng in zip(specs, spawn_rngs(rng, len(specs))):
                    out.append(Session(spec, child_rng))
                return out
            """
        )
        # spawn_rngs(rng, ...) then constructing with the *child* streams
        # is exactly the sanctioned pattern.
        assert violations == []

    def test_rng_module_itself_exempt(self):
        violations = lint_rng(
            "import numpy\n\nrng = numpy.random.default_rng(0)\n",
            path=Path("src/repro/rng.py"),
        )
        assert violations == []


# --------------------------------------------------------------- RL008


def lint_parity(source: str, path: Path):
    registry = rules_by_id()
    return lint_source(dedent(source), path, [registry["RL008"]])


class TestParitySingleSourceRule:
    def test_registered_def_outside_leaf_fires(self):
        violations = lint_parity(
            """\
            def edge_total_ms(profile, share):
                return profile.tx_ms + profile.compute_ms * 2.0
            """,
            Path("src/repro/core/fixture.py"),
        )
        assert [v.rule_id for v in violations] == ["RL008"]
        assert "edge_total_ms" in violations[0].message

    def test_registered_def_inside_leaf_is_clean(self):
        violations = lint_parity(
            """\
            def edge_total_ms(profile, share):
                return profile.tx_ms + profile.compute_ms * 2.0
            """,
            Path("src/repro/edge/share.py"),
        )
        assert violations == []

    def test_recombining_helper_results_fires(self):
        violations = lint_parity(
            """\
            from repro.edge.share import edge_compute_ms, edge_tx_ms

            def total(profile, share):
                tx = edge_tx_ms(profile, share)
                compute = edge_compute_ms(profile, share)
                return tx + compute
            """,
            Path("src/repro/device/fixture.py"),
        )
        assert [v.rule_id for v in violations] == ["RL008"]

    def test_ratio_of_helper_results_is_clean(self):
        # Duty ratios (division) are composition, not re-derivation.
        violations = lint_parity(
            """\
            from repro.edge.share import edge_total_ms, edge_tx_ms

            def duty(profile, share):
                tx = edge_tx_ms(profile, share)
                cycle = edge_total_ms(profile, share)
                return tx / cycle
            """,
            Path("src/repro/device/fixture.py"),
        )
        assert violations == []

    def test_single_helper_term_is_clean(self):
        violations = lint_parity(
            """\
            from repro.edge.share import edge_tx_ms

            def padded(profile, share, pad_ms):
                tx = edge_tx_ms(profile, share)
                return tx + pad_ms
            """,
            Path("src/repro/device/fixture.py"),
        )
        assert violations == []

    def test_phi_assignment_outside_cost_modules_fires(self):
        violations = lint_parity(
            """\
            def step(measurement, w):
                phi = w * measurement.epsilon
                return phi
            """,
            Path("src/repro/core/fixture.py"),
        )
        assert [v.rule_id for v in violations] == ["RL008"]

    def test_phi_assignment_in_cost_module_is_clean(self):
        violations = lint_parity(
            """\
            def latency_cost(epsilon, w):
                phi = w * epsilon
                return phi
            """,
            Path("src/repro/core/cost.py"),
        )
        assert violations == []

    def test_out_of_scope_paths_ignored(self):
        violations = lint_parity(
            """\
            def edge_total_ms(profile, share):
                return profile.tx_ms + profile.compute_ms
            """,
            Path("scripts/fixture.py"),
        )
        assert violations == []


# --------------------------------------------------------------- RL009


class TestSuppressionAudit:
    def test_stale_directive_fires(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/core/clean.py": """\
                    x = 1  # reprolint: disable=RL003
                    """,
            },
        )
        report = run_all(tmp_path)
        found = by_rule(report.violations, "RL009")
        assert len(found) == 1
        assert "stale suppression" in found[0].message
        assert "RL003" in found[0].message

    def test_used_directive_is_not_stale(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/core/hot.py": """\
                    def close(a, b):
                        return a == b + 0.1  # reprolint: disable=RL003
                    """,
            },
        )
        report = run_all(tmp_path)
        assert by_rule(report.violations, "RL009") == []
        assert report.suppressed == 1

    def test_unknown_rule_id_fires(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/core/odd.py": """\
                    x = 1  # reprolint: disable=RL999
                    """,
            },
        )
        report = run_all(tmp_path)
        found = by_rule(report.violations, "RL009")
        assert any("unknown rule id" in v.message for v in found)

    def test_directive_not_auditable_when_rule_not_evaluated(self):
        # Only RL003 runs; a disable=RL001 directive cannot be judged
        # stale because its rule never executed.
        registry = rules_by_id()
        violations = lint_source(
            "x = 1  # reprolint: disable=RL001\n",
            Path("src/repro/core/fixture.py"),
            [registry["RL003"], registry["RL009"]],
        )
        assert violations == []

    def test_stale_disable_all_fires_project_wide(self, tmp_path):
        write_package(
            tmp_path,
            {
                "repro/core/allclean.py": """\
                    x = 1  # reprolint: disable=all
                    """,
            },
        )
        report = run_all(tmp_path)
        found = by_rule(report.violations, "RL009")
        assert len(found) == 1
        assert "stale suppression" in found[0].message


# --------------------------------------------------------------- cache


class TestIncrementalCache:
    def fixture_files(self):
        return {
            "repro/errors.py": "class ReproError(Exception):\n    pass\n",
            "repro/core/cost.py": (
                "from repro.errors import ReproError\n\nW = 1\n"
            ),
            "repro/sim/runner.py": (
                "from repro.core.cost import W\n\nTICK = 2\n"
            ),
        }

    def test_warm_run_reanalyzes_nothing(self, tmp_path):
        pkg = write_package(tmp_path / "pkg", self.fixture_files())
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        assert len(cold.files_reanalyzed) == cold.files_analyzed > 0
        warm = analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        assert warm.files_reanalyzed == []
        assert warm.files_analyzed == cold.files_analyzed
        assert [str(v) for v in warm.violations] == [
            str(v) for v in cold.violations
        ]

    def test_changed_file_is_the_only_reanalysis(self, tmp_path):
        pkg = write_package(tmp_path / "pkg", self.fixture_files())
        cache_dir = tmp_path / "cache"
        analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        target = pkg / "repro" / "core" / "cost.py"
        target.write_text(
            "from repro.errors import ReproError\n\nW = 3\n",
            encoding="utf-8",
        )
        warm = analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        assert warm.files_reanalyzed == [target]

    def test_graph_change_propagates_through_cached_records(self, tmp_path):
        # Editing one file to add an upward import must surface RL006 on
        # a warm run even though every *other* file comes from the cache:
        # the project pass is recomputed from cached import records.
        pkg = write_package(tmp_path / "pkg", self.fixture_files())
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        assert by_rule(cold.violations, "RL006") == []
        target = pkg / "repro" / "core" / "cost.py"
        target.write_text(
            "from repro.sim.runner import TICK\n\nW = 1\n",
            encoding="utf-8",
        )
        warm = analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        assert warm.files_reanalyzed == [target]
        found = by_rule(warm.violations, "RL006")
        assert len(found) == 1
        assert "`repro.sim.runner`" in found[0].message

    def test_unreadable_cache_is_ignored(self, tmp_path):
        pkg = write_package(tmp_path / "pkg", self.fixture_files())
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "cache.json").write_text("{not json", encoding="utf-8")
        report = analyze_paths([pkg], ALL_RULES, cache_dir=cache_dir)
        assert len(report.files_reanalyzed) == report.files_analyzed


# ------------------------------------------------------------- baseline


def make_violation(path: str, rule_id: str = "RL003", line: int = 3):
    return Violation(
        path=Path(path),
        line=line,
        col=0,
        rule_id=rule_id,
        message="float equality comparison",
    )


class TestBaseline:
    def test_round_trip_and_count_budget(self, tmp_path):
        root = tmp_path
        baseline_file = tmp_path / "baseline.json"
        known = [make_violation(str(root / "a.py"), line=3)]
        write_baseline(baseline_file, known, root)
        baseline = load_baseline(baseline_file)

        # The same fingerprint on a *different line* is still absorbed —
        # fingerprints are line-independent…
        moved = [make_violation(str(root / "a.py"), line=9)]
        kept, absorbed = filter_baselined(moved, baseline, root)
        assert kept == [] and absorbed == 1

        # …but a second instance exceeds the recorded count and fails.
        doubled = [
            make_violation(str(root / "a.py"), line=3),
            make_violation(str(root / "a.py"), line=9),
        ]
        kept, absorbed = filter_baselined(doubled, baseline, root)
        assert absorbed == 1 and len(kept) == 1

    def test_rejects_unversioned_file(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"entries": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)

    def test_checked_in_baseline_is_empty_and_valid(self):
        baseline = load_baseline(REPO_ROOT / "reprolint_baseline.json")
        assert sum(baseline.values()) == 0


# ---------------------------------------------------------------- SARIF


class TestSarif:
    def sample(self, tmp_path):
        violations = [
            Violation(
                path=tmp_path / "repro" / "core" / "x.py",
                line=4,
                col=2,
                rule_id="RL003",
                message="float equality",
            ),
            Violation(
                path=tmp_path / "broken.py",
                line=1,
                col=0,
                rule_id="E901",
                message="syntax error: invalid syntax",
            ),
        ]
        return to_sarif(violations, ALL_RULES, tmp_path)

    def test_schema_envelope(self, tmp_path):
        doc = self.sample(tmp_path)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"

    def test_rule_catalog_covers_all_results(self, tmp_path):
        doc = self.sample(tmp_path)
        (run,) = doc["runs"]
        catalog = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert len(catalog) == len(set(catalog))
        for rule in ALL_RULES:
            assert rule.id in catalog
        for result in run["results"]:
            assert result["ruleId"] in catalog
            assert catalog[result["ruleIndex"]] == result["ruleId"]

    def test_locations_are_relative_posix_one_based(self, tmp_path):
        doc = self.sample(tmp_path)
        (run,) = doc["runs"]
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            uri = loc["artifactLocation"]["uri"]
            assert not uri.startswith("/") and "\\" not in uri
            region = loc["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in run["results"]
        }
        assert "repro/core/x.py" in uris

    def test_cli_writes_valid_json(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg",
            {"repro/core/hot.py": "def f(a, b):\n    return a == b + 0.1\n"},
        )
        out = tmp_path / "out.sarif"
        code = reprolint_main(
            [str(pkg), "--no-cache", "--sarif", str(out), "-q"]
        )
        assert code == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"][0]["results"]) >= 1


# ------------------------------------------------------------------ CLI


class TestCli:
    def test_engine_parse_error_exits_2(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "broken.py").write_text("def f(:\n", encoding="utf-8")
        code = reprolint_main([str(pkg), "--no-cache"])
        captured = capsys.readouterr()
        assert code == 2
        assert "E901" in captured.out

    def test_summary_line_format(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg",
            {
                "repro/core/hot.py": """\
                    def f(a, b):
                        return a == b + 0.1

                    def g(a, b):
                        return a == b + 0.2  # reprolint: disable=RL003
                    """,
            },
        )
        code = reprolint_main([str(pkg), "--no-cache", "--select", "RL003"])
        captured = capsys.readouterr()
        assert code == 1
        files = 3  # hot.py plus the two generated __init__.py files
        assert f"1 violation in {files} files (1 suppressed)" in captured.out

    def test_clean_summary_mentions_clean(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg", {"repro/core/ok.py": "X = 1\n"}
        )
        code = reprolint_main([str(pkg), "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "clean" in captured.out
        assert "(0 suppressed)" in captured.out

    def test_explain_known_and_unknown(self, capsys):
        assert reprolint_main(["--explain", "RL006"]) == 0
        captured = capsys.readouterr()
        assert "RL006" in captured.out and "layer" in captured.out.lower()
        assert reprolint_main(["--explain", "RL042"]) == 2

    def test_update_baseline_requires_baseline(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg", {"repro/core/ok.py": "X = 1\n"}
        )
        assert reprolint_main([str(pkg), "--update-baseline"]) == 2

    def test_baseline_workflow_end_to_end(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg",
            {"repro/core/hot.py": "def f(a, b):\n    return a == b + 0.1\n"},
        )
        baseline = tmp_path / "baseline.json"
        # Record the debt…
        code = reprolint_main(
            [str(pkg), "--no-cache", "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0 and baseline.exists()
        # …and the next run passes, reporting the absorbed count.
        code = reprolint_main(
            [str(pkg), "--no-cache", "--baseline", str(baseline)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "baselined" in captured.out

    def test_corrupt_baseline_exits_2(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg", {"repro/core/ok.py": "X = 1\n"}
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]", encoding="utf-8")
        assert (
            reprolint_main([str(pkg), "--no-cache", "--baseline", str(baseline)])
            == 2
        )

    def test_cache_round_trip_via_cli(self, tmp_path, capsys):
        pkg = write_package(
            tmp_path / "pkg", {"repro/core/ok.py": "X = 1\n"}
        )
        cache_dir = tmp_path / "cache"
        for _ in range(2):
            code = reprolint_main([str(pkg), "--cache-dir", str(cache_dir)])
            assert code == 0
        assert (cache_dir / "cache.json").exists()


# -------------------------------------------- suppression edge cases


def suppression_lint(source: str, select: str = "RL003"):
    registry = rules_by_id()
    rules = [registry[rule_id] for rule_id in select.split(",")]
    return lint_source(
        dedent(source), Path("src/repro/core/fixture.py"), rules
    )


class TestSuppressionEdgeCases:
    def test_disable_all_silences_every_rule_on_line(self):
        violations = suppression_lint(
            """\
            import time

            def f(a, b):
                return a == time.time()  # reprolint: disable=all
            """,
            select="RL001,RL003",
        )
        assert violations == []

    def test_disable_all_plus_specific_code_both_match(self):
        # Redundant but legal: line carries both `all` and a named code.
        # The violation is suppressed and neither directive is flagged
        # stale (each suppresses the other's staleness).
        violations = suppression_lint(
            """\
            def f(a, b):
                # reprolint: disable=all
                return a == b + 0.1  # reprolint: disable=RL003
            """,
            select="RL003,RL009",
        )
        assert violations == []

    def test_file_wide_and_line_directive_interaction(self):
        # disable-file silences the whole file; the line directive then
        # matches nothing — but RL009 staleness of the line directive is
        # itself silenced by the file-wide `all`.
        violations = suppression_lint(
            """\
            # reprolint: disable-file=all
            def f(a, b):
                return a == b + 0.1  # reprolint: disable=RL003
            """,
            select="RL003,RL009",
        )
        assert violations == []

    def test_malformed_rule_id_does_not_suppress(self):
        violations = suppression_lint(
            """\
            def f(a, b):
                return a == b + 0.1  # reprolint: disable=RL_OOPS
            """,
            select="RL003,RL009",
        )
        ids = sorted(v.rule_id for v in violations)
        assert "RL003" in ids  # not suppressed
        assert any(
            v.rule_id == "RL009" and "unknown rule id" in v.message
            for v in violations
        )

    def test_comma_list_mixing_known_and_unknown(self):
        violations = suppression_lint(
            """\
            def f(a, b):
                return a == b + 0.1  # reprolint: disable=RL003,RL999
            """,
            select="RL003,RL009",
        )
        # RL003 is suppressed; the unknown RL999 is still reported.
        assert [v.rule_id for v in violations] == ["RL009"]
        assert "RL999" in violations[0].message

    def test_continuation_line_directive_suppresses_statement(self):
        # The violation anchors to the statement's first line; a
        # directive on any physical line of the statement must match.
        violations = suppression_lint(
            """\
            def f(a, b, c):
                return (
                    a
                    == b + 0.1  # reprolint: disable=RL003
                )
            """,
            select="RL003",
        )
        assert violations == []

    def test_directive_between_functions_binds_to_next_statement(self):
        violations = suppression_lint(
            """\
            def f(a, b):
                return a == b + 0.1
            """,
            select="RL003",
        )
        assert len(violations) == 1

    def test_parse_suppressions_reports_directive_lines(self):
        source = dedent(
            """\
            # reprolint: disable-file=RL001
            x = 1  # reprolint: disable=RL003
            """
        )
        sup = parse_suppressions(source, ast.parse(source))
        assert len(sup.directives) == 2
        kinds = sorted(d.kind for d in sup.directives)
        assert kinds == ["disable", "disable-file"]


# --------------------------------------------------- repo-wide gates


class TestRepoGates:
    def test_project_rules_clean_on_real_tree(self):
        report = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
            ALL_RULES,
        )
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"reprolint regressions:\n{rendered}"
        assert report.errors == []

    def test_module_name_resolution_on_real_tree(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "controller.py"
        assert module_name(path) == "repro.core.controller"
        assert module_name(REPO_ROOT / "src" / "repro" / "__init__.py") == "repro"

    def test_import_collection_sees_type_checking_edges(self):
        source = dedent(
            """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.fleet.scheduler import FleetResult
            """
        )
        records = collect_imports(
            ast.parse(source), "repro.sim.export", is_package=False
        )
        fleet = [r for r in records if r.target.startswith("repro.fleet")]
        assert len(fleet) == 1 and fleet[0].type_checking

"""Unit tests for repro.bo.optimizer (the ask/tell loop)."""

import numpy as np
import pytest

from repro.bo.acquisition import LowerConfidenceBound
from repro.bo.optimizer import BayesianOptimizer, Observation, OptimizerState
from repro.bo.space import BoxSpace, HBOSpace
from repro.errors import ConfigurationError


def _quadratic(space):
    """Cost with the minimum at c=[0.6,0.1,0.3], x=0.8."""

    def fn(z):
        point = space.split(z)
        target = np.array([0.6, 0.1, 0.3])
        return float(
            np.sum((point.proportions - target) ** 2)
            + (point.triangle_ratio - 0.8) ** 2
        )

    return fn


class TestObservation:
    def test_rejects_nonfinite(self):
        with pytest.raises(ConfigurationError):
            Observation(z=np.array([np.nan, 1.0]), cost=0.0)
        with pytest.raises(ConfigurationError):
            Observation(z=np.array([0.0, 1.0]), cost=float("inf"))


class TestOptimizerState:
    def test_best_and_trajectory(self):
        state = OptimizerState()
        for i, cost in enumerate([3.0, 1.0, 2.0]):
            state.observations.append(Observation(z=np.array([float(i)]), cost=cost))
        assert state.best().cost == 1.0
        assert np.allclose(state.best_cost_trajectory(), [3.0, 1.0, 1.0])

    def test_best_empty_raises(self):
        with pytest.raises(ConfigurationError):
            OptimizerState().best()

    def test_consecutive_distances(self):
        state = OptimizerState()
        state.proposals = [np.array([0.0, 0.0]), np.array([3.0, 4.0])]
        assert np.allclose(state.consecutive_distances(), [5.0])


class TestAskTell:
    def test_initial_phase_length(self, rng):
        space = HBOSpace(3)
        opt = BayesianOptimizer(space, n_initial=5, seed=0)
        for i in range(5):
            assert opt.in_initial_phase
            z = opt.ask()
            opt.tell(z, 1.0 - 0.1 * i)
        assert not opt.in_initial_phase

    def test_double_ask_raises(self):
        opt = BayesianOptimizer(HBOSpace(3), seed=0)
        opt.ask()
        with pytest.raises(ConfigurationError, match="ask"):
            opt.ask()

    def test_proposals_always_feasible(self):
        space = HBOSpace(3, r_min=0.2)
        opt = BayesianOptimizer(space, n_initial=3, n_candidates=64, seed=1)
        fn = _quadratic(space)
        for _ in range(12):
            z = opt.ask()
            assert space.contains(z, tol=1e-6)
            opt.tell(z, fn(z))

    def test_tell_projects_slightly_infeasible_points(self):
        space = HBOSpace(3)
        opt = BayesianOptimizer(space, seed=0)
        opt.ask()
        z_bad = np.array([0.5, 0.5, 0.1, 0.5])  # sums to 1.1
        opt.tell(z_bad, 1.0)
        assert space.contains(opt.state.observations[-1].z, tol=1e-6)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            BayesianOptimizer(HBOSpace(3), n_initial=0)
        with pytest.raises(ConfigurationError):
            BayesianOptimizer(HBOSpace(3), n_candidates=0)
        with pytest.raises(ConfigurationError):
            BayesianOptimizer(HBOSpace(3), n_local=-1)


class TestMinimize:
    def test_beats_random_search_on_quadratic(self):
        space = HBOSpace(3, r_min=0.1)
        fn = _quadratic(space)
        opt = BayesianOptimizer(space, n_initial=5, seed=42)
        best = opt.minimize(fn, 30)
        # Pure random baseline with the same budget.
        random_best = min(
            fn(z) for z in space.sample(np.random.default_rng(42), 30)
        )
        assert best.cost <= random_best

    def test_converges_near_optimum(self):
        space = HBOSpace(3, r_min=0.1)
        opt = BayesianOptimizer(space, n_initial=5, seed=7)
        best = opt.minimize(_quadratic(space), 40)
        assert best.cost < 0.02

    def test_trajectory_monotone_nonincreasing(self):
        space = HBOSpace(2)
        opt = BayesianOptimizer(space, seed=3)
        opt.minimize(_quadratic_2d(space), 15)
        trajectory = opt.state.best_cost_trajectory()
        assert np.all(np.diff(trajectory) <= 1e-12)

    def test_noisy_objective_still_improves(self):
        space = HBOSpace(3, r_min=0.1)
        fn = _quadratic(space)
        gen = np.random.default_rng(0)
        opt = BayesianOptimizer(space, n_initial=5, noise=1e-2, seed=11)
        best = opt.minimize(lambda z: fn(z) + gen.normal(0, 0.02), 30)
        assert best.cost < 0.3

    def test_works_with_plain_box_space(self):
        space = BoxSpace([(-2.0, 2.0), (-2.0, 2.0)])
        opt = BayesianOptimizer(space, n_initial=4, seed=5)
        best = opt.minimize(lambda z: float(np.sum(z**2)), 25)
        assert best.cost < 0.1

    def test_alternative_acquisition(self):
        space = HBOSpace(3)
        opt = BayesianOptimizer(
            space, acquisition=LowerConfidenceBound(kappa=2.0), seed=9
        )
        best = opt.minimize(_quadratic(space), 25)
        assert best.cost < 0.1

    def test_constant_objective_does_not_crash(self):
        """Degenerate (zero-information) costs must fall back gracefully."""
        space = HBOSpace(3)
        opt = BayesianOptimizer(space, n_initial=3, seed=2)
        best = opt.minimize(lambda z: 1.0, 12)
        assert best.cost == 1.0

    def test_zero_iterations_raises(self):
        with pytest.raises(ConfigurationError):
            BayesianOptimizer(HBOSpace(2), seed=0).minimize(lambda z: 0.0, 0)

    def test_seeded_runs_reproducible(self):
        space = HBOSpace(3)
        fn = _quadratic(space)
        runs = [
            BayesianOptimizer(space, seed=123).minimize(fn, 15).cost
            for _ in range(2)
        ]
        assert runs[0] == pytest.approx(runs[1])


def _quadratic_2d(space):
    def fn(z):
        point = space.split(z)
        return float((point.proportions[0] - 0.5) ** 2 + point.triangle_ratio**2)

    return fn


class _AllNaNAcquisition:
    """Pathological acquisition: every candidate scores NaN."""

    def __call__(self, gp, candidates, best_y):
        return np.full(candidates.shape[0], np.nan)


class TestDegenerateAcquisition:
    """Regression: all-NaN acquisition scores used to crash ask() with
    np.nanargmax's "All-NaN slice encountered"."""

    def _seeded(self):
        space = HBOSpace(3)
        opt = BayesianOptimizer(
            space, n_initial=2, acquisition=_AllNaNAcquisition(), seed=11
        )
        for _ in range(2):
            opt.tell(opt.ask(), 1.0)
        return space, opt

    def test_all_nan_scores_do_not_crash(self):
        space, opt = self._seeded()
        z = opt.ask()  # guided phase
        assert space.contains(z)

    def test_all_nan_fallback_is_deterministic(self):
        proposals = []
        for _ in range(2):
            _, opt = self._seeded()
            proposals.append(opt.ask())
        assert np.array_equal(proposals[0], proposals[1])

    def test_fallback_returns_first_candidate(self):
        _, opt = self._seeded()
        fixed = opt.space.sample(np.random.default_rng(0), size=4)
        opt._candidate_pool = lambda: fixed
        assert np.array_equal(opt.ask(), fixed[0])


class TestIncrementalSurrogate:
    """tell() appends exactly one observation, so _fit_surrogate reuses
    the cached GP via a rank-1 update; the posterior must match a fresh
    full fit on the same dataset."""

    def test_cached_surrogate_matches_fresh_fit(self):
        from repro.bo.gp import GaussianProcess

        space = HBOSpace(3)
        opt = BayesianOptimizer(space, n_initial=3, seed=5)
        opt.minimize(_quadratic(space), 10)
        gp = opt._fit_surrogate()  # exercises the incremental path
        assert gp.n_observations == opt.n_observations

        x = np.asarray([o.z for o in opt.state.observations])
        y = np.asarray([o.cost for o in opt.state.observations])
        fresh = GaussianProcess(kernel=opt.kernel, noise=opt.noise).fit(x, y)
        grid = space.sample(np.random.default_rng(0), size=32)
        np.testing.assert_allclose(
            gp.predict(grid).mean, fresh.predict(grid).mean, atol=1e-8
        )
        np.testing.assert_allclose(
            gp.predict(grid).std, fresh.predict(grid).std, atol=1e-8
        )

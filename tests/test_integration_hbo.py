"""Integration tests: the full HBO stack against the paper's claims.

These run real (small-budget) BO activations on the scenario systems and
check the *shapes* the paper reports: scenario-dependent adaptation,
baseline orderings, convergence, and the monitoring loop end-to-end.
"""

import numpy as np
import pytest

from repro.baselines import (
    AllNNAPIBaseline,
    BayesianNoTriangleBaseline,
    StaticMatchQualityBaseline,
)
from repro.core.activation import EventBasedPolicy
from repro.core.controller import HBOConfig, HBOController
from repro.device.resources import Resource
from repro.sim.engine import MonitoringEngine
from repro.sim.scenarios import build_system, fig8_event_script

CONFIG = HBOConfig(n_initial=5, n_iterations=12)


def _activate(scenario, taskset, seed):
    system = build_system(scenario, taskset, seed=seed, noise_sigma=0.02)
    controller = HBOController(system, CONFIG, seed=seed)
    return system, controller.activate()


class TestScenarioAdaptation:
    def test_sc1_reduces_triangles_sc2_keeps_full(self):
        """Fig. 4b's shape: heavy scenes get decimated, light ones don't."""
        _, sc1 = _activate("SC1", "CF1", seed=11)
        _, sc2 = _activate("SC2", "CF2", seed=11)
        assert sc1.best.triangle_ratio < 0.8
        assert sc2.best.triangle_ratio > sc1.best.triangle_ratio

    def test_sc1_moves_gpu_preferring_tasks_away_from_gpu(self):
        """Table III's shape: under SC1's rendering load the
        model-metadata pair cannot stay on the (contended) GPU delegate."""
        _, result = _activate("SC1", "CF1", seed=11)
        allocation = result.best.allocation
        gpu_count = sum(
            1 for t in ("model-metadata_1", "model-metadata_2")
            if allocation[t] is Resource.GPU_DELEGATE
        )
        assert gpu_count <= 1

    def test_sc2_cf2_keeps_nnapi_preferred_tasks(self):
        """Table III's SC2-CF2 column: NNAPI-affine tasks stay there."""
        _, result = _activate("SC2", "CF2", seed=11)
        allocation = result.best.allocation
        assert allocation["mobilenetDetv1"] is Resource.NNAPI
        assert allocation["efficientclass-lite0"] is Resource.NNAPI

    def test_activation_beats_default_configuration(self):
        """HBO's whole point: the tuned config beats the naive start
        (affinity allocation at full quality) on the reward."""
        system = build_system("SC1", "CF1", seed=13, noise_sigma=0.02)
        before = system.measure().reward(CONFIG.w)
        controller = HBOController(system, CONFIG, seed=13)
        result = controller.activate()
        after = result.final_measurement.reward(CONFIG.w)
        assert after > before


class TestBaselineOrdering:
    """Fig. 5c's ordering: HBO < SMQ < BNT < AllN in latency terms (the
    exact factors are device-specific; the order is the claim)."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        seed = 17
        system, hbo = _activate("SC1", "CF1", seed=seed)
        results = {"HBO": hbo.best.measurement.epsilon}
        smq = StaticMatchQualityBaseline(hbo.best.triangle_ratio)
        results["SMQ"] = smq.run(
            build_system("SC1", "CF1", seed=seed, noise_sigma=0.02)
        ).epsilon
        bnt = BayesianNoTriangleBaseline(config=CONFIG, seed=seed)
        results["BNT"] = bnt.run(
            build_system("SC1", "CF1", seed=seed, noise_sigma=0.02)
        ).epsilon
        results["AllN"] = AllNNAPIBaseline().run(
            build_system("SC1", "CF1", seed=seed, noise_sigma=0.02)
        ).epsilon
        return results

    def test_hbo_beats_smq(self, outcomes):
        assert outcomes["SMQ"] > 1.2 * outcomes["HBO"]

    def test_hbo_beats_bnt(self, outcomes):
        assert outcomes["BNT"] > 1.2 * outcomes["HBO"]

    def test_hbo_beats_alln_by_a_wide_margin(self, outcomes):
        assert outcomes["AllN"] > 2.5 * outcomes["HBO"]

    def test_alln_is_the_worst(self, outcomes):
        assert outcomes["AllN"] == max(outcomes.values())


class TestConvergence:
    def test_runs_converge_to_similar_cost(self):
        """Fig. 7's claim: independent runs end within a modest spread."""
        costs = []
        for seed in (101, 202, 303):
            _, result = _activate("SC2", "CF2", seed=seed)
            costs.append(result.best.cost)
        # Run-to-run variance exists (the paper's Fig. 7 shows it too);
        # the spread must stay within the scenario's cost range.
        assert max(costs) - min(costs) < 1.5

    def test_best_cost_settles_before_budget_exhausted(self):
        _, result = _activate("SC1", "CF2", seed=11)
        trajectory = result.best_cost_trajectory()
        # The last quarter of the run should bring little improvement.
        late_gain = trajectory[-4] - trajectory[-1]
        total_gain = trajectory[0] - trajectory[-1]
        assert total_gain >= 0
        if total_gain > 0:
            assert late_gain <= 0.5 * total_gain


class TestMonitoringEndToEnd:
    def test_fig8_session_activates_sparsely(self):
        system = build_system("SC2", "CF1", seed=23, place_objects=False)
        controller = HBOController(
            system, HBOConfig(n_initial=2, n_iterations=3), seed=23
        )
        engine = MonitoringEngine(
            controller, EventBasedPolicy(), monitor_interval_s=2.0,
            control_period_s=2.0,
        )
        events, duration = fig8_event_script(seed=23)
        report = engine.run(events, duration)
        # First placement triggers; not every one of the 10 placements may.
        assert 1 <= report.n_activations <= 10
        # All ten objects ended up in the scene.
        assert len(system.scene) == 10

"""Unit tests for repro.core.cost (Eq. 3-5) and repro.core.allocation
(Algorithm 1, Lines 2-22)."""

import numpy as np
import pytest

from repro.core.allocation import (
    allocate_tasks,
    allocation_counts,
    build_priority_queue,
    proportions_to_counts,
)
from repro.core.cost import cost, normalized_average_latency, reward
from repro.device.profiles import PIXEL7
from repro.device.resources import ALL_RESOURCES, Resource
from repro.errors import AllocationError, ConfigurationError
from repro.models.tasks import build_taskset, taskset_cf1, taskset_cf2


class TestNormalizedLatency:
    def test_eq4_formula(self):
        measured = {"a": 20.0, "b": 30.0}
        expected = {"a": 10.0, "b": 10.0}
        # ((20-10)/10 + (30-10)/10) / 2 = 1.5
        assert normalized_average_latency(measured, expected) == pytest.approx(1.5)

    def test_zero_when_at_expected(self):
        assert normalized_average_latency({"a": 5.0}, {"a": 5.0}) == 0.0

    def test_negative_allowed_below_expected(self):
        assert normalized_average_latency({"a": 5.0}, {"a": 10.0}) < 0

    def test_empty_taskset_is_zero(self):
        assert normalized_average_latency({}, {}) == 0.0

    def test_key_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            normalized_average_latency({"a": 1.0}, {"b": 1.0})

    def test_nonpositive_expected_rejected(self):
        with pytest.raises(ConfigurationError):
            normalized_average_latency({"a": 1.0}, {"a": 0.0})


class TestRewardCost:
    def test_eq3(self):
        assert reward(quality=0.9, epsilon=0.4, w=2.5) == pytest.approx(-0.1)

    def test_cost_is_negated_reward(self):
        assert cost(0.9, 0.4, 2.5) == pytest.approx(-reward(0.9, 0.4, 2.5))

    def test_w_zero_ignores_latency(self):
        assert reward(0.8, 100.0, 0.0) == pytest.approx(0.8)

    def test_negative_w_rejected(self):
        with pytest.raises(ConfigurationError):
            reward(0.5, 0.5, -1.0)


class TestProportionsToCounts:
    def test_paper_example(self):
        """§IV-D: c = [0.4, 0.1, 0.5] with M=3 → C = [1, 0, 2]."""
        assert proportions_to_counts([0.4, 0.1, 0.5], 3) == [1, 0, 2]

    def test_counts_sum_to_m(self, rng):
        for _ in range(100):
            c = rng.dirichlet(np.ones(3))
            m = int(rng.integers(0, 12))
            counts = proportions_to_counts(c, m)
            assert sum(counts) == m
            assert all(k >= 0 for k in counts)

    def test_exact_proportions_no_remainder(self):
        assert proportions_to_counts([0.5, 0.25, 0.25], 4) == [2, 1, 1]

    def test_remainder_goes_to_highest_usage(self):
        # floors: [0,0,0], remainder 1 task → resource with highest c.
        assert proportions_to_counts([0.2, 0.7, 0.1], 1) == [0, 1, 0]

    def test_tie_broken_by_index(self):
        counts = proportions_to_counts([0.5, 0.5, 0.0], 1)
        assert counts == [1, 0, 0]

    def test_zero_tasks(self):
        assert proportions_to_counts([0.3, 0.3, 0.4], 0) == [0, 0, 0]

    def test_invalid_proportions_rejected(self):
        with pytest.raises(AllocationError):
            proportions_to_counts([0.5, 0.6], 3)  # sums to 1.1
        with pytest.raises(AllocationError):
            proportions_to_counts([-0.1, 1.1], 3)
        with pytest.raises(AllocationError):
            proportions_to_counts([], 3)
        with pytest.raises(AllocationError):
            proportions_to_counts([1.0], -1)


class TestPriorityQueue:
    def test_head_is_globally_fastest_pair(self):
        queue = build_priority_queue(taskset_cf1(PIXEL7))
        latency, task_id, _index, resource = queue[0]
        # mnist on GPU (5.8 ms) is the fastest (task, resource) pair in CF1.
        assert task_id == "mnist"
        assert resource is Resource.GPU_DELEGATE
        assert latency == pytest.approx(5.8)

    def test_entry_count_counts_compatible_pairs_only(self):
        # CF2 on Pixel 7: all three models support all three resources.
        queue = build_priority_queue(taskset_cf2(PIXEL7))
        assert len(queue) == 9


class TestAllocateTasks:
    def test_counts_respected(self):
        cf1 = taskset_cf1(PIXEL7)
        allocation = allocate_tasks(cf1, [3, 0, 3])
        counts = allocation_counts(allocation)
        assert counts[Resource.CPU] == 3
        assert counts[Resource.GPU_DELEGATE] == 0
        assert counts[Resource.NNAPI] == 3

    def test_greedy_prefers_fast_pairs(self):
        """With CPU=3/NNAPI=3, the NNAPI-affine trio (fastest NNAPI
        latencies) must land on NNAPI and the GPU-preferring trio on CPU —
        the paper's SC1-CF1 allocation."""
        cf1 = taskset_cf1(PIXEL7)
        allocation = allocate_tasks(cf1, [3, 0, 3])
        assert allocation["mobilenetDetv1"] is Resource.NNAPI
        assert allocation["mobilenet-v1"] is Resource.NNAPI
        assert allocation["efficientclass-lite0"] is Resource.NNAPI
        assert allocation["model-metadata_1"] is Resource.CPU
        assert allocation["model-metadata_2"] is Resource.CPU
        assert allocation["mnist"] is Resource.CPU

    def test_all_one_resource(self):
        cf2 = taskset_cf2(PIXEL7)
        allocation = allocate_tasks(cf2, [0, 0, 3])
        assert all(r is Resource.NNAPI for r in allocation.values())

    def test_compatibility_fallback(self):
        """deeplabv3 on Pixel 7 has no NNAPI path; forcing all counts onto
        NNAPI must still produce a valid (fallback) assignment."""
        ts = build_taskset("seg", [("deeplabv3", 1), ("mnist", 2)], device=PIXEL7)
        allocation = allocate_tasks(ts, [0, 0, 3])
        assert allocation["deeplabv3"] in (Resource.CPU, Resource.GPU_DELEGATE)
        assert allocation["mnist_1"] is Resource.NNAPI
        assert allocation["mnist_2"] is Resource.NNAPI

    def test_every_task_assigned_exactly_once(self, rng):
        cf1 = taskset_cf1(PIXEL7)
        for _ in range(30):
            c = rng.dirichlet(np.ones(3))
            counts = proportions_to_counts(c, len(cf1))
            allocation = allocate_tasks(cf1, counts)
            assert set(allocation) == set(cf1.task_ids)
            assert all(
                t.profile.supports(allocation[t.task_id]) for t in cf1
            )

    def test_count_validation(self):
        cf2 = taskset_cf2(PIXEL7)
        with pytest.raises(AllocationError):
            allocate_tasks(cf2, [1, 1])  # wrong length
        with pytest.raises(AllocationError):
            allocate_tasks(cf2, [5, 0, 0])  # wrong sum
        with pytest.raises(AllocationError):
            allocate_tasks(cf2, [-1, 2, 2])

    def test_allocation_counts_helper(self):
        counts = allocation_counts(
            {"a": Resource.CPU, "b": Resource.CPU, "c": Resource.NNAPI}
        )
        assert counts == {
            Resource.CPU: 2,
            Resource.GPU_DELEGATE: 0,
            Resource.NNAPI: 2 - 1,
        }

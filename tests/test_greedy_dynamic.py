"""Tests for the GreedyDyn extra baseline."""

import pytest

from repro.baselines import GreedyDynamicBaseline
from repro.core.controller import HBOConfig, HBOController
from repro.device.resources import Resource
from repro.errors import ConfigurationError
from repro.sim.scenarios import build_system


class TestGreedyDynamic:
    def test_improves_over_static_affinity(self):
        """One local-search pass must beat the static starting point."""
        system = build_system("SC1", "CF1", seed=7, noise_sigma=0.0)
        static = system.taskset.affinity_allocation()
        system.apply_uniform_ratio(static, 1.0)
        static_eps = system.measure(samples=1).epsilon

        baseline = GreedyDynamicBaseline(max_rounds=3, samples_per_probe=1)
        outcome = baseline.run(build_system("SC1", "CF1", seed=7, noise_sigma=0.0))
        assert outcome.epsilon < static_eps

    def test_keeps_full_quality(self):
        system = build_system("SC1", "CF1", seed=7, noise_sigma=0.0)
        outcome = GreedyDynamicBaseline(max_rounds=1, samples_per_probe=1).run(system)
        assert outcome.triangle_ratio == 1.0
        assert outcome.quality == pytest.approx(1.0, abs=1e-6)

    def test_probe_accounting(self):
        system = build_system("SC2", "CF2", seed=7, noise_sigma=0.0)
        baseline = GreedyDynamicBaseline(max_rounds=2, samples_per_probe=1)
        baseline.run(system)
        # 3 tasks × 2 alternative resources = 6 probes per round + the
        # initial probe; local search may stop after round one.
        assert baseline.probes >= 7

    def test_relocates_under_sc1_pressure(self):
        """Like BNT, greedy search moves GPU-preferring tasks off the
        contended GPU delegate."""
        system = build_system("SC1", "CF1", seed=7, noise_sigma=0.0)
        outcome = GreedyDynamicBaseline(max_rounds=3, samples_per_probe=1).run(system)
        gpu_mmdata = sum(
            1
            for t in ("model-metadata_1", "model-metadata_2")
            if outcome.allocation[t] is Resource.GPU_DELEGATE
        )
        assert gpu_mmdata == 0

    def test_hbo_beats_greedy_on_reward(self, fast_config):
        """HBO's joint optimization dominates: same-or-better latency
        *plus* the quality dimension greedy cannot touch means a better
        reward at the paper's weight."""
        greedy_system = build_system("SC1", "CF1", seed=11, noise_sigma=0.02)
        greedy = GreedyDynamicBaseline(max_rounds=3, samples_per_probe=2).run(
            greedy_system
        )
        hbo_system = build_system("SC1", "CF1", seed=11, noise_sigma=0.02)
        controller = HBOController(
            hbo_system, HBOConfig(n_initial=5, n_iterations=10), seed=11
        )
        hbo = controller.activate()
        w = 2.5
        assert hbo.final_measurement.reward(w) > greedy.measurement.reward(w)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GreedyDynamicBaseline(max_rounds=0)
        with pytest.raises(ConfigurationError):
            GreedyDynamicBaseline(samples_per_probe=0)

"""Edge offloading subsystem tests: link, server, runtime, integration.

Covers the subsystem's three load-bearing contracts:

- **determinism** — wireless-link traces are a pure function of the seed,
  and decorrelated streams from :func:`repro.rng.spawn_rngs` produce
  decorrelated traces;
- **conservation** — the shared edge server's stream accounting stays
  consistent under concurrent register/set/release traffic;
- **off-by-default** — without an edge runtime nothing changes: N stays
  3, profiles keep their rows, and power figures reproduce exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.frontier import FrontierEvaluator
from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.executor import DeviceSimulator
from repro.device.power import PowerModel, RadioPower
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile
from repro.device.resources import ALL_RESOURCES, EDGE_RESOURCES, Resource
from repro.device.soc import galaxy_s22_soc
from repro.edge import (
    EdgeConfig,
    EdgeServer,
    EdgeServerConfig,
    EdgeShare,
    LinkConfig,
    NetworkLink,
    WirelessLink,
    build_edge_runtime,
    edge_compute_ms,
    edge_payload_bytes,
    edge_slowdown,
    edge_tx_ms,
    extend_profile,
    extend_taskset,
)
from repro.errors import DeviceError, EdgeError
from repro.fleet.scheduler import FleetConfig, run_fleet
from repro.fleet.session import SessionSpec
from repro.core.controller import HBOConfig
from repro.models.tasks import taskset_cf1
from repro.rng import spawn_rngs
from repro.sim.scenarios import (
    NETWORK_DRIFT_SCHEDULE,
    apply_network_drift,
    build_system,
    network_drift_scale,
)


class TestWirelessLink:
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_trace_is_a_pure_function_of_the_seed(self, seed, n):
        """Two links with the same seed walk the same bandwidth trace."""
        a = WirelessLink(seed=seed)
        b = WirelessLink(seed=seed)
        for _ in range(n):
            a.advance_period()
            b.advance_period()
            assert a.bandwidth_scale == b.bandwidth_scale
            assert a.bytes_per_ms == b.bytes_per_ms

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_spawned_streams_decorrelate_traces(self, seed):
        """Sibling links from spawn_rngs drift independently — their
        traces must not be identical (decorrelated child streams)."""
        rng_a, rng_b = spawn_rngs(seed, 2)
        a = WirelessLink(seed=rng_a)
        b = WirelessLink(seed=rng_b)
        traces = ([], [])
        for _ in range(16):
            traces[0].append(a.advance_period())
            traces[1].append(b.advance_period())
        assert traces[0] != traces[1]

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_scale_stays_inside_the_configured_bounds(self, seed, n):
        config = LinkConfig(min_scale=0.5, max_scale=1.25)
        link = WirelessLink(config, seed=seed)
        for _ in range(n):
            scale = link.advance_period()
            assert config.min_scale <= scale <= config.max_scale

    def test_set_bandwidth_scale_validates_bounds(self):
        link = WirelessLink(seed=0)
        link.set_bandwidth_scale(0.5)
        assert link.bandwidth_scale == 0.5
        with pytest.raises(EdgeError):
            link.set_bandwidth_scale(99.0)

    def test_network_link_reexport_is_the_same_class(self):
        """The NetworkLink hoist keeps core.remote's import working."""
        from repro.core.remote import NetworkLink as Hoisted

        assert Hoisted is NetworkLink

    def test_link_config_validation(self):
        with pytest.raises(EdgeError):
            LinkConfig(bytes_per_ms=0.0)
        with pytest.raises(EdgeError):
            LinkConfig(min_scale=1.5, max_scale=0.5)


demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=8.0), min_size=1, max_size=10
)


class TestEdgeServer:
    @given(demands=demand_lists)
    @settings(max_examples=100, deadline=None)
    def test_stream_conservation_across_tenants(self, demands):
        """total == the insertion-order sum of tenant demands, and each
        tenant's extern + own view re-totals to float associativity."""
        server = EdgeServer()
        for i, demand in enumerate(demands):
            server.register(f"s{i}")
            server.set_demand(f"s{i}", demand)
        total = 0.0
        for demand in demands:
            total += demand
        assert server.total_streams == total
        for i, demand in enumerate(demands):
            assert server.extern_streams(f"s{i}") == pytest.approx(
                total - demand, abs=1e-9
            )

    @given(demands=demand_lists, drop=st.integers(0, 9))
    @settings(max_examples=100, deadline=None)
    def test_release_removes_exactly_one_tenant_demand(self, demands, drop):
        server = EdgeServer()
        for i, demand in enumerate(demands):
            server.register(f"s{i}")
            server.set_demand(f"s{i}", demand)
        victim = f"s{drop % len(demands)}"
        before = server.total_streams
        gone = server.demand_of(victim)
        server.release(victim)
        assert victim not in server.tenant_ids
        assert server.total_streams == pytest.approx(before - gone, abs=1e-9)

    def test_duplicate_registration_and_unknown_tenant_raise(self):
        server = EdgeServer()
        server.register("a")
        with pytest.raises(EdgeError):
            server.register("a")
        with pytest.raises(EdgeError):
            server.set_demand("ghost", 1.0)
        with pytest.raises(EdgeError):
            server.set_demand("a", -0.1)

    def test_slowdown_is_neutral_below_capacity(self):
        server = EdgeServer(EdgeServerConfig(capacity_streams=4.0))
        server.register("a")
        server.set_demand("a", 4.0)
        assert server.slowdown() == 1.0
        server.set_demand("a", 8.0)
        assert server.slowdown() > 1.0


class TestShareHelpers:
    def test_slowdown_matches_processor_sharing_form(self):
        share = EdgeShare(
            capacity_streams=4.0,
            queue_exponent=1.25,
            extern_streams=0.0,
            rtt_ms=10.0,
            bytes_per_ms=8000.0,
            speedup=6.0,
        )
        assert edge_slowdown(3.0, share) == 1.0
        assert edge_slowdown(8.0, share) == (8.0 / 4.0) ** 1.25

    def test_latency_decomposition(self):
        profile = get_profile(GALAXY_S22, "mobilenet-v1")
        share = EdgeShare(
            capacity_streams=6.0,
            queue_exponent=1.15,
            extern_streams=0.0,
            rtt_ms=10.0,
            bytes_per_ms=8000.0,
            speedup=6.0,
        )
        tx = edge_tx_ms(profile, share)
        assert tx == 10.0 + edge_payload_bytes(profile) / 8000.0
        assert edge_compute_ms(profile, share) == (
            profile.latency(Resource.CPU) / 6.0
        )


class TestRuntimeAndProfiles:
    def test_extend_profile_adds_edge_row_and_keeps_affinity(self):
        profile = get_profile(PIXEL7, "mobilenet-v1")
        extended = extend_profile(profile, EdgeConfig())
        assert extended.supports(Resource.EDGE)
        assert not profile.supports(Resource.EDGE)
        # τ^e stays device-defined: EDGE never becomes the affinity.
        assert extended.best_resource() == profile.best_resource()

    def test_extend_taskset_preserves_expected_latencies(self):
        base = taskset_cf1(GALAXY_S22)
        extended = extend_taskset(base, EdgeConfig())
        assert base.expected_latencies() == extended.expected_latencies()
        assert all(
            t.profile.supports(Resource.EDGE)
            for t in extended
            if t.profile.supports(Resource.CPU)
        )

    def test_runtime_share_reflects_other_tenants_only(self):
        server = EdgeServer()
        rt_a = build_edge_runtime(session_id="a", server=server, seed=1)
        rt_b = build_edge_runtime(session_id="b", server=server, seed=2)
        rt_a.set_demand_streams(3.0)
        rt_b.set_demand_streams(5.0)
        assert rt_a.share().extern_streams == 5.0
        assert rt_b.share().extern_streams == 3.0
        rt_b.release()
        rt_b.release()  # idempotent
        assert rt_a.share().extern_streams == 0.0
        with pytest.raises(EdgeError):
            rt_b.set_demand_streams(1.0)


class TestExecutorIntegration:
    def _simulator(self, edge=None):
        return DeviceSimulator(galaxy_s22_soc(), noise_sigma=0.0, seed=3, edge=edge)

    def test_edge_allocation_without_runtime_raises(self):
        sim = self._simulator()
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        sim.add_task("t0", profile)
        with pytest.raises(DeviceError):
            sim.set_allocation("t0", Resource.EDGE)

    def test_edge_allocation_publishes_demand_to_the_server(self):
        runtime = build_edge_runtime(session_id="dev", seed=4)
        sim = self._simulator(edge=runtime)
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        sim.add_task("t0", profile)
        sim.set_allocation("t0", Resource.EDGE)
        assert runtime.server.demand_of("dev") == profile.cpu_demand
        sim.set_allocation("t0", Resource.CPU)
        assert runtime.server.demand_of("dev") == 0.0

    def test_scalar_and_frontier_agree_on_an_edge_system(self):
        """The frontier's batched pricing of the *current* configuration
        matches the device's scalar steady state to 1e-9 (fast mode)."""
        runtime = build_edge_runtime(session_id="par", seed=5)
        system = build_system(
            "SC1", "CF1", device=GALAXY_S22, seed=11, noise_sigma=0.0,
            edge=runtime,
        )
        from repro.core.allocation import allocate_tasks

        resources = system.resources
        task_ids = list(system.device.allocation)
        m = len(task_ids)
        counts = (2, 1, 1, 2)  # two tasks offloaded
        allocation = allocate_tasks(system.taskset, counts, resources)
        system.device.apply_allocation(dict(allocation))
        scalar = system.device.steady_state_latencies()

        z = np.concatenate(
            [np.asarray(counts) / m, [system.scene.triangle_ratio]]
        )
        result = FrontierEvaluator(system, w=2.5).evaluate(z)
        # Same counts decode to the same allocation (greedy is pure).
        assert result.allocations[0] == system.device.allocation
        batched = {
            tid: result.latency_ms[0, j] for j, tid in enumerate(task_ids)
        }
        for tid in task_ids:
            np.testing.assert_allclose(batched[tid], scalar[tid], rtol=1e-9)


class TestFleetEdge:
    def test_shared_server_fleet_is_deterministic(self):
        specs = [
            SessionSpec(session_id=f"s{i}", device=GALAXY_S22, arrival_s=float(i))
            for i in range(4)
        ]
        cfg = FleetConfig(
            hbo=HBOConfig(n_initial=2, n_iterations=2), edge=EdgeConfig()
        )
        r1 = run_fleet(specs, seed=2024, config=cfg)
        r2 = run_fleet(specs, seed=2024, config=cfg)
        for a, b in zip(r1.reports, r2.reports):
            assert a.costs == b.costs
            assert a.best_cost == b.best_cost

    def test_device_only_fleet_ignores_the_edge_code_path(self):
        """Without edge config the fleet result is byte-identical to the
        pre-edge behavior (same draws, no server, N = 3)."""
        specs = [
            SessionSpec(session_id=f"s{i}", arrival_s=float(i)) for i in range(3)
        ]
        cfg = FleetConfig(hbo=HBOConfig(n_initial=2, n_iterations=2))
        result = run_fleet(specs, seed=7, config=cfg)
        assert all(len(r.costs) == 4 for r in result.reports)


class TestDriftScenario:
    def test_schedule_is_stepwise_constant(self):
        assert network_drift_scale(0.0) == NETWORK_DRIFT_SCHEDULE[0][1]
        assert network_drift_scale(30.0) == 0.25
        assert network_drift_scale(45.0) == 0.25
        assert network_drift_scale(60.0) == 0.6
        assert network_drift_scale(1e6) == 0.6

    def test_bandwidth_collapse_inflates_transfer_time(self):
        runtime = build_edge_runtime(session_id="drift", seed=6)
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        before = edge_tx_ms(profile, runtime.share())
        apply_network_drift(runtime.link, 30.0)
        after = edge_tx_ms(profile, runtime.share())
        assert after > before


class TestRadioPower:
    def test_power_without_edge_is_unchanged(self):
        soc = galaxy_s22_soc()
        profile = get_profile(GALAXY_S22, "mobilenet-v1")
        placements = [TaskPlacement("t0", profile, Resource.CPU)]
        load = SystemLoad(rendered_triangles=1e5, n_objects=3)
        assert PowerModel().system_power_w(soc, placements, load) == (
            PowerModel(radio=RadioPower(tx_w=9.9)).system_power_w(
                soc, placements, load
            )
        )

    def test_offloading_draws_radio_power(self):
        soc = galaxy_s22_soc()
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        load = SystemLoad(rendered_triangles=1e5, n_objects=3)
        share = build_edge_runtime(session_id="p", seed=8).share()
        on_device = PowerModel().system_power_w(
            soc, [TaskPlacement("t0", profile, Resource.CPU)], load, edge=share
        )
        offloaded = PowerModel().system_power_w(
            soc, [TaskPlacement("t0", profile, Resource.EDGE)], load, edge=share
        )
        # The offloaded task vacates the CPU but pays the radio.
        state = ContentionModel(soc).processor_state(
            [TaskPlacement("t0", profile, Resource.EDGE)], load, share
        )
        radio = PowerModel().radio.radio_power_w(
            [TaskPlacement("t0", profile, Resource.EDGE)], share,
            state.edge_slowdown,
        )
        assert radio > RadioPower().idle_w
        assert offloaded != on_device


class TestAcceptance:
    def test_edge_beats_device_only_at_equal_quality(self):
        """Heavy co-location on the S22: the 4-resource frontier achieves
        strictly lower ε than the best device-only point at matched x."""
        from repro.experiments.edge import run_edge_experiment

        result = run_edge_experiment(n_ratios=3, seed=2024)
        assert result.n_strict_wins >= 1
        assert result.best_win.epsilon_win > 0.0
        # Equal quality at matched ratio, by construction of the grids.
        best = result.best_win
        np.testing.assert_allclose(
            best.device_only.quality, best.edge.quality, rtol=1e-12
        )

    def test_resources_default_to_the_paper_trio(self):
        system = build_system("SC1", "CF1", seed=1)
        assert system.resources == ALL_RESOURCES
        assert system.n_resources == 3
        runtime = build_edge_runtime(session_id="n4", seed=9)
        edge_system = build_system("SC1", "CF1", seed=1, edge=runtime)
        assert edge_system.resources == EDGE_RESOURCES
        assert edge_system.n_resources == 4

"""Unit tests for repro.ar.distribution (TD heuristic) and repro.ar.cache."""

import numpy as np
import pytest

from repro.ar.cache import DecimationServer, LODCache, quantize_ratio
from repro.ar.distribution import (
    MIN_OBJECT_RATIO,
    achieved_ratio,
    distribute_triangles,
    greedy_optimal_distribution,
    uniform_distribution,
)
from repro.ar.objects import catalog_sc1, expand_instances, object_by_name
from repro.ar.quality import average_quality
from repro.errors import ConfigurationError


@pytest.fixture
def sc1_objects():
    return {iid: obj for iid, obj in expand_instances(catalog_sc1())}


@pytest.fixture
def sc1_distances(sc1_objects, rng):
    return {iid: float(rng.uniform(0.8, 2.5)) for iid in sc1_objects}


class TestTD:
    def test_budget_respected(self, sc1_objects, sc1_distances):
        for x in (0.9, 0.7, 0.5, 0.3):
            ratios = distribute_triangles(sc1_objects, sc1_distances, x)
            assert achieved_ratio(sc1_objects, ratios) == pytest.approx(x, abs=0.02)

    def test_per_object_bounds(self, sc1_objects, sc1_distances):
        ratios = distribute_triangles(sc1_objects, sc1_distances, 0.5)
        for ratio in ratios.values():
            assert MIN_OBJECT_RATIO - 1e-9 <= ratio <= 1.0 + 1e-9

    def test_full_budget_keeps_everything_full(self, sc1_objects, sc1_distances):
        ratios = distribute_triangles(sc1_objects, sc1_distances, 1.0)
        assert all(r == pytest.approx(1.0, abs=1e-6) for r in ratios.values())

    def test_sensitive_objects_get_more(self, sc1_objects):
        """An object much closer to the user (larger Eq. 1 error) should
        receive a higher decimation ratio than the same object far away."""
        objects = {
            "near": object_by_name("plane"),
            "far": object_by_name("plane"),
        }
        distances = {"near": 1.0, "far": 3.0}
        ratios = distribute_triangles(objects, distances, 0.5)
        assert ratios["near"] > ratios["far"]

    def test_beats_or_matches_uniform_on_quality(self, sc1_objects, sc1_distances):
        """TD's reason to exist: higher Eq. 2 than a uniform split at the
        same total budget (allow a small tolerance for edge budgets)."""
        ids = sorted(sc1_objects)
        models = [sc1_objects[i].degradation for i in ids]
        dists = [sc1_distances[i] for i in ids]

        wins = 0
        for x in (0.8, 0.65, 0.5):
            td = distribute_triangles(sc1_objects, sc1_distances, x)
            uni = uniform_distribution(sc1_objects, sc1_distances, x)
            q_td = average_quality(models, [td[i] for i in ids], dists)
            q_uni = average_quality(models, [uni[i] for i in ids], dists)
            if q_td >= q_uni - 1e-3:
                wins += 1
        assert wins >= 2

    def test_empty_scene(self):
        assert distribute_triangles({}, {}, 0.5) == {}

    def test_validation(self, sc1_objects, sc1_distances):
        with pytest.raises(ConfigurationError):
            distribute_triangles(sc1_objects, sc1_distances, 0.0)
        with pytest.raises(ConfigurationError):
            distribute_triangles(sc1_objects, sc1_distances, 1.2)
        with pytest.raises(ConfigurationError):
            distribute_triangles(sc1_objects, {}, 0.5)
        bad_distances = dict(sc1_distances)
        bad_distances[next(iter(bad_distances))] = -1.0
        with pytest.raises(ConfigurationError):
            distribute_triangles(sc1_objects, bad_distances, 0.5)


class TestGreedyOptimal:
    def test_budget_respected(self, sc1_objects, sc1_distances):
        ratios = greedy_optimal_distribution(sc1_objects, sc1_distances, 0.6)
        assert achieved_ratio(sc1_objects, ratios) == pytest.approx(0.6, abs=0.05)

    def test_at_least_as_good_as_uniform(self, sc1_objects, sc1_distances):
        ids = sorted(sc1_objects)
        models = [sc1_objects[i].degradation for i in ids]
        dists = [sc1_distances[i] for i in ids]
        greedy = greedy_optimal_distribution(sc1_objects, sc1_distances, 0.5)
        uni = uniform_distribution(sc1_objects, sc1_distances, 0.5)
        q_greedy = average_quality(models, [greedy[i] for i in ids], dists)
        q_uni = average_quality(models, [uni[i] for i in ids], dists)
        assert q_greedy >= q_uni - 1e-6

    def test_invalid_chunks_rejected(self, sc1_objects, sc1_distances):
        with pytest.raises(ConfigurationError):
            greedy_optimal_distribution(sc1_objects, sc1_distances, 0.5, n_chunks=0)


class TestLODCache:
    def test_quantize(self):
        assert quantize_ratio(0.714) == pytest.approx(0.72)
        assert quantize_ratio(1.0) == 1.0
        assert quantize_ratio(0.001) == pytest.approx(0.02)  # never below a quantum
        with pytest.raises(ConfigurationError):
            quantize_ratio(0.0)

    def test_hit_miss_accounting(self):
        cache = LODCache(max_entries=4)
        mesh = object_by_name("cabin").mesh(500)
        assert cache.get("cabin", 0.5) is None
        cache.put("cabin", 0.5, mesh)
        assert cache.get("cabin", 0.5) is mesh
        assert cache.get("cabin", 0.508) is mesh  # same quantized key
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self):
        cache = LODCache(max_entries=2)
        mesh = object_by_name("cabin").mesh(500)
        cache.put("a", 0.5, mesh)
        cache.put("b", 0.5, mesh)
        cache.get("a", 0.5)  # refresh 'a'
        cache.put("c", 0.5, mesh)  # evicts 'b'
        assert cache.get("b", 0.5) is None
        assert cache.get("a", 0.5) is mesh

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            LODCache(max_entries=0)


class TestDecimationServer:
    def test_fetch_decimates_and_caches(self):
        server = DecimationServer(mesh_resolution=800)
        obj = object_by_name("hammer")
        first = server.fetch(obj, 0.4)
        assert not first.from_cache
        assert first.latency_ms > 0
        assert first.mesh.n_triangles < obj.mesh(800).n_triangles
        second = server.fetch(obj, 0.41)  # same quantized LOD
        assert second.from_cache
        assert second.latency_ms == 0.0

    def test_full_ratio_serves_original(self):
        server = DecimationServer(mesh_resolution=800)
        obj = object_by_name("cabin")
        result = server.fetch(obj, 1.0)
        assert result.mesh.n_triangles == obj.mesh(800).n_triangles

    def test_transfer_latency_scales_with_triangles(self):
        server = DecimationServer(rtt_ms=10, ms_per_million_triangles=100)
        small = server.fetch(object_by_name("cabin"), 0.5)  # 2.3k tris
        large = server.fetch(object_by_name("bike"), 0.5)  # 178k tris
        assert large.latency_ms > small.latency_ms

    def test_train_parameters_produces_decreasing_error(self):
        server = DecimationServer(mesh_resolution=600)
        params = server.train_parameters(object_by_name("ATV"), seed=5)
        from repro.ar.degradation import DegradationModel

        model = DegradationModel(params)
        assert model.error(0.15, 1.0) > model.error(0.8, 1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            DecimationServer(rtt_ms=-1)

"""Smoke + shape tests for the experiment drivers (reduced budgets).

Each paper-artifact driver must run end-to-end and produce the structure
the benches render. Full-budget runs live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core.controller import HBOConfig
from repro.experiments import fig2, fig4, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.report import format_kv, format_series, format_table, sparkline
from repro.errors import ExperimentError

FAST = HBOConfig(n_initial=5, n_iterations=10)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "yy" in text and "2.500" in text

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [["x", "extra"]])

    def test_sparkline_range(self):
        assert len(sparkline([1, 2, 3])) == 3
        assert sparkline([5, 5, 5]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_format_series_thins_long_input(self):
        text = format_series("s", list(range(100)), max_values=10)
        assert "every" in text

    def test_format_kv(self):
        text = format_kv("Title", [["key", 1.5], ["other", "v"]])
        assert "Title" in text and "key" in text


class TestTable1:
    def test_reproduces_profiles_within_noise(self):
        result = table1.run_table1(seed=0, samples=25)
        assert result.max_relative_error() < 0.03
        assert len(result.rows) == 18  # 9 models × 2 devices

    def test_render_contains_na_cells(self):
        text = table1.render(table1.run_table1(seed=0, samples=5))
        assert "NA" in text
        assert "Pixel 7" in text and "S22" in text


class TestFig2:
    def test_fig2b_narrative_arcs(self):
        run = fig2.run_fig2b(seed=0)
        # Objects arriving (t≈180) must spike latency vs the pre-object
        # steady state (t≈100-115), and the final double-CPU phase must be
        # better for NNAPI residents than the object-peak.
        pre_objects = run.mean_at(100, 115)
        with_objects = run.mean_at(182, 198)
        assert with_objects > 1.2 * pre_objects
        final_nnapi = np.nanmean(run.series("deeplabv3_1")[-4:])
        peak_nnapi = np.nanmean(run.series("deeplabv3_1")[37:40])
        assert final_nnapi < peak_nnapi

    def test_fig2b_cpu_pair_much_worse_at_end(self):
        run = fig2.run_fig2b(seed=0)
        cpu_final = np.nanmean(run.series("deeplabv3_4")[-3:])
        nnapi_final = np.nanmean(run.series("deeplabv3_1")[-3:])
        assert cpu_final > 1.1 * nnapi_final

    def test_all_runs_render(self):
        runs = [fig2.run_fig2a(0), fig2.run_fig2c(0)]
        text = fig2.render(runs)
        assert "actions" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run_fig4(seed=5, config=FAST)

    def test_covers_four_scenarios(self, result):
        assert set(result.keys()) == {"SC1-CF1", "SC2-CF1", "SC1-CF2", "SC2-CF2"}

    def test_sc1_decimates_more_than_sc2(self, result):
        # CF2 gives the cleaner signal (3 tasks, less allocation noise).
        assert (
            result.runs["SC1-CF2"].best_triangle_ratio
            <= result.runs["SC2-CF2"].best_triangle_ratio + 0.1
        )

    def test_table3_has_ratio_row(self, result):
        rows = result.allocation_table()
        assert rows[-1][0] == "Triangle Count Ratio"
        text = fig4.render(result)
        assert "Table III" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run_fig5(seed=5, config=FAST)

    def test_orderings(self, result):
        assert result.epsilon_ratio("SMQ") > 1.0
        assert result.epsilon_ratio("AllN") > result.epsilon_ratio("BNT") > 1.0

    def test_sml_quality_below_hbo(self, result):
        assert result.baselines["SML"].quality < result.hbo.best_quality

    def test_render_contains_table4(self, result):
        text = fig5.render(result)
        assert "Table IV" in text and "AllN" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run_fig6(seed=5, config=FAST)

    def test_series_lengths_match_budget(self, result):
        n = FAST.total_evaluations + 1  # budget + incumbent seeding
        assert len(result.best_cost_trajectory) == n
        assert len(result.qualities) == n
        assert len(result.consecutive_distances) == n - 1

    def test_best_index_consistent(self, result):
        costs = [it.cost for it in result.hbo.result.iterations]
        assert result.best_index == int(np.argmin(costs))

    def test_smq_comparison_covers_all_tasks(self, result):
        assert set(result.smq_latencies_ms) == set(result.hbo_latencies_ms())
        text = fig6.render(result)
        assert "Fig. 6d" in text


class TestFig7:
    def test_runs_and_spread(self):
        result = fig7.run_fig7(seed=5, config=FAST)
        for key in ("SC1-CF2", "SC2-CF2"):
            assert len(result.runs[key]) == fig7.N_RUNS
            assert result.cost_spread(key) < 1.0
        assert "run 6" in fig7.render(result)


class TestFig8:
    def test_event_policy_fewer_activations(self):
        result = fig8.run_fig8(
            seed=5, config=HBOConfig(n_initial=2, n_iterations=2),
            periodic_interval_steps=15,
        )
        assert result.event_activations >= 1
        assert result.periodic_activations > result.event_activations
        assert "activation count" in fig8.render(result)


class TestFig9:
    def test_hbo_rated_at_least_as_high_as_sml(self):
        result = fig9.run_fig9(seed=5, config=FAST)
        assert result.mean("HBO/close") >= result.mean("SML/close")
        assert result.improvement() >= 0.0
        assert result.sml_ratio <= result.hbo_ratio + 0.05
        assert "user study" in fig9.render(result)

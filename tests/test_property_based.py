"""Property-based tests (hypothesis) on the core invariants.

These hammer the algebraic pieces the rest of the system leans on: the
simplex projection, the counts/allocation heuristics, the TD budget
accounting, Eq. 1/Eq. 4 bounds, the GP posterior, and the contention
model's monotonicity.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ar.degradation import DegradationModel, DegradationParams
from repro.ar.distribution import (
    MIN_OBJECT_RATIO,
    achieved_ratio,
    distribute_triangles,
)
from repro.ar.objects import object_by_name
from repro.bo.gp import GaussianProcess
from repro.bo.space import HBOSpace, SimplexSpace
from repro.core.allocation import allocate_tasks, proportions_to_counts
from repro.core.controller import HBOConfig
from repro.core.lookup import EnvironmentSignature
from repro.core.cost import normalized_average_latency
from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile
from repro.device.resources import Resource
from repro.device.soc import galaxy_s22_soc
from repro.fleet import FleetConfig, SessionSpec, run_fleet
from repro.models.tasks import taskset_cf1
from repro.rng import make_rng, spawn_rngs
from repro.sim.export import fleet_result_to_dict

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestSimplexProperties:
    @given(
        v=hnp.arrays(np.float64, st.integers(2, 8), elements=finite_floats)
    )
    @settings(max_examples=200, deadline=None)
    def test_projection_always_feasible(self, v):
        space = SimplexSpace(v.shape[0])
        projected = space.project(v)
        assert projected.shape == v.shape
        assert np.all(projected >= -1e-12)
        assert np.sum(projected) == pytest.approx(1.0, abs=1e-9)

    @given(
        v=hnp.arrays(np.float64, st.integers(2, 6), elements=finite_floats),
        scale=st.floats(min_value=0.001, max_value=10.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_perturb_closed(self, v, scale, seed):
        space = SimplexSpace(v.shape[0])
        start = space.project(v)
        out = space.perturb(start, scale, np.random.default_rng(seed))
        assert space.contains(out)

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 6))
    @settings(max_examples=50, deadline=None)
    def test_hbo_space_samples_feasible(self, seed, n):
        space = HBOSpace(n, r_min=0.1)
        z = space.sample(np.random.default_rng(seed), size=8)
        for row in z:
            assert space.contains(row)


class TestAllocationProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=3, max_size=3
        ),
        m=st.integers(0, 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_counts_partition_m(self, weights, m):
        c = np.asarray(weights) / np.sum(weights)
        counts = proportions_to_counts(c, m)
        assert sum(counts) == m
        assert all(k >= 0 for k in counts)
        # Nobody exceeds its fair share by more than 1 task.
        for ci, ki in zip(c, counts):
            assert ki <= int(np.floor(ci * m)) + 1

    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=3, max_size=3
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_allocation_is_total_and_compatible(self, weights):
        taskset = taskset_cf1(PIXEL7)
        c = np.asarray(weights) / np.sum(weights)
        counts = proportions_to_counts(c, len(taskset))
        allocation = allocate_tasks(taskset, counts)
        assert set(allocation) == set(taskset.task_ids)
        for task in taskset:
            assert task.profile.supports(allocation[task.task_id])


class TestTDProperties:
    @given(
        x=st.floats(min_value=0.15, max_value=1.0),
        d1=st.floats(min_value=0.4, max_value=4.0),
        d2=st.floats(min_value=0.4, max_value=4.0),
        d3=st.floats(min_value=0.4, max_value=4.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_budget_and_bounds(self, x, d1, d2, d3):
        objects = {
            "bike": object_by_name("bike"),
            "plane": object_by_name("plane"),
            "cabin": object_by_name("cabin"),
        }
        distances = {"bike": d1, "plane": d2, "cabin": d3}
        ratios = distribute_triangles(objects, distances, x)
        assert set(ratios) == set(objects)
        for r in ratios.values():
            assert MIN_OBJECT_RATIO - 1e-9 <= r <= 1.0 + 1e-9
        assert achieved_ratio(objects, ratios) == pytest.approx(
            max(x, MIN_OBJECT_RATIO), abs=0.05
        )


class TestDegradationProperties:
    @given(
        a=st.floats(min_value=0.0, max_value=2.0),
        b=st.floats(min_value=-4.0, max_value=0.0),
        d=st.floats(min_value=0.0, max_value=2.0),
        ratio=st.floats(min_value=0.01, max_value=1.0),
        distance=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_error_always_in_unit_interval(self, a, b, d, ratio, distance):
        params = DegradationParams(a=a, b=b, c=-(a + b), d=d)
        error = DegradationModel(params).error(ratio, distance)
        assert 0.0 <= error <= 1.0

    @given(
        ratio=st.floats(min_value=0.05, max_value=1.0),
        near=st.floats(min_value=0.3, max_value=2.0),
        extra=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_error_non_increasing_in_distance(self, ratio, near, extra):
        params = DegradationParams(a=1.2, b=-2.8, c=1.6, d=1.0)
        model = DegradationModel(params)
        assert model.error(ratio, near + extra) <= model.error(ratio, near) + 1e-12


class TestCostProperties:
    @given(
        latencies=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=500.0),
                st.floats(min_value=0.1, max_value=500.0),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_eq4_bounds(self, latencies):
        measured = {f"t{i}": m for i, (m, _e) in enumerate(latencies)}
        expected = {f"t{i}": e for i, (_m, e) in enumerate(latencies)}
        eps = normalized_average_latency(measured, expected)
        per_task = [(m - e) / e for m, e in latencies]
        assert min(per_task) - 1e-9 <= eps <= max(per_task) + 1e-9


class TestGPProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(3, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_posterior_std_positive_and_small_at_training_points(self, seed, n):
        gen = np.random.default_rng(seed)
        x = gen.uniform(0, 1, size=(n, 2))
        y = np.sin(x[:, 0] * 3) + x[:, 1]
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        post = gp.predict(x)
        assert np.all(post.std > 0)
        far = gp.predict(np.array([[10.0, 10.0]]))
        assert far.std[0] >= post.std.max() - 1e-9


class TestContentionProperties:
    @given(
        triangles=st.floats(min_value=0, max_value=2_000_000),
        extra=st.floats(min_value=0, max_value=2_000_000),
        n_objects=st.integers(0, 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_monotone_in_rendered_triangles(
        self, triangles, extra, n_objects
    ):
        model = ContentionModel(galaxy_s22_soc())
        placements = [
            TaskPlacement(
                "t", get_profile(GALAXY_S22, "deeplabv3"), Resource.NNAPI
            )
        ]

        def latency(tri):
            return model.latencies(
                placements,
                SystemLoad(
                    rendered_triangles=tri,
                    n_objects=n_objects,
                    submitted_triangles=2 * tri,
                ),
            )["t"]

        assert latency(triangles + extra) >= latency(triangles) - 1e-9

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_latency_never_below_isolation(self, seed):
        """Contention can only hurt: no placement under load beats the
        isolation profile."""
        gen = np.random.default_rng(seed)
        model = ContentionModel(galaxy_s22_soc())
        profile = get_profile(GALAXY_S22, "mobilenet-v1")
        resources = [Resource.CPU, Resource.GPU_DELEGATE, Resource.NNAPI]
        placements = [
            TaskPlacement(f"t{i}", profile, resources[gen.integers(0, 3)])
            for i in range(int(gen.integers(1, 6)))
        ]
        load = SystemLoad(
            rendered_triangles=float(gen.uniform(0, 1e6)),
            n_objects=int(gen.integers(0, 10)),
            submitted_triangles=float(gen.uniform(1e6, 2e6)),
        )
        latencies = model.latencies(placements, load)
        for placement in placements:
            iso = placement.profile.latency(placement.resource)
            assert latencies[placement.task_id] >= iso - 1e-9


class TestSceneProperties:
    @given(
        positions=st.lists(
            st.tuples(
                st.floats(min_value=-3, max_value=3, allow_nan=False),
                st.floats(min_value=-3, max_value=3, allow_nan=False),
                st.floats(min_value=-3, max_value=3, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        x=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_scene_triangle_accounting_closed(self, positions, x):
        """drawn = Σ ratio·max and triangle_ratio = drawn/T^max always."""
        from repro.ar.scene import Scene
        from repro.ar.objects import object_by_name

        scene = Scene()
        names = ["bike", "plane", "cabin", "hammer", "ATV", "andy",
                 "apricot", "splane"]
        for i, pos in enumerate(positions):
            scene.add(f"o{i}", object_by_name(names[i % len(names)]), pos)
        ratios = {iid: x for iid in scene.instance_ids}
        scene.apply_ratios(ratios)
        expected_drawn = sum(
            x * scene.get(iid).obj.max_triangles for iid in scene.instance_ids
        )
        assert scene.drawn_triangles == pytest.approx(expected_drawn)
        assert scene.triangle_ratio == pytest.approx(x)
        assert 0.0 <= scene.average_quality() <= 1.0


class TestRewardProperties:
    @given(
        quality=st.floats(min_value=0.0, max_value=1.0),
        epsilon=st.floats(min_value=-0.5, max_value=10.0),
        w=st.floats(min_value=0.0, max_value=20.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_cost_is_exact_negation_and_monotone(self, quality, epsilon, w):
        from repro.core.cost import cost, reward

        assert cost(quality, epsilon, w) == pytest.approx(
            -reward(quality, epsilon, w)
        )
        # Better quality at equal latency never hurts the reward.
        if quality < 1.0:
            assert reward(min(1.0, quality + 0.1), epsilon, w) >= reward(
                quality, epsilon, w
            )


class TestEventPolicyProperties:
    @given(
        reference=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        observed=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_within_band_never_fires(self, reference, observed):
        """Rewards inside the [−10%, +5%] band (relative to the floored
        scale) must never trigger, regardless of streaks."""
        from repro.core.activation import EventBasedPolicy

        policy = EventBasedPolicy(confirmations=1)
        policy.record_reference(reference)
        scale = max(abs(reference), policy.min_scale)
        drift = (observed - reference) / scale
        fired = policy.should_activate(observed)
        if -0.10 < drift < 0.05:
            assert not fired
        else:
            assert fired


class TestRngStreamProperties:
    """reprolint's RL001 forces everything through repro.rng — these pin
    down that the plumbing actually delivers what it promises: stable
    replay from one seed and decorrelated child streams."""

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_spawn_rngs_reproducible(self, seed):
        first = [g.normal(size=16) for g in spawn_rngs(seed, 3)]
        second = [g.normal(size=16) for g in spawn_rngs(seed, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_spawn_rngs_decorrelated(self, seed):
        """Sibling streams share no samples and show no linear correlation
        (|r| < 0.35 is ≈5.6σ for 256 iid normals — astronomically unlikely
        to fail for genuinely independent streams)."""
        streams = spawn_rngs(seed, 4)
        draws = [g.normal(size=256) for g in streams]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.allclose(draws[i], draws[j])
                r = np.corrcoef(draws[i], draws[j])[0, 1]
                assert abs(r) < 0.35

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_children_decorrelated_from_parent(self, seed):
        parent = make_rng(seed)
        child = spawn_rngs(seed, 1)[0]
        assert not np.allclose(parent.normal(size=64), child.normal(size=64))


class TestSimplexProjectionContract:
    """The optimizer's feasibility rests on project() landing exactly on
    the probability simplex — nonnegative weights summing to 1 (±1e-9) —
    for arbitrary, even adversarially scaled, input."""

    @given(
        v=hnp.arrays(
            np.float64,
            st.integers(1, 12),
            elements=st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_projection_on_simplex_for_extreme_inputs(self, v):
        projected = SimplexSpace(v.shape[0]).project(v)
        assert np.all(projected >= 0.0)
        assert abs(float(np.sum(projected)) - 1.0) <= 1e-9

    @given(
        v=hnp.arrays(np.float64, st.integers(2, 8), elements=finite_floats)
    )
    @settings(max_examples=150, deadline=None)
    def test_projection_idempotent(self, v):
        space = SimplexSpace(v.shape[0])
        once = space.project(v)
        twice = space.project(once)
        assert np.allclose(once, twice, atol=1e-9)


signature_strategy = st.builds(
    EnvironmentSignature,
    total_max_triangles=st.floats(
        min_value=0.0, max_value=1e8, allow_nan=False, allow_infinity=False
    ),
    n_objects=st.integers(0, 200),
    mean_distance_m=st.floats(
        min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
    ),
    taskset_key=st.sampled_from([("a",), ("a", "b"), ("x", "y", "z")]),
)


class TestSignatureDistanceProperties:
    """distance_to must behave like a dissimilarity: the lookup table and
    the fleet's warm-start store both rank candidates by it."""

    @given(a=signature_strategy, b=signature_strategy)
    @settings(max_examples=300, deadline=None)
    def test_symmetric(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(a=signature_strategy, b=signature_strategy)
    @settings(max_examples=300, deadline=None)
    def test_non_negative(self, a, b):
        assert a.distance_to(b) >= 0.0

    @given(a=signature_strategy)
    @settings(max_examples=200, deadline=None)
    def test_self_distance_zero(self, a):
        assert a.distance_to(a) == 0.0

    @given(a=signature_strategy, b=signature_strategy)
    @settings(max_examples=200, deadline=None)
    def test_infinite_iff_tasksets_differ(self, a, b):
        d = a.distance_to(b)
        if a.taskset_key == b.taskset_key:
            assert np.isfinite(d)
        else:
            assert d == float("inf")


class TestFleetDeterminismProperty:
    """One seed must reproduce the whole fleet trace bit-for-bit, however
    the sessions' arrivals interleave."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
            min_size=1,
            max_size=3,
        ),
    )
    @settings(max_examples=5, deadline=None)
    def test_same_seed_same_trace(self, seed, arrivals):
        specs = [
            SessionSpec(session_id=f"s{i}", arrival_s=arrival_s, noise_sigma=0.02)
            for i, arrival_s in enumerate(arrivals)
        ]
        config = FleetConfig(hbo=HBOConfig(n_initial=2, n_iterations=1))
        traces = [
            json.dumps(
                fleet_result_to_dict(run_fleet(specs, seed=seed, config=config)),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert traces[0] == traces[1]

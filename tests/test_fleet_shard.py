"""Tests for shard-parallel fleet cohorts and the columnar SoA core.

The headline contract under test: one seed reproduces the fleet
bit-for-bit at ANY shard count — `shards=k` output is byte-identical to
`shards=1` in every mode (device-only, legacy singleton edge, and the
multi-server topology with admission, shedding, outages, and
migrations all live mid-run). Alongside it, the building blocks:
`spawn_shard_rngs` stream partitioning, batched search-space ops,
SessionTable <-> FleetSession row-view parity, and the columnar
telemetry path's value-identity with the per-report legacy path.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bo.space import HBOSpace
from repro.core.controller import HBOConfig
from repro.device.profiles import GALAXY_S22, PIXEL7
from repro.edge.admission import AdmissionConfig
from repro.edge.runtime import EdgeConfig
from repro.edge.topology import MigrationConfig, default_topology
from repro.errors import FleetError
from repro.fleet import (
    FleetConfig,
    FleetScheduler,
    SessionSpec,
    SharedConfigStore,
    run_fleet,
)
from repro.fleet.export import fleet_result_to_dict
from repro.fleet.shard import shard_sizes
from repro.fleet.table import PHASE_DONE
from repro.fleet.telemetry import (
    convergence_from_columns,
    convergence_histogram,
    fleet_aggregates,
    iterations_to_converge,
)
from repro.rng import make_rng, spawn_rngs, spawn_shard_rngs
from repro.sim.scenarios import ServerOutage

FAST = HBOConfig(n_initial=2, n_iterations=3)


def _specs(n, arrival_gap_s=0.0, positions=4):
    """A mixed-cohort fleet; positions spread users for `nearest`."""
    cohorts = [
        (PIXEL7, "SC1", "CF1"),
        (GALAXY_S22, "SC1", "CF1"),
        (PIXEL7, "SC2", "CF2"),
    ]
    return [
        SessionSpec(
            session_id=f"s{i:02d}",
            device=cohorts[i % len(cohorts)][0],
            scenario=cohorts[i % len(cohorts)][1],
            taskset=cohorts[i % len(cohorts)][2],
            arrival_s=arrival_gap_s * i,
            placement_seed=11 + (i % len(cohorts)),
            position=10.0 * (i % positions),
        )
        for i in range(n)
    ]


def _canonical(specs, shards, **config_kwargs):
    """Run the fleet and canonicalize the FULL result to one JSON blob."""
    config_kwargs.setdefault("hbo", FAST)
    result = run_fleet(
        specs,
        seed=2024,
        config=FleetConfig(shards=shards, **config_kwargs),
        store=SharedConfigStore(),
    )
    return result, json.dumps(fleet_result_to_dict(result), sort_keys=True)


class TestShardSizes:
    def test_partition_sums_and_is_near_equal(self):
        for n in range(1, 40):
            for k in range(1, 9):
                sizes = shard_sizes(n, k)
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1
                # Earlier shards take the remainder: sizes never increase.
                assert sizes == sorted(sizes, reverse=True)

    def test_clamps_shards_to_spec_count(self):
        assert shard_sizes(3, 8) == [1, 1, 1]

    def test_rejects_bad_inputs(self):
        with pytest.raises(FleetError):
            shard_sizes(0, 2)
        with pytest.raises(FleetError):
            shard_sizes(4, 0)


class TestSpawnShardRngs:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        sizes=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_concatenation_reproduces_unsharded_order(self, seed, sizes):
        """Shard k's streams ARE the contiguous slice of the flat spawn:
        concatenating every shard's draws reproduces `spawn_rngs(seed, n)`
        bit-for-bit — the invariant sharded fleets lean on."""
        total = sum(sizes)
        flat_draws = [rng.uniform(size=3) for rng in spawn_rngs(seed, total)]
        shards = spawn_shard_rngs(seed, sizes)
        assert [len(s) for s in shards] == sizes
        shard_draws = [rng.uniform(size=3) for shard in shards for rng in shard]
        assert len(shard_draws) == total
        for a, b in zip(flat_draws, shard_draws):
            np.testing.assert_array_equal(a, b)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_cross_shard_streams_are_decorrelated(self, seed):
        """No two streams — within or across shards — repeat a draw:
        SeedSequence spawning keys every child off a distinct path."""
        shards = spawn_shard_rngs(seed, [3, 2, 3])
        first = [float(rng.uniform()) for shard in shards for rng in shard]
        assert len(set(first)) == len(first)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            spawn_shard_rngs(7, [2, -1])


class TestBatchedSpaceOps:
    def test_perturb_batch_bitwise_matches_sequential(self):
        space = HBOSpace(5)
        z = space.sample(make_rng(3))
        a, b = make_rng(99), make_rng(99)
        batch = space.perturb_batch(z, 0.1, 6, a)
        rows = np.stack([space.perturb(z, 0.1, b) for _ in range(6)])
        np.testing.assert_array_equal(batch, rows)
        # Stream contract: both generators end at the same position.
        assert a.uniform() == b.uniform()

    def test_project_rows_bitwise_matches_per_row(self):
        simplex = HBOSpace(4).simplex
        c = make_rng(5).normal(size=(8, simplex.n))
        rows = np.stack([simplex.project(c[i]) for i in range(len(c))])
        np.testing.assert_array_equal(simplex.project_rows(c), rows)


@pytest.fixture(scope="module")
def device_run():
    """One 9-session device-mode fleet, scheduler kept for inspection."""
    scheduler = FleetScheduler(
        _specs(9, arrival_gap_s=1.5),
        seed=2024,
        config=FleetConfig(hbo=FAST),
        store=SharedConfigStore(),
    )
    result = scheduler.run()
    return scheduler, result


class TestRowViewParity:
    """FleetSession is a thin row-view: every lifecycle attribute it
    exposes must be the table column, not a shadow copy."""

    def test_session_views_mirror_table_columns(self, device_run):
        scheduler, _ = device_run
        table = scheduler.table
        for i, session in enumerate(scheduler.sessions):
            assert session.index == i
            assert session.done and int(table.phase[i]) == PHASE_DONE
            assert session.start_tick == int(table.start_tick[i])
            assert session.end_tick == int(table.end_tick[i])
            assert session.migrations == int(table.migrations[i])
            assert session.warm_started == bool(table.warm_started[i])
            assert session.budget == int(table.budget[i])
            assert session.best_cost() == float(table.best_cost[i])
            n = int(table.n_results[i])
            assert len(session.results) == n
            np.testing.assert_array_equal(session.costs(), table.costs[i, :n])

    def test_reports_are_built_from_columns(self, device_run):
        scheduler, result = device_run
        table = scheduler.table
        for i, report in enumerate(result.reports):
            n = int(table.n_results[i])
            assert list(report.costs) == [float(c) for c in table.costs[i, :n]]
            assert report.best_cost == float(table.best_cost[i])
            assert report.warm_started == bool(table.warm_started[i])


class TestColumnarTelemetry:
    def test_aggregates_value_identical_to_report_path(self, device_run):
        _, result = device_run
        assert result.aggregates == fleet_aggregates(result.reports)

    def test_histogram_value_identical_to_report_path(self, device_run):
        _, result = device_run
        assert result.histogram == convergence_histogram(result.reports)

    def test_convergence_columns_match_scalar_helper(self):
        rng = make_rng(17)
        n, width = 32, 10
        costs = rng.uniform(0.5, 4.0, size=(n, width))
        lengths = rng.integers(1, width + 1, size=n)
        costs[np.arange(width)[None, :] >= lengths[:, None]] = np.nan
        targets = rng.uniform(0.4, 2.0, size=n)
        vec = convergence_from_columns(costs, lengths, targets)
        for i in range(n):
            scalar = iterations_to_converge(
                list(costs[i, : lengths[i]]), target=targets[i]
            )
            assert int(vec[i]) == scalar


class TestShardedByteIdentity:
    """The tentpole invariant: `shards=k` is byte-identical to
    `shards=1` at the same seed, in every serving mode."""

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_device_mode(self, shards):
        specs = _specs(9, arrival_gap_s=1.5)
        _, base = _canonical(specs, 1)
        _, sharded = _canonical(specs, shards)
        assert sharded == base

    def test_legacy_singleton_edge(self):
        specs = _specs(8)
        _, base = _canonical(specs, 1, edge=EdgeConfig())
        _, sharded = _canonical(specs, 3, edge=EdgeConfig())
        assert sharded == base

    def test_topology_with_admission_and_shedding(self):
        """Tight admission on a 2-node topology: rejections at arrival
        and mid-run sheds both replicate under sharding."""
        specs = _specs(12)
        topology = default_topology(
            2,
            migration=MigrationConfig(enabled=False),
            admission=AdmissionConfig(
                admit_utilization=0.4, shed_utilization=0.5
            ),
        )
        result, base = _canonical(specs, 1, topology=topology)
        assert result.topology_stats["sheds"] > 0
        for shards in (2, 4):
            _, sharded = _canonical(specs, shards, topology=topology)
            assert sharded == base

    def test_topology_with_outage_fallbacks(self):
        """A scheduled outage mid-window pushes tenants back onto their
        devices; workers decide the fallback locally yet stay identical."""
        specs = _specs(12, positions=3)
        topology = default_topology(
            3,
            migration=MigrationConfig(enabled=False),
            admission=AdmissionConfig(
                admit_utilization=5.0, shed_utilization=10.0
            ),
        )
        kwargs = dict(
            topology=topology,
            placement="nearest",
            edge_outages=(ServerOutage(node="edge-1", start_s=2.0, end_s=6.0),),
        )
        result, base = _canonical(specs, 1, **kwargs)
        assert result.topology_stats["outage_fallbacks"] > 0
        for shards in (2, 4):
            _, sharded = _canonical(specs, shards, **kwargs)
            assert sharded == base

    def test_topology_with_drift_migrations(self):
        """Bandwidth drift makes the home node expensive mid-run; the
        coordinator's migration commands land identically on workers."""
        specs = _specs(10)
        topology = default_topology(
            3,
            migration=MigrationConfig(
                enabled=True, dwell_ticks=2, hysteresis=0.05
            ),
            admission=AdmissionConfig(
                admit_utilization=5.0, shed_utilization=10.0
            ),
        )
        kwargs = dict(
            topology=topology,
            hbo=HBOConfig(n_initial=2, n_iterations=6),
            edge_drift={"edge-0": ((0.0, 1.0), (3.0, 0.2))},
        )
        result, base = _canonical(specs, 1, **kwargs)
        assert result.topology_stats["migrations"] > 0
        for shards in (2, 5):
            _, sharded = _canonical(specs, shards, **kwargs)
            assert sharded == base

"""Unit tests for repro.core.system (the MAR system facade)."""

import pytest

from repro.core.system import MARSystem
from repro.device.resources import Resource
from repro.errors import ConfigurationError, DeviceError


class TestApply:
    def test_apply_reallocates_and_redistributes(self, sc1cf1_system):
        system = sc1cf1_system
        allocation = {tid: Resource.CPU for tid in system.taskset.task_ids}
        allocation["mobilenet-v1"] = Resource.NNAPI
        ratios = system.apply(allocation, 0.6)
        assert system.device.allocation["mobilenet-v1"] is Resource.NNAPI
        assert system.scene.triangle_ratio == pytest.approx(0.6, abs=0.02)
        assert set(ratios) == set(system.scene.instance_ids)

    def test_apply_uniform_ratio(self, sc1cf1_system):
        system = sc1cf1_system
        allocation = system.taskset.affinity_allocation()
        ratios = system.apply_uniform_ratio(allocation, 0.5)
        assert all(r == pytest.approx(0.5) for r in ratios.values())

    def test_apply_refreshes_device_load(self, sc1cf1_system):
        system = sc1cf1_system
        allocation = system.taskset.affinity_allocation()
        system.apply(allocation, 1.0)
        full = system.device.load.rendered_triangles
        system.apply(allocation, 0.3)
        assert system.device.load.rendered_triangles < full

    def test_apply_incomplete_allocation_rejected(self, sc1cf1_system):
        with pytest.raises(DeviceError):
            sc1cf1_system.apply({"mnist": Resource.CPU}, 0.5)


class TestMeasure:
    def test_measurement_fields_consistent(self, sc1cf1_system):
        system = sc1cf1_system
        measurement = system.measure(samples=2)
        assert set(measurement.latencies_ms) == set(system.taskset.task_ids)
        assert measurement.quality == pytest.approx(system.scene.average_quality())
        assert measurement.triangle_ratio == pytest.approx(
            system.scene.triangle_ratio
        )
        assert measurement.mean_latency_ms > 0

    def test_epsilon_uses_expected_latencies(self, sc1cf1_system):
        system = sc1cf1_system
        measurement = system.measure(samples=1)
        expected = system.taskset.expected_latencies()
        manual = sum(
            (measurement.latencies_ms[t] - expected[t]) / expected[t]
            for t in expected
        ) / len(expected)
        assert measurement.epsilon == pytest.approx(manual)

    def test_reward_matches_eq3(self, sc1cf1_system):
        measurement = sc1cf1_system.measure(samples=1)
        assert measurement.reward(2.5) == pytest.approx(
            measurement.quality - 2.5 * measurement.epsilon
        )

    def test_measure_reward_shortcut(self, sc1cf1_system):
        value = sc1cf1_system.measure_reward(2.5, samples=1)
        assert isinstance(value, float)

    def test_lower_ratio_trades_quality_for_latency(self, sc1cf1_system):
        system = sc1cf1_system
        allocation = system.taskset.affinity_allocation()
        system.apply(allocation, 1.0)
        full = system.measure(samples=1)
        system.apply(allocation, 0.4)
        reduced = system.measure(samples=1)
        assert reduced.quality < full.quality
        assert reduced.epsilon < full.epsilon


class TestConstruction:
    def test_invalid_samples_rejected(self, sc1cf1_system):
        with pytest.raises(ConfigurationError):
            MARSystem(
                sc1cf1_system.taskset,
                sc1cf1_system.device,
                sc1cf1_system.scene,
                samples_per_period=0,
            )

    def test_n_resources(self, sc1cf1_system):
        assert sc1cf1_system.n_resources == 3

    def test_objects_map(self, sc1cf1_system):
        objects = sc1cf1_system.objects_map()
        assert len(objects) == 9  # SC1 instance count
        assert "bike" in objects

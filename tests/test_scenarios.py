"""Scenario engine tests: generator purity, catalog round-trips, the
compile replay contract, the full scenario × serving-mode lattice, and
the thermal/event/drift fleet hooks the catalog drives."""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.controller import HBOConfig
from repro.device.profiles import device_names
from repro.device.thermal import ThermalModel, ThermalSpec
from repro.errors import ConfigurationError, FleetError, ScenarioError
from repro.fleet.scheduler import FleetConfig
from repro.fleet.session import SessionSpec
from repro.rng import derive_seed
from repro.scenarios import (
    compile_scenario,
    default_fleet_specs,
    device_mix,
    diurnal_arrivals,
    dump_spec,
    export_json,
    flash_crowd_arrivals,
    get_scenario,
    load_spec,
    mobility_events,
    mobility_flags,
    mobility_link_schedule,
    run_scenario,
    scenario_names,
    thermal_flags,
    user_positions,
    with_serving_mode,
    workload_mix,
)
from repro.scenarios.catalog import SERVING_MODES
from repro.sim.events import DistanceChange
from repro.sim.scenarios import build_system

TINY = HBOConfig(n_initial=2, n_iterations=2)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestGeneratorAxes:
    @given(seed=seeds, n=st.integers(1, 32),
           peak=st.floats(1.0, 10.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_diurnal_sorted_in_range_and_pure(
        self, seed: int, n: int, peak: float
    ) -> None:
        first = diurnal_arrivals(n, seed, period_s=120.0, peak_to_base=peak)
        assert first == diurnal_arrivals(
            n, seed, period_s=120.0, peak_to_base=peak
        )
        assert len(first) == n
        assert list(first) == sorted(first)
        assert all(0.0 <= t <= 120.0 for t in first)

    @given(seed=seeds, n=st.integers(1, 32),
           fraction=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_flash_crowd_sorted_nonnegative_and_pure(
        self, seed: int, n: int, fraction: float
    ) -> None:
        kwargs = dict(
            window_s=60.0, burst_time_s=20.0, burst_sigma_s=3.0,
            burst_fraction=fraction,
        )
        first = flash_crowd_arrivals(n, seed, **kwargs)
        assert first == flash_crowd_arrivals(n, seed, **kwargs)
        assert len(first) == n
        assert list(first) == sorted(first)
        assert all(t >= 0.0 for t in first)

    @given(seed=seeds, n=st.integers(1, 32))
    @settings(max_examples=25, deadline=None)
    def test_device_mix_draws_known_devices(self, seed: int, n: int) -> None:
        weights = tuple((name, 1.0) for name in device_names())
        picks = device_mix(n, seed, weights)
        assert picks == device_mix(n, seed, weights)
        assert len(picks) == n
        assert set(picks) <= set(device_names())

    @given(seed=seeds, churn=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_workload_mix_stream_stable_under_churn(
        self, seed: int, churn: bool
    ) -> None:
        arrivals = (0.0, 5.0, 30.0, 60.0)
        weights = (("SC1", "CF1", 0.7), ("SC2", "CF2", 0.3))
        churn_weights = (("SC2", "CF2", 1.0),)
        picks = workload_mix(
            arrivals, seed, weights,
            churn_time_s=20.0 if churn else -1.0,
            churn_weights=churn_weights if churn else (),
        )
        assert len(picks) == len(arrivals)
        assert all(pair in (("SC1", "CF1"), ("SC2", "CF2")) for pair in picks)
        if churn:
            # Late arrivals draw from the churned table (all-SC2 here).
            assert picks[2] == ("SC2", "CF2")
            assert picks[3] == ("SC2", "CF2")

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_mobility_link_schedule_shape(self, seed: int) -> None:
        schedule = mobility_link_schedule(
            seed, "u000", start_s=3.0, duration_s=40.0, n_breakpoints=4,
            scale_floor=0.3, scale_ceil=1.4,
        )
        assert schedule == mobility_link_schedule(
            seed, "u000", start_s=3.0, duration_s=40.0, n_breakpoints=4,
            scale_floor=0.3, scale_ceil=1.4,
        )
        assert schedule[0] == (0.0, 1.0)
        times = [t for t, _scale in schedule]
        assert times == sorted(times)
        assert all(0.3 <= scale <= 1.4 for _t, scale in schedule[1:])

    @given(seed=seeds, n_moves=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_mobility_events_are_sorted_distance_changes(
        self, seed: int, n_moves: int
    ) -> None:
        events = mobility_events(
            seed, "u001", start_s=2.0, duration_s=30.0, n_moves=n_moves
        )
        assert len(events) == n_moves
        assert all(isinstance(e, DistanceChange) for e in events)
        times = [e.time_s for e in events]
        assert times == sorted(times)
        assert all(t >= 2.0 for t in times)

    @given(seed=seeds, n=st.integers(1, 32),
           fraction=st.floats(0.0, 1.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_flag_axes_pure_with_independent_streams(
        self, seed: int, n: int, fraction: float
    ) -> None:
        hot = thermal_flags(n, seed, fraction)
        mobile = mobility_flags(n, seed, fraction)
        assert hot == thermal_flags(n, seed, fraction)
        assert mobile == mobility_flags(n, seed, fraction)
        assert len(hot) == len(mobile) == n
        positions = user_positions(n, seed, span_m=30.0)
        assert all(0.0 <= p < 30.0 for p in positions)

    def test_axis_validation(self) -> None:
        with pytest.raises(ScenarioError):
            diurnal_arrivals(0, 1)
        with pytest.raises(ScenarioError):
            diurnal_arrivals(4, 1, peak_to_base=0.5)
        with pytest.raises(ScenarioError):
            flash_crowd_arrivals(4, 1, burst_fraction=1.5)
        with pytest.raises(ScenarioError):
            device_mix(4, 1, (("No Such Phone", 1.0),))
        with pytest.raises(ScenarioError):
            workload_mix((0.0,), 1, (("SC9", "CF1", 1.0),))
        with pytest.raises(ScenarioError):
            thermal_flags(4, 1, 1.5)


class TestCatalog:
    def test_catalog_has_expected_entries(self) -> None:
        names = scenario_names()
        assert len(names) == 8
        assert {"legacy-fleet", "diurnal-baseline", "flash-crowd",
                "commuter-mobility", "hot-device", "mixed-fleet-churn",
                "network-collapse", "low-tier-surge"} == set(names)

    def test_unknown_name_raises(self) -> None:
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    @pytest.mark.parametrize("name", scenario_names())
    def test_every_spec_round_trips_through_json(self, name: str) -> None:
        spec = get_scenario(name)
        text = dump_spec(spec)
        assert text.endswith("\n")
        assert load_spec(text) == spec

    def test_load_spec_rejects_garbage(self) -> None:
        with pytest.raises(ScenarioError, match="does not parse"):
            load_spec("{not json")
        with pytest.raises(ScenarioError, match="must be an object"):
            load_spec("[1, 2]")
        with pytest.raises(ScenarioError, match="malformed"):
            load_spec('{"name": "x"}')

    def test_spec_validation(self) -> None:
        spec = get_scenario("diurnal-baseline")
        with pytest.raises(ScenarioError, match="unknown arrival process"):
            dataclasses.replace(
                spec, arrivals=dataclasses.replace(
                    spec.arrivals, process="poisson"
                )
            )
        legacy = get_scenario("legacy-fleet")
        with pytest.raises(ScenarioError, match="must be None"):
            dataclasses.replace(legacy, devices=spec.devices)
        with pytest.raises(ScenarioError, match="need devices"):
            dataclasses.replace(spec, devices=None)

    def test_with_serving_mode_drops_topology_features(self) -> None:
        collapse = get_scenario("network-collapse")
        assert collapse.serving.outages
        device = with_serving_mode(collapse, "device")
        assert device.serving.mode == "device"
        assert device.serving.outages == ()
        assert device.serving.node_drift_stagger_s < 0
        with pytest.raises(ScenarioError, match="unknown serving mode"):
            with_serving_mode(collapse, "cloud")


class TestCompile:
    @pytest.mark.parametrize("name", scenario_names())
    def test_compile_is_pure(self, name: str) -> None:
        spec = get_scenario(name)
        first = compile_scenario(spec, 2024, hbo=TINY)
        second = compile_scenario(spec, 2024, hbo=TINY)
        assert first.session_specs == second.session_specs
        assert first.fleet_config == second.fleet_config
        assert first.fleet_seed == second.fleet_seed

    def test_legacy_fleet_matches_hand_written_schedule(self) -> None:
        cfg = HBOConfig(n_initial=3, n_iterations=5)
        compiled = compile_scenario(
            get_scenario("legacy-fleet"), 2024, hbo=cfg, n_sessions=8
        )
        assert list(compiled.session_specs) == default_fleet_specs(
            8, cfg, seed=2024
        )
        assert compiled.fleet_seed == derive_seed(2024, "fleet")
        assert compiled.fleet_config.session_events is None
        assert compiled.fleet_config.thermal is None

    def test_device_mode_has_no_link_drift(self) -> None:
        spec = get_scenario("commuter-mobility")
        served = compile_scenario(spec, 2024, hbo=TINY)
        assert served.fleet_config.link_drift
        assert served.fleet_config.session_events
        on_device = compile_scenario(
            with_serving_mode(spec, "device"), 2024, hbo=TINY
        )
        assert on_device.fleet_config.link_drift is None
        # Scene mobility still applies without an edge.
        assert on_device.fleet_config.session_events

    def test_thermal_scenario_gates_sessions(self) -> None:
        compiled = compile_scenario(get_scenario("hot-device"), 2024, hbo=TINY)
        assert compiled.fleet_config.thermal is not None
        flags = [s.thermal for s in compiled.session_specs]
        assert any(flags)

    def test_n_sessions_override(self) -> None:
        compiled = compile_scenario(
            get_scenario("flash-crowd"), 2024, hbo=TINY, n_sessions=5
        )
        assert len(compiled.session_specs) == 5
        with pytest.raises(ScenarioError):
            compile_scenario(
                get_scenario("flash-crowd"), 2024, hbo=TINY, n_sessions=0
            )


class TestLattice:
    @pytest.mark.parametrize("mode", SERVING_MODES)
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_completes_in_every_mode(
        self, name: str, mode: str
    ) -> None:
        run = run_scenario(name, seed=11, hbo=TINY, n_sessions=3, mode=mode)
        reports = run.result.reports
        assert len(reports) == 3
        for report in reports:
            assert len(report.costs) >= 1  # its budget actually ran
            assert math.isfinite(report.best_cost)
        assert run.result.ticks > 0


class TestReplay:
    @pytest.mark.parametrize("name", scenario_names())
    def test_double_run_byte_identity(self, name: str) -> None:
        first = run_scenario(name, seed=2024, hbo=TINY, n_sessions=4)
        second = run_scenario(name, seed=2024, hbo=TINY, n_sessions=4)
        assert export_json(first) == export_json(second)

    def test_mobility_hooks_change_the_run(self) -> None:
        spec = get_scenario("commuter-mobility")
        with_hooks = run_scenario(spec, seed=11, hbo=TINY, n_sessions=3)
        without = run_scenario(
            dataclasses.replace(spec, mobility=None),
            seed=11, hbo=TINY, n_sessions=3,
        )
        assert export_json(with_hooks) != export_json(without)

    def test_thermal_episode_changes_the_run(self) -> None:
        spec = get_scenario("hot-device")
        hot = run_scenario(spec, seed=11, hbo=TINY, n_sessions=3)
        cool = run_scenario(
            dataclasses.replace(spec, thermal=None),
            seed=11, hbo=TINY, n_sessions=3,
        )
        assert export_json(hot) != export_json(cool)


class TestThermalWiring:
    def test_spec_builds_fresh_models(self) -> None:
        spec = ThermalSpec(throttle_start_c=40.0)
        first, second = spec.build(), spec.build()
        assert first is not second
        assert first.throttle_start_c == 40.0
        with pytest.raises(ConfigurationError):
            ThermalSpec(max_heat_c=-1.0).build()

    def test_throttle_exempts_edge_tasks(self) -> None:
        from repro.device.resources import Resource
        from repro.edge.runtime import build_edge_runtime

        # Already above the throttle knee at construction: factor > 1
        # before any step.
        hot = ThermalModel(
            ambient_c=60.0, max_heat_c=5.0, throttle_start_c=45.0,
            throttle_slope=0.02,
        )
        assert hot.throttle_factor() > 1.0
        seed = derive_seed(11, "SC1", "CF1")
        cool_system = build_system(
            "SC1", "CF1", seed=seed,
            edge=build_edge_runtime(seed=derive_seed(11, "edge-link"),
                                    session_id="t"),
        )
        hot_system = build_system(
            "SC1", "CF1", seed=seed,
            edge=build_edge_runtime(seed=derive_seed(11, "edge-link"),
                                    session_id="t"),
            thermal=hot,
        )
        tid = sorted(cool_system.device.task_ids)[0]
        cool_system.device.set_allocation(tid, Resource.EDGE)
        hot_system.device.set_allocation(tid, Resource.EDGE)
        cool_lat = cool_system.device.steady_state_latencies()
        hot_lat = hot_system.device.steady_state_latencies()
        assert hot_lat[tid] == pytest.approx(cool_lat[tid])
        for other in cool_lat:
            if other != tid:
                assert hot_lat[other] > cool_lat[other]


class TestSchedulerHookValidation:
    def _spec(self, sid: str = "s00") -> SessionSpec:
        return SessionSpec(
            session_id=sid, device="Google Pixel 7", scenario="SC1",
            taskset="CF1", arrival_s=0.0, placement_seed=11,
        )

    def test_hooks_require_single_shard(self) -> None:
        events = {"s00": (DistanceChange(time_s=1.0,
                                         user_position=(0.0, 0.0, 1.0)),)}
        with pytest.raises(FleetError, match="shards"):
            FleetConfig(hbo=TINY, shards=2, session_events=events)

    def test_link_drift_requires_an_edge(self) -> None:
        with pytest.raises(FleetError, match="link_drift needs an edge"):
            FleetConfig(hbo=TINY, link_drift={"s00": ((0.0, 1.0),)})

    def test_events_must_be_time_sorted(self) -> None:
        events = {
            "s00": (
                DistanceChange(time_s=5.0, user_position=(0.0, 0.0, 1.0)),
                DistanceChange(time_s=1.0, user_position=(0.0, 0.0, 2.0)),
            )
        }
        with pytest.raises(FleetError, match="time-sorted"):
            FleetConfig(hbo=TINY, session_events=events)

    def test_unknown_session_ids_rejected_by_scheduler(self) -> None:
        from repro.fleet.scheduler import FleetScheduler

        events = {"nope": (DistanceChange(time_s=1.0,
                                          user_position=(0.0, 0.0, 1.0)),)}
        with pytest.raises(FleetError, match="unknown session ids"):
            FleetScheduler(
                [self._spec()], seed=11,
                config=FleetConfig(hbo=TINY, session_events=events),
            )

"""Unit tests for repro.device.profiles (the Table I data)."""

import pytest

from repro.device.profiles import (
    GALAXY_A54,
    GALAXY_S22,
    PIXEL6A,
    PIXEL7,
    canonical_model_name,
    device_names,
    get_profile,
    model_names,
)
from repro.device.resources import Resource
from repro.errors import UnknownModelError

# Spot checks straight out of the paper's Table I.
TABLE1_SPOT_CHECKS = [
    (GALAXY_S22, "deeplabv3", Resource.GPU_DELEGATE, 45.0),
    (GALAXY_S22, "deeplabv3", Resource.NNAPI, 27.0),
    (GALAXY_S22, "deeplabv3", Resource.CPU, 46.0),
    (GALAXY_S22, "inception-v1-q", Resource.NNAPI, 8.0),
    (GALAXY_S22, "model-metadata", Resource.GPU_DELEGATE, 12.7),
    (PIXEL7, "deconv-munet", Resource.GPU_DELEGATE, 17.9),
    (PIXEL7, "deeplabv3", Resource.CPU, 110.1),
    (PIXEL7, "mobilenetDetv1", Resource.NNAPI, 18.1),
    (PIXEL7, "mobilenet-v1", Resource.NNAPI, 10.2),
    (PIXEL7, "model-metadata", Resource.NNAPI, 40.7),
    (PIXEL7, "efficientclass-lite0", Resource.GPU_DELEGATE, 43.37),
]

# Table I "NA" cells.
NA_CELLS = [
    (GALAXY_S22, "efficientdet-lite", Resource.NNAPI),
    (PIXEL7, "deconv-munet", Resource.NNAPI),
    (PIXEL7, "deeplabv3", Resource.NNAPI),
    (PIXEL7, "efficientdet-lite", Resource.NNAPI),
]


class TestTable1Data:
    @pytest.mark.parametrize("device,model,resource,expected", TABLE1_SPOT_CHECKS)
    def test_latencies_match_paper(self, device, model, resource, expected):
        assert get_profile(device, model).latency(resource) == pytest.approx(expected)

    @pytest.mark.parametrize("device,model,resource", NA_CELLS)
    def test_na_cells_unsupported(self, device, model, resource):
        profile = get_profile(device, model)
        assert not profile.supports(resource)
        with pytest.raises(UnknownModelError, match="NA"):
            profile.latency(resource)

    def test_both_devices_cover_same_models(self):
        assert set(model_names(PIXEL7)) == set(model_names(GALAXY_S22))

    def test_device_names(self):
        assert set(device_names()) == {PIXEL7, GALAXY_S22, PIXEL6A, GALAXY_A54}


class TestScaledTiers:
    """The mid/low tiers are scaled interpolations of the measured tables."""

    def test_tiers_cover_same_models(self):
        for tier in (PIXEL6A, GALAXY_A54):
            assert set(model_names(tier)) == set(model_names(PIXEL7))

    @pytest.mark.parametrize(
        "tier,base", [(PIXEL6A, PIXEL7), (GALAXY_A54, GALAXY_S22)]
    )
    def test_tier_is_strictly_slower_than_base(self, tier, base):
        for model in model_names(base):
            base_profile = get_profile(base, model)
            tier_profile = get_profile(tier, model)
            for resource in (Resource.GPU_DELEGATE, Resource.NNAPI, Resource.CPU):
                if not base_profile.supports(resource):
                    assert not tier_profile.supports(resource)
                    continue
                assert tier_profile.latency(resource) > base_profile.latency(resource)

    @pytest.mark.parametrize(
        "tier,base", [(PIXEL6A, PIXEL7), (GALAXY_A54, GALAXY_S22)]
    )
    def test_tier_io_payloads_match_base(self, tier, base):
        """Offload payloads are model properties, not device properties."""
        for model in model_names(base):
            base_profile = get_profile(base, model)
            tier_profile = get_profile(tier, model)
            assert tier_profile.input_bytes == base_profile.input_bytes
            assert tier_profile.output_bytes == base_profile.output_bytes
            assert tier_profile.npu_coverage <= base_profile.npu_coverage


class TestAffinity:
    def test_deeplab_s22_prefers_nnapi(self):
        res, lat = get_profile(GALAXY_S22, "deeplabv3").best_resource()
        assert res is Resource.NNAPI
        assert lat == pytest.approx(27.0)

    def test_model_metadata_prefers_gpu_on_both(self):
        for device in (GALAXY_S22, PIXEL7):
            res, _ = get_profile(device, "model-metadata").best_resource()
            assert res is Resource.GPU_DELEGATE

    def test_cf1_affinity_split_matches_section_vb(self):
        """§V-B: CF1 has three GPU-preferring and three NNAPI-preferring
        tasks on the Pixel 7 (counting both model-metadata instances)."""
        gpu_pref = [
            m
            for m in ("mnist", "model-metadata")
            if get_profile(PIXEL7, m).best_resource()[0] is Resource.GPU_DELEGATE
        ]
        nnapi_pref = [
            m
            for m in ("mobilenetDetv1", "mobilenet-v1", "efficientclass-lite0")
            if get_profile(PIXEL7, m).best_resource()[0] is Resource.NNAPI
        ]
        assert gpu_pref == ["mnist", "model-metadata"]
        assert len(nnapi_pref) == 3


class TestValidation:
    def test_unknown_device_raises(self):
        with pytest.raises(UnknownModelError, match="unknown device"):
            get_profile("iPhone 15", "mnist")

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError, match="unknown model"):
            get_profile(PIXEL7, "resnet152")

    def test_paper_aliases_resolve(self):
        assert canonical_model_name("efficient-litev0") == "efficientclass-lite0"
        assert canonical_model_name("mobilenetv1") == "mobilenet-v1"
        assert get_profile(PIXEL7, "mobilenetv1").model == "mobilenet-v1"

    def test_npu_coverage_in_range(self):
        for device in device_names():
            for model in model_names(device):
                assert 0.0 <= get_profile(device, model).npu_coverage <= 1.0

    def test_demands_positive(self):
        for device in device_names():
            for model in model_names(device):
                profile = get_profile(device, model)
                assert profile.cpu_demand > 0
                assert profile.gpu_demand > 0

"""Unit tests for the energy model and the edge-offloaded BO proxy."""

import numpy as np
import pytest

from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import HBOSpace
from repro.core.controller import HBOConfig, HBOController
from repro.core.remote import NetworkLink, OffloadStats, RemoteOptimizerProxy
from repro.device.contention import SystemLoad, TaskPlacement
from repro.device.power import PowerModel, ProcessorPower, energy_aware_cost
from repro.device.profiles import GALAXY_S22, get_profile
from repro.device.resources import Processor, Resource
from repro.device.soc import galaxy_s22_soc
from repro.errors import ConfigurationError
from repro.sim.scenarios import build_system


def _placements(n_nnapi=2, n_cpu=0):
    profile = get_profile(GALAXY_S22, "deeplabv3")
    placements = [
        TaskPlacement(f"n{i}", profile, Resource.NNAPI) for i in range(n_nnapi)
    ]
    placements += [
        TaskPlacement(f"c{i}", profile, Resource.CPU) for i in range(n_cpu)
    ]
    return placements


class TestProcessorPower:
    def test_interpolation(self):
        power = ProcessorPower(idle_w=0.5, busy_w=2.5)
        assert power.at_utilization(0.0) == 0.5
        assert power.at_utilization(1.0) == 2.5
        assert power.at_utilization(0.5) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProcessorPower(idle_w=2.0, busy_w=1.0)
        with pytest.raises(ConfigurationError):
            ProcessorPower(idle_w=0.5, busy_w=1.0).at_utilization(1.5)


class TestPowerModel:
    def test_idle_system_draws_base_plus_idle(self):
        model = PowerModel()
        soc = galaxy_s22_soc()
        power = model.system_power_w(soc, [], SystemLoad())
        expected = model.base_w + sum(p.idle_w for p in model.processors.values())
        assert power == pytest.approx(expected)

    def test_more_work_more_power(self):
        model = PowerModel()
        soc = galaxy_s22_soc()
        light = model.system_power_w(soc, _placements(1), SystemLoad())
        heavy = model.system_power_w(
            soc,
            _placements(4, 2),
            SystemLoad(rendered_triangles=600_000, n_objects=8,
                       submitted_triangles=1_200_000),
        )
        assert heavy > light

    def test_utilization_bounded(self):
        model = PowerModel()
        soc = galaxy_s22_soc()
        utilization = model.utilizations(
            soc,
            _placements(5, 3),
            SystemLoad(rendered_triangles=5e6, n_objects=30,
                       submitted_triangles=1e7),
        )
        for proc in Processor:
            assert 0.0 <= utilization[proc] <= 1.0
        assert utilization[Processor.GPU] == 1.0  # saturated under that load

    def test_period_energy(self):
        model = PowerModel()
        soc = galaxy_s22_soc()
        power = model.system_power_w(soc, _placements(1), SystemLoad())
        assert model.period_energy_j(
            soc, _placements(1), SystemLoad(), period_s=2.0
        ) == pytest.approx(2.0 * power)
        with pytest.raises(ConfigurationError):
            model.period_energy_j(soc, [], SystemLoad(), period_s=0.0)

    def test_energy_aware_cost_prices_power(self):
        cheap = energy_aware_cost(0.9, 0.5, power_w=3.0)
        pricey = energy_aware_cost(0.9, 0.5, power_w=7.0)
        assert pricey > cheap  # higher draw, higher cost
        with pytest.raises(ConfigurationError):
            energy_aware_cost(0.9, 0.5, power_w=3.0, w_power=-1.0)


class TestNetworkLink:
    def test_transfer_time_components(self, rng):
        link = NetworkLink(rtt_ms=10.0, jitter_ms=0.0, bytes_per_ms=1_000.0)
        assert link.transfer_ms(5_000, rng) == pytest.approx(15.0)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            NetworkLink(rtt_ms=-1)
        with pytest.raises(ConfigurationError):
            NetworkLink().transfer_ms(-5, rng)


class TestRemoteOptimizerProxy:
    def test_accounting_per_exchange(self):
        space = HBOSpace(3)
        proxy = RemoteOptimizerProxy(
            BayesianOptimizer(space, seed=0),
            link=NetworkLink(jitter_ms=0.0),
            seed=0,
        )
        for _ in range(4):
            z = proxy.ask()
            proxy.tell(z, 1.0)
        assert proxy.stats.exchanges == 8  # 4 asks + 4 tells
        assert proxy.stats.total_bytes > 0
        assert proxy.stats.network_ms > 0
        # The paper's claim: payloads are tiny — a few dozen bytes each.
        per_exchange = proxy.stats.total_bytes / proxy.stats.exchanges
        assert per_exchange < 100

    def test_transparent_optimization(self):
        """Offloading must not change what the optimizer finds."""
        space = HBOSpace(3)

        def run(offloaded):
            optimizer = BayesianOptimizer(space, seed=42)
            opt = (
                RemoteOptimizerProxy(optimizer, seed=1) if offloaded else optimizer
            )
            for _ in range(10):
                z = opt.ask()
                point = space.split(z)
                opt.tell(z, float((point.triangle_ratio - 0.7) ** 2))
            return opt.best().cost

        assert run(False) == pytest.approx(run(True))

    def test_mean_exchange_time(self):
        proxy = RemoteOptimizerProxy(
            BayesianOptimizer(HBOSpace(3), seed=0),
            link=NetworkLink(rtt_ms=8.0, jitter_ms=0.0),
            seed=0,
        )
        assert proxy.mean_exchange_ms() == 0.0
        z = proxy.ask()
        proxy.tell(z, 0.5)
        assert proxy.mean_exchange_ms() == pytest.approx(8.0, abs=0.5)


class TestOffloadedController:
    def test_controller_with_offload_link(self, fast_config):
        system = build_system("SC2", "CF2", seed=9, noise_sigma=0.02)
        controller = HBOController(
            system,
            fast_config,
            offload_link=NetworkLink(rtt_ms=8.0, jitter_ms=1.0),
            seed=9,
        )
        result = controller.activate()
        assert result.final_measurement is not None
        stats = controller.last_offload_stats
        assert stats is not None
        # One ask + one tell per non-incumbent evaluation; the incumbent
        # seeding is a tell-only exchange.
        assert stats.exchanges == 2 * fast_config.total_evaluations + 1
        assert stats.network_ms > 0


class TestBatchedOffload:
    def _proxy(self, space_dim=3, seed=0):
        return RemoteOptimizerProxy(
            BayesianOptimizer(HBOSpace(space_dim), seed=seed),
            link=NetworkLink(jitter_ms=0.0),
            seed=seed,
        )

    def test_tell_many_is_one_exchange(self, rng):
        proxy = self._proxy()
        batch = [(z, float(i)) for i, z in
                 enumerate(proxy.space.sample(rng, size=6))]
        proxy.tell_many(batch)
        assert proxy.stats.exchanges == 1
        assert proxy.stats.batched_exchanges == 1
        assert proxy.stats.batched_observations == 6
        assert proxy.n_observations == 6
        # One shared frame for the batch, not one per observation.
        per_obs = 4 * proxy.space.dim + 4
        assert proxy.stats.bytes_up == 6 * per_obs + 16
        assert proxy.stats.network_ms > 0

    def test_tell_many_beats_per_observation_tells(self, rng):
        batched, unbatched = self._proxy(seed=1), self._proxy(seed=1)
        observations = [(z, 0.5) for z in unbatched.space.sample(rng, size=8)]
        batched.tell_many(observations)
        for z, cost in observations:
            unbatched.tell(z, cost)
        assert batched.stats.total_bytes < unbatched.stats.total_bytes
        assert batched.stats.exchanges == 1
        assert unbatched.stats.exchanges == 8
        assert unbatched.stats.batched_exchanges == 0

    def test_empty_batch_is_free(self):
        proxy = self._proxy()
        proxy.tell_many([])
        assert proxy.stats.exchanges == 0
        assert proxy.stats.total_bytes == 0

    def test_warm_start_accounts_one_batch(self, rng):
        from repro.bo.optimizer import Observation

        proxy = self._proxy()
        donors = [
            Observation(z=z, cost=float(i))
            for i, z in enumerate(proxy.space.sample(rng, size=5))
        ]
        assert proxy.warm_start(donors) == 5
        assert proxy.stats.batched_exchanges == 1
        assert proxy.stats.batched_observations == 5
        assert proxy.n_observations == 5
        assert proxy.stats.exchanges == 1
        fresh = self._proxy(seed=2)
        assert fresh.warm_start([]) == 0  # no traffic for an empty donation
        assert fresh.stats.exchanges == 0

    def test_mean_bytes_per_exchange_shrinks_with_batching(self, rng):
        proxy = self._proxy()
        assert proxy.stats.mean_bytes_per_exchange == 0.0
        z = proxy.ask()
        proxy.tell(z, 0.1)
        small = proxy.stats.mean_bytes_per_exchange
        proxy.tell_many([(w, 0.2) for w in proxy.space.sample(rng, size=10)])
        assert proxy.stats.mean_bytes_per_exchange > small  # bigger frames...
        per_observation = proxy.stats.total_bytes / proxy.n_observations
        assert per_observation < small  # ...but cheaper per observation

"""Tests for the fleet serving layer: batched GP service, sessions,
scheduler determinism, and cross-session warm starting."""

import dataclasses
import json

import numpy as np
import pytest

from repro.bo.acquisition import ExpectedImprovement
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import RBF, Matern
from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import HBOSpace
from repro.core.controller import HBOConfig
from repro.device.profiles import GALAXY_S22, PIXEL7
from repro.errors import FleetError, GPFitError
from repro.fleet import (
    BatchedGPService,
    FleetConfig,
    FleetScheduler,
    SessionPhase,
    SessionSpec,
    SharedConfigStore,
    SharedOptimizerService,
    batched_expected_improvement,
    batched_kernel_matrix,
    run_fleet,
)
from repro.fleet.session import FleetSession
from repro.fleet.telemetry import (
    FleetSessionReport,
    convergence_histogram,
    cost_trajectories,
    fleet_aggregates,
    iterations_to_converge,
)
from repro.rng import make_rng, spawn_rngs
from repro.sim.export import fleet_result_to_dict

FAST = HBOConfig(n_initial=2, n_iterations=2)


def _fleet_specs(arrivals=(0.0, 0.0)):
    """A tiny two-cohort fleet (same device so warm starts can fire)."""
    return [
        SessionSpec(
            session_id=f"s{i}",
            device=PIXEL7,
            scenario="SC1",
            taskset="CF1",
            arrival_s=arrival_s,
            placement_seed=7,
        )
        for i, arrival_s in enumerate(arrivals)
    ]


def _datasets(rng, sizes, dim=4):
    xs = [rng.uniform(0.1, 1.0, size=(n, dim)) for n in sizes]
    ys = [rng.normal(0.0, 1.0, size=n) for n in sizes]
    return xs, ys


class TestBatchedKernel:
    @pytest.mark.parametrize(
        "kernel",
        [Matern(0.8, 2.5), Matern(0.8, 1.5), Matern(0.8, 0.5), RBF(0.8)],
        ids=["matern25", "matern15", "matern05", "rbf"],
    )
    def test_matches_reference_kernel(self, rng, kernel):
        xa = rng.uniform(0.0, 1.0, size=(3, 5, 4))
        xb = rng.uniform(0.0, 1.0, size=(3, 6, 4))
        batched = batched_kernel_matrix(kernel, xa, xb)
        for b in range(3):
            np.testing.assert_allclose(
                batched[b], kernel(xa[b], xb[b]), atol=1e-12
            )

    def test_rejects_bad_shapes(self, rng):
        good = rng.uniform(size=(2, 3, 4))
        with pytest.raises(FleetError):
            batched_kernel_matrix(Matern(1.0, 2.5), good, rng.uniform(size=(3, 3, 4)))
        with pytest.raises(FleetError):
            batched_kernel_matrix(Matern(1.0, 2.5), good[0], good)


class TestBatchedGPService:
    def test_ragged_batch_matches_per_session_gp(self, rng):
        """Padded ghost rows must leave every posterior bit-comparable to
        a per-session GaussianProcess fit."""
        kernel = Matern(length_scale=1.0, nu=2.5)
        xs, ys = _datasets(rng, sizes=(3, 7, 5))
        queries = rng.uniform(0.1, 1.0, size=(3, 9, 4))
        service = BatchedGPService(kernel=kernel, noise=1e-3)
        mean, std = service.posterior(xs, ys, queries)
        assert mean.shape == (3, 9) and std.shape == (3, 9)
        for b in range(3):
            reference = GaussianProcess(kernel=kernel, noise=1e-3).fit(xs[b], ys[b])
            post = reference.predict(queries[b])
            np.testing.assert_allclose(mean[b], post.mean, atol=1e-8)
            np.testing.assert_allclose(std[b], post.std, atol=1e-8)

    def test_batched_ei_matches_reference(self, rng):
        kernel = Matern(length_scale=1.0, nu=2.5)
        xs, ys = _datasets(rng, sizes=(4, 6))
        queries = rng.uniform(0.1, 1.0, size=(2, 12, 4))
        service = BatchedGPService(kernel=kernel, noise=1e-3)
        mean, std = service.posterior(xs, ys, queries)
        best_y = np.asarray([y.min() for y in ys])
        scores = batched_expected_improvement(mean, std, best_y, xi=0.01)
        acquisition = ExpectedImprovement(xi=0.01)
        for b in range(2):
            reference = GaussianProcess(kernel=kernel, noise=1e-3).fit(xs[b], ys[b])
            np.testing.assert_allclose(
                scores[b],
                acquisition(reference, queries[b], float(best_y[b])),
                atol=1e-8,
            )

    def test_degenerate_std_falls_back_to_improvement(self):
        mean = np.array([[0.5, 1.5]])
        std = np.array([[0.0, 0.0]])
        scores = batched_expected_improvement(mean, std, np.array([1.0]), xi=0.0)
        np.testing.assert_allclose(scores, [[0.5, 0.0]])

    def test_validation_errors(self, rng):
        service = BatchedGPService()
        with pytest.raises(GPFitError):
            service.posterior([], [], np.zeros((0, 3, 4)))
        xs, ys = _datasets(rng, sizes=(3, 3))
        with pytest.raises(GPFitError):
            service.posterior(xs, ys[:1], rng.uniform(size=(2, 5, 4)))
        with pytest.raises(GPFitError):
            service.posterior([np.zeros((0, 4))], [np.zeros(0)],
                              rng.uniform(size=(1, 5, 4)))
        bad_y = [ys[0], np.array([np.nan, 0.0, 0.0])]
        with pytest.raises(GPFitError):
            service.posterior(xs, bad_y, rng.uniform(size=(2, 5, 4)))
        with pytest.raises(GPFitError):
            BatchedGPService(noise=-1.0)


class TestSharedOptimizerService:
    def _seeded_optimizer(self, seed, n_obs=4, dim_resources=3):
        space = HBOSpace(dim_resources, r_min=0.1)
        optimizer = BayesianOptimizer(space=space, n_initial=2, seed=seed)
        rng = make_rng(seed + 1)
        for z in space.sample(rng, size=n_obs):
            optimizer.tell(z, float(rng.normal()))
        return optimizer

    def test_proposals_stay_in_space(self):
        optimizers = [self._seeded_optimizer(seed) for seed in (1, 2, 3)]
        service = SharedOptimizerService(n_candidates=32, n_local=4)
        proposals = service.propose(optimizers, spawn_rngs(9, 3))
        assert len(proposals) == 3
        for optimizer, z in zip(optimizers, proposals):
            assert optimizer.space.contains(z)
        assert service.batches == 1
        assert service.proposals_served == 3

    def test_empty_batch_is_noop(self):
        service = SharedOptimizerService()
        assert service.propose([], []) == []
        assert service.batches == 0

    def test_rng_count_mismatch(self):
        service = SharedOptimizerService()
        with pytest.raises(FleetError):
            service.propose([self._seeded_optimizer(1)], spawn_rngs(9, 2))

    def test_mixed_dimensions_rejected(self):
        service = SharedOptimizerService()
        optimizers = [
            self._seeded_optimizer(1, dim_resources=3),
            self._seeded_optimizer(2, dim_resources=5),
        ]
        with pytest.raises(FleetError):
            service.propose(optimizers, spawn_rngs(9, 2))

    def test_constructor_validation(self):
        with pytest.raises(FleetError):
            SharedOptimizerService(n_candidates=0)
        with pytest.raises(FleetError):
            SharedOptimizerService(n_local=-1)


class TestSessionSpecValidation:
    def test_empty_id(self):
        with pytest.raises(FleetError):
            SessionSpec(session_id="")

    def test_negative_arrival(self):
        with pytest.raises(FleetError):
            SessionSpec(session_id="s", arrival_s=-1.0)

    def test_bad_budget(self):
        with pytest.raises(FleetError):
            SessionSpec(session_id="s", n_evaluations=0)


class TestSessionLifecycle:
    def test_step_before_admit(self):
        session = FleetSession(_fleet_specs()[0], FAST, make_rng(1))
        with pytest.raises(FleetError):
            session.step_initial()
        with pytest.raises(FleetError):
            session.finish(0)
        with pytest.raises(FleetError):
            session.best_cost()

    def test_double_admission(self):
        session = FleetSession(_fleet_specs()[0], FAST, make_rng(1))
        session.admit(0)
        with pytest.raises(FleetError):
            session.admit(1)

    def test_phases_progress(self):
        session = FleetSession(_fleet_specs()[0], FAST, make_rng(1))
        assert session.phase is SessionPhase.WAITING
        session.admit(0)
        assert session.active and not session.warm_started
        while not session.budget_exhausted:
            if session.needs_guided_proposal:
                z = session.optimizer.space.sample(session.rng, size=1)[0]
                session.step_guided(z)
            else:
                session.step_initial()
        session.finish(len(session.results))
        assert session.done
        assert len(session.costs()) == FAST.total_evaluations
        assert session.best_cost() == min(session.costs())


class TestFleetScheduler:
    def test_empty_specs_rejected(self):
        with pytest.raises(FleetError):
            FleetScheduler([])

    def test_duplicate_ids_rejected(self):
        specs = [SessionSpec(session_id="dup"), SessionSpec(session_id="dup")]
        with pytest.raises(FleetError):
            FleetScheduler(specs)

    def test_tick_validation(self):
        with pytest.raises(FleetError):
            FleetConfig(tick_s=0.0)

    def test_warm_start_transfers_from_donor(self):
        """The donor runs cold at t = 0; the follower arrives after the
        donor finished and warm-starts from its donated observations."""
        late = float(FAST.total_evaluations + 1)
        result = run_fleet(
            _fleet_specs(arrivals=(0.0, late)),
            seed=11,
            config=FleetConfig(hbo=FAST),
        )
        donor = result.report_for("s0")
        follower = result.report_for("s1")
        assert not donor.warm_started and donor.n_warm == 0
        assert follower.warm_started
        assert follower.warm_source == "s0"
        assert follower.n_warm > 0
        assert result.store_stats["donations"] == 2
        assert result.store_stats["transfers"] == 1

    def test_cold_fleet_ignores_store(self):
        late = float(FAST.total_evaluations + 1)
        result = run_fleet(
            _fleet_specs(arrivals=(0.0, late)),
            seed=11,
            config=FleetConfig(hbo=FAST, warm_start=False),
        )
        assert not any(r.warm_started for r in result.reports)
        assert result.aggregates.median_converged_warm is None

    def test_seed_reproduces_fleet_trace(self):
        """Same seed → bit-identical exported trace, arrivals staggered."""
        specs = _fleet_specs(arrivals=(0.0, 2.0, 5.0))
        results = [
            run_fleet(specs, seed=2024, config=FleetConfig(hbo=FAST))
            for _ in range(2)
        ]
        traces = [
            json.dumps(fleet_result_to_dict(r), sort_keys=True) for r in results
        ]
        assert traces[0] == traces[1]

    def test_different_seeds_diverge(self):
        specs = _fleet_specs()
        a = run_fleet(specs, seed=1, config=FleetConfig(hbo=FAST))
        b = run_fleet(specs, seed=2, config=FleetConfig(hbo=FAST))
        assert [r.costs for r in a.reports] != [r.costs for r in b.reports]

    def test_mixed_devices_share_nothing(self):
        """Scopes key by device model: a Galaxy S22 follower must not
        warm-start from a Pixel 7 donation."""
        late = float(FAST.total_evaluations + 1)
        specs = [
            SessionSpec(session_id="pixel", device=PIXEL7, arrival_s=0.0),
            SessionSpec(session_id="s22", device=GALAXY_S22, arrival_s=late),
        ]
        result = run_fleet(specs, seed=3, config=FleetConfig(hbo=FAST))
        assert not result.report_for("s22").warm_started

    def test_session_budget_override(self):
        spec = SessionSpec(session_id="short", n_evaluations=3)
        result = run_fleet([spec], seed=5, config=FleetConfig(hbo=FAST))
        assert len(result.report_for("short").costs) == 3

    def test_report_for_unknown_session(self):
        result = run_fleet(_fleet_specs()[:1], seed=5, config=FleetConfig(hbo=FAST))
        with pytest.raises(FleetError):
            result.report_for("nope")

    def test_export_structure(self):
        result = run_fleet(_fleet_specs(), seed=7, config=FleetConfig(hbo=FAST))
        data = fleet_result_to_dict(result)
        assert set(data) == {
            "tick_s", "ticks", "sessions", "aggregates", "histogram",
            "store", "service",
        }
        assert len(data["sessions"]) == 2
        for session in data["sessions"]:
            assert len(session["costs"]) == FAST.total_evaluations
            assert session["cohort_best_cost"] <= min(session["costs"]) + 1e-12
        assert data["aggregates"]["n_evaluations"] == 2 * FAST.total_evaluations
        assert sum(data["histogram"].values()) == 2
        json.dumps(data)  # must be JSON-serializable as-is


class TestTelemetry:
    def test_iterations_to_converge_self_target(self):
        assert iterations_to_converge([5.0, 0.92, 0.9], floor=0.0) == 2
        assert iterations_to_converge([1.0], floor=0.0) == 1

    def test_iterations_to_converge_cohort_target(self):
        costs = [5.0, 2.0, 1.0]
        assert iterations_to_converge(costs, target=0.9, floor=0.2) == 3
        # An unreachable target censors at the trajectory length.
        assert iterations_to_converge(costs, target=-10.0, floor=0.2) == 3

    def test_iterations_to_converge_validation(self):
        with pytest.raises(FleetError):
            iterations_to_converge([])
        with pytest.raises(FleetError):
            iterations_to_converge([1.0], rel_tol=-0.1)

    def _report(self, session_id="s0", warm=False, costs=(3.0, 1.0)):
        return FleetSessionReport(
            session_id=session_id,
            device=PIXEL7,
            scenario="SC1",
            taskset="CF1",
            arrival_s=0.0,
            start_tick=0,
            end_tick=len(costs),
            warm_started=warm,
            n_warm=4 if warm else 0,
            warm_source="donor" if warm else "",
            costs=tuple(costs),
            latencies_ms=tuple(30.0 for _ in costs),
            qualities=tuple(0.8 for _ in costs),
            best_cost=min(costs),
            cohort_best_cost=min(costs),
            converged_at=iterations_to_converge(costs),
        )

    def test_report_validation(self):
        good = self._report()
        with pytest.raises(FleetError):
            dataclasses.replace(good, costs=())
        with pytest.raises(FleetError):
            dataclasses.replace(good, latencies_ms=(1.0,))

    def test_aggregates_split_warm_cold(self):
        reports = [
            self._report("cold0", warm=False, costs=(3.0, 2.0, 1.0)),
            self._report("warm0", warm=True, costs=(1.1, 1.0)),
        ]
        aggregates = fleet_aggregates(reports)
        assert aggregates.n_sessions == 2
        assert aggregates.n_evaluations == 5
        assert aggregates.median_converged_cold == pytest.approx(3.0)
        assert aggregates.median_converged_warm == pytest.approx(1.0)
        with pytest.raises(FleetError):
            fleet_aggregates([])

    def test_histogram_and_trajectories(self):
        reports = [
            self._report("a", costs=(3.0, 1.0)),
            self._report("b", costs=(2.0, 1.0)),
        ]
        assert convergence_histogram(reports) == {2: 2}
        trajectories = cost_trajectories(reports)
        assert trajectories["a"] == [3.0, 1.0]
        assert trajectories["b"] == [2.0, 1.0]

"""Self-tests for the reprolint static analyzer (tools/reprolint).

Every rule RL001–RL005 is proven twice: once firing on a seeded-violation
fixture, once silenced by its suppression comment. The suite also pins the
engine behaviour (file-level suppression, rule selection, CLI exit codes)
and — crucially — asserts the real ``src/`` tree is clean, so the gate the
CI runs is also a test the suite runs.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from reprolint import ALL_RULES, lint_paths, lint_source, rules_by_id  # noqa: E402
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.engine import iter_python_files, parse_suppressions  # noqa: E402

# Virtual paths that put fixtures in scope for each rule family.
SRC_PATH = Path("src/repro/core/fixture.py")
BO_PATH = Path("src/repro/bo/fixture.py")
DEVICE_PATH = Path("src/repro/device/fixture.py")
OUT_OF_SCOPE_PATH = Path("scripts/fixture.py")


def lint(source: str, path: Path = SRC_PATH, select: "str | None" = None):
    rules = ALL_RULES if select is None else [rules_by_id()[select]]
    return lint_source(textwrap.dedent(source), path, rules)


def rule_ids(violations) -> list:
    return [v.rule_id for v in violations]


# --------------------------------------------------------------- RL001


class TestDeterminismRule:
    def test_fires_on_default_rng(self):
        violations = lint(
            """\
            import numpy as np

            def jitter():
                return np.random.default_rng().normal()
            """,
            select="RL001",
        )
        assert rule_ids(violations) == ["RL001"]
        assert "repro.rng.make_rng" in violations[0].message

    def test_fires_on_global_seed_and_wall_clock(self):
        violations = lint(
            """\
            import numpy, time

            def setup(s):
                numpy.random.seed(s)
                return time.time()
            """,
            select="RL001",
        )
        assert rule_ids(violations) == ["RL001", "RL001"]

    def test_fires_on_from_imports(self):
        violations = lint(
            """\
            from numpy.random import default_rng
            from random import shuffle
            from time import perf_counter
            from datetime import datetime

            def run(xs):
                shuffle(xs)
                gen = default_rng(0)
                return perf_counter(), datetime.now(), gen
            """,
            select="RL001",
        )
        assert rule_ids(violations) == ["RL001"] * 4

    def test_datetime_constructor_is_allowed(self):
        violations = lint(
            """\
            from datetime import datetime

            def stamp():
                return datetime(2024, 1, 1)
            """,
            select="RL001",
        )
        assert violations == []

    def test_stdlib_random_module_calls_fire(self):
        violations = lint(
            """\
            import random

            def draw():
                return random.uniform(0.0, 1.0)
            """,
            select="RL001",
        )
        assert rule_ids(violations) == ["RL001"]

    def test_suppression_comment_silences(self):
        violations = lint(
            """\
            import numpy as np

            def jitter():
                return np.random.default_rng()  # reprolint: disable=RL001
            """,
            select="RL001",
        )
        assert violations == []

    def test_exempt_in_rng_and_clock_modules(self):
        source = """\
            import numpy as np

            def make():
                return np.random.default_rng(0)
            """
        for name in ("rng.py", "clock.py"):
            assert lint(source, Path(f"src/repro/{name}"), select="RL001") == []
        assert rule_ids(lint(source, SRC_PATH, select="RL001")) == ["RL001"]

    def test_generator_methods_are_fine(self):
        violations = lint(
            """\
            from repro.rng import make_rng

            def draw(seed):
                gen = make_rng(seed)
                return gen.normal(), gen.uniform(), gen.choice([1, 2])
            """,
            select="RL001",
        )
        assert violations == []


# --------------------------------------------------------------- RL002


class TestErrorHygieneRule:
    def test_fires_on_bare_exception_and_runtime_error(self):
        violations = lint(
            """\
            def f(x):
                if x < 0:
                    raise Exception("bad")
                raise RuntimeError("worse")
            """,
            select="RL002",
        )
        assert rule_ids(violations) == ["RL002", "RL002"]

    def test_fires_on_unknown_error_class(self):
        violations = lint(
            """\
            from mylib import WeirdError

            def f():
                raise WeirdError("not ours")
            """,
            select="RL002",
        )
        assert rule_ids(violations) == ["RL002"]

    def test_allows_repro_errors_and_builtins(self):
        violations = lint(
            """\
            from repro.errors import ConfigurationError

            def f(x):
                if x is None:
                    raise TypeError("x must not be None")
                if x < 0:
                    raise ValueError("x must be >= 0")
                raise ConfigurationError(f"bad x: {x}")
            """,
            select="RL002",
        )
        assert violations == []

    def test_allows_reraise_patterns(self):
        violations = lint(
            """\
            def f():
                try:
                    g()
                except ValueError as err:
                    raise
                except KeyError as err:
                    raise err
            """,
            select="RL002",
        )
        assert violations == []

    def test_errors_module_defining_hierarchy_is_clean(self):
        violations = lint(
            """\
            class ReproError(Exception):
                pass

            class SubError(ReproError):
                pass

            def f():
                raise SubError("fine: defined in-file on the hierarchy")
            """,
            Path("src/repro/errors.py"),
            select="RL002",
        )
        assert violations == []

    def test_out_of_scope_paths_ignored(self):
        violations = lint(
            "def f():\n    raise Exception('scripts can be sloppy')\n",
            OUT_OF_SCOPE_PATH,
            select="RL002",
        )
        assert violations == []

    def test_suppression_comment_silences(self):
        violations = lint(
            """\
            def f():
                raise RuntimeError("known")  # reprolint: disable=RL002
            """,
            select="RL002",
        )
        assert violations == []


# --------------------------------------------------------------- RL003


class TestFloatEqualityRule:
    def test_fires_on_float_literal_comparison(self):
        violations = lint(
            "def f(nu):\n    return nu == 0.5\n", BO_PATH, select="RL003"
        )
        assert rule_ids(violations) == ["RL003"]

    def test_fires_on_division_result_comparison(self):
        violations = lint(
            "def f(a, b, c):\n    return a / b != c\n",
            DEVICE_PATH,
            select="RL003",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_int_comparisons_are_fine(self):
        violations = lint(
            "def f(n):\n    return n == 3 or n != 0\n", BO_PATH, select="RL003"
        )
        assert violations == []

    def test_ordering_comparisons_are_fine(self):
        violations = lint(
            "def f(x):\n    return x <= 0.5 or x > 1.0\n", BO_PATH, select="RL003"
        )
        assert violations == []

    def test_only_numerical_packages_in_scope(self):
        source = "def f(x):\n    return x == 0.5\n"
        assert lint(source, Path("src/repro/ar/fixture.py"), select="RL003") == []
        assert rule_ids(lint(source, BO_PATH, select="RL003")) == ["RL003"]

    def test_suppression_comment_silences(self):
        violations = lint(
            "def f(x):\n    return x == 0.5  # reprolint: disable=RL003\n",
            BO_PATH,
            select="RL003",
        )
        assert violations == []


# --------------------------------------------------------------- RL004


class TestUnitSuffixRule:
    def test_fires_on_suffixless_float_parameter(self):
        violations = lint(
            "def measure(latency: float) -> float:\n    return latency\n",
            select="RL004",
        )
        assert rule_ids(violations) == ["RL004"]
        assert "_ms" in violations[0].message

    def test_fires_on_unannotated_temporal_parameter(self):
        violations = lint(
            "def wait(timeout):\n    return timeout\n", select="RL004"
        )
        assert rule_ids(violations) == ["RL004"]

    def test_fires_on_dataclass_field(self):
        violations = lint(
            """\
            from dataclasses import dataclass

            @dataclass
            class Config:
                control_period: float = 1.0
            """,
            select="RL004",
        )
        assert rule_ids(violations) == ["RL004"]

    def test_unit_suffixes_satisfy(self):
        violations = lint(
            """\
            def measure(latency_ms: float, period_s: float) -> float:
                return latency_ms + period_s
            """,
            select="RL004",
        )
        assert violations == []

    def test_ms_seconds_aliases_satisfy(self):
        violations = lint(
            """\
            from repro.units import Ms, Seconds

            def measure(latency: Ms, period: Seconds) -> Ms:
                return latency
            """,
            select="RL004",
        )
        assert violations == []

    def test_dimensionless_names_exempt(self):
        violations = lint(
            """\
            def run(
                n_periods: int,
                time_constant_steps: float,
                latency_ratio: float,
                w_latency: float,
                latency_only: bool = False,
            ) -> None:
                pass
            """,
            select="RL004",
        )
        assert violations == []

    def test_suppression_comment_silences(self):
        violations = lint(
            """\
            def measure(
                latency: float,  # reprolint: disable=RL004
            ) -> float:
                return latency
            """,
            select="RL004",
        )
        assert violations == []


# --------------------------------------------------------------- RL005


class TestPublicAPIAnnotationsRule:
    def test_fires_on_missing_param_annotation(self):
        violations = lint(
            "def run(system, n: int) -> None:\n    pass\n", select="RL005"
        )
        assert rule_ids(violations) == ["RL005"]
        assert "system" in violations[0].message

    def test_fires_on_missing_return_annotation(self):
        violations = lint("def run(n: int):\n    pass\n", select="RL005")
        assert rule_ids(violations) == ["RL005"]
        assert "return" in violations[0].message

    def test_fires_on_unannotated_varargs(self):
        violations = lint(
            "def run(*args, **kwargs) -> None:\n    pass\n", select="RL005"
        )
        assert rule_ids(violations) == ["RL005"]
        assert "*args" in violations[0].message

    def test_private_and_nested_functions_exempt(self):
        violations = lint(
            """\
            def _helper(x):
                pass

            def public() -> None:
                def inner(y):
                    pass
            """,
            select="RL005",
        )
        assert violations == []

    def test_methods_checked_and_self_exempt(self):
        violations = lint(
            """\
            class Model:
                def __init__(self, n: int) -> None:
                    self.n = n

                def fit(self, data) -> None:
                    pass
            """,
            select="RL005",
        )
        assert rule_ids(violations) == ["RL005"]
        assert "Model.fit" in violations[0].message

    def test_suppression_comment_silences(self):
        violations = lint(
            "def run(system) -> None:  # reprolint: disable=RL005\n    pass\n",
            select="RL005",
        )
        assert violations == []


# ---------------------------------------------------------- engine/CLI


class TestEngine:
    def test_file_level_suppression(self):
        violations = lint(
            """\
            # reprolint: disable-file=RL001
            import numpy as np

            def a():
                return np.random.default_rng()

            def b():
                return np.random.default_rng()
            """,
            select="RL001",
        )
        assert violations == []

    def test_disable_all_on_line(self):
        violations = lint(
            """\
            import numpy as np

            def f(latency):
                return np.random.default_rng()  # reprolint: disable=all
            """,
        )
        assert sorted(rule_ids(violations)) == ["RL004", "RL005", "RL005"]

    def test_directive_inside_string_is_inert(self):
        violations = lint(
            """\
            import numpy as np

            def f() -> str:
                np.random.default_rng("# reprolint: disable=RL001")
                return "x"
            """,
            select="RL001",
        )
        assert rule_ids(violations) == ["RL001"]

    def test_suppression_parsing(self):
        sup = parse_suppressions(
            "x = 1  # reprolint: disable=RL001,RL003\n"
            "# reprolint: disable-file=RL004\n"
        )
        assert sup.is_suppressed("RL001", 1)
        assert sup.is_suppressed("RL003", 1)
        assert not sup.is_suppressed("RL002", 1)
        assert sup.is_suppressed("RL004", 999)

    def test_syntax_error_reported_not_crashed(self):
        violations = lint("def broken(:\n", select="RL001")
        assert rule_ids(violations) == ["E901"]

    def test_violations_sorted_by_location(self):
        violations = lint(
            """\
            import numpy as np

            def z():
                return np.random.default_rng()

            def a(latency: float) -> float:
                return np.random.default_rng().normal() + latency
            """,
        )
        lines = [v.line for v in violations]
        assert lines == sorted(lines)

    def test_iter_python_files_dedupes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        files = list(iter_python_files([tmp_path, tmp_path / "a.py"]))
        assert [f.name for f in files] == ["a.py", "b.py"]


class TestCLI:
    def write_fixture(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()\n"
        )
        return tmp_path / "src"

    def test_exit_one_on_violations(self, tmp_path, capsys):
        src = self.write_fixture(tmp_path)
        code = reprolint_main([str(src)])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL001" in out and "bad.py" in out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        src = self.write_fixture(tmp_path)
        code = reprolint_main([str(src), "--ignore", "RL001,RL005"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_select_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            reprolint_main(["--select", "RL999", "."])

    def test_missing_path_is_usage_error(self, tmp_path):
        assert reprolint_main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out

    def test_module_invocation_subprocess(self, tmp_path):
        src = self.write_fixture(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", str(src)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(TOOLS_DIR), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RL001" in proc.stdout


# ------------------------------------------------------ the real gate


class TestRepoIsClean:
    """The tree this suite ships with must pass its own linter."""

    def test_src_is_clean(self):
        violations = lint_paths([REPO_ROOT / "src"], ALL_RULES)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_benchmarks_and_examples_are_clean(self):
        violations = lint_paths(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"], ALL_RULES
        )
        assert violations == [], "\n".join(v.render() for v in violations)

"""Unit tests for repro.bo.acquisition."""

import numpy as np
import pytest

from repro.bo.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    make_acquisition,
)
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern
from repro.errors import ConfigurationError


@pytest.fixture
def fitted_gp(rng):
    x = np.linspace(0, 1, 12)[:, None]
    y = (x[:, 0] - 0.6) ** 2  # minimum at 0.6
    return GaussianProcess(kernel=Matern(length_scale=0.3), noise=1e-6).fit(x, y)


class TestExpectedImprovement:
    def test_non_negative_everywhere(self, fitted_gp, rng):
        ei = ExpectedImprovement()
        scores = ei(fitted_gp, rng.uniform(-1, 2, size=(50, 1)), best_y=0.05)
        assert np.all(scores >= 0)

    def test_prefers_region_near_minimum(self, fitted_gp):
        ei = ExpectedImprovement(xi=0.0)
        candidates = np.array([[0.6], [0.05]])
        scores = ei(fitted_gp, candidates, best_y=0.1)
        assert scores[0] > scores[1]

    def test_zero_when_no_improvement_possible(self, fitted_gp):
        """With an incumbent far below anything achievable, EI ≈ 0."""
        ei = ExpectedImprovement()
        scores = ei(fitted_gp, np.array([[0.6]]), best_y=-10.0)
        assert scores[0] == pytest.approx(0.0, abs=1e-6)

    def test_higher_uncertainty_raises_ei_at_equal_mean(self, rng):
        x = np.array([[0.0], [1.0]])
        gp = GaussianProcess(kernel=Matern(length_scale=0.2), noise=1e-6)
        gp.fit(x, np.array([1.0, 1.0]))
        ei = ExpectedImprovement(xi=0.0)
        # Midpoint has the same posterior mean but larger std than a
        # training point.
        scores = ei(gp, np.array([[0.5], [0.0]]), best_y=1.0)
        assert scores[0] > scores[1]

    def test_negative_xi_raises(self):
        with pytest.raises(ConfigurationError):
            ExpectedImprovement(xi=-0.1)


class TestProbabilityOfImprovement:
    def test_bounded_in_unit_interval(self, fitted_gp, rng):
        pi = ProbabilityOfImprovement()
        scores = pi(fitted_gp, rng.uniform(-1, 2, size=(40, 1)), best_y=0.1)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_more_conservative_than_ei_on_exploration(self, fitted_gp):
        """PI under-scores a high-variance, slightly-worse-mean point
        relative to EI — the paper's reason to discard it (§IV-C)."""
        pi = ProbabilityOfImprovement(xi=0.0)
        ei = ExpectedImprovement(xi=0.0)
        explore, exploit = np.array([[3.0]]), np.array([[0.6]])
        pi_ratio = pi(fitted_gp, explore, 0.02)[0] / max(
            pi(fitted_gp, exploit, 0.02)[0], 1e-12
        )
        ei_ratio = ei(fitted_gp, explore, 0.02)[0] / max(
            ei(fitted_gp, exploit, 0.02)[0], 1e-12
        )
        assert pi_ratio <= ei_ratio


class TestLowerConfidenceBound:
    def test_kappa_zero_is_negated_mean(self, fitted_gp, rng):
        lcb = LowerConfidenceBound(kappa=0.0)
        x = rng.uniform(0, 1, size=(10, 1))
        assert np.allclose(lcb(fitted_gp, x, 0.0), -fitted_gp.predict(x).mean)

    def test_larger_kappa_favors_uncertain_points(self, fitted_gp):
        far = np.array([[5.0]])  # high variance
        near = np.array([[0.6]])  # low variance, good mean
        tame = LowerConfidenceBound(kappa=0.1)
        bold = LowerConfidenceBound(kappa=10.0)
        assert tame(fitted_gp, near, 0)[0] > tame(fitted_gp, far, 0)[0]
        assert bold(fitted_gp, far, 0)[0] > bold(fitted_gp, near, 0)[0]

    def test_negative_kappa_raises(self):
        with pytest.raises(ConfigurationError):
            LowerConfidenceBound(kappa=-1.0)


class TestMakeAcquisition:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ei", ExpectedImprovement),
            ("pi", ProbabilityOfImprovement),
            ("lcb", LowerConfidenceBound),
            ("EI", ExpectedImprovement),
        ],
    )
    def test_factory(self, name, cls):
        assert isinstance(make_acquisition(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown acquisition"):
            make_acquisition("ucb")

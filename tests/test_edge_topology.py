"""Multi-server edge topology: placement, admission, fallback, migration.

The tentpole contracts under test:

- a 1-node topology with admission disabled reproduces the PR 5
  singleton edge fleet **bit for bit** (same reports, same render);
- placement decisions are a pure function of (seed, arrival order,
  topology config) — the Hypothesis property;
- admission rejections and mid-run shedding/outages degrade sessions to
  device-only gracefully (full trajectories, no crash);
- scalar/backend pricing parity extends to heterogeneous shares from
  N >= 2 different servers;
- stale tenant handles raise :class:`~repro.errors.UnknownTenantError`
  instead of silently corrupting the demand table.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.plan import EvalPlan
from repro.backend.solve import solve
from repro.core.controller import HBOConfig
from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.profiles import GALAXY_S22, get_profile
from repro.device.resources import Resource
from repro.device.soc import galaxy_s22_soc
from repro.edge.admission import (
    OPEN_ADMISSION,
    AdmissionConfig,
    decide,
    shed_plan,
    utilization,
)
from repro.edge.link import LinkConfig, WirelessLink
from repro.edge.placement import (
    PlacementRequest,
    migration_candidate,
    node_offload_price_ms,
    place,
    resolve_policy,
)
from repro.edge.runtime import EdgeConfig, build_edge_runtime, extend_profile
from repro.edge.server import EdgeServer, EdgeServerConfig
from repro.edge.topology import (
    EdgeNodeConfig,
    EdgeTopology,
    EdgeTopologyConfig,
    MigrationConfig,
    default_topology,
)
from repro.errors import ConfigurationError, EdgeError, UnknownTenantError
from repro.experiments.edge import (
    flash_crowd_specs,
    run_saturation_study,
    saturation_topology,
)
from repro.experiments.fleet import render, run_fleet_experiment
from repro.fleet.export import fleet_result_to_dict
from repro.fleet.scheduler import FleetConfig, FleetScheduler
from repro.rng import derive_seed
from repro.sim.scenarios import (
    NETWORK_DRIFT_SCHEDULE,
    ServerOutage,
    apply_network_drift,
    network_drift_scale,
    staggered_drift_schedules,
)

SMALL = HBOConfig(n_initial=2, n_iterations=2)


def _node(name, distance=0.0, capacity=6.0, admission=None, rtt_ms=10.0):
    return EdgeNodeConfig(
        server=EdgeServerConfig(capacity_streams=capacity, name=name),
        link=LinkConfig(rtt_ms=rtt_ms),
        admission=admission if admission is not None else OPEN_ADMISSION,
        distance=distance,
    )


class TestUnknownTenant:
    """Satellite: stale handles raise a typed error, not KeyError."""

    def test_release_of_unknown_tenant_raises(self):
        server = EdgeServer(EdgeServerConfig(name="edge-x"))
        with pytest.raises(UnknownTenantError) as exc:
            server.release("ghost")
        assert exc.value.tenant_id == "ghost"
        assert exc.value.server == "edge-x"
        assert exc.value.operation == "release"

    def test_double_release_raises(self):
        server = EdgeServer(EdgeServerConfig())
        server.register("s0")
        server.release("s0")
        with pytest.raises(UnknownTenantError):
            server.release("s0")

    def test_set_demand_on_released_tenant_raises(self):
        server = EdgeServer(EdgeServerConfig())
        server.register("s0")
        server.release("s0")
        with pytest.raises(UnknownTenantError):
            server.set_demand("s0", 1.0)

    def test_unknown_tenant_error_is_an_edge_error(self):
        assert issubclass(UnknownTenantError, EdgeError)

    def test_runtime_release_stays_idempotent(self):
        """The runtime wrapper absorbs double release — only raw server
        handles carry the strict contract."""
        runtime = build_edge_runtime(session_id="r0", seed=1)
        runtime.release()
        runtime.release()  # no raise

    def test_topology_detach_of_unassigned_session_raises(self):
        topology = EdgeTopology(EdgeTopologyConfig.single())
        with pytest.raises(UnknownTenantError) as exc:
            topology.detach("ghost")
        assert exc.value.operation == "detach"


class TestAdmission:
    def test_config_validation(self):
        with pytest.raises(EdgeError):
            AdmissionConfig(admit_utilization=0.0)
        with pytest.raises(EdgeError):
            AdmissionConfig(admit_utilization=1.0, shed_utilization=0.5)
        with pytest.raises(EdgeError):
            AdmissionConfig(est_offload_fraction=1.5)

    def test_utilization_requires_positive_capacity(self):
        with pytest.raises(EdgeError):
            utilization(1.0, 0.0)

    def test_disabled_policy_admits_at_any_load(self):
        decision = decide(OPEN_ADMISSION, "e", 1e9, 1e9, 1.0)
        assert decision.admitted and decision.reason == ""

    def test_threshold_splits_admit_and_reject(self):
        config = AdmissionConfig(
            admit_utilization=1.0, est_offload_fraction=1.0
        )
        assert decide(config, "e", 4.0, 2.0, 6.0).admitted
        rejected = decide(config, "e", 5.0, 2.0, 6.0)
        assert not rejected.admitted
        assert "exceeds admit threshold" in rejected.reason
        assert rejected.utilization == pytest.approx(7.0 / 6.0)

    def test_shed_plan_is_empty_under_the_threshold(self):
        config = AdmissionConfig(shed_utilization=1.5)
        assert shed_plan(config, [("a", 3.0), ("b", 3.0)], 6.0) == ()
        assert shed_plan(OPEN_ADMISSION, [("a", 100.0)], 1.0) == ()

    def test_shed_plan_peels_newest_first_down_to_admit_band(self):
        config = AdmissionConfig(
            admit_utilization=1.0, shed_utilization=1.5
        )
        tenants = [("old", 4.0), ("mid", 3.0), ("new", 3.0)]
        # 10/6 > 1.5: shed "new" (7/6 > 1) then "mid" (4/6 <= 1).
        assert shed_plan(config, tenants, 6.0) == ("new", "mid")


class TestTopology:
    def test_config_rejects_empty_and_duplicate_nodes(self):
        with pytest.raises(EdgeError):
            EdgeTopologyConfig(nodes=())
        with pytest.raises(EdgeError):
            EdgeTopologyConfig(nodes=(_node("a"), _node("a")))

    def test_singleton_detection(self):
        assert EdgeTopologyConfig.single().is_singleton
        assert not default_topology(1).is_singleton  # admission enabled
        assert not default_topology(4).is_singleton

    def test_default_topology_is_a_pure_function(self):
        assert default_topology(4) == default_topology(4)
        names = [n.name for n in default_topology(3).nodes]
        assert names == ["edge-0", "edge-1", "edge-2"]

    def test_attach_detach_bookkeeping(self):
        topology = EdgeTopology(
            EdgeTopologyConfig(nodes=(_node("a"), _node("b")))
        )
        link = WirelessLink(LinkConfig(), seed=1)
        topology.attach("s0", "a", link)
        assert topology.assignment_of("s0") == "a"
        assert topology.node("a").server.total_streams == 0.0
        with pytest.raises(EdgeError):
            topology.attach("s0", "b", link)  # double attach
        assert topology.detach("s0") == "a"
        assert topology.assignment_of("s0") is None

    def test_outage_rejects_regardless_of_admission(self):
        topology = EdgeTopology(EdgeTopologyConfig(nodes=(_node("a"),)))
        topology.node("a").set_outage(True)
        decision = topology.admit("a", 0.0)
        assert not decision.admitted and "outage" in decision.reason

    def test_bandwidth_scale_clamps_to_link_bounds(self):
        node_config = _node("a")
        topology = EdgeTopology(EdgeTopologyConfig(nodes=(node_config,)))
        node = topology.node("a")
        node.set_bandwidth_scale(1e-9)
        assert node.bandwidth_scale == node_config.link.min_scale
        node.set_bandwidth_scale(1e9)
        assert node.bandwidth_scale == node_config.link.max_scale


class TestPlacement:
    def _topology(self, **kwargs):
        return EdgeTopology(
            EdgeTopologyConfig(
                nodes=(
                    _node("near", distance=0.0, **kwargs),
                    _node("mid", distance=10.0, **kwargs),
                    _node("far", distance=20.0, **kwargs),
                )
            )
        )

    def test_unknown_policy_raises(self):
        with pytest.raises(EdgeError):
            resolve_policy("round-robin")

    def test_nearest_ranks_by_distance_to_position(self):
        topology = self._topology()
        outcome = place(
            topology, PlacementRequest("s", 1.0, position=9.0), "nearest"
        )
        assert outcome.node == "mid"

    def test_least_loaded_avoids_busy_nodes(self):
        topology = self._topology()
        link = WirelessLink(LinkConfig(), seed=1)
        topology.attach("busy", "near", link)
        topology.node("near").server.set_demand("busy", 5.0)
        outcome = place(
            topology, PlacementRequest("s", 1.0), "least-loaded"
        )
        assert outcome.node == "mid"  # first zero-load node in config order

    def test_price_aware_needs_a_profile(self):
        topology = self._topology()
        with pytest.raises(EdgeError):
            place(topology, PlacementRequest("s", 1.0), "price-aware")

    def test_price_aware_picks_the_cheapest_node(self):
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        topology = self._topology()
        link = WirelessLink(LinkConfig(), seed=1)
        topology.attach("busy", "near", link)
        topology.node("near").server.set_demand("busy", 12.0)
        outcome = place(
            topology,
            PlacementRequest("s", 1.0, profile=profile),
            "price-aware",
        )
        prices = {
            node.name: node_offload_price_ms(node, profile, 1.0)
            for node in topology.nodes
        }
        assert outcome.node == min(prices, key=lambda k: (prices[k],))
        assert outcome.node != "near"

    def test_rejection_cascade_records_every_refusal(self):
        admission = AdmissionConfig(
            admit_utilization=0.1, est_offload_fraction=1.0
        )
        topology = self._topology(admission=admission, capacity=1.0)
        outcome = place(
            topology, PlacementRequest("s", 5.0), "least-loaded"
        )
        assert not outcome.admitted and outcome.node is None
        assert len(outcome.rejections) == 3
        assert all(not r.admitted for r in outcome.rejections)

    def test_outage_nodes_are_never_ranked(self):
        topology = self._topology()
        topology.node("near").set_outage(True)
        outcome = place(
            topology, PlacementRequest("s", 1.0, position=0.0), "nearest"
        )
        assert outcome.node == "mid"


class TestPlacementDeterminism:
    """Satellite: placement is a pure function of (seed, arrival order,
    topology config)."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=30.0),
                st.floats(min_value=0.1, max_value=4.0),
            ),
            min_size=1,
            max_size=8,
        ),
        policy=st.sampled_from(["nearest", "least-loaded"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_replays_place_identically(self, seed, arrivals, policy):
        def replay():
            topology = EdgeTopology(
                default_topology(3, admission=AdmissionConfig())
            )
            outcomes = []
            for i, (position, est) in enumerate(arrivals):
                sid = f"s{i}"
                outcome = place(
                    topology,
                    PlacementRequest(sid, est, position=position),
                    policy,
                )
                outcomes.append((outcome.node, len(outcome.rejections)))
                if outcome.admitted:
                    link = WirelessLink(
                        topology.node(outcome.node).config.link,
                        seed=derive_seed(seed, sid),
                    )
                    node = topology.attach(sid, outcome.node, link)
                    node.server.set_demand(sid, est)
            return outcomes

        assert replay() == replay()


class TestDriftMap:
    """Satellite: apply_network_drift generalizes to per-server maps."""

    def test_legacy_tuple_call_sites_are_byte_identical(self):
        a = WirelessLink(LinkConfig(), seed=3)
        b = WirelessLink(LinkConfig(), seed=3)
        for now_s in (0.0, 15.0, 30.0, 45.0, 60.0, 90.0):
            scale_a = apply_network_drift(a, now_s)
            scale_b = apply_network_drift(
                b, now_s, {"n0": NETWORK_DRIFT_SCHEDULE}, server="n0"
            )
            assert scale_a == scale_b
            assert scale_a == network_drift_scale(now_s)
            assert a.bytes_per_ms == b.bytes_per_ms

    def test_map_without_server_name_raises(self):
        link = WirelessLink(LinkConfig(), seed=3)
        with pytest.raises(ConfigurationError):
            apply_network_drift(link, 0.0, {"n0": NETWORK_DRIFT_SCHEDULE})

    def test_server_absent_from_map_stays_nominal(self):
        link = WirelessLink(LinkConfig(), seed=3)
        apply_network_drift(link, 30.0)  # collapse to 0.25 first
        scale = apply_network_drift(
            link, 30.0, {"other": NETWORK_DRIFT_SCHEDULE}, server="n0"
        )
        assert scale == 1.0
        assert link.bytes_per_ms == link.config.bytes_per_ms

    def test_staggered_schedules_shift_breakpoints_per_node(self):
        plans = staggered_drift_schedules(["a", "b", "c"], stagger_s=10.0)
        assert set(plans) == {"a", "b", "c"}
        assert plans["a"] == NETWORK_DRIFT_SCHEDULE
        for i, name in enumerate(["a", "b", "c"]):
            for (t0, s0), (t1, s1) in zip(NETWORK_DRIFT_SCHEDULE, plans[name]):
                assert s1 == s0
                assert t1 == (t0 + 10.0 * i if t0 > 0 else t0)

    def test_server_outage_validation_and_coverage(self):
        episode = ServerOutage("edge-0", 5.0, 10.0)
        assert not episode.covers(4.9)
        assert episode.covers(5.0)
        assert not episode.covers(10.0)
        with pytest.raises(ConfigurationError):
            ServerOutage("edge-0", 10.0, 5.0)
        with pytest.raises(ConfigurationError):
            ServerOutage("", 0.0, 1.0)


class TestSingletonEquivalence:
    """Tentpole acceptance: 1-node open topology == PR 5 singleton."""

    def test_single_node_topology_matches_legacy_edge_bit_for_bit(self):
        legacy = run_fleet_experiment(
            seed=2024, config=SMALL, n_sessions=6, edge=EdgeConfig()
        )
        topo = run_fleet_experiment(
            seed=2024,
            config=SMALL,
            n_sessions=6,
            topology=EdgeTopologyConfig.single(),
        )
        assert topo.result.topology_stats is None
        for a, b in zip(legacy.result.reports, topo.result.reports):
            assert a.costs == b.costs
            assert a.epsilons == b.epsilons
            assert a.latencies_ms == b.latencies_ms
            assert a.qualities == b.qualities
        assert render(legacy) == render(topo)


class TestTopologyFleet:
    def test_config_cross_validation(self):
        with pytest.raises(Exception):
            FleetConfig(
                edge=EdgeConfig(), topology=EdgeTopologyConfig.single()
            )
        with pytest.raises(Exception):
            FleetConfig(edge_outages=(ServerOutage("edge-0", 0.0, 1.0),))
        with pytest.raises(Exception):
            FleetConfig(
                topology=default_topology(2),
                edge_outages=(ServerOutage("nope", 0.0, 1.0),),
            )
        with pytest.raises(Exception):
            FleetConfig(topology=default_topology(2), placement="bogus")

    def test_topology_fleet_is_deterministic(self):
        def run():
            scheduler = FleetScheduler(
                flash_crowd_specs(6, seed=5),
                seed=derive_seed(5, "topo-det"),
                config=FleetConfig(
                    hbo=SMALL,
                    warm_start=False,
                    topology=saturation_topology(2),
                    placement="least-loaded",
                ),
            )
            return fleet_result_to_dict(scheduler.run())

        assert run() == run()

    def test_saturation_degrades_gracefully_to_device(self):
        """Oversubscribing tiny servers rejects/sheds sessions without
        crashing; every session still completes its full budget."""
        scheduler = FleetScheduler(
            flash_crowd_specs(8, seed=7),
            seed=derive_seed(7, "topo-sat"),
            config=FleetConfig(
                hbo=SMALL,
                warm_start=False,
                topology=saturation_topology(2, capacity_streams=1.5),
                placement="least-loaded",
            ),
        )
        result = scheduler.run()
        stats = result.topology_stats
        assert stats is not None
        assert stats["rejections"] + stats["sheds"] > 0
        budget = SMALL.total_evaluations
        for report in result.reports:
            assert len(report.costs) == budget
            assert len(report.epsilons) == budget
        degraded = [r for r in result.reports if r.fallback_reason]
        rejected = [r for r in result.reports if not r.placed_node]
        assert degraded or rejected
        assert all(r.fallback_reason == "shed" for r in degraded)

    def test_outage_sheds_every_tenant_onto_its_device(self):
        # Second node far enough that every flash-crowd position (0..30)
        # prefers edge-0 under `nearest` — and it keeps the topology
        # non-singleton so stats are reported.
        topology = EdgeTopologyConfig(
            nodes=(_node("edge-0"), _node("edge-1", distance=1000.0)),
            migration=MigrationConfig(enabled=False),
        )
        scheduler = FleetScheduler(
            flash_crowd_specs(4, seed=9, gap_s=0.0),
            seed=derive_seed(9, "topo-outage"),
            config=FleetConfig(
                hbo=SMALL,
                warm_start=False,
                topology=topology,
                placement="nearest",
                edge_outages=(ServerOutage("edge-0", 2.0, 1000.0),),
            ),
        )
        result = scheduler.run()
        stats = result.topology_stats
        assert stats is not None
        assert stats["outage_fallbacks"] == 4
        assert all(r.fallback_reason == "outage" for r in result.reports)
        assert all(r.placed_node == "edge-0" for r in result.reports)
        assert all(r.edge_node == "" for r in result.reports)
        budget = SMALL.total_evaluations
        assert all(len(r.costs) == budget for r in result.reports)

    def test_drift_collapse_migrates_sessions_with_hysteresis(self):
        topology = EdgeTopologyConfig(
            nodes=(
                _node("edge-0", distance=0.0),
                _node("edge-1", distance=1000.0),
            ),
            migration=MigrationConfig(
                enabled=True, hysteresis=0.05, dwell_ticks=1
            ),
        )
        drift = {"edge-0": ((0.0, 1.0), (2.0, 0.05))}

        def run():
            scheduler = FleetScheduler(
                flash_crowd_specs(4, seed=11, gap_s=0.0),
                seed=derive_seed(11, "topo-mig"),
                config=FleetConfig(
                    hbo=HBOConfig(n_initial=2, n_iterations=4),
                    warm_start=False,
                    topology=topology,
                    placement="nearest",
                    edge_drift=drift,
                ),
            )
            return scheduler.run()

        result = run()
        stats = result.topology_stats
        assert stats is not None
        assert stats["migrations"] > 0
        migrated = [r for r in result.reports if r.migrations > 0]
        assert migrated
        assert all(r.placed_node == "edge-0" for r in result.reports)
        assert all(r.edge_node == "edge-1" for r in migrated)
        # Hysteresis + dwell keep it one-way under a one-way collapse.
        assert all(r.migrations == 1 for r in migrated)
        again = run()
        assert fleet_result_to_dict(result) == fleet_result_to_dict(again)

    def test_admission_control_beats_open_admission_on_the_eps_tail(self):
        """The BENCH_pr7 headline ordering, at a reduced budget."""
        study = run_saturation_study(
            seed=2024, config=HBOConfig(n_initial=2, n_iterations=3)
        )
        assert study.epsilon_tail_win > 0


class TestEdgeParityMultiServer:
    """Acceptance: scalar/backend parity with shares from N >= 2 nodes."""

    def _share_of(self, node, extern):
        node.server.register("bg")
        node.server.set_demand("bg", extern)
        return node.pricing_share(extern_streams=extern)

    def test_heterogeneous_node_shares_batch_bit_for_bit(self):
        topology = EdgeTopology(default_topology(3))
        soc = galaxy_s22_soc()
        model = ContentionModel(soc)
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        load = SystemLoad(rendered_triangles=200_000.0, n_objects=4)
        rows = []
        scalar = []
        for i, node in enumerate(topology.nodes):
            share = self._share_of(node, extern=1.5 * i)
            placements = [TaskPlacement(f"t{i}", profile, Resource.EDGE)]
            state = model.processor_state(placements, load, share)
            scalar.append(
                model.task_latency(placements[0], state, share)
            )
            rows.append((soc, placements, load, share))
        plan = EvalPlan.from_placement_rows(rows)
        result = solve(plan, exact=True)
        for i in range(len(rows)):
            batched = plan.latency_map(result.latency_ms, i)
            assert batched[f"t{i}"] == scalar[i]

    def test_node_prices_diverge_across_the_topology(self):
        """Heterogeneous nodes must actually price differently, or the
        parity test above would be vacuous."""
        topology = EdgeTopology(default_topology(3))
        profile = extend_profile(
            get_profile(GALAXY_S22, "mobilenet-v1"), EdgeConfig()
        )
        prices = [
            node_offload_price_ms(node, profile, 1.0)
            for node in topology.nodes
        ]
        assert len(set(prices)) == len(prices)

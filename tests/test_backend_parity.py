"""Property-based parity suite: scalar reference path vs batched backend.

The vectorized solver (:mod:`repro.backend.solve`) claims two contracts:

- **exact mode** reproduces the scalar reference path — per-processor
  slowdowns, per-task latencies, Eq. 4 ε, Eq. 2 quality and Eq. 5 φ —
  *bit for bit*, including row independence under padding;
- **fast mode** stays within 1e-9 relative of the scalar path.

These tests hammer both over random placements, render loads, triangle
budgets and degradation parameters on both Table I device profiles.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backend.plan import EvalPlan, resource_kind
from repro.backend.solve import solve
from repro.core.cost import cost, normalized_average_latency
from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile
from repro.device.resources import ALL_RESOURCES, EDGE_RESOURCES, Processor
from repro.device.soc import galaxy_s22_soc, pixel7_soc
from repro.edge.runtime import EdgeConfig, extend_profile
from repro.edge.share import EdgeShare

_SOC_OF = {PIXEL7: pixel7_soc, GALAXY_S22: galaxy_s22_soc}
_MODELS = (
    "deconv-munet",
    "deeplabv3",
    "efficientdet-lite",
    "mobilenetDetv1",
    "efficientclass-lite0",
    "inception-v1-q",
    "mobilenet-v1",
    "model-metadata",
    "mnist",
)

devices = st.sampled_from([PIXEL7, GALAXY_S22])
task_specs = st.lists(
    st.tuples(st.sampled_from(_MODELS), st.integers(0, 5)),
    min_size=1,
    max_size=6,
)
loads = st.builds(
    SystemLoad,
    rendered_triangles=st.floats(min_value=0.0, max_value=1.5e6),
    n_objects=st.integers(0, 12),
    submitted_triangles=st.none(),
    base_gpu_streams=st.floats(min_value=0.0, max_value=2.0),
)


edge_shares = st.builds(
    EdgeShare,
    capacity_streams=st.floats(min_value=0.5, max_value=12.0),
    queue_exponent=st.floats(min_value=1.0, max_value=2.0),
    extern_streams=st.floats(min_value=0.0, max_value=20.0),
    rtt_ms=st.floats(min_value=0.0, max_value=80.0),
    bytes_per_ms=st.floats(min_value=100.0, max_value=50_000.0),
    speedup=st.floats(min_value=0.5, max_value=20.0),
)


def _placements(device, specs, edge=False):
    """Resolve (model, choice) specs to valid placements on ``device``.

    With ``edge=True`` profiles are extended with the EDGE row and the
    choice index runs over the 4-resource tuple.
    """
    out = []
    resources = EDGE_RESOURCES if edge else ALL_RESOURCES
    for i, (model, choice) in enumerate(specs):
        profile = get_profile(device, model)
        if edge:
            profile = extend_profile(profile, EdgeConfig())
        supported = [r for r in resources if profile.supports(r)]
        out.append(
            TaskPlacement(f"t{i}", profile, supported[choice % len(supported)])
        )
    return out


def _scalar_reference(model, placements, load):
    """The scalar path, composed method by method (never the backend)."""
    state = model.processor_state(placements, load)
    latencies = {
        p.task_id: model.task_latency(p, state) for p in placements
    }
    return state, latencies


class TestLatencyParity:
    @given(device=devices, specs=task_specs, load=loads)
    @settings(max_examples=150, deadline=None)
    def test_exact_mode_is_bitwise(self, device, specs, load):
        """solve(exact=True) == scalar path to the last bit: slowdowns
        and every per-task latency."""
        soc = _SOC_OF[device]()
        model = ContentionModel(soc)
        placements = _placements(device, specs)
        state, scalar_lat = _scalar_reference(model, placements, load)

        plan = EvalPlan.from_placement_rows([(soc, placements, load)])
        result = solve(plan, exact=True)

        assert result.slowdown[0, 0] == state.slowdown[Processor.CPU]
        assert result.slowdown[0, 1] == state.slowdown[Processor.GPU]
        assert result.slowdown[0, 2] == state.slowdown[Processor.NPU]
        batched = plan.latency_map(result.latency_ms, 0)
        assert set(batched) == set(scalar_lat)
        for task_id in scalar_lat:
            assert batched[task_id] == scalar_lat[task_id]

    @given(device=devices, specs=task_specs, load=loads)
    @settings(max_examples=150, deadline=None)
    def test_fast_mode_within_1e9(self, device, specs, load):
        """Fast mode (SIMD pow) stays within 1e-9 relative of scalar."""
        soc = _SOC_OF[device]()
        model = ContentionModel(soc)
        placements = _placements(device, specs)
        state, scalar_lat = _scalar_reference(model, placements, load)

        plan = EvalPlan.from_placement_rows([(soc, placements, load)])
        result = solve(plan)

        expected_slow = [
            state.slowdown[Processor.CPU],
            state.slowdown[Processor.GPU],
            state.slowdown[Processor.NPU],
        ]
        np.testing.assert_allclose(result.slowdown[0], expected_slow, rtol=1e-9)
        batched = plan.latency_map(result.latency_ms, 0)
        for task_id, ms in scalar_lat.items():
            np.testing.assert_allclose(batched[task_id], ms, rtol=1e-9)

    @given(
        device=devices,
        rows=st.lists(st.tuples(task_specs, loads), min_size=2, max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_row_independence_under_padding(self, device, rows):
        """A row's bits don't depend on its batch-mates: heterogeneous
        task counts are padded, and padding must be inert."""
        soc = _SOC_OF[device]()
        built = [(soc, _placements(device, specs), load) for specs, load in rows]
        batched_plan = EvalPlan.from_placement_rows(built)
        batched = solve(batched_plan, exact=True)
        for i, row in enumerate(built):
            single_plan = EvalPlan.from_placement_rows([row])
            single = solve(single_plan, exact=True)
            assert np.array_equal(batched.slowdown[i], single.slowdown[0])
            m = len(row[1])
            assert np.array_equal(
                batched.latency_ms[i, :m], single.latency_ms[0, :m]
            )
            assert np.all(batched.latency_ms[i, m:] == 0.0)


class TestEdgeParity:
    """Edge rows price bit-identically through the batched solver."""

    @given(device=devices, specs=task_specs, load=loads, share=edge_shares)
    @settings(max_examples=150, deadline=None)
    def test_edge_rows_exact_mode_is_bitwise(self, device, specs, load, share):
        """A row carrying EDGE placements + an EdgeShare matches the
        scalar contention path bit for bit in exact mode."""
        soc = _SOC_OF[device]()
        model = ContentionModel(soc)
        placements = _placements(device, specs, edge=True)
        state = model.processor_state(placements, load, share)
        scalar_lat = {
            p.task_id: model.task_latency(p, state, share) for p in placements
        }

        plan = EvalPlan.from_placement_rows([(soc, placements, load, share)])
        result = solve(plan, exact=True)

        assert result.edge_slowdown is not None
        assert result.edge_slowdown[0] == state.edge_slowdown
        batched = plan.latency_map(result.latency_ms, 0)
        assert set(batched) == set(scalar_lat)
        for task_id in scalar_lat:
            assert batched[task_id] == scalar_lat[task_id]

    @given(
        device=devices,
        rows=st.lists(
            st.tuples(task_specs, loads, st.booleans()), min_size=2, max_size=5
        ),
        share=edge_shares,
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_edge_and_device_rows_are_independent(
        self, device, rows, share
    ):
        """Edge rows and shareless device-only rows coexist in one batch
        without perturbing each other's bits."""
        soc = _SOC_OF[device]()
        built = [
            (
                soc,
                _placements(device, specs, edge=has_edge),
                load,
                share if has_edge else None,
            )
            for specs, load, has_edge in rows
        ]
        batched_plan = EvalPlan.from_placement_rows(built)
        batched = solve(batched_plan, exact=True)
        for i, row in enumerate(built):
            single_plan = EvalPlan.from_placement_rows([row])
            single = solve(single_plan, exact=True)
            assert np.array_equal(batched.slowdown[i], single.slowdown[0])
            m = len(row[1])
            assert np.array_equal(
                batched.latency_ms[i, :m], single.latency_ms[0, :m]
            )

    @given(device=devices, specs=task_specs, load=loads)
    @settings(max_examples=60, deadline=None)
    def test_shareless_four_tuple_rows_match_three_tuple_plans(
        self, device, specs, load
    ):
        """Passing ``share=None`` in a 4-tuple builds a plan structurally
        identical to the pre-edge 3-tuple path (no edge block at all)."""
        soc = _SOC_OF[device]()
        placements = _placements(device, specs)
        plan3 = EvalPlan.from_placement_rows([(soc, placements, load)])
        plan4 = EvalPlan.from_placement_rows([(soc, placements, load, None)])
        assert plan4.task_edge_tx_ms is None
        assert plan4.edge_capacity is None
        r3 = solve(plan3, exact=True)
        r4 = solve(plan4, exact=True)
        assert r4.edge_slowdown is None
        assert np.array_equal(r3.latency_ms, r4.latency_ms)
        assert np.array_equal(r3.slowdown, r4.slowdown)


degradation_objects = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),  # a
        st.floats(min_value=-4.0, max_value=0.0),  # b
        st.floats(min_value=0.0, max_value=3.0),  # c
        st.floats(min_value=0.0, max_value=2.0),  # d
        st.floats(min_value=0.05, max_value=1.0),  # ratio
        st.floats(min_value=0.1, max_value=10.0),  # distance
    ),
    min_size=0,
    max_size=6,
)


class TestCostParity:
    @given(
        device=devices,
        specs=task_specs,
        load=loads,
        objects=degradation_objects,
        expected_scale=st.floats(min_value=0.5, max_value=2.0),
        w=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_epsilon_quality_phi_match_scalar(
        self, device, specs, load, objects, expected_scale, w
    ):
        """ε (Eq. 4), Q (Eq. 2) and φ (Eq. 5) from one batched solve match
        their scalar definitions — bitwise in exact mode."""
        soc = _SOC_OF[device]()
        model = ContentionModel(soc)
        placements = _placements(device, specs)
        _, scalar_lat = _scalar_reference(model, placements, load)
        m = len(placements)

        expected_ms = {
            p.task_id: expected_scale * p.profile.latency(p.resource)
            for p in placements
        }
        scalar_eps = normalized_average_latency(scalar_lat, expected_ms)

        # Scalar Eq. 1/2: per-object error, sequentially averaged (the
        # same accumulation order the backend commits to).
        scalar_q = 1.0
        if objects:
            total = 0.0
            for a, b, c, d, ratio, distance in objects:
                numerator = a * ratio**2 + b * ratio + c
                error = float(np.clip(numerator / distance**d, 0.0, 1.0))
                total += 1.0 - error
            scalar_q = total / len(objects)
        scalar_phi = cost(scalar_q, scalar_eps, w)

        l = len(objects)  # noqa: E741 — Eq. 2's object count
        quality_block = dict(
            obj_ratio=np.array([[o[4] for o in objects]]).reshape(1, l),
            obj_a=np.array([[o[0] for o in objects]]).reshape(1, l),
            obj_b=np.array([[o[1] for o in objects]]).reshape(1, l),
            obj_c=np.array([[o[2] for o in objects]]).reshape(1, l),
            obj_denom=np.array([[o[5] ** o[3] for o in objects]]).reshape(1, l),
        )
        plan = EvalPlan.for_single_soc(
            soc,
            task_iso_ms=np.array(
                [[p.profile.latency(p.resource) for p in placements]]
            ),
            task_kind=np.array([[resource_kind(p.resource) for p in placements]]),
            task_cpu_demand=np.array(
                [[p.profile.cpu_demand for p in placements]]
            ),
            task_gpu_demand=np.array(
                [[p.profile.gpu_demand for p in placements]]
            ),
            task_npu_coverage=np.array(
                [[p.profile.npu_coverage for p in placements]]
            ),
            n_objects=np.array([float(load.n_objects)]),
            submitted_triangles=np.array([load.submitted_triangles]),
            rendered_triangles=np.array([load.rendered_triangles]),
            base_gpu_streams=np.array([load.base_gpu_streams]),
            task_expected_ms=np.array(
                [[expected_ms[p.task_id] for p in placements]]
            ),
            w=float(w),
            **quality_block,
        )
        assert plan.n_task_slots == m

        result = solve(plan, exact=True)
        assert result.epsilon is not None
        assert result.quality is not None
        assert result.phi is not None
        assert result.epsilon[0] == scalar_eps
        assert result.quality[0] == scalar_q
        assert result.phi[0] == scalar_phi

        fast = solve(plan)
        np.testing.assert_allclose(fast.epsilon[0], scalar_eps, rtol=1e-9)
        np.testing.assert_allclose(fast.quality[0], scalar_q, rtol=1e-9)
        np.testing.assert_allclose(
            fast.phi[0], scalar_phi, rtol=1e-9, atol=1e-9
        )

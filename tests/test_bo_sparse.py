"""Tests for the scalable GP tier (docs/optimizer.md).

Covers the tier contract in three layers:

- :func:`~repro.bo.sparse.select_support` — a deterministic, seeded pure
  function of the observation sequence;
- :class:`~repro.bo.sparse.SparseGaussianProcess` — bitwise parity with
  the exact GP at n ≤ budget, bounded support above it;
- the optimizer/fleet integration — sparse-tier proposals reproduce from
  (seed, observation sequence) alone, and tier-off runs stay
  byte-identical at the CLI level.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bo import (
    BayesianOptimizer,
    GaussianProcess,
    SparseGaussianProcess,
    select_support,
)
from repro.bo.space import BoxSpace
from repro.bo.optimizer import Observation
from repro.cli import main
from repro.errors import ConfigurationError, GPFitError
from repro.fleet.batch import SharedOptimizerService
from repro.rng import make_rng, spawn_rngs


def _data(n, d=3, seed=0):
    rng = make_rng(seed)
    x = rng.uniform(size=(n, d))
    y = np.sin(3.0 * x[:, 0]) + 0.3 * rng.normal(size=n)
    return x, y


class TestSelectSupport:
    def test_small_n_keeps_everything_in_order(self):
        _, y = _data(10)
        assert np.array_equal(select_support(y, 16), np.arange(10))
        assert np.array_equal(select_support(y, 10), np.arange(10))

    def test_pure_function_of_seed_and_sequence(self):
        _, y = _data(100)
        a = select_support(y, 16, seed=5)
        b = select_support(y, 16, seed=5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, select_support(y, 16, seed=6))

    def test_keeps_the_incumbent_and_the_most_recent(self):
        _, y = _data(100)
        idx = select_support(y, 16, seed=0)
        assert idx.shape[0] == 16
        assert int(np.argmin(y)) in idx  # incumbent survives
        assert 99 in idx  # newest observation survives
        assert np.array_equal(idx, np.sort(idx))  # insertion order preserved

    def test_budget_respected_exactly(self):
        _, y = _data(500)
        assert select_support(y, 32, seed=1).shape[0] == 32

    def test_rejects_tiny_budget(self):
        _, y = _data(10)
        with pytest.raises(GPFitError):
            select_support(y, 3)


class TestSparseGaussianProcess:
    def test_bitwise_parity_with_exact_at_small_n(self):
        # n ≤ budget runs the identical exact fit: same ops, same order.
        for n in (2, 8, 32):
            x, y = _data(n, seed=n)
            q, _ = _data(9, seed=99)
            exact = GaussianProcess(noise=1e-3).fit(x, y).predict(q)
            sparse = (
                SparseGaussianProcess(noise=1e-3, max_support=32)
                .fit(x, y)
                .predict(q)
            )
            assert np.array_equal(exact.mean, sparse.mean)
            assert np.array_equal(exact.std, sparse.std)

    def test_large_n_conditions_on_the_budget_only(self):
        x, y = _data(300)
        sgp = SparseGaussianProcess(noise=1e-3, max_support=24).fit(x, y)
        assert sgp.n_support == 24
        assert sgp.n_observations == 300
        assert sgp.support_indices.shape == (24,)

    def test_refit_is_deterministic(self):
        x, y = _data(200)
        q, _ = _data(5, seed=7)
        a = SparseGaussianProcess(max_support=16, seed=3).fit(x, y).predict(q)
        b = SparseGaussianProcess(max_support=16, seed=3).fit(x, y).predict(q)
        assert np.array_equal(a.mean, b.mean)
        assert np.array_equal(a.std, b.std)

    def test_shape_mismatch_rejected(self):
        x, y = _data(10)
        with pytest.raises(GPFitError):
            SparseGaussianProcess().fit(x, y[:-1])

    def test_support_indices_before_fit_raises(self):
        with pytest.raises(GPFitError):
            SparseGaussianProcess().support_indices


def _seeded_optimizer(seed, tier="sparse", threshold=8, n_initial=3):
    space = BoxSpace([(0.0, 1.0), (0.0, 1.0)])
    return BayesianOptimizer(
        space,
        n_initial=n_initial,
        seed=seed,
        gp_tier=tier,
        sparse_threshold=threshold,
    )


class TestOptimizerSparseTier:
    def test_tier_validation(self):
        space = BoxSpace([(0.0, 1.0)])
        with pytest.raises(ConfigurationError):
            BayesianOptimizer(space, gp_tier="dense")
        with pytest.raises(ConfigurationError):
            BayesianOptimizer(space, gp_tier="sparse", sparse_threshold=2)

    def test_auto_switch_at_threshold(self):
        opt = _seeded_optimizer(seed=4, threshold=6)
        cost = lambda z: float(np.sum(z**2))  # noqa: E731
        while opt.n_observations <= 6:
            assert not opt.sparse_active
            z = opt.ask()
            opt.tell(z, cost(z))
        assert opt.sparse_active
        opt.tell(opt.ask(), 0.1)  # sparse-tier ask still works

    def test_exact_and_sparse_identical_below_threshold(self):
        # The parity regime: with n never exceeding n*, every sparse-tier
        # draw and fit is the exact tier's, so trajectories are bitwise
        # equal — this is what keeps tier-off behavior unchanged.
        cost = lambda z: float(np.sum((z - 0.4) ** 2))  # noqa: E731
        a = _seeded_optimizer(seed=11, tier="exact")
        b = _seeded_optimizer(seed=11, tier="sparse", threshold=32)
        for _ in range(20):
            za, zb = a.ask(), b.ask()
            assert np.array_equal(za, zb)
            a.tell(za, cost(za))
            b.tell(zb, cost(zb))

    def test_surrogate_dataset_matches_select_support(self):
        opt = _seeded_optimizer(seed=2, threshold=6)
        cost = lambda z: float(np.sum(z))  # noqa: E731
        for _ in range(12):
            z = opt.ask()
            opt.tell(z, cost(z))
        assert opt.sparse_active
        xs, ys = opt.surrogate_dataset()
        y_all = np.asarray([o.cost for o in opt.state.observations])
        idx = select_support(y_all, 6, seed=0)
        assert xs.shape[0] == 6
        assert np.array_equal(ys, y_all[idx])

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        costs=st.lists(
            st.floats(
                min_value=-10.0,
                max_value=10.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=10,
            max_size=24,
        ),
    )
    def test_sparse_proposal_is_pure_function_of_seed_and_sequence(
        self, seed, costs
    ):
        # Replaying the same (seed, observation sequence) into a fresh
        # optimizer must reproduce the sparse-tier proposal bit-for-bit:
        # no hidden state, no extra RNG draws in the support selection.
        rng = make_rng(seed)
        zs = rng.uniform(size=(len(costs), 2))
        donors = [
            Observation(z=z, cost=c) for z, c in zip(zs, costs)
        ]
        proposals = []
        for _ in range(2):
            opt = _seeded_optimizer(seed=seed, threshold=8, n_initial=3)
            opt.warm_start(donors)
            assert opt.sparse_active
            proposals.append(opt.ask())
        assert np.array_equal(proposals[0], proposals[1])


class TestBatchedServiceSparse:
    def test_propose_prices_sparse_sessions_from_their_support_set(self):
        cost = lambda z: float(np.sum((z - 0.3) ** 2))  # noqa: E731
        opts = [_seeded_optimizer(seed=s, threshold=6) for s in (1, 2)]
        for opt in opts:
            for _ in range(12):
                z = opt.ask()
                opt.tell(z, cost(z))
            assert opt.sparse_active
        service = SharedOptimizerService()
        first = service.propose(opts, spawn_rngs(9, len(opts)))
        # Identical sessions + fresh identical streams → identical batch.
        second = SharedOptimizerService().propose(
            opts, spawn_rngs(9, len(opts))
        )
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        # The padded batch width is capped at the support budget.
        widths = {x.shape[0] for x, _ in (o.surrogate_dataset() for o in opts)}
        assert widths == {6}


class TestTierOffByteIdentity:
    def test_fleet_cli_default_equals_explicit_exact_at_seed_2024(
        self, capsys
    ):
        args = ["fleet", "--sessions", "4", "--seed", "2024",
                "--initial", "2", "--iterations", "3"]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--gp-tier", "exact"]) == 0
        exact_out = capsys.readouterr().out
        assert default_out == exact_out

    def test_sparse_below_threshold_is_byte_identical_to_exact(self, capsys):
        # 2 + 3 = 5 observations per session never reaches n* = 999, so
        # the sparse tier must leave the run untouched down to the byte.
        args = ["fleet", "--sessions", "4", "--seed", "2024",
                "--initial", "2", "--iterations", "3"]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--gp-tier", "sparse",
                            "--gp-threshold", "999"]) == 0
        sparse_out = capsys.readouterr().out
        assert default_out == sparse_out

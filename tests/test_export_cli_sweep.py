"""Tests for JSON export, the CLI, and the sweep experiments."""

import json

import pytest

from repro.core.controller import HBOConfig, HBOController
from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments import sweep
from repro.sim.export import (
    allocation_from_dict,
    load_json,
    measurement_to_dict,
    run_result_to_dict,
    save_json,
    trace_from_dict,
    trace_to_dict,
)
from repro.sim.scenarios import build_system
from repro.sim.trace import ActivationRecord, RewardSample, SessionTrace
from repro.device.resources import Resource

FAST = HBOConfig(n_initial=3, n_iterations=3)


@pytest.fixture(scope="module")
def run_result():
    system = build_system("SC2", "CF2", seed=3, noise_sigma=0.02)
    return HBOController(system, FAST, seed=3).activate()


class TestExport:
    def test_run_result_roundtrips_through_json(self, run_result, tmp_path):
        payload = run_result_to_dict(run_result)
        path = tmp_path / "run.json"
        save_json(payload, path)
        loaded = load_json(path)
        assert loaded["best_index"] == run_result.best_index
        assert len(loaded["iterations"]) == len(run_result.iterations)
        best = loaded["iterations"][loaded["best_index"]]
        assert best["cost"] == pytest.approx(run_result.best.cost)

    def test_measurement_dict_fields(self, run_result):
        d = measurement_to_dict(run_result.best.measurement)
        assert set(d) == {
            "latencies_ms", "epsilon", "quality", "triangle_ratio", "allocation",
        }
        assert all(isinstance(v, str) for v in d["allocation"].values())

    def test_allocation_roundtrip(self, run_result):
        d = measurement_to_dict(run_result.best.measurement)["allocation"]
        restored = allocation_from_dict(d)
        assert restored == dict(run_result.best.measurement.allocation)
        assert all(isinstance(r, Resource) for r in restored.values())

    def test_trace_roundtrip(self):
        trace = SessionTrace()
        trace.add_sample(RewardSample(time_s=0.0, reward=0.1, n_objects=1))
        trace.add_sample(
            RewardSample(time_s=2.0, reward=-0.2, n_objects=2, event="placed")
        )
        trace.add_activation(
            ActivationRecord(
                start_time_s=2.0, end_time_s=10.0, trigger="placed",
                best_cost=0.3, best_triangle_ratio=0.7,
                reward_before=-0.2, reward_after=0.1, n_iterations=4,
            )
        )
        restored = trace_from_dict(trace_to_dict(trace))
        assert len(restored.samples) == 2
        assert restored.samples[1].event == "placed"
        assert restored.activations[0].best_triangle_ratio == 0.7

    def test_empty_run_rejected(self):
        from repro.core.controller import HBORunResult

        with pytest.raises(ExperimentError):
            run_result_to_dict(HBORunResult())

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ExperimentError):
            load_json(path)


class TestCLI:
    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SC1" in out and "CF2" in out and "fig5" in out

    def test_profiles_command(self, capsys):
        assert main(["profiles", "--device", "Samsung Galaxy S22"]) == 0
        out = capsys.readouterr().out
        assert "deeplabv3" in out and "nnapi=27.0ms" in out
        assert "NA" in out  # efficientdet-lite has no NNAPI cell

    def test_tune_command_with_export(self, capsys, tmp_path):
        path = tmp_path / "tune.json"
        code = main(
            [
                "tune", "--scenario", "SC2", "--taskset", "CF2",
                "--iterations", "3", "--initial", "3", "--seed", "4",
                "--export", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "triangle ratio" in out
        assert path.exists()
        assert "iterations" in json.loads(path.read_text())

    def test_experiment_command_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "max relative error" in out


class TestSweeps:
    def test_w_sweep_moves_operating_point(self):
        result = sweep.run_w_sweep(
            weights=(0.5, 8.0), seed=3, config=HBOConfig(n_initial=4, n_iterations=8)
        )
        low_w, high_w = result.points
        # Heavier latency weight → more willingness to decimate/relocate:
        # the latency achieved at w=8 must not exceed the one at w=0.5 by
        # much, and quality ordering should follow the weight.
        assert high_w.epsilon <= low_w.epsilon + 0.15
        text = sweep.render_w_sweep(result)
        assert "Weight sweep" in text

    def test_device_comparison_covers_both_devices(self):
        result = sweep.run_device_comparison(
            scenario="SC2", taskset="CF2", seed=3,
            config=HBOConfig(n_initial=3, n_iterations=4),
        )
        devices = [run.device for run in result.runs]
        assert devices == ["Google Pixel 7", "Samsung Galaxy S22"]
        for run in result.runs:
            assert 0.0 < run.quality <= 1.0
            assert run.epsilon >= 0.0 or run.epsilon < 10
        assert "Device comparison" in sweep.render_device_comparison(result)


class TestCLIExperiments:
    """Smoke the remaining experiment subcommands at tiny budgets."""

    @pytest.mark.parametrize(
        "name,marker",
        [
            ("fig2", "Fig. 2 run"),
            ("fig4", "Table III"),
            ("fig9", "user study"),
            ("wsweep", "Weight sweep"),
        ],
    )
    def test_experiment_subcommands(self, capsys, name, marker):
        code = main(
            ["experiment", name, "--iterations", "2", "--initial", "2",
             "--seed", "5"]
        )
        assert code == 0
        assert marker in capsys.readouterr().out

"""Multi-tenant edge inference server with processor-sharing queueing.

One :class:`EdgeServer` is shared by every session that offloads to it —
in a fleet run the scheduler creates a single instance and hands it to
all sessions, so their offloaded streams contend on the shared SimClock
timeline. Tenants register once, then publish their current stream
demand; any tenant's *external* streams (everyone else's demand) feed
its :class:`~repro.edge.share.EdgeShare` pricing snapshot.

Determinism: demands are kept in registration (insertion) order and all
sums run in that order, so totals are bit-stable across runs with the
same admission sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.edge.share import sharing_slowdown
from repro.errors import EdgeError, UnknownTenantError


@dataclass(frozen=True)
class EdgeServerConfig:
    """Capacity model of the shared edge inference server."""

    #: Concurrent inference streams served without queueing.
    capacity_streams: float = 6.0
    #: Power-law exponent of the over-capacity slowdown.
    queue_exponent: float = 1.15
    #: Compute speed relative to a device CPU (server-class silicon).
    speedup: float = 6.0
    name: str = "edge-server"

    def __post_init__(self) -> None:
        if self.capacity_streams <= 0:
            raise EdgeError(
                f"capacity_streams must be > 0, got {self.capacity_streams}"
            )
        if self.queue_exponent < 1.0:
            raise EdgeError(
                f"queue_exponent must be >= 1, got {self.queue_exponent}"
            )
        if self.speedup <= 0:
            raise EdgeError(f"speedup must be > 0, got {self.speedup}")


class EdgeServer:
    """Shared processor-sharing queue over registered tenants."""

    def __init__(self, config: EdgeServerConfig | None = None) -> None:
        self.config = config if config is not None else EdgeServerConfig()
        self._demand_streams: Dict[str, float] = {}

    @property
    def tenant_ids(self) -> Tuple[str, ...]:
        """Registered tenants in registration order."""
        return tuple(self._demand_streams)

    def register(self, tenant_id: str) -> None:
        """Join the server with zero demand."""
        if tenant_id in self._demand_streams:
            raise EdgeError(f"tenant {tenant_id!r} is already registered")
        self._demand_streams[tenant_id] = 0.0

    def release(self, tenant_id: str) -> None:
        """Leave the server, dropping any published demand.

        Raises :class:`~repro.errors.UnknownTenantError` for ids that are
        not registered — including a second release of the same id — so a
        stale session handle fails loudly instead of silently corrupting
        another tenant's demand accounting.
        """
        if tenant_id not in self._demand_streams:
            raise UnknownTenantError(tenant_id, self.config.name, "release")
        del self._demand_streams[tenant_id]

    def set_demand(self, tenant_id: str, streams: float) -> None:
        """Publish the tenant's current offloaded stream demand."""
        if tenant_id not in self._demand_streams:
            raise UnknownTenantError(tenant_id, self.config.name, "set_demand")
        if streams < 0:
            raise EdgeError(
                f"demand must be >= 0 streams, got {streams} "
                f"from tenant {tenant_id!r}"
            )
        self._demand_streams[tenant_id] = float(streams)

    def demand_of(self, tenant_id: str) -> float:
        if tenant_id not in self._demand_streams:
            raise UnknownTenantError(tenant_id, self.config.name, "demand_of")
        return self._demand_streams[tenant_id]

    @property
    def total_streams(self) -> float:
        """All tenants' demand, summed in registration order."""
        total = 0.0
        for streams in self._demand_streams.values():
            total += streams
        return total

    def extern_streams(self, tenant_id: str) -> float:
        """Demand from every tenant *except* ``tenant_id``.

        Summed in registration order skipping the caller (not
        ``total - own``), so conservation ``extern + own == total`` holds
        to float associativity, not just approximately.
        """
        if tenant_id not in self._demand_streams:
            raise UnknownTenantError(
                tenant_id, self.config.name, "extern_streams"
            )
        extern = 0.0
        for other, streams in self._demand_streams.items():
            if other != tenant_id:
                extern += streams
        return extern

    def slowdown(self) -> float:
        """Processor-sharing slowdown at the current total demand."""
        return sharing_slowdown(
            self.total_streams,
            self.config.capacity_streams,
            self.config.queue_exponent,
        )

    def snapshot(self) -> Dict[str, float]:
        """Tenant → demand, for reports and tests."""
        return dict(self._demand_streams)

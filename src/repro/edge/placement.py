"""Deterministic placement policies over an edge topology.

Given one arriving session and the live :class:`~repro.edge.topology.
EdgeTopology`, a policy produces a preference order over nodes;
:func:`place` walks that order and lands the session on the first node
whose admission control says yes. Three policies ship:

- ``nearest`` — rank by |node.distance − request.position|; the classic
  latency-proxy heuristic that ignores load entirely.
- ``least-loaded`` — rank by live utilization; the classic load proxy
  that ignores link quality entirely.
- ``price-aware`` — rank by what the offload would actually cost,
  through :func:`repro.edge.share.offload_price_ms`. Because the
  ranking arithmetic is the same helper the contention model and the
  vectorized backend charge with, a price-aware decision can never
  disagree with the latency the session subsequently observes (modulo
  drift), and scalar/backend parity extends to N servers for free.

Every policy is a pure function of (topology state, request) — no
randomness — so placement sequences are reproducible from (seed,
arrival order, topology config) alone, a property the Hypothesis suite
pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.device.profiles import StaticProfile
from repro.edge.admission import AdmissionDecision
from repro.edge.share import offload_price_ms
from repro.edge.topology import EdgeNode, EdgeTopology
from repro.errors import EdgeError


@dataclass(frozen=True)
class PlacementRequest:
    """One session asking the topology for a server."""

    session_id: str
    #: Estimated stream demand the session would place on a server.
    est_streams: float
    #: The session's 1-D position, compared against node distances.
    position: float = 0.0
    #: Representative profile for price-aware ranking (typically the
    #: heaviest CPU-demand task in the session's taskset).
    profile: Optional[StaticProfile] = None

    def __post_init__(self) -> None:
        if self.est_streams < 0:
            raise EdgeError(
                f"est_streams must be >= 0, got {self.est_streams}"
            )


@dataclass(frozen=True)
class PlacementOutcome:
    """Where (whether) a session landed, with the full rejection trail."""

    session_id: str
    policy: str
    #: Node name, or None when every node rejected (device fallback).
    node: Optional[str]
    rejections: Tuple[AdmissionDecision, ...] = ()

    @property
    def admitted(self) -> bool:
        return self.node is not None


PlacementPolicy = Callable[
    [EdgeTopology, PlacementRequest], Sequence[EdgeNode]
]


def _serving_nodes(topology: EdgeTopology) -> Tuple[EdgeNode, ...]:
    """Nodes a policy may rank: config order, outages excluded."""
    return tuple(node for node in topology.nodes if not node.in_outage)


def nearest_policy(
    topology: EdgeTopology, request: PlacementRequest
) -> Tuple[EdgeNode, ...]:
    """Closest node first; config order breaks distance ties."""
    nodes = _serving_nodes(topology)
    order = sorted(
        range(len(nodes)),
        key=lambda i: (abs(nodes[i].config.distance - request.position), i),
    )
    return tuple(nodes[i] for i in order)


def least_loaded_policy(
    topology: EdgeTopology, request: PlacementRequest
) -> Tuple[EdgeNode, ...]:
    """Emptiest node first; config order breaks utilization ties."""
    nodes = _serving_nodes(topology)
    order = sorted(
        range(len(nodes)), key=lambda i: (nodes[i].utilization, i)
    )
    return tuple(nodes[i] for i in order)


def node_offload_price_ms(
    node: EdgeNode, profile: StaticProfile, est_streams: float
) -> float:
    """What ``profile`` would cost on ``node`` if it joined right now.

    Prices at the node's live total demand plus the arrival's estimate,
    through the same :func:`~repro.edge.share.offload_price_ms` helper
    the contention model charges with.
    """
    share = node.pricing_share(extern_streams=node.server.total_streams)
    return offload_price_ms(
        profile, share, node.server.total_streams + est_streams
    )


def price_aware_policy(
    topology: EdgeTopology, request: PlacementRequest
) -> Tuple[EdgeNode, ...]:
    """Cheapest projected offload first; config order breaks price ties."""
    if request.profile is None:
        raise EdgeError(
            "price-aware placement needs a representative profile on the "
            f"request (session {request.session_id!r})"
        )
    nodes = _serving_nodes(topology)
    order = sorted(
        range(len(nodes)),
        key=lambda i: (
            node_offload_price_ms(
                nodes[i], request.profile, request.est_streams
            ),
            i,
        ),
    )
    return tuple(nodes[i] for i in order)


PLACEMENT_POLICIES: Dict[str, PlacementPolicy] = {
    "nearest": nearest_policy,
    "least-loaded": least_loaded_policy,
    "price-aware": price_aware_policy,
}


def resolve_policy(name: str) -> PlacementPolicy:
    if name not in PLACEMENT_POLICIES:
        raise EdgeError(
            f"unknown placement policy {name!r}; "
            f"choose from {sorted(PLACEMENT_POLICIES)}"
        )
    return PLACEMENT_POLICIES[name]


def place(
    topology: EdgeTopology, request: PlacementRequest, policy: str
) -> PlacementOutcome:
    """Run one placement decision: rank, then admit down the ranking.

    Does NOT attach the session — the caller owns link construction and
    the attach call, so deciding and executing stay separable (the
    Hypothesis determinism property replays decisions without links).
    """
    ranked = resolve_policy(policy)(topology, request)
    rejections = []
    for node in ranked:
        decision = topology.admit(node.name, request.est_streams)
        if decision.admitted:
            return PlacementOutcome(
                session_id=request.session_id,
                policy=policy,
                node=node.name,
                rejections=tuple(rejections),
            )
        rejections.append(decision)
    return PlacementOutcome(
        session_id=request.session_id,
        policy=policy,
        node=None,
        rejections=tuple(rejections),
    )


def migration_candidate(
    topology: EdgeTopology,
    session_id: str,
    profile: StaticProfile,
    est_streams: float,
) -> Optional[str]:
    """A strictly-cheaper node to migrate ``session_id`` to, or None.

    Prices the current node at its live state (the session's demand
    already counted) and every alternative as a fresh arrival, then
    applies the topology's hysteresis margin: a candidate must beat the
    current price by the configured fraction AND pass admission. Dwell
    accounting is the scheduler's job — this function is stateless.
    """
    current_name = topology.assignment_of(session_id)
    if current_name is None:
        return None
    migration = topology.config.migration
    if not migration.enabled:
        return None
    current = topology.node(current_name)
    current_price = offload_price_ms(
        profile,
        current.pricing_share(
            extern_streams=current.server.extern_streams(session_id)
        ),
        current.server.total_streams,
    )
    best_name: Optional[str] = None
    best_price = current_price * (1.0 - migration.hysteresis)
    for node in _serving_nodes(topology):
        if node.name == current_name:
            continue
        price = node_offload_price_ms(node, profile, est_streams)
        if price < best_price and topology.admit(
            node.name, est_streams
        ).admitted:
            best_name = node.name
            best_price = price
    return best_name

"""Wireless link models for device ↔ edge-server communication.

Two models share this module:

- :class:`NetworkLink` — a per-exchange request/response hop with
  Gaussian RTT jitter. This is the model ``core/remote.py`` has always
  used for optimizer offload (§VI of the paper); it lives here now so
  optimizer exchanges and task offload price bytes the same way.
- :class:`WirelessLink` — a *traced* link whose effective bandwidth
  drifts between control periods as a geometric random walk (a
  deterministic drift trace given the seed, via :mod:`repro.rng`). Task
  offloading prices transfers against the link's *current* state, so a
  souring link shows up in ε and triggers re-optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, EdgeError
from repro.rng import SeedLike, make_rng
from repro.units import Ms


@dataclass(frozen=True)
class NetworkLink:
    """A Wi-Fi/5G hop to the edge server."""

    rtt_ms: float = 8.0
    jitter_ms: float = 2.0
    bytes_per_ms: float = 5_000.0  # ~40 Mbit/s effective

    def __post_init__(self) -> None:
        if self.rtt_ms < 0 or self.jitter_ms < 0 or self.bytes_per_ms <= 0:
            raise ConfigurationError(
                f"invalid link parameters: rtt={self.rtt_ms}, "
                f"jitter={self.jitter_ms}, rate={self.bytes_per_ms}"
            )

    def transfer_ms(self, payload_bytes: int, rng: np.random.Generator) -> float:
        """One request/response exchange carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ConfigurationError(f"payload must be >= 0, got {payload_bytes}")
        jitter = float(rng.normal(0.0, self.jitter_ms)) if self.jitter_ms else 0.0
        return max(0.0, self.rtt_ms + jitter) + payload_bytes / self.bytes_per_ms


@dataclass(frozen=True)
class LinkConfig:
    """Nominal parameters of a task-offload wireless link.

    ``bytes_per_ms`` and ``rtt_ms`` are the nominal (scale = 1) values;
    the effective bandwidth at any control period is
    ``bytes_per_ms * bandwidth_scale`` where the scale follows a
    geometric random walk with per-period log-std ``drift_sigma``,
    clipped to ``[min_scale, max_scale]``.
    """

    bytes_per_ms: float = 8_000.0  # ~64 Mbit/s nominal
    rtt_ms: Ms = 10.0
    drift_sigma: float = 0.05
    min_scale: float = 0.25
    max_scale: float = 1.5

    def __post_init__(self) -> None:
        if self.bytes_per_ms <= 0:
            raise EdgeError(f"bytes_per_ms must be > 0, got {self.bytes_per_ms}")
        if self.rtt_ms < 0:
            raise EdgeError(f"rtt_ms must be >= 0, got {self.rtt_ms}")
        if self.drift_sigma < 0:
            raise EdgeError(f"drift_sigma must be >= 0, got {self.drift_sigma}")
        if not 0 < self.min_scale <= 1.0 <= self.max_scale:
            raise EdgeError(
                "scale bounds must satisfy 0 < min_scale <= 1 <= max_scale, "
                f"got [{self.min_scale}, {self.max_scale}]"
            )

    def nominal(self) -> NetworkLink:
        """The jitter-free per-exchange view of this link at scale 1."""
        return NetworkLink(
            rtt_ms=self.rtt_ms, jitter_ms=0.0, bytes_per_ms=self.bytes_per_ms
        )


class WirelessLink:
    """A wireless link whose bandwidth follows a deterministic drift trace.

    The trace advances once per measured control period (never during
    pricing), so every evaluation within a period — scalar or batched —
    sees the same link state. Construct with a decorrelated stream from
    :func:`repro.rng.spawn_rngs` when several links coexist in a fleet.
    """

    def __init__(
        self, config: Optional[LinkConfig] = None, seed: SeedLike = None
    ) -> None:
        self.config = config if config is not None else LinkConfig()
        self._rng = make_rng(seed)
        self._scale = 1.0

    @property
    def bandwidth_scale(self) -> float:
        """Current multiplier on the nominal bandwidth, in [min, max]."""
        return self._scale

    @property
    def bytes_per_ms(self) -> float:
        """Effective bandwidth right now."""
        return self.config.bytes_per_ms * self._scale

    @property
    def rtt_ms(self) -> Ms:
        return self.config.rtt_ms

    def advance_period(self) -> float:
        """Advance the drift trace by one control period; returns the
        new bandwidth scale."""
        step = float(np.exp(self._rng.normal(0.0, self.config.drift_sigma)))
        scale = self._scale * step
        self._scale = min(max(scale, self.config.min_scale), self.config.max_scale)
        return self._scale

    def set_bandwidth_scale(self, scale: float) -> None:
        """Force the bandwidth scale (drift continues from there).

        Used by the network-drift scenario to model an abrupt
        degradation — e.g. walking away from the access point.
        """
        if not self.config.min_scale <= scale <= self.config.max_scale:
            raise EdgeError(
                f"bandwidth scale {scale} outside "
                f"[{self.config.min_scale}, {self.config.max_scale}]"
            )
        self._scale = scale

"""Multi-server edge topology: named nodes, assignments, outages, drift.

PR 5 gave the fleet exactly one :class:`~repro.edge.server.EdgeServer`
and granted every session a link unconditionally. This module turns that
singleton into a routed topology: N heterogeneous nodes, each pairing a
server capacity model with its own nominal link parameters, a per-node
admission policy, and live state (utilization, bandwidth scale, outage
flag) that placement and migration policies read. The topology also owns
the session → node assignment table, so attach/detach bookkeeping lives
in one place instead of being scattered across fleet sessions.

Deliberately passive: the topology never draws randomness, never prices
a task itself (candidate pricing goes through
:func:`repro.edge.share.offload_price_ms`, the single float-op source),
and never decides *where* a session goes — that is
:mod:`repro.edge.placement`. It only answers "what nodes exist, who is
on them, and would this one admit another tenant?". Keeping it passive
is what lets a 1-node topology with admission disabled reproduce the
PR 5 singleton byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.edge.admission import (
    OPEN_ADMISSION,
    AdmissionConfig,
    AdmissionDecision,
    decide,
    shed_plan,
    utilization,
)
from repro.edge.link import LinkConfig, WirelessLink
from repro.edge.server import EdgeServer, EdgeServerConfig
from repro.edge.share import EdgeShare
from repro.errors import EdgeError, UnknownTenantError


@dataclass(frozen=True)
class EdgeNodeConfig:
    """One edge server site: capacity, its own link, where it sits.

    ``distance`` is an abstract 1-D coordinate (hop count, RF distance —
    unitless) the ``nearest`` placement policy ranks by; it has no effect
    on pricing, which only ever sees the link parameters.
    """

    server: EdgeServerConfig = field(default_factory=EdgeServerConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    distance: float = 0.0

    @property
    def name(self) -> str:
        return self.server.name

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise EdgeError(f"distance must be >= 0, got {self.distance}")


@dataclass(frozen=True)
class MigrationConfig:
    """Hysteresis bounds on mid-run server switching.

    A session migrates only when a candidate node prices its offload at
    least ``hysteresis`` cheaper (fractionally) than its current node,
    and only after ``dwell_ticks`` scheduler ticks on the current node —
    both guards exist to stop drift-induced flapping between two nearly
    equal servers.
    """

    enabled: bool = True
    #: Candidate must be this fraction cheaper than the current node.
    hysteresis: float = 0.2
    #: Minimum scheduler ticks on a node before migrating away.
    dwell_ticks: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.hysteresis < 1.0:
            raise EdgeError(
                f"hysteresis must be in [0, 1), got {self.hysteresis}"
            )
        if self.dwell_ticks < 0:
            raise EdgeError(
                f"dwell_ticks must be >= 0, got {self.dwell_ticks}"
            )


@dataclass(frozen=True)
class EdgeTopologyConfig:
    """The full serving topology: node list plus migration policy."""

    nodes: Tuple[EdgeNodeConfig, ...]
    migration: MigrationConfig = field(default_factory=MigrationConfig)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise EdgeError("a topology needs at least one node")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise EdgeError(f"duplicate node names in topology: {names}")

    @property
    def is_singleton(self) -> bool:
        """True for the degenerate PR 5-equivalent shape: one node, open
        admission, migration off. The fleet suppresses topology reporting
        for it so a 1-server run renders byte-identically to the legacy
        singleton edge server."""
        return (
            len(self.nodes) == 1
            and not self.nodes[0].admission.enabled
            and not self.migration.enabled
        )

    @staticmethod
    def single(
        server: Optional[EdgeServerConfig] = None,
        link: Optional[LinkConfig] = None,
    ) -> "EdgeTopologyConfig":
        """The degenerate 1-node topology equivalent to the PR 5 singleton.

        Admission is open and migration disabled, so every session lands
        on the sole node unconditionally — the exact semantics of the
        single shared :class:`~repro.edge.server.EdgeServer`.
        """
        return EdgeTopologyConfig(
            nodes=(
                EdgeNodeConfig(
                    server=server if server is not None else EdgeServerConfig(),
                    link=link if link is not None else LinkConfig(),
                    admission=OPEN_ADMISSION,
                ),
            ),
            migration=MigrationConfig(enabled=False),
        )


def default_topology(
    n_servers: int,
    migration: Optional[MigrationConfig] = None,
    admission: Optional[AdmissionConfig] = None,
) -> EdgeTopologyConfig:
    """A deterministic heterogeneous N-node topology.

    Pure function of its arguments — no randomness — so two processes
    building ``default_topology(4)`` get identical configs. Nodes
    alternate between beefy/near and lean/far so every placement policy
    has something to disagree about: capacity and speedup shrink with
    the index while distance and RTT grow.
    """
    if n_servers < 1:
        raise EdgeError(f"n_servers must be >= 1, got {n_servers}")
    base = EdgeServerConfig()
    base_link = LinkConfig()
    nodes = []
    for i in range(n_servers):
        shrink = 1.0 - 0.15 * (i % 4)
        nodes.append(
            EdgeNodeConfig(
                server=EdgeServerConfig(
                    capacity_streams=base.capacity_streams * shrink,
                    queue_exponent=base.queue_exponent,
                    speedup=base.speedup * shrink,
                    name=f"edge-{i}",
                ),
                link=LinkConfig(
                    bytes_per_ms=base_link.bytes_per_ms * shrink,
                    rtt_ms=base_link.rtt_ms + 2.0 * i,
                    drift_sigma=base_link.drift_sigma,
                    min_scale=base_link.min_scale,
                    max_scale=base_link.max_scale,
                ),
                admission=(
                    admission if admission is not None else AdmissionConfig()
                ),
                distance=10.0 * i,
            )
        )
    return EdgeTopologyConfig(
        nodes=tuple(nodes),
        migration=migration if migration is not None else MigrationConfig(),
    )


class EdgeNode:
    """Live state of one topology node: server, attached links, health."""

    def __init__(self, config: EdgeNodeConfig) -> None:
        self.config = config
        self.server = EdgeServer(config.server)
        self._bandwidth_scale = 1.0
        self._outage = False
        self._links: Dict[str, WirelessLink] = {}

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def in_outage(self) -> bool:
        return self._outage

    @property
    def bandwidth_scale(self) -> float:
        """Node-side scale applied on top of each session link's drift."""
        return self._bandwidth_scale

    @property
    def utilization(self) -> float:
        """Live demand over capacity, the admission policies' input."""
        return utilization(
            self.server.total_streams, self.config.server.capacity_streams
        )

    def pricing_share(self, extern_streams: float) -> EdgeShare:
        """The snapshot a *candidate* session would price this node with.

        Uses the node's nominal link at the node-side bandwidth scale —
        a prospective tenant has no drift trace here yet, so the node's
        cell-level state is the best available estimate.
        """
        return EdgeShare(
            capacity_streams=self.config.server.capacity_streams,
            queue_exponent=self.config.server.queue_exponent,
            extern_streams=extern_streams,
            rtt_ms=self.config.link.rtt_ms,
            bytes_per_ms=self.config.link.bytes_per_ms
            * self._bandwidth_scale,
            speedup=self.config.server.speedup,
        )

    def set_bandwidth_scale(self, scale: float) -> None:
        """Apply a cell-level bandwidth change to this node.

        Clamps to the node link's ``[min_scale, max_scale]`` band and
        forces every attached session link to the same scale (their
        per-session drift walks continue from there), modelling a shared
        backhaul event rather than per-device fading.
        """
        clamped = min(
            max(scale, self.config.link.min_scale), self.config.link.max_scale
        )
        self._bandwidth_scale = clamped
        for link in self._links.values():
            link.set_bandwidth_scale(
                min(
                    max(clamped, link.config.min_scale),
                    link.config.max_scale,
                )
            )

    def set_outage(self, outage: bool) -> None:
        """Mark the node down (or back up). Placement skips down nodes;
        the scheduler sheds every tenant of a node that goes down."""
        self._outage = bool(outage)

    def attach(self, session_id: str, link: WirelessLink) -> None:
        """Register a tenant and adopt its link into the node's cell."""
        self.server.register(session_id)
        self._links[session_id] = link

    def detach(self, session_id: str) -> None:
        self.server.release(session_id)
        del self._links[session_id]

    def tenants(self) -> Tuple[Tuple[str, float], ...]:
        """(tenant, demand) pairs in registration order, for shedding."""
        snapshot = self.server.snapshot()
        return tuple(
            (tenant, snapshot[tenant]) for tenant in self.server.tenant_ids
        )


class EdgeTopology:
    """N live nodes plus the session → node assignment table."""

    def __init__(self, config: EdgeTopologyConfig) -> None:
        self.config = config
        self._nodes: Dict[str, EdgeNode] = {}
        for node_config in config.nodes:
            self._nodes[node_config.name] = EdgeNode(node_config)
        self._assignment: Dict[str, str] = {}

    @property
    def nodes(self) -> Tuple[EdgeNode, ...]:
        """Nodes in config order — the deterministic tie-break order every
        placement policy uses."""
        return tuple(self._nodes.values())

    def node(self, name: str) -> EdgeNode:
        if name not in self._nodes:
            raise EdgeError(
                f"unknown node {name!r}; topology has {sorted(self._nodes)}"
            )
        return self._nodes[name]

    @property
    def assignments(self) -> Dict[str, str]:
        """session id → node name, a copy."""
        return dict(self._assignment)

    def assignment_of(self, session_id: str) -> Optional[str]:
        return self._assignment.get(session_id)

    def admit(
        self, node_name: str, est_streams: float
    ) -> AdmissionDecision:
        """Would ``node_name`` accept an arrival of ``est_streams``?

        Outages reject regardless of the admission policy — a down node
        cannot serve even if its queue is empty.
        """
        node = self.node(node_name)
        if node.in_outage:
            return AdmissionDecision(
                admitted=False,
                server=node_name,
                utilization=node.utilization,
                reason="node is in outage",
            )
        return decide(
            node.config.admission,
            node_name,
            node.server.total_streams,
            est_streams,
            node.config.server.capacity_streams,
        )

    def attach(
        self, session_id: str, node_name: str, link: WirelessLink
    ) -> EdgeNode:
        """Bind a session to a node (the placement decision, executed)."""
        if session_id in self._assignment:
            raise EdgeError(
                f"session {session_id!r} is already attached to "
                f"{self._assignment[session_id]!r}"
            )
        node = self.node(node_name)
        node.attach(session_id, link)
        self._assignment[session_id] = node_name
        return node

    def detach(self, session_id: str) -> str:
        """Unbind a session; returns the node it left.

        Raises :class:`~repro.errors.UnknownTenantError` for sessions the
        topology does not hold — the same stale-handle contract as
        :meth:`repro.edge.server.EdgeServer.release`.
        """
        if session_id not in self._assignment:
            raise UnknownTenantError(session_id, "<topology>", "detach")
        node_name = self._assignment.pop(session_id)
        self._nodes[node_name].detach(session_id)
        return node_name

    def shed_candidates(self, node_name: str) -> Tuple[str, ...]:
        """Tenants a saturated node should push back to their devices,
        newest first (empty when under the shed threshold)."""
        node = self.node(node_name)
        return shed_plan(
            node.config.admission,
            node.tenants(),
            node.config.server.capacity_streams,
        )

    def total_streams(self) -> float:
        """Fleet-wide offloaded demand, summed in node config order."""
        total = 0.0
        for node in self._nodes.values():
            total += node.server.total_streams
        return total

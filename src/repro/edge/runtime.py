"""Per-session edge runtime: server tenancy + link trace + extension.

An :class:`EdgeRuntime` is the one handle a device simulator needs to
offload: it registers the session as a tenant of a (possibly shared)
:class:`~repro.edge.server.EdgeServer`, owns the session's
:class:`~repro.edge.link.WirelessLink` drift trace, and produces the
:class:`~repro.edge.share.EdgeShare` snapshots both pricing paths
consume. :func:`extend_taskset` adds the nominal ``EDGE`` isolation
latency to each profile so Algorithm 1's priority queue can rank the
edge choice against Table I's on-device columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.device.profiles import StaticProfile
from repro.device.resources import Resource
from repro.edge.link import LinkConfig, WirelessLink
from repro.edge.server import EdgeServer, EdgeServerConfig
from repro.edge.share import (
    EdgeShare,
    edge_demand,
    edge_queue_ms,
    edge_slowdown,
    edge_total_ms,
    edge_tx_ms,
)
from repro.errors import EdgeError
from repro.models.tasks import TaskSet
from repro.obs import runtime as obs
from repro.rng import SeedLike


@dataclass(frozen=True)
class EdgeConfig:
    """Top-level switch for the edge subsystem.

    Passing one of these anywhere (CLI ``--edge``, ``FleetConfig.edge``,
    ``build_system(edge=...)``) turns the fourth resource on; omitting
    it leaves every code path byte-identical to a device-only build.
    """

    server: EdgeServerConfig = field(default_factory=EdgeServerConfig)
    link: LinkConfig = field(default_factory=LinkConfig)


def nominal_share(config: EdgeConfig, extern_streams: float = 0.0) -> EdgeShare:
    """The pricing snapshot at nominal link state (bandwidth scale 1)."""
    return EdgeShare(
        capacity_streams=config.server.capacity_streams,
        queue_exponent=config.server.queue_exponent,
        extern_streams=extern_streams,
        rtt_ms=config.link.rtt_ms,
        bytes_per_ms=config.link.bytes_per_ms,
        speedup=config.server.speedup,
    )


def extend_profile(profile: StaticProfile, config: EdgeConfig) -> StaticProfile:
    """Add the nominal ``EDGE`` isolation latency to a Table I profile.

    The entry is the contention-free offload latency at nominal link
    state: transfer plus server compute. It feeds Algorithm 1's priority
    queue and the allocator's fallbacks; pricing never reads it (the
    contention model decomposes transfer and compute from the live
    :class:`~repro.edge.share.EdgeShare` instead). Profiles without a
    CPU column cannot be offloaded and pass through unchanged.
    """
    if not profile.supports(Resource.CPU):
        return profile
    share = nominal_share(config)
    iso_ms = edge_total_ms(profile, share)
    return replace(
        profile, latency_ms={**profile.latency_ms, Resource.EDGE: iso_ms}
    )


def extend_taskset(taskset: TaskSet, config: EdgeConfig) -> TaskSet:
    """A copy of ``taskset`` whose profiles carry the ``EDGE`` entry."""
    tasks = [
        replace(task, profile=extend_profile(task.profile, config))
        for task in taskset
    ]
    return TaskSet(name=taskset.name, tasks=tasks)


class EdgeRuntime:
    """One session's live connection to the edge subsystem."""

    def __init__(
        self,
        config: EdgeConfig,
        server: EdgeServer,
        link: WirelessLink,
        session_id: str = "session",
        register: bool = True,
    ) -> None:
        self.config = config
        self.server = server
        self.link = link
        self.session_id = session_id
        self._released = False
        # A topology registers the tenancy itself (EdgeTopology.attach);
        # pass register=False there so the runtime adopts the existing
        # registration instead of raising on the duplicate.
        if register:
            server.register(session_id)

    def set_demand_streams(self, streams: float) -> None:
        """Publish this session's offloaded stream demand to the server."""
        if self._released:
            raise EdgeError(
                f"edge runtime for {self.session_id!r} was already released"
            )
        self.server.set_demand(self.session_id, streams)

    def share(self) -> EdgeShare:
        """The pricing snapshot right now: live link state, live
        external demand."""
        return EdgeShare(
            capacity_streams=self.config.server.capacity_streams,
            queue_exponent=self.config.server.queue_exponent,
            extern_streams=self.server.extern_streams(self.session_id),
            rtt_ms=self.link.rtt_ms,
            bytes_per_ms=self.link.bytes_per_ms,
            speedup=self.config.server.speedup,
        )

    def advance_period(self) -> None:
        """Advance the link drift trace by one control period."""
        self.link.advance_period()

    def record_period(self, offloaded: Sequence[StaticProfile]) -> None:
        """Emit obs metrics for one measured control period."""
        if not offloaded:
            return
        share = self.share()
        own_streams = 0.0
        for profile in offloaded:
            own_streams += edge_demand(profile)
        slow = edge_slowdown(share.extern_streams + own_streams, share)
        obs.counter("edge_offloaded_tasks").inc(len(offloaded))
        for profile in offloaded:
            obs.histogram("link_tx_ms").observe(edge_tx_ms(profile, share))
            obs.histogram("edge_queue_ms").observe(
                edge_queue_ms(profile, share, slow)
            )

    def migrate(
        self, config: EdgeConfig, server: EdgeServer, link: WirelessLink
    ) -> None:
        """Rebind this runtime to another server and link mid-session.

        The caller (the fleet scheduler, via :class:`~repro.edge.topology.
        EdgeTopology`) has already released the old tenancy and registered
        the session on ``server``; this swaps the references the device
        simulator prices through, so the very next :meth:`share` snapshot
        reflects the new node. The taskset's nominal ``EDGE`` latency rows
        keep their admission-time values — they only seed Algorithm 1's
        ranking; pricing always reads the live snapshot.
        """
        if self._released:
            raise EdgeError(
                f"edge runtime for {self.session_id!r} was already released"
            )
        self.config = config
        self.server = server
        self.link = link

    def release(self) -> None:
        """Leave the server (a finished fleet session stops contending)."""
        if not self._released:
            self.server.release(self.session_id)
            self._released = True

    def abandon(self) -> None:
        """Mark the runtime released without touching the server.

        Used when an :class:`~repro.edge.topology.EdgeTopology` already
        detached the tenancy on the session's behalf — calling
        :meth:`release` afterwards would double-release and raise
        :class:`~repro.errors.UnknownTenantError`.
        """
        self._released = True


def build_edge_runtime(
    config: Optional[EdgeConfig] = None,
    seed: SeedLike = None,
    session_id: str = "session",
    server: Optional[EdgeServer] = None,
) -> EdgeRuntime:
    """Convenience factory: a runtime with its own server unless one is
    shared in (fleet runs share a single server across sessions)."""
    cfg = config if config is not None else EdgeConfig()
    srv = server if server is not None else EdgeServer(cfg.server)
    link = WirelessLink(cfg.link, seed)
    return EdgeRuntime(cfg, srv, link, session_id=session_id)

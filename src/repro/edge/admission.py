"""Admission control for edge servers: capacity thresholds and shedding.

A serving fleet cannot grant every arriving session a tenancy — a
saturated server slows *everyone* super-linearly (the processor-sharing
power law in :func:`repro.edge.share.sharing_slowdown`), so past a
utilization threshold it is strictly better to run the newcomer's tasks
on-device than to admit it and drag the whole tenant set over capacity.
This module holds the pure decision arithmetic; it knows nothing about
topologies or sessions, so :mod:`repro.edge.topology` can import it
without a cycle and the fleet scheduler can unit-test the policy with
bare floats.

Two thresholds, deliberately split for hysteresis:

- ``admit_utilization`` — a new tenant is admitted only while the
  server's projected utilization (current + estimated incoming demand,
  over capacity) stays at or below this bound.
- ``shed_utilization`` — once a server's *live* utilization exceeds this
  (admitted tenants ramped up more demand than estimated, or capacity
  effectively shrank), the newest tenants are shed back to their devices
  until utilization re-enters the admit band. ``shed > admit`` keeps the
  two decisions from flapping against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import EdgeError


@dataclass(frozen=True)
class AdmissionConfig:
    """Capacity-threshold admission policy of one edge server.

    With ``enabled=False`` every request is admitted and nothing is ever
    shed — the PR 5 behavior, and what a 1-server topology uses to stay
    byte-identical to the singleton edge server.
    """

    enabled: bool = True
    #: Admit while (total + estimated) / capacity <= this.
    admit_utilization: float = 1.0
    #: Shed newest tenants once live total / capacity exceeds this.
    shed_utilization: float = 1.5
    #: Fraction of a session's total CPU-stream demand assumed to land on
    #: the server when estimating an arrival's footprint (sessions rarely
    #: offload their whole taskset).
    est_offload_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.admit_utilization <= 0:
            raise EdgeError(
                f"admit_utilization must be > 0, got {self.admit_utilization}"
            )
        if self.shed_utilization < self.admit_utilization:
            raise EdgeError(
                "shed_utilization must be >= admit_utilization, got "
                f"{self.shed_utilization} < {self.admit_utilization}"
            )
        if not 0.0 <= self.est_offload_fraction <= 1.0:
            raise EdgeError(
                "est_offload_fraction must be in [0, 1], got "
                f"{self.est_offload_fraction}"
            )


#: Admission policy that never rejects or sheds (PR 5 semantics).
OPEN_ADMISSION = AdmissionConfig(enabled=False)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission request against one server."""

    admitted: bool
    server: str
    utilization: float  # projected utilization the decision was based on
    reason: str  # "" when admitted


def utilization(total_streams: float, capacity_streams: float) -> float:
    """Live load of a server as a fraction of its stream capacity."""
    if capacity_streams <= 0:
        raise EdgeError(f"capacity_streams must be > 0, got {capacity_streams}")
    return total_streams / capacity_streams


def decide(
    config: AdmissionConfig,
    server: str,
    total_streams: float,
    est_streams: float,
    capacity_streams: float,
) -> AdmissionDecision:
    """Admit or reject one arrival against one server's live state.

    ``est_streams`` is the arrival's *full* offloadable demand (every
    CPU-capable task offloaded at once); the config's
    ``est_offload_fraction`` scales it down to the expected footprint
    before the threshold comparison.
    """
    if est_streams < 0:
        raise EdgeError(f"est_streams must be >= 0, got {est_streams}")
    projected = utilization(
        total_streams + config.est_offload_fraction * est_streams,
        capacity_streams,
    )
    if not config.enabled or projected <= config.admit_utilization:
        return AdmissionDecision(
            admitted=True, server=server, utilization=projected, reason=""
        )
    return AdmissionDecision(
        admitted=False,
        server=server,
        utilization=projected,
        reason=(
            f"projected utilization {projected:.3f} exceeds admit "
            f"threshold {config.admit_utilization:g}"
        ),
    )


def shed_plan(
    config: AdmissionConfig,
    tenants: Sequence[Tuple[str, float]],
    capacity_streams: float,
) -> Tuple[str, ...]:
    """Which tenants a saturated server should shed, newest first.

    ``tenants`` is the server's (tenant_id, demand) pairs in registration
    order. Returns the ids to evict — the most recent arrivals, peeled
    off until live utilization drops back to ``admit_utilization`` — or
    an empty tuple when the server is not past ``shed_utilization`` (or
    admission is disabled). Shedding newest-first keeps the longest-held
    tenancies stable, so one overload episode cannot churn the whole
    server.
    """
    if not config.enabled:
        return ()
    total = 0.0
    for _tenant, demand in tenants:
        total += demand
    if utilization(total, capacity_streams) <= config.shed_utilization:
        return ()
    shed = []
    remaining = total
    for tenant_id, demand in reversed(tenants):
        if utilization(remaining, capacity_streams) <= config.admit_utilization:
            break
        shed.append(tenant_id)
        remaining -= demand
    return tuple(shed)

"""Edge-inference offloading subsystem.

Adds ``EDGE`` as a fourth allocation resource: an AI task can ship its
input frame over a wireless link to a shared edge server instead of
running on-device. The subsystem is off by default — a system built
without an :class:`EdgeConfig` behaves bit-identically to one built
before this package existed.

Modules:

- :mod:`repro.edge.link` — wireless link models: the request/response
  :class:`NetworkLink` (hoisted from ``core/remote.py``) and the
  bandwidth-drift :class:`WirelessLink` used for task offload.
- :mod:`repro.edge.share` — :class:`EdgeShare`, the frozen pricing
  snapshot consumed by both the scalar contention model and the
  vectorized backend, plus the shared latency helpers that keep the two
  paths bit-identical.
- :mod:`repro.edge.server` — :class:`EdgeServer`, the multi-tenant
  processor-sharing queue fleet sessions contend on.
- :mod:`repro.edge.runtime` — :class:`EdgeRuntime`, the per-session
  handle (server tenancy + link trace + taskset extension).
"""

from repro.edge.link import LinkConfig, NetworkLink, WirelessLink
from repro.edge.runtime import (
    EdgeConfig,
    EdgeRuntime,
    build_edge_runtime,
    extend_profile,
    extend_taskset,
    nominal_share,
)
from repro.edge.server import EdgeServer, EdgeServerConfig
from repro.edge.share import (
    EdgeShare,
    edge_compute_ms,
    edge_demand,
    edge_payload_bytes,
    edge_slowdown,
    edge_tx_ms,
)

__all__ = [
    "EdgeConfig",
    "EdgeRuntime",
    "EdgeServer",
    "EdgeServerConfig",
    "EdgeShare",
    "LinkConfig",
    "NetworkLink",
    "WirelessLink",
    "build_edge_runtime",
    "edge_compute_ms",
    "edge_demand",
    "edge_payload_bytes",
    "edge_slowdown",
    "edge_tx_ms",
    "extend_profile",
    "extend_taskset",
    "nominal_share",
]

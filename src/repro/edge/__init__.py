"""Edge-inference offloading subsystem.

Adds ``EDGE`` as a fourth allocation resource: an AI task can ship its
input frame over a wireless link to a shared edge server instead of
running on-device. The subsystem is off by default — a system built
without an :class:`EdgeConfig` behaves bit-identically to one built
before this package existed.

Modules:

- :mod:`repro.edge.link` — wireless link models: the request/response
  :class:`NetworkLink` (hoisted from ``core/remote.py``) and the
  bandwidth-drift :class:`WirelessLink` used for task offload.
- :mod:`repro.edge.share` — :class:`EdgeShare`, the frozen pricing
  snapshot consumed by both the scalar contention model and the
  vectorized backend, plus the shared latency helpers that keep the two
  paths bit-identical.
- :mod:`repro.edge.server` — :class:`EdgeServer`, the multi-tenant
  processor-sharing queue fleet sessions contend on.
- :mod:`repro.edge.runtime` — :class:`EdgeRuntime`, the per-session
  handle (server tenancy + link trace + taskset extension).
- :mod:`repro.edge.admission` — capacity-threshold admission control
  and newest-first shedding for saturated servers.
- :mod:`repro.edge.topology` — :class:`EdgeTopology`, N heterogeneous
  nodes with per-node links, outages, and the session assignment table.
- :mod:`repro.edge.placement` — deterministic placement policies
  (``nearest``, ``least-loaded``, ``price-aware``) and hysteresis-bounded
  migration candidates.
"""

from repro.edge.admission import (
    OPEN_ADMISSION,
    AdmissionConfig,
    AdmissionDecision,
)
from repro.edge.link import LinkConfig, NetworkLink, WirelessLink
from repro.edge.placement import (
    PLACEMENT_POLICIES,
    PlacementOutcome,
    PlacementRequest,
    migration_candidate,
    place,
    resolve_policy,
)
from repro.edge.topology import (
    EdgeNode,
    EdgeNodeConfig,
    EdgeTopology,
    EdgeTopologyConfig,
    MigrationConfig,
    default_topology,
)
from repro.edge.runtime import (
    EdgeConfig,
    EdgeRuntime,
    build_edge_runtime,
    extend_profile,
    extend_taskset,
    nominal_share,
)
from repro.edge.server import EdgeServer, EdgeServerConfig
from repro.edge.share import (
    EdgeShare,
    edge_compute_ms,
    edge_demand,
    edge_payload_bytes,
    edge_slowdown,
    edge_tx_ms,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionDecision",
    "EdgeConfig",
    "EdgeNode",
    "EdgeNodeConfig",
    "EdgeRuntime",
    "EdgeServer",
    "EdgeServerConfig",
    "EdgeShare",
    "EdgeTopology",
    "EdgeTopologyConfig",
    "LinkConfig",
    "MigrationConfig",
    "NetworkLink",
    "OPEN_ADMISSION",
    "PLACEMENT_POLICIES",
    "PlacementOutcome",
    "PlacementRequest",
    "WirelessLink",
    "build_edge_runtime",
    "default_topology",
    "edge_compute_ms",
    "edge_demand",
    "edge_payload_bytes",
    "edge_slowdown",
    "edge_tx_ms",
    "extend_profile",
    "extend_taskset",
    "migration_candidate",
    "nominal_share",
    "place",
    "resolve_policy",
]

"""The edge pricing snapshot and its shared latency arithmetic.

:class:`EdgeShare` freezes everything needed to price an offloaded task
at one instant: the server's processor-sharing parameters, the streams
*other* tenants currently place on it, and the link's current state.
Both pricing paths — the scalar contention model and the vectorized
backend — consume the same snapshot through the same helper functions
below, which is what makes them bit-identical: every float operation is
written exactly once.

An offloaded task's latency decomposes as::

    latency = edge_tx_ms(profile, share)
            + edge_compute_ms(profile, share) * edge_slowdown(streams, share)

with ``edge_tx_ms`` the link transfer (RTT + payload/bandwidth) and
``edge_compute_ms`` the server-side compute (CPU isolation latency over
the server's speedup).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.profiles import StaticProfile
from repro.device.resources import Resource
from repro.errors import EdgeError
from repro.units import Ms


@dataclass(frozen=True)
class EdgeShare:
    """One session's view of the edge resource at a pricing instant."""

    capacity_streams: float
    queue_exponent: float
    #: Streams placed on the server by *other* tenants (fleet sessions).
    extern_streams: float
    rtt_ms: Ms
    bytes_per_ms: float
    #: Server compute speed relative to the device CPU.
    speedup: float

    def __post_init__(self) -> None:
        if self.capacity_streams <= 0:
            raise EdgeError(
                f"capacity_streams must be > 0, got {self.capacity_streams}"
            )
        if self.queue_exponent < 1.0:
            raise EdgeError(
                f"queue_exponent must be >= 1, got {self.queue_exponent}"
            )
        if self.extern_streams < 0:
            raise EdgeError(
                f"extern_streams must be >= 0, got {self.extern_streams}"
            )
        if self.rtt_ms < 0:
            raise EdgeError(f"rtt_ms must be >= 0, got {self.rtt_ms}")
        if self.bytes_per_ms <= 0:
            raise EdgeError(f"bytes_per_ms must be > 0, got {self.bytes_per_ms}")
        if self.speedup <= 0:
            raise EdgeError(f"speedup must be > 0, got {self.speedup}")


def edge_payload_bytes(profile: StaticProfile) -> int:
    """Round-trip wire bytes for one inference: frame up, result down."""
    return int(profile.input_bytes + profile.output_bytes)


def edge_demand(profile: StaticProfile) -> float:
    """Stream weight one offloaded instance places on the edge server.

    The server runs the same model binaries, so the device CPU stream
    weight is the natural unit.
    """
    return profile.cpu_demand


def edge_tx_ms(profile: StaticProfile, share: EdgeShare) -> Ms:
    """Link transfer time at the snapshot's bandwidth (contention-free)."""
    return share.rtt_ms + edge_payload_bytes(profile) / share.bytes_per_ms


def edge_compute_ms(profile: StaticProfile, share: EdgeShare) -> Ms:
    """Server-side compute in isolation: device-CPU latency over speedup."""
    return profile.latency(Resource.CPU) / share.speedup


def sharing_slowdown(
    streams: float, capacity_streams: float, queue_exponent: float
) -> float:
    """Generic processor-sharing slowdown: free below capacity, power-law
    stretch beyond it.

    This is the single source for the contention slowdown's functional
    form — :func:`edge_slowdown` and the edge server's tenant-facing
    slowdown both delegate here, so the scalar and vectorized paths can
    never drift apart (RL008 enforces this mechanically).
    """
    if streams <= capacity_streams:
        return 1.0
    return (streams / capacity_streams) ** queue_exponent


def edge_slowdown(streams: float, share: EdgeShare) -> float:
    """Processor-sharing slowdown at ``streams`` concurrent streams.

    Same functional form as the on-device processors
    (:meth:`repro.device.soc.SoCSpec.slowdown`): free below capacity,
    power-law stretch beyond it.
    """
    return sharing_slowdown(
        streams, share.capacity_streams, share.queue_exponent
    )


def edge_total_ms(
    profile: StaticProfile, share: EdgeShare, slowdown: float = 1.0
) -> Ms:
    """End-to-end offload latency: transfer plus slowed server compute.

    With the default ``slowdown`` of 1.0 this is the contention-free
    isolation latency (``x * 1.0`` is exact in IEEE-754, so the nominal
    and contended paths share one formula without a rounding difference).
    """
    return edge_tx_ms(profile, share) + (
        edge_compute_ms(profile, share) * slowdown
    )


def edge_queue_ms(
    profile: StaticProfile, share: EdgeShare, slowdown: float
) -> Ms:
    """Queueing excess over isolation compute at a given slowdown."""
    return edge_compute_ms(profile, share) * (slowdown - 1.0)


def offload_price_ms(
    profile: StaticProfile, share: EdgeShare, streams: float
) -> Ms:
    """What one offloaded inference would cost at ``streams`` total demand.

    The composition the placement and migration policies rank candidate
    servers by: transfer at the snapshot's link state plus server compute
    under the processor-sharing slowdown the given total demand implies.
    Lives here — not in the placement policy — so candidate pricing can
    never drift from what the contention model and the backend actually
    charge once the session lands.
    """
    return edge_total_ms(profile, share, edge_slowdown(streams, share))

"""Wavefront OBJ import/export for triangle meshes.

A practical AR pipeline feeds real assets in; OBJ is the lowest common
denominator every DCC tool speaks. Only the subset a triangle mesh needs
is implemented: ``v`` lines (positions) and ``f`` lines (triangles, with
quad faces fanned into triangles; texture/normal indices after ``/`` are
ignored). Round-tripping through :func:`save_obj`/:func:`load_obj`
preserves geometry bit-exactly at the printed precision.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.ar.mesh import TriangleMesh
from repro.errors import MeshError

PathLike = Union[str, Path]


def save_obj(mesh: TriangleMesh, path: PathLike, precision: int = 8) -> None:
    """Write ``mesh`` as a Wavefront OBJ file."""
    if precision < 1:
        raise MeshError(f"precision must be >= 1, got {precision}")
    lines: List[str] = ["# exported by repro (HBO reproduction)"]
    fmt = f"v {{:.{precision}g}} {{:.{precision}g}} {{:.{precision}g}}"
    for vertex in mesh.vertices:
        lines.append(fmt.format(*vertex))
    for face in mesh.faces:
        # OBJ indices are 1-based.
        lines.append(f"f {face[0] + 1} {face[1] + 1} {face[2] + 1}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_obj(path: PathLike) -> TriangleMesh:
    """Read a Wavefront OBJ file into a :class:`TriangleMesh`.

    Supports: ``v`` (positions; extra components such as vertex colors are
    ignored), ``f`` with 3+ indices (polygons are fan-triangulated),
    ``v/vt``, ``v//vn`` and ``v/vt/vn`` index forms, negative (relative)
    indices, comments and blank lines. Anything else (``vt``, ``vn``,
    ``o``, ``g``, ``usemtl``, ...) is skipped.
    """
    vertices: List[List[float]] = []
    faces: List[List[int]] = []
    text = Path(path).read_text()

    def parse_index(token: str, n_vertices: int) -> int:
        raw = token.split("/", 1)[0]
        if not raw:
            raise MeshError(f"empty vertex index in face token {token!r}")
        index = int(raw)
        if index < 0:
            index = n_vertices + index  # relative indexing
        else:
            index -= 1  # 1-based to 0-based
        if not 0 <= index < n_vertices:
            raise MeshError(
                f"face references vertex {token!r} out of range "
                f"(have {n_vertices} vertices)"
            )
        return index

    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        tag = parts[0]
        if tag == "v":
            if len(parts) < 4:
                raise MeshError(f"line {line_number}: malformed vertex {line!r}")
            try:
                vertices.append([float(parts[1]), float(parts[2]), float(parts[3])])
            except ValueError as exc:
                raise MeshError(
                    f"line {line_number}: bad vertex coordinate in {line!r}"
                ) from exc
        elif tag == "f":
            if len(parts) < 4:
                raise MeshError(f"line {line_number}: face needs >= 3 vertices")
            indices = [parse_index(token, len(vertices)) for token in parts[1:]]
            # Fan-triangulate polygons.
            for i in range(1, len(indices) - 1):
                faces.append([indices[0], indices[i], indices[i + 1]])
        # every other tag is ignored

    if not vertices:
        raise MeshError(f"{path}: no vertices found")
    if not faces:
        raise MeshError(f"{path}: no faces found")
    return TriangleMesh(
        vertices=np.asarray(vertices, dtype=float),
        faces=np.asarray(faces, dtype=np.int64),
    )

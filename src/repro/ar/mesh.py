"""Triangle meshes and procedural generators.

The paper renders real 3-D assets (Table II: apricot, bike, plane, ...).
We synthesize geometry with matching triangle counts procedurally so the
decimation pipeline operates on real vertex/face arrays rather than a bare
"triangle count" integer.

Meshes are stored as ``vertices`` (V, 3) float64 and ``faces`` (F, 3)
int64 arrays; generators are fully vectorized.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import MeshError


@dataclass(frozen=True)
class TriangleMesh:
    """An indexed triangle mesh."""

    vertices: np.ndarray  # (V, 3) float
    faces: np.ndarray  # (F, 3) int

    def __post_init__(self) -> None:
        v = np.asarray(self.vertices, dtype=float)
        f = np.asarray(self.faces, dtype=np.int64)
        if v.ndim != 2 or v.shape[1] != 3:
            raise MeshError(f"vertices must be (V, 3), got {v.shape}")
        if f.ndim != 2 or f.shape[1] != 3:
            raise MeshError(f"faces must be (F, 3), got {f.shape}")
        if f.size and (f.min() < 0 or f.max() >= v.shape[0]):
            raise MeshError(
                f"face indices out of range [0, {v.shape[0]}): "
                f"[{f.min()}, {f.max()}]"
            )
        object.__setattr__(self, "vertices", v)
        object.__setattr__(self, "faces", f)

    @property
    def n_vertices(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def n_triangles(self) -> int:
        return int(self.faces.shape[0])

    def bounding_box(self) -> Tuple[np.ndarray, np.ndarray]:
        if self.n_vertices == 0:
            raise MeshError("empty mesh has no bounding box")
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def surface_area(self) -> float:
        """Total area of all triangles."""
        tri = self.vertices[self.faces]  # (F, 3, 3)
        cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        return float(0.5 * np.linalg.norm(cross, axis=1).sum())

    def face_normals(self) -> np.ndarray:
        """Unit normals per face, (F, 3). Degenerate faces get zero."""
        tri = self.vertices[self.faces]
        cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        norms = np.linalg.norm(cross, axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            unit = np.where(norms > 1e-12, cross / norms, 0.0)
        return unit

    def remove_degenerate_faces(self) -> "TriangleMesh":
        """Drop faces with repeated vertex indices or (near-)zero area."""
        f = self.faces
        distinct = (f[:, 0] != f[:, 1]) & (f[:, 1] != f[:, 2]) & (f[:, 0] != f[:, 2])
        tri = self.vertices[f]
        cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        area2 = np.linalg.norm(cross, axis=1)
        keep = distinct & (area2 > 1e-14)
        return TriangleMesh(vertices=self.vertices, faces=f[keep])


def _sphere_grid(n_lat: int, n_lon: int) -> TriangleMesh:
    """UV sphere with (n_lat x n_lon) quads split into triangles."""
    lat = np.linspace(0.0, np.pi, n_lat + 1)
    lon = np.linspace(0.0, 2.0 * np.pi, n_lon, endpoint=False)
    lat_g, lon_g = np.meshgrid(lat, lon, indexing="ij")
    x = np.sin(lat_g) * np.cos(lon_g)
    y = np.sin(lat_g) * np.sin(lon_g)
    z = np.cos(lat_g)
    vertices = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)

    i = np.arange(n_lat)[:, None]
    j = np.arange(n_lon)[None, :]
    jn = (j + 1) % n_lon
    v00 = (i * n_lon + j).ravel()
    v01 = (i * n_lon + jn).ravel()
    v10 = ((i + 1) * n_lon + j).ravel()
    v11 = ((i + 1) * n_lon + jn).ravel()
    faces = np.concatenate(
        [
            np.stack([v00, v10, v11], axis=1),
            np.stack([v00, v11, v01], axis=1),
        ]
    )
    return TriangleMesh(vertices=vertices, faces=faces).remove_degenerate_faces()


def make_sphere(target_triangles: int, radius: float = 0.5) -> TriangleMesh:
    """UV sphere with approximately ``target_triangles`` faces."""
    if target_triangles < 8:
        raise MeshError(f"target_triangles must be >= 8, got {target_triangles}")
    # ~2 * n_lat * n_lon triangles with n_lon = 2 n_lat.
    n_lat = max(2, int(round(np.sqrt(target_triangles / 4.0))))
    mesh = _sphere_grid(n_lat, 2 * n_lat)
    return TriangleMesh(vertices=mesh.vertices * radius, faces=mesh.faces)


def make_box(
    target_triangles: int, extents: Tuple[float, float, float] = (1.0, 1.0, 1.0)
) -> TriangleMesh:
    """Axis-aligned box tessellated to approximately ``target_triangles``."""
    if target_triangles < 12:
        raise MeshError(f"target_triangles must be >= 12, got {target_triangles}")
    # 6 faces, each an (n x n) grid of quads = 2 n^2 triangles.
    n = max(1, int(round(np.sqrt(target_triangles / 12.0))))
    u = np.linspace(-0.5, 0.5, n + 1)
    uu, vv = np.meshgrid(u, u, indexing="ij")
    verts_list, faces_list = [], []
    offset = 0
    # (axis pointing out, sign)
    for axis in range(3):
        for sign in (-1.0, 1.0):
            grid = np.zeros(((n + 1) * (n + 1), 3))
            others = [a for a in range(3) if a != axis]
            grid[:, others[0]] = uu.ravel()
            grid[:, others[1]] = vv.ravel()
            grid[:, axis] = 0.5 * sign
            verts_list.append(grid)
            i = np.arange(n)[:, None]
            j = np.arange(n)[None, :]
            v00 = (i * (n + 1) + j).ravel() + offset
            v01 = v00 + 1
            v10 = v00 + (n + 1)
            v11 = v10 + 1
            faces_list.append(np.stack([v00, v10, v11], axis=1))
            faces_list.append(np.stack([v00, v11, v01], axis=1))
            offset += (n + 1) * (n + 1)
    vertices = np.vstack(verts_list) * np.asarray(extents)
    faces = np.vstack(faces_list)
    return TriangleMesh(vertices=vertices, faces=faces).remove_degenerate_faces()


def make_cylinder(
    target_triangles: int, radius: float = 0.3, height: float = 1.0
) -> TriangleMesh:
    """Open cylinder tessellated to approximately ``target_triangles``."""
    if target_triangles < 8:
        raise MeshError(f"target_triangles must be >= 8, got {target_triangles}")
    # n_seg around x n_rows tall quads, 2 triangles each; n_seg = 4 n_rows.
    n_rows = max(1, int(round(np.sqrt(target_triangles / 8.0))))
    n_seg = 4 * n_rows
    theta = np.linspace(0.0, 2.0 * np.pi, n_seg, endpoint=False)
    z = np.linspace(-height / 2.0, height / 2.0, n_rows + 1)
    tg, zg = np.meshgrid(theta, z, indexing="ij")
    vertices = np.stack(
        [radius * np.cos(tg).ravel(), radius * np.sin(tg).ravel(), zg.ravel()],
        axis=1,
    )
    i = np.arange(n_seg)[:, None]
    j = np.arange(n_rows)[None, :]
    inext = (i + 1) % n_seg
    v00 = (i * (n_rows + 1) + j).ravel()
    v01 = v00 + 1
    v10 = (inext * (n_rows + 1) + j).ravel()
    v11 = v10 + 1
    faces = np.concatenate(
        [np.stack([v00, v10, v11], axis=1), np.stack([v00, v11, v01], axis=1)]
    )
    return TriangleMesh(vertices=vertices, faces=faces).remove_degenerate_faces()


def make_procedural(name: str, target_triangles: int) -> TriangleMesh:
    """Deterministic 'asset' for an object name: a displaced sphere.

    Different names produce different surface detail (bumpiness and
    anisotropic scale derived from a hash of the name), so decimation and
    quality behave object-specifically — a stand-in for the paper's real
    assets.
    """
    if target_triangles < 8:
        raise MeshError(f"target_triangles must be >= 8, got {target_triangles}")
    base = make_sphere(target_triangles, radius=0.5)
    digest = hashlib.sha256(name.encode()).digest()
    bumps = 1 + digest[0] % 6  # number of displacement harmonics
    amp = 0.03 + (digest[1] / 255.0) * 0.12  # displacement amplitude
    scale = 0.6 + np.asarray(list(digest[2:5]), dtype=float) / 255.0  # anisotropy

    v = base.vertices.copy()
    r = np.linalg.norm(v, axis=1, keepdims=True)
    direction = v / np.clip(r, 1e-12, None)
    phase = digest[5] / 255.0 * 2.0 * np.pi
    displacement = np.ones(v.shape[0])
    for k in range(1, bumps + 1):
        displacement += amp / bumps * np.sin(
            k * 3.0 * direction[:, 0] + k * 5.0 * direction[:, 1] + phase
        )
    v = direction * r * displacement[:, None] * scale
    return TriangleMesh(vertices=v, faces=base.faces)

"""The TD triangle-distribution heuristic (Algorithm 1, Line 23).

Given the total triangle budget ``x · T^max`` chosen by BO, TD decides the
per-object decimation ratio. Following §IV-D, objects are weighted by the
*sensitivity* of their degradation to triangle variations: the difference
between each object's degradation at a common reference ratio and its
current degradation (Eq. 1 evaluated at the object's own distance). Steep
objects — intricate shapes, objects close to the user — receive more of
the budget, which raises the Eq. 2 average above what a uniform split
achieves.

Capped weighted allocation: an object can never receive more than its own
maximum triangle count, so weights are re-normalized over the uncapped
objects until the budget is exhausted (a water-filling loop that
terminates in ≤ L rounds).

Two reference allocators are included for the ablation bench:
:func:`uniform_distribution` (every object at ratio x) and
:func:`greedy_optimal_distribution` (marginal-gain chunks, near-optimal
for concave quality curves).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ar.objects import VirtualObject
from repro.errors import ConfigurationError

#: Never draw an object below this ratio — a 2% mesh is unrecognizable and
#: real pipelines keep a minimum LOD.
MIN_OBJECT_RATIO = 0.05


def _validate_inputs(
    objects: Mapping[str, VirtualObject],
    distances: Mapping[str, float],
    triangle_ratio: float,
) -> None:
    if set(objects) != set(distances):
        raise ConfigurationError(
            "object and distance key sets differ: "
            f"{sorted(set(objects) ^ set(distances))}"
        )
    if not 0.0 < triangle_ratio <= 1.0:
        raise ConfigurationError(
            f"triangle_ratio must be in (0, 1], got {triangle_ratio}"
        )
    for iid, dist in distances.items():
        if dist <= 0:
            raise ConfigurationError(f"{iid!r}: distance must be > 0, got {dist}")


def uniform_distribution(
    objects: Mapping[str, VirtualObject],
    distances: Mapping[str, float],
    triangle_ratio: float,
) -> Dict[str, float]:
    """Every object at ratio x — the trivial baseline allocator."""
    _validate_inputs(objects, distances, triangle_ratio)
    return {iid: max(MIN_OBJECT_RATIO, triangle_ratio) for iid in objects}


def distribute_triangles(
    objects: Mapping[str, VirtualObject],
    distances: Mapping[str, float],
    triangle_ratio: float,
    reference_ratio: Optional[float] = None,
) -> Dict[str, float]:
    """The paper's TD heuristic: sensitivity-weighted capped allocation.

    Returns per-instance decimation ratios whose triangle-weighted total
    matches ``triangle_ratio · T^max`` (up to the MIN_OBJECT_RATIO floor
    and per-object caps).

    ``reference_ratio`` is the common comparison point of the sensitivity
    weight (§IV-D). By default it sits halfway below the current uniform
    ratio, so the weight measures each object's degradation steepness over
    the stretch of the curve the allocation actually moves on (a reference
    equal to the current ratio would make every sensitivity zero).
    """
    _validate_inputs(objects, distances, triangle_ratio)
    if reference_ratio is None:
        reference_ratio = max(MIN_OBJECT_RATIO, triangle_ratio / 2.0)
    if not 0.0 < reference_ratio <= 1.0:
        raise ConfigurationError(
            f"reference_ratio must be in (0, 1], got {reference_ratio}"
        )
    if not objects:
        return {}

    ids: List[str] = sorted(objects)
    max_tris = np.asarray([objects[i].max_triangles for i in ids], dtype=float)
    total_max = float(max_tris.sum())
    budget = triangle_ratio * total_max

    # Sensitivity at the uniform starting point: how much worse (or
    # better) each object is at the common reference ratio than at the
    # current uniform ratio x — a measure of curve steepness around x,
    # scaled by distance through Eq. 1.
    current_ratio = max(MIN_OBJECT_RATIO, triangle_ratio)
    sensitivities = np.asarray(
        [
            abs(
                objects[i].degradation.sensitivity(
                    current_ratio, distances[i], reference_ratio
                )
            )
            for i in ids
        ]
    )
    # A flat-curve object still needs *some* weight or it would starve.
    weights = sensitivities + 1e-6
    weights = weights / weights.sum()

    floors = MIN_OBJECT_RATIO * max_tris
    caps = max_tris.copy()
    allocation = floors.copy()
    remaining = budget - float(allocation.sum())
    if remaining < 0:
        # Budget below the aggregate floor: scale floors down proportionally.
        allocation *= budget / float(allocation.sum())
        remaining = 0.0

    active = np.ones(len(ids), dtype=bool)
    for _ in range(len(ids)):
        if remaining <= 1e-9 or not np.any(active):
            break
        w = weights * active
        if w.sum() <= 0:
            break
        w = w / w.sum()
        grant = remaining * w
        new_alloc = np.minimum(allocation + grant, caps)
        consumed = float((new_alloc - allocation).sum())
        allocation = new_alloc
        remaining -= consumed
        active = allocation < caps - 1e-9

    ratios = allocation / max_tris
    return {iid: float(np.clip(r, MIN_OBJECT_RATIO, 1.0)) for iid, r in zip(ids, ratios)}


def distribute_triangles_batch(
    objects: Mapping[str, VirtualObject],
    distances: Mapping[str, float],
    triangle_ratios: np.ndarray,
    reference_ratio: Optional[float] = None,
) -> Tuple[List[str], np.ndarray]:
    """Vectorized TD over a batch of total triangle ratios.

    Runs :func:`distribute_triangles` for every entry of
    ``triangle_ratios`` in one pass of array arithmetic: the sensitivity
    weights, the floor handling and the ≤ L water-filling rounds are all
    evaluated for the whole batch at once. Rows whose budget is exhausted
    simply receive zero grants in later rounds, which is exactly where
    the scalar loop breaks.

    Returns ``(ids, ratios)`` where ``ids`` is the sorted instance-id
    order and ``ratios[k, j]`` is the decimation ratio of object
    ``ids[j]`` under total ratio ``triangle_ratios[k]``. Agrees with the
    scalar allocator to ~1e-15 relative (reduction order differs).
    """
    x = np.asarray(triangle_ratios, dtype=float).ravel()
    if x.size == 0:
        raise ConfigurationError("triangle_ratios must be non-empty")
    if np.any((x <= 0.0) | (x > 1.0)):
        raise ConfigurationError(
            f"triangle_ratios must be in (0, 1], got {x.tolist()}"
        )
    _validate_inputs(objects, distances, float(x[0]))
    if reference_ratio is not None and not 0.0 < reference_ratio <= 1.0:
        raise ConfigurationError(
            f"reference_ratio must be in (0, 1], got {reference_ratio}"
        )
    if not objects:
        return [], np.zeros((x.size, 0), dtype=float)

    ids: List[str] = sorted(objects)
    n_rows, n_obj = x.size, len(ids)
    max_tris = np.asarray([objects[i].max_triangles for i in ids], dtype=float)
    total_max = float(max_tris.sum())
    budget = x * total_max  # (n_rows,)

    current = np.maximum(MIN_OBJECT_RATIO, x)  # (n_rows,)
    if reference_ratio is None:
        reference = np.maximum(MIN_OBJECT_RATIO, x / 2.0)
    else:
        reference = np.full(n_rows, float(reference_ratio))
    # Per-object Eq. 1 over the whole ratio batch: L small vectorized
    # calls instead of n_rows × L scalar ones.
    sensitivities = np.empty((n_rows, n_obj), dtype=float)
    for j, iid in enumerate(ids):
        model = objects[iid].degradation
        dist = np.full(n_rows, distances[iid])
        sensitivities[:, j] = np.abs(
            model.error_batch(current, dist) - model.error_batch(reference, dist)
        )
    weights = sensitivities + 1e-6
    weights = weights / weights.sum(axis=1, keepdims=True)

    floors = MIN_OBJECT_RATIO * max_tris
    caps = max_tris
    allocation = np.broadcast_to(floors, (n_rows, n_obj)).copy()
    floor_total = allocation.sum(axis=1)
    remaining = budget - floor_total
    below = remaining < 0
    if np.any(below):
        scale = np.where(below, budget / floor_total, 1.0)
        allocation *= scale[:, np.newaxis]
        remaining = np.maximum(remaining, 0.0)

    active = np.ones((n_rows, n_obj), dtype=bool)
    for _ in range(n_obj):
        live = (remaining > 1e-9) & np.any(active, axis=1)
        if not np.any(live):
            break
        w = weights * active
        w_sum = w.sum(axis=1)
        live &= w_sum > 0
        w = np.divide(
            w, w_sum[:, np.newaxis], out=np.zeros_like(w), where=w_sum[:, np.newaxis] > 0
        )
        grant = np.where(live, remaining, 0.0)[:, np.newaxis] * w
        new_alloc = np.minimum(allocation + grant, caps)
        consumed = (new_alloc - allocation).sum(axis=1)
        allocation = new_alloc
        remaining = remaining - consumed
        active = allocation < caps - 1e-9

    ratios = np.clip(allocation / max_tris, MIN_OBJECT_RATIO, 1.0)
    return ids, ratios


def greedy_optimal_distribution(
    objects: Mapping[str, VirtualObject],
    distances: Mapping[str, float],
    triangle_ratio: float,
    n_chunks: int = 200,
) -> Dict[str, float]:
    """Marginal-gain allocator: near-optimal for concave quality curves.

    Splits the budget above the floor into ``n_chunks`` equal chunks and
    gives each chunk to the object with the best quality gain per
    triangle. Used by the ablation bench as the upper reference for TD.
    """
    _validate_inputs(objects, distances, triangle_ratio)
    if n_chunks < 1:
        raise ConfigurationError(f"n_chunks must be >= 1, got {n_chunks}")
    if not objects:
        return {}

    ids: List[str] = sorted(objects)
    max_tris = {i: float(objects[i].max_triangles) for i in ids}
    total_max = sum(max_tris.values())
    budget = triangle_ratio * total_max
    alloc = {i: MIN_OBJECT_RATIO * max_tris[i] for i in ids}
    remaining = budget - sum(alloc.values())
    if remaining <= 0:
        scale = budget / sum(alloc.values())
        return {
            i: float(np.clip(alloc[i] * scale / max_tris[i], 0.0, 1.0) or MIN_OBJECT_RATIO)
            for i in ids
        }

    chunk = remaining / n_chunks
    budget_left = remaining
    # Pick by marginal quality gain *per triangle*: Eq. 2 weighs objects
    # equally, so a triangle is best spent where it buys the most quality —
    # typically small meshes first (one triangle moves their ratio most),
    # then steep large ones. Chunks that hit an object's cap only consume
    # the accepted amount.
    for _ in range(4 * n_chunks):
        if budget_left <= 1e-9:
            break
        best_id, best_rate, best_accept = None, -np.inf, 0.0
        for i in ids:
            headroom = max_tris[i] - alloc[i]
            if headroom <= 1e-9:
                continue
            accept = min(chunk, headroom, budget_left)
            # Rate with lookahead: near the clamp of Eq. 1 the *local*
            # marginal gain is zero even though investing a larger block
            # pays off, so estimate the rate over a wider stretch of the
            # object's curve than the granted chunk.
            lookahead = min(headroom, max(accept, 0.25 * max_tris[i]))
            r_now = alloc[i] / max_tris[i]
            r_ahead = (alloc[i] + lookahead) / max_tris[i]
            model = objects[i].degradation
            gain = model.quality(r_ahead, distances[i]) - model.quality(
                r_now, distances[i]
            )
            rate = gain / lookahead
            if rate > best_rate:
                best_id, best_rate, best_accept = i, rate, accept
        if best_id is None:
            break
        alloc[best_id] += best_accept
        budget_left -= best_accept

    return {
        i: float(np.clip(alloc[i] / max_tris[i], MIN_OBJECT_RATIO, 1.0)) for i in ids
    }


def achieved_ratio(
    objects: Mapping[str, VirtualObject], ratios: Mapping[str, float]
) -> float:
    """Overall triangle ratio implied by a per-object ratio map."""
    if set(objects) != set(ratios):
        raise ConfigurationError("object/ratio key sets differ")
    if not objects:
        return 1.0
    total_max = sum(o.max_triangles for o in objects.values())
    drawn = sum(objects[i].max_triangles * ratios[i] for i in objects)
    return drawn / total_max

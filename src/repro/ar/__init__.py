"""AR-side substrate: virtual objects, meshes, quality, rendering load.

- :mod:`repro.ar.mesh` — triangle meshes and procedural generators.
- :mod:`repro.ar.decimation` — mesh decimation to a target triangle count
  (the "object decimation algorithm" of the paper's Fig. 3 server).
- :mod:`repro.ar.cache` — LOD cache + simulated decimation server.
- :mod:`repro.ar.degradation` — the eAR degradation model (Eq. 1) and its
  offline parameter fitting.
- :mod:`repro.ar.quality` — average on-screen quality (Eq. 2).
- :mod:`repro.ar.objects` — virtual-object catalog (Table II SC1/SC2).
- :mod:`repro.ar.scene` — placed objects, user position, distances.
- :mod:`repro.ar.renderer` — rendering load (triangles drawn after
  culling, draw calls) fed to the device simulator.
- :mod:`repro.ar.distribution` — the TD triangle-distribution heuristic
  (Alg. 1, Line 23).
"""

from repro.ar.cache import DecimationServer, LODCache
from repro.ar.decimation import decimate
from repro.ar.degradation import DegradationModel, DegradationParams, fit_degradation_params
from repro.ar.distribution import distribute_triangles, uniform_distribution
from repro.ar.mesh import TriangleMesh, make_box, make_cylinder, make_procedural, make_sphere
from repro.ar.meshio import load_obj, save_obj
from repro.ar.objects import VirtualObject, catalog_sc1, catalog_sc2, object_by_name
from repro.ar.quality import average_quality, object_quality
from repro.ar.renderer import RenderLoadModel
from repro.ar.scene import PlacedObject, Scene

__all__ = [
    "DecimationServer",
    "DegradationModel",
    "DegradationParams",
    "LODCache",
    "PlacedObject",
    "RenderLoadModel",
    "Scene",
    "TriangleMesh",
    "VirtualObject",
    "average_quality",
    "catalog_sc1",
    "catalog_sc2",
    "decimate",
    "distribute_triangles",
    "fit_degradation_params",
    "load_obj",
    "make_box",
    "make_cylinder",
    "make_procedural",
    "make_sphere",
    "object_by_name",
    "object_quality",
    "save_obj",
    "uniform_distribution",
]

"""Average on-screen virtual-object quality (the paper's Eq. 2).

    Q_t = (1 / L_t) Σ_i (1 - D_error(t, i))

where the sum runs over the L_t objects currently on screen. Quality is
the AR-side half of HBO's cost function.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.ar.degradation import DegradationModel
from repro.errors import ConfigurationError


def object_quality(model: DegradationModel, ratio: float, distance: float) -> float:
    """Quality of one object: ``1 - D_error`` (Eq. 1 complement)."""
    return model.quality(ratio, distance)


def average_quality(
    models: Sequence[DegradationModel],
    ratios: Sequence[float],
    distances: Sequence[float],
) -> float:
    """Eq. 2 over parallel sequences of per-object models/ratios/distances.

    Returns 1.0 for an empty scene — with no virtual objects there is
    nothing to degrade, which keeps the reward B_t well-defined before the
    first placement.
    """
    if not (len(models) == len(ratios) == len(distances)):
        raise ConfigurationError(
            f"parallel length mismatch: {len(models)} models, "
            f"{len(ratios)} ratios, {len(distances)} distances"
        )
    if not models:
        return 1.0
    total = 0.0
    for model, ratio, distance in zip(models, ratios, distances):
        total += model.quality(ratio, distance)
    return total / len(models)


def average_quality_from_map(
    models: Mapping[str, DegradationModel],
    ratios: Mapping[str, float],
    distances: Mapping[str, float],
) -> float:
    """Eq. 2 keyed by object id instead of positional sequences."""
    if set(models) != set(ratios) or set(models) != set(distances):
        raise ConfigurationError(
            "object-id key sets differ between models/ratios/distances"
        )
    keys = sorted(models)
    return average_quality(
        [models[k] for k in keys],
        [ratios[k] for k in keys],
        [distances[k] for k in keys],
    )

"""The augmented scene: placed object instances and the user's position.

A :class:`Scene` tracks, per object instance, the asset, its world
position, and the decimation ratio it is currently *drawn* at. It exposes
the quantities the rest of the system consumes: per-object user distance,
the total maximum triangle count T^max, the currently drawn triangle
count, and the Eq. 2 average quality of what's on screen.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ar.objects import VirtualObject
from repro.ar.quality import average_quality
from repro.errors import SceneError

#: Objects closer than this are clamped — the quality model diverges at
#: D → 0 and real AR frameworks keep virtual objects out of the near plane.
MIN_DISTANCE_M = 0.3


@dataclass(frozen=True)
class PlacedObject:
    """One object instance in the scene."""

    instance_id: str
    obj: VirtualObject
    position: np.ndarray  # (3,) world coordinates, meters
    ratio: float = 1.0  # decimation ratio currently drawn

    def __post_init__(self) -> None:
        pos = np.asarray(self.position, dtype=float).ravel()
        if pos.shape != (3,):
            raise SceneError(
                f"{self.instance_id!r}: position must be a 3-vector, got {pos.shape}"
            )
        if not np.all(np.isfinite(pos)):
            raise SceneError(f"{self.instance_id!r}: non-finite position")
        if not 0.0 < self.ratio <= 1.0:
            raise SceneError(
                f"{self.instance_id!r}: ratio must be in (0, 1], got {self.ratio}"
            )
        object.__setattr__(self, "position", pos)

    @property
    def drawn_triangles(self) -> float:
        return self.ratio * self.obj.max_triangles


class Scene:
    """Mutable scene state: placed objects + user position."""

    def __init__(self, user_position: Sequence[float] = (0.0, 0.0, 0.0)) -> None:
        self._objects: Dict[str, PlacedObject] = {}
        self._user = np.asarray(user_position, dtype=float).ravel()
        if self._user.shape != (3,):
            raise SceneError(f"user position must be a 3-vector, got {self._user.shape}")

    # -------------------------------------------------------------- objects

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._objects

    def __iter__(self) -> Iterator[PlacedObject]:
        return iter(self._objects.values())

    @property
    def instance_ids(self) -> Tuple[str, ...]:
        return tuple(self._objects)

    def get(self, instance_id: str) -> PlacedObject:
        if instance_id not in self._objects:
            raise SceneError(f"no object instance {instance_id!r} in scene")
        return self._objects[instance_id]

    def add(
        self,
        instance_id: str,
        obj: VirtualObject,
        position: Sequence[float],
        ratio: float = 1.0,
    ) -> None:
        if instance_id in self._objects:
            raise SceneError(f"instance id {instance_id!r} already placed")
        self._objects[instance_id] = PlacedObject(
            instance_id=instance_id,
            obj=obj,
            position=np.asarray(position, dtype=float),
            ratio=ratio,
        )

    def remove(self, instance_id: str) -> None:
        if instance_id not in self._objects:
            raise SceneError(f"no object instance {instance_id!r} in scene")
        del self._objects[instance_id]

    # ----------------------------------------------------------------- user

    @property
    def user_position(self) -> np.ndarray:
        return self._user.copy()

    def move_user(self, position: Sequence[float]) -> None:
        pos = np.asarray(position, dtype=float).ravel()
        if pos.shape != (3,) or not np.all(np.isfinite(pos)):
            raise SceneError(f"invalid user position {position!r}")
        self._user = pos

    def distance(self, instance_id: str) -> float:
        """User-object distance D_{t,i}, clamped to MIN_DISTANCE_M."""
        placed = self.get(instance_id)
        return max(MIN_DISTANCE_M, float(np.linalg.norm(placed.position - self._user)))

    def distances(self) -> Dict[str, float]:
        return {iid: self.distance(iid) for iid in self._objects}

    # ---------------------------------------------------------------- ratios

    def set_ratio(self, instance_id: str, ratio: float) -> None:
        placed = self.get(instance_id)
        self._objects[instance_id] = replace(placed, ratio=ratio)

    def apply_ratios(self, ratios: Mapping[str, float]) -> None:
        unknown = set(ratios) - set(self._objects)
        if unknown:
            raise SceneError(f"unknown instance ids in ratio map: {sorted(unknown)}")
        for instance_id, ratio in ratios.items():
            self.set_ratio(instance_id, ratio)

    def ratios(self) -> Dict[str, float]:
        return {iid: p.ratio for iid, p in self._objects.items()}

    # ------------------------------------------------------------ aggregates

    @property
    def total_max_triangles(self) -> float:
        """T^max: full-quality triangle count across placed objects."""
        return float(sum(p.obj.max_triangles for p in self._objects.values()))

    @property
    def drawn_triangles(self) -> float:
        """Triangles currently submitted for rendering (before culling)."""
        return float(sum(p.drawn_triangles for p in self._objects.values()))

    @property
    def triangle_ratio(self) -> float:
        """Current overall ratio x = drawn / T^max (1.0 for empty scenes)."""
        total = self.total_max_triangles
        return self.drawn_triangles / total if total > 0 else 1.0

    def average_quality(self) -> float:
        """Eq. 2 over the on-screen objects at their drawn ratios."""
        placed = list(self._objects.values())
        return average_quality(
            [p.obj.degradation for p in placed],
            [p.ratio for p in placed],
            [self.distance(p.instance_id) for p in placed],
        )

    def snapshot(self) -> List[PlacedObject]:
        """Immutable copy of the current placement list."""
        return list(self._objects.values())

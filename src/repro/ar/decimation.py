"""Mesh decimation to a target triangle count.

This is the "virtual object decimation algorithm" the paper's Fig. 3 runs
on a server: given an asset and a decimation ratio R (selected triangles /
maximum triangles), produce the reduced-quality mesh that is actually
rendered.

We implement **vertex-clustering decimation**: vertices are snapped to a
uniform grid, co-located vertices merge, and faces that collapse become
degenerate and are removed. The grid cell size is found by bisection so
the output triangle count lands within a tolerance of the target. Vertex
clustering is a classic real-time LOD technique (Rossignac–Borrel); it is
orders of magnitude faster than quadric edge collapse and adequate here
because only the triangle *count* feeds the performance model while the
*geometry* feeds mesh statistics used in degradation fitting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ar.mesh import TriangleMesh
from repro.errors import MeshError


def cluster_vertices(mesh: TriangleMesh, cell_size: float) -> TriangleMesh:
    """Snap vertices to a grid of ``cell_size`` and merge duplicates."""
    if cell_size <= 0:
        raise MeshError(f"cell_size must be > 0, got {cell_size}")
    if mesh.n_triangles == 0:
        return mesh
    lo, _ = mesh.bounding_box()
    keys = np.floor((mesh.vertices - lo) / cell_size).astype(np.int64)
    # Unique grid cells; each cell's representative is the mean of its
    # member vertices (keeps the silhouette better than the first vertex).
    _, inverse, counts = np.unique(
        keys, axis=0, return_inverse=True, return_counts=True
    )
    n_cells = counts.shape[0]
    reps = np.zeros((n_cells, 3))
    np.add.at(reps, inverse, mesh.vertices)
    reps /= counts[:, None]
    new_faces = inverse[mesh.faces]
    return TriangleMesh(vertices=reps, faces=new_faces).remove_degenerate_faces()


def decimate(
    mesh: TriangleMesh,
    ratio: float,
    tolerance: float = 0.08,
    max_bisection_steps: int = 32,
) -> TriangleMesh:
    """Decimate ``mesh`` to approximately ``ratio`` of its triangles.

    ``ratio`` is the paper's per-object decimation ratio R ∈ (0, 1]:
    selected triangle count over maximum count. ``ratio=1`` returns the
    mesh unchanged. The achieved count is within ``tolerance`` of the
    target whenever the clustering lattice can express it; for very coarse
    targets the closest achievable mesh is returned.
    """
    if not 0.0 < ratio <= 1.0:
        raise MeshError(f"ratio must be in (0, 1], got {ratio}")
    if mesh.n_triangles == 0:
        raise MeshError("cannot decimate an empty mesh")
    if ratio >= 0.999:
        return mesh

    target = max(1, int(round(mesh.n_triangles * ratio)))
    lo_corner, hi_corner = mesh.bounding_box()
    diag = float(np.linalg.norm(hi_corner - lo_corner))
    if diag <= 0:
        raise MeshError("mesh bounding box is degenerate")

    # Bisection on cell size: larger cells -> fewer triangles (monotone
    # in expectation; we track the best result seen to absorb noise).
    lo_cell, hi_cell = diag * 1e-4, diag
    best: Optional[TriangleMesh] = None
    best_err = float("inf")
    for _ in range(max_bisection_steps):
        cell = float(np.sqrt(lo_cell * hi_cell))  # geometric midpoint
        candidate = cluster_vertices(mesh, cell)
        err = abs(candidate.n_triangles - target) / target
        if err < best_err:
            best, best_err = candidate, err
        if err <= tolerance:
            break
        if candidate.n_triangles > target:
            lo_cell = cell
        else:
            hi_cell = cell
    assert best is not None
    return best


def decimation_error_proxy(original: TriangleMesh, decimated: TriangleMesh) -> float:
    """Geometric error proxy in [0, 1]: relative surface-area distortion
    blended with triangle loss. Used by the offline degradation fitting as
    the 'measured' GMSD-style distortion signal."""
    if original.n_triangles == 0:
        raise MeshError("original mesh is empty")
    area_orig = original.surface_area()
    area_dec = decimated.surface_area() if decimated.n_triangles else 0.0
    area_err = abs(area_orig - area_dec) / max(area_orig, 1e-12)
    tri_loss = 1.0 - decimated.n_triangles / original.n_triangles
    return float(np.clip(0.6 * area_err + 0.4 * tri_loss**2, 0.0, 1.0))

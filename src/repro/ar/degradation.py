"""The eAR degradation model (Eq. 1) and its offline parameter fitting.

The paper borrows from eAR [11] a user-validated model of how perceived
quality of a virtual object degrades with decimation and distance:

    D_error(t, i) = (a_i R² + b_i R + c_i) / D^{d_i}            (Eq. 1)

where R is the decimation ratio (selected / maximum triangles), D the
user-object distance, and (a, b, c, d) per-object parameters "trained
offline". This module provides:

- :class:`DegradationParams` — a validated parameter set.
- :class:`DegradationModel` — evaluation of Eq. 1 with clamping to [0, 1].
- :func:`fit_degradation_params` — the offline training: least-squares fit
  of (a, b, c) and a grid search over d, from (R, D, error) samples. The
  fit enforces the physical anchor error(R=1) ≈ 0 by construction.
- :func:`synthesize_training_samples` — generates the GMSD-style distortion
  measurements for a mesh by actually decimating it across a ratio sweep
  (the stand-in for the paper's image-quality assessment step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.ar.decimation import decimate, decimation_error_proxy
from repro.ar.mesh import TriangleMesh
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class DegradationParams:
    """Per-object parameters (a, b, c, d) of Eq. 1."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if self.d < 0:
            raise ConfigurationError(
                f"distance exponent d must be >= 0, got {self.d}"
            )
        # The model must not reward decimation: error at full quality
        # (R=1, D=1) should be ~0 and error must not go negative at R=1.
        at_full = self.a + self.b + self.c
        if at_full < -1e-6:
            raise ConfigurationError(
                f"params give negative error at R=1: a+b+c={at_full:.4f}"
            )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.a, self.b, self.c, self.d)


class DegradationModel:
    """Evaluates Eq. 1 for one object, clamped to [0, 1]."""

    def __init__(self, params: DegradationParams) -> None:
        self.params = params

    def error(self, ratio: float, distance: float) -> float:
        """Normalized degradation error D_error ∈ [0, 1]."""
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in (0, 1], got {ratio}")
        if distance <= 0:
            raise ConfigurationError(f"distance must be > 0, got {distance}")
        p = self.params
        numerator = p.a * ratio**2 + p.b * ratio + p.c
        return float(np.clip(numerator / distance**p.d, 0.0, 1.0))

    def error_batch(self, ratios: np.ndarray, distances: np.ndarray) -> np.ndarray:
        """Vectorized Eq. 1 over parallel arrays of ratios/distances."""
        r = np.asarray(ratios, dtype=float)
        d = np.asarray(distances, dtype=float)
        if np.any((r <= 0) | (r > 1)):
            raise ConfigurationError("all ratios must be in (0, 1]")
        if np.any(d <= 0):
            raise ConfigurationError("all distances must be > 0")
        p = self.params
        return np.clip((p.a * r**2 + p.b * r + p.c) / d**p.d, 0.0, 1.0)

    def quality(self, ratio: float, distance: float) -> float:
        """Per-object quality 1 - D_error (the summand of Eq. 2)."""
        return 1.0 - self.error(ratio, distance)

    def sensitivity(self, ratio: float, distance: float, reference_ratio: float) -> float:
        """The TD heuristic's weight: degradation gap between the current
        ratio and a common reference ratio (§IV-D, Line 23 discussion).
        Positive when the object is currently *worse* than the reference,
        i.e. it benefits most from extra triangles."""
        return self.error(ratio, distance) - self.error(reference_ratio, distance)


def synthesize_training_samples(
    mesh: TriangleMesh,
    ratios: Sequence[float] = (0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0),
    distances: Sequence[float] = (0.7, 1.0, 1.5, 2.5),
    distance_exponent: float = 1.0,
    noise_sigma: float = 0.01,
    seed: SeedLike = None,
) -> List[Tuple[float, float, float]]:
    """Produce (ratio, distance, measured_error) training triples.

    Decimates ``mesh`` at each ratio, measures the geometric distortion
    proxy, attenuates it by distance (far objects project fewer pixels, so
    measured GMSD distortion drops), and adds measurement noise. This is
    the stand-in for eAR's offline GMSD-based quality assessment.
    """
    if noise_sigma < 0:
        raise ConfigurationError(f"noise_sigma must be >= 0, got {noise_sigma}")
    rng = make_rng(seed)
    samples: List[Tuple[float, float, float]] = []
    for ratio in ratios:
        if ratio >= 0.999:
            base_error = 0.0
        else:
            base_error = decimation_error_proxy(mesh, decimate(mesh, ratio))
        for distance in distances:
            measured = base_error / distance**distance_exponent
            measured += float(rng.normal(0.0, noise_sigma))
            samples.append((float(ratio), float(distance), float(np.clip(measured, 0.0, 1.0))))
    return samples


def fit_degradation_params(
    samples: Sequence[Tuple[float, float, float]],
    d_grid: Sequence[float] = tuple(np.linspace(0.2, 2.0, 19)),
) -> DegradationParams:
    """Offline training of Eq. 1 from (R, D, error) samples.

    For each candidate distance exponent ``d`` on a grid, the quadratic
    (a, b, c) is fit by constrained least squares on
    ``error * D^d = a R² + b R + c`` with the anchor a + b + c = 0
    (zero error at full quality), then the best (d, a, b, c) by residual
    is returned.
    """
    if len(samples) < 4:
        raise ConfigurationError(
            f"need at least 4 samples to fit Eq. 1, got {len(samples)}"
        )
    arr = np.asarray(samples, dtype=float)
    r, dist, err = arr[:, 0], arr[:, 1], arr[:, 2]
    if np.any((r <= 0) | (r > 1)) or np.any(dist <= 0):
        raise ConfigurationError("samples contain out-of-range ratio/distance")

    best: Tuple[float, DegradationParams] = (float("inf"), DegradationParams(0, 0, 0, 1))
    for d in d_grid:
        target = err * dist**d
        # Basis with the anchor folded in: error = a(R²-1) + b(R-1), c = -(a+b).
        basis = np.stack([r**2 - 1.0, r - 1.0], axis=1)
        coeffs, *_ = np.linalg.lstsq(basis, target, rcond=None)
        a, b = float(coeffs[0]), float(coeffs[1])
        c = -(a + b)
        residual = float(np.mean((basis @ coeffs - target) ** 2))
        if residual < best[0]:
            best = (residual, DegradationParams(a=a, b=b, c=c, d=float(d)))
    return best[1]

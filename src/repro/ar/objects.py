"""Virtual-object catalog (the paper's Table II scenarios).

A :class:`VirtualObject` is an *asset*: a name, a maximum triangle count,
degradation parameters (a, b, c, d) for Eq. 1, and a procedural mesh. The
two scenario catalogs mirror Table II exactly:

- **SC1** (high triangle count, 9 objects): apricot ×1 (86,016), bike ×1
  (178,552), plane ×4 (146,803 each), splane ×1 (146,803), Cocacola ×2
  (94,080 each).
- **SC2** (low triangle count, 7 objects): cabin ×1 (2,324), andy ×2
  (2,304 each), ATV ×2 (4,907 each), hammer ×2 (6,250 each).

Catalog degradation parameters are fixed (the paper trains them offline
once per object; see :func:`repro.ar.degradation.fit_degradation_params`
for the training pipeline itself, exercised in tests and examples). The
values encode shape complexity: intricate geometry (bike, ATV) degrades
steeply with decimation; smooth shapes (Cocacola bottle, apricot) tolerate
heavy decimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.ar.degradation import (
    DegradationModel,
    DegradationParams,
    fit_degradation_params,
    synthesize_training_samples,
)
from repro.ar.mesh import TriangleMesh, make_procedural
from repro.errors import ConfigurationError, SceneError


@dataclass(frozen=True)
class VirtualObject:
    """A renderable asset with its quality model."""

    name: str
    max_triangles: int
    params: DegradationParams

    def __post_init__(self) -> None:
        if self.max_triangles < 8:
            raise ConfigurationError(
                f"{self.name!r}: max_triangles must be >= 8, got {self.max_triangles}"
            )

    @property
    def degradation(self) -> DegradationModel:
        return DegradationModel(self.params)

    def mesh(self, mesh_triangles: int = 5_000) -> TriangleMesh:
        """Procedural stand-in geometry for this asset.

        ``mesh_triangles`` caps the generated resolution — experiments
        never need the literal 178k-triangle bike to exist in memory; the
        triangle *count* drives the performance model while this mesh
        drives geometry-dependent code paths (decimation, fitting).
        """
        return _procedural_mesh(self.name, min(self.max_triangles, mesh_triangles))

    @classmethod
    def with_fitted_params(
        cls,
        name: str,
        max_triangles: int,
        mesh_triangles: int = 3_000,
        seed: int = 0,
    ) -> "VirtualObject":
        """Build an object by running the full offline training pipeline:
        generate geometry, decimate across a ratio sweep, measure
        distortion, and fit Eq. 1 (the eAR server-side procedure)."""
        mesh = _procedural_mesh(name, min(max_triangles, mesh_triangles))
        samples = synthesize_training_samples(mesh, seed=seed)
        params = fit_degradation_params(samples)
        return cls(name=name, max_triangles=max_triangles, params=params)


@lru_cache(maxsize=64)
def _procedural_mesh(name: str, triangles: int) -> TriangleMesh:
    return make_procedural(name, triangles)


def _params(a: float, b: float, d: float) -> DegradationParams:
    """Anchored parameter helper: c = -(a + b) so error(R=1) = 0."""
    return DegradationParams(a=a, b=b, c=-(a + b), d=d)


# ----------------------------------------------------------- Table II data

_SC1_SPEC: List[Tuple[str, int, int, DegradationParams]] = [
    # (name, instance count, triangles each, degradation params)
    ("apricot", 1, 86_016, _params(a=1.30, b=-2.75, d=1.1)),
    ("bike", 1, 178_552, _params(a=1.10, b=-3.05, d=0.9)),
    ("plane", 4, 146_803, _params(a=1.25, b=-2.90, d=1.0)),
    ("splane", 1, 146_803, _params(a=1.25, b=-2.85, d=1.0)),
    ("Cocacola", 2, 94_080, _params(a=1.40, b=-2.60, d=1.2)),
]

_SC2_SPEC: List[Tuple[str, int, int, DegradationParams]] = [
    ("cabin", 1, 2_324, _params(a=1.28, b=-2.85, d=1.0)),
    ("andy", 2, 2_304, _params(a=1.30, b=-2.80, d=1.1)),
    ("ATV", 2, 4_907, _params(a=1.12, b=-3.00, d=0.9)),
    ("hammer", 2, 6_250, _params(a=1.35, b=-2.65, d=1.2)),
]


def _build_catalog(
    spec: List[Tuple[str, int, int, DegradationParams]]
) -> List[Tuple[VirtualObject, int]]:
    return [
        (VirtualObject(name=name, max_triangles=tris, params=params), count)
        for name, count, tris, params in spec
    ]


def catalog_sc1() -> List[Tuple[VirtualObject, int]]:
    """Table II scenario SC1: (asset, instance count) pairs, heavy objects."""
    return _build_catalog(_SC1_SPEC)


def catalog_sc2() -> List[Tuple[VirtualObject, int]]:
    """Table II scenario SC2: (asset, instance count) pairs, light objects."""
    return _build_catalog(_SC2_SPEC)


def object_by_name(name: str) -> VirtualObject:
    """Look up a catalog asset by name across both scenarios."""
    for spec in (_SC1_SPEC, _SC2_SPEC):
        for obj_name, _count, tris, params in spec:
            if obj_name == name:
                return VirtualObject(name=obj_name, max_triangles=tris, params=params)
    raise SceneError(f"unknown catalog object {name!r}")


def expand_instances(
    catalog: List[Tuple[VirtualObject, int]]
) -> List[Tuple[str, VirtualObject]]:
    """Expand (asset, count) pairs into uniquely-named instances.

    Single instances keep the asset name; multiples get ``_1``, ``_2``, ...
    suffixes, matching the paper's naming (e.g. ``plane_3``).
    """
    instances: List[Tuple[str, VirtualObject]] = []
    for obj, count in catalog:
        if count < 1:
            raise ConfigurationError(f"{obj.name!r}: count must be >= 1, got {count}")
        for i in range(count):
            instance_id = obj.name if count == 1 else f"{obj.name}_{i + 1}"
            instances.append((instance_id, obj))
    return instances


def total_max_triangles(catalog: List[Tuple[VirtualObject, int]]) -> int:
    """T^max of the paper: the summed full-quality triangle count."""
    return sum(obj.max_triangles * count for obj, count in catalog)

"""LOD cache and the simulated decimation server (Fig. 3's right side).

In the paper, each decimated object version "can either be found in the
local cache or downloaded from a server executing a virtual object
decimation algorithm" (§IV-A). We reproduce both halves:

- :class:`LODCache` — a bounded LRU cache of decimated meshes keyed by
  (object name, quantized ratio), with hit/miss counters.
- :class:`DecimationServer` — the edge server: decimates on request,
  trains Eq. 1 parameters offline, and reports a simulated download
  latency so experiments can account for the fetch cost of cache misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ar.decimation import decimate
from repro.ar.degradation import (
    DegradationParams,
    fit_degradation_params,
    synthesize_training_samples,
)
from repro.ar.mesh import TriangleMesh
from repro.ar.objects import VirtualObject
from repro.errors import ConfigurationError

#: Ratios are quantized to this step for cache keys — requesting 0.714
#: and 0.716 should reuse the same LOD asset.
RATIO_QUANTUM = 0.02


def quantize_ratio(ratio: float) -> float:
    """Snap a ratio to the cache's quantum grid (never below one quantum)."""
    if not 0.0 < ratio <= 1.0:
        raise ConfigurationError(f"ratio must be in (0, 1], got {ratio}")
    steps = max(1, round(ratio / RATIO_QUANTUM))
    return min(1.0, steps * RATIO_QUANTUM)


class LODCache:
    """Bounded LRU cache of decimated meshes."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._store: "OrderedDict[Tuple[str, float], TriangleMesh]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, name: str, ratio: float) -> Optional[TriangleMesh]:
        key = (name, quantize_ratio(ratio))
        mesh = self._store.get(key)
        if mesh is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return mesh

    def put(self, name: str, ratio: float, mesh: TriangleMesh) -> None:
        key = (name, quantize_ratio(ratio))
        self._store[key] = mesh
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class FetchResult:
    """A decimated mesh plus where it came from and what the fetch cost."""

    mesh: TriangleMesh
    from_cache: bool
    latency_ms: float


class DecimationServer:
    """The simulated edge server of Fig. 3.

    Serves decimated LODs (through the local cache) and runs the offline
    Eq. 1 parameter training. Download latency is modelled as a fixed
    round-trip plus a per-triangle transfer term.
    """

    def __init__(
        self,
        cache: Optional[LODCache] = None,
        rtt_ms: float = 20.0,
        ms_per_million_triangles: float = 120.0,
        mesh_resolution: int = 3_000,
    ) -> None:
        if rtt_ms < 0:
            raise ConfigurationError(f"rtt_ms must be >= 0, got {rtt_ms}")
        if ms_per_million_triangles < 0:
            raise ConfigurationError(
                f"ms_per_million_triangles must be >= 0, got {ms_per_million_triangles}"
            )
        self.cache = cache if cache is not None else LODCache()
        self.rtt_ms = float(rtt_ms)
        self.ms_per_million_triangles = float(ms_per_million_triangles)
        self.mesh_resolution = int(mesh_resolution)

    def fetch(self, obj: VirtualObject, ratio: float) -> FetchResult:
        """Return the decimated mesh for (object, ratio), cache-first."""
        q = quantize_ratio(ratio)
        cached = self.cache.get(obj.name, q)
        if cached is not None:
            return FetchResult(mesh=cached, from_cache=True, latency_ms=0.0)
        base = obj.mesh(self.mesh_resolution)
        mesh = base if q >= 0.999 else decimate(base, q)
        self.cache.put(obj.name, q, mesh)
        transfer = (
            self.rtt_ms
            + (q * obj.max_triangles / 1e6) * self.ms_per_million_triangles
        )
        return FetchResult(mesh=mesh, from_cache=False, latency_ms=transfer)

    def train_parameters(self, obj: VirtualObject, seed: int = 0) -> DegradationParams:
        """The offline per-object Eq. 1 training the paper's server runs."""
        mesh = obj.mesh(self.mesh_resolution)
        samples = synthesize_training_samples(mesh, seed=seed)
        return fit_degradation_params(samples)

"""The simulated device: a taskset running on a SoC under a render load.

:class:`DeviceSimulator` is the stand-in for the paper's real phones. It
holds the current per-task allocation and the AR load, and produces noisy
latency measurements the way the on-device profiler would: each call to
:meth:`sample_latencies` returns one measurement per task with lognormal
multiplicative noise on top of the contention model's steady-state value.

Optionally a :class:`~repro.device.thermal.ThermalModel` inflates
latencies as sustained load heats the SoC (an extension beyond the paper,
off by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.profiles import StaticProfile
from repro.device.resources import Processor, Resource
from repro.device.soc import SoCSpec
from repro.device.thermal import ThermalModel
from repro.edge.runtime import EdgeRuntime
from repro.edge.share import EdgeShare, edge_demand
from repro.errors import DeviceError, IncompatibleDelegateError
from repro.obs import runtime as obs
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class LatencySample:
    """One noisy latency measurement of one task."""

    task_id: str
    resource: Resource
    latency_ms: float


class DeviceSimulator:
    """Simulates a phone running a set of AI tasks plus AR rendering.

    Parameters
    ----------
    soc:
        The SoC description (e.g. :func:`~repro.device.soc.pixel7_soc`).
    noise_sigma:
        Standard deviation of the multiplicative lognormal measurement
        noise. Real on-device latencies jitter by a few percent.
    thermal:
        Optional thermal-throttling model.
    seed:
        Seed/generator for the noise stream.
    edge:
        Optional :class:`~repro.edge.runtime.EdgeRuntime` enabling the
        ``EDGE`` allocation choice: tasks placed on it are priced over
        the wireless link and the shared edge server instead of the SoC.
    """

    def __init__(
        self,
        soc: SoCSpec,
        noise_sigma: float = 0.04,
        thermal: Optional[ThermalModel] = None,
        seed: SeedLike = None,
        edge: Optional[EdgeRuntime] = None,
    ) -> None:
        if noise_sigma < 0:
            raise DeviceError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.soc = soc
        self.contention = ContentionModel(soc)
        self.noise_sigma = float(noise_sigma)
        self.thermal = thermal
        self.edge = edge
        self._rng = make_rng(seed)
        self._tasks: Dict[str, StaticProfile] = {}
        self._allocation: Dict[str, Resource] = {}
        self._load = SystemLoad()
        self._failed_resources: set = set()
        #: Fallback reassignments caused by delegate failures, in order:
        #: (task_id, failed_resource, fallback_resource).
        self.failure_log: List[Tuple[str, Resource, Resource]] = []

    # -------------------------------------------------------------- taskset

    @property
    def task_ids(self) -> Tuple[str, ...]:
        return tuple(self._tasks)

    @property
    def load(self) -> SystemLoad:
        return self._load

    def add_task(
        self, task_id: str, profile: StaticProfile, resource: Optional[Resource] = None
    ) -> None:
        """Register a task instance; defaults to its best isolation resource."""
        if task_id in self._tasks:
            raise DeviceError(f"task id {task_id!r} already registered")
        if resource is None:
            resource, _ = profile.best_resource()
        if not profile.supports(resource):
            raise IncompatibleDelegateError(profile.model, str(resource))
        self._tasks[task_id] = profile
        self._allocation[task_id] = resource
        self._sync_edge_demand()

    def remove_task(self, task_id: str) -> None:
        if task_id not in self._tasks:
            raise DeviceError(f"unknown task id {task_id!r}")
        del self._tasks[task_id]
        del self._allocation[task_id]
        self._sync_edge_demand()

    def profile_of(self, task_id: str) -> StaticProfile:
        if task_id not in self._tasks:
            raise DeviceError(f"unknown task id {task_id!r}")
        return self._tasks[task_id]

    # ----------------------------------------------------------- allocation

    @property
    def allocation(self) -> Dict[str, Resource]:
        """Current task → resource map (copy)."""
        return dict(self._allocation)

    def placement_items(self) -> Iterable[Tuple[str, Resource]]:
        """Live ``(task_id, resource)`` pairs in allocation order, no copy.

        The fleet's :class:`~repro.fleet.table.SessionTable` reads this on
        every tick to refresh its plan columns; treat it as read-only.
        """
        return self._allocation.items()

    def set_allocation(self, task_id: str, resource: Resource) -> None:
        """Move one task to another allocation choice (live reallocation).

        Assigning to a failed delegate triggers the Android-runtime
        behavior: the task silently falls back to its best still-working
        resource and the event is recorded in :attr:`failure_log`.
        """
        if task_id not in self._tasks:
            raise DeviceError(f"unknown task id {task_id!r}")
        profile = self._tasks[task_id]
        if not profile.supports(resource):
            raise IncompatibleDelegateError(profile.model, str(resource))
        if resource is Resource.EDGE and self.edge is None:
            raise DeviceError(
                f"cannot place {task_id!r} on EDGE: no edge runtime attached"
            )
        if resource in self._failed_resources:
            fallback = self._best_available(profile)
            self.failure_log.append((task_id, resource, fallback))
            resource = fallback
        self._allocation[task_id] = resource
        self._sync_edge_demand()

    def apply_allocation(self, allocation: Mapping[str, Resource]) -> None:
        """Apply a full allocation map; unknown/missing ids are an error."""
        missing = set(self._tasks) - set(allocation)
        extra = set(allocation) - set(self._tasks)
        if missing or extra:
            raise DeviceError(
                f"allocation map mismatch: missing={sorted(missing)}, "
                f"unknown={sorted(extra)}"
            )
        for task_id, resource in allocation.items():
            self.set_allocation(task_id, resource)

    def set_load(self, load: SystemLoad) -> None:
        """Update the AR-side load (triangles drawn, object count)."""
        self._load = load

    # ------------------------------------------------------ failure injection

    @property
    def failed_resources(self) -> Tuple[Resource, ...]:
        return tuple(self._failed_resources)

    def _best_available(self, profile: StaticProfile) -> Resource:
        """Fastest compatible resource that has not failed."""
        options = [
            (profile.latency(res), i, res)
            for i, res in enumerate(Resource)
            if profile.supports(res)
            and res not in self._failed_resources
            and (res is not Resource.EDGE or self.edge is not None)
        ]
        if not options:
            raise DeviceError(
                f"model {profile.model!r} has no working resource left "
                f"(failed: {sorted(str(r) for r in self._failed_resources)})"
            )
        return min(options)[2]

    def fail_resource(self, resource: Resource) -> None:
        """Inject a runtime delegate failure (driver crash, delegate
        rejecting graphs mid-session). Tasks currently on the failed
        delegate immediately fall back to their best working resource,
        mirroring what the Android runtime does; each fallback is
        recorded in :attr:`failure_log`."""
        self._failed_resources.add(resource)
        for task_id, current in list(self._allocation.items()):
            if current is resource:
                fallback = self._best_available(self._tasks[task_id])
                self.failure_log.append((task_id, resource, fallback))
                self._allocation[task_id] = fallback
        self._sync_edge_demand()

    def restore_resource(self, resource: Resource) -> None:
        """Clear an injected failure (tasks stay where they fell back to)."""
        self._failed_resources.discard(resource)

    # ----------------------------------------------------------- measurement

    def placements(self) -> List[TaskPlacement]:
        return [
            TaskPlacement(task_id=tid, profile=self._tasks[tid], resource=res)
            for tid, res in self._allocation.items()
        ]

    def edge_share(self) -> Optional[EdgeShare]:
        """The current edge pricing snapshot, or ``None`` when the edge
        subsystem is off for this device."""
        if self.edge is None:
            return None
        return self.edge.share()

    def _sync_edge_demand(self) -> None:
        """Publish this device's offloaded stream demand to the shared
        edge server (no-op without an edge runtime)."""
        if self.edge is None:
            return
        streams = 0.0
        for tid, res in self._allocation.items():
            if res is Resource.EDGE:
                streams += edge_demand(self._tasks[tid])
        self.edge.set_demand_streams(streams)

    def steady_state_latencies(self) -> Dict[str, float]:
        """Noise-free latencies under the current placement and load."""
        latencies = self.contention.latencies(
            self.placements(), self._load, self.edge_share()
        )
        if self.thermal is not None:
            # Throttling scales the SoC's clocks, so it only touches tasks
            # that actually run on the SoC: an EDGE-offloaded task's latency
            # is link + server time and is unaffected by phone temperature.
            factor = self.thermal.throttle_factor()
            latencies = {
                tid: (
                    lat
                    if self._allocation[tid] is Resource.EDGE
                    else lat * factor
                )
                for tid, lat in latencies.items()
            }
        return latencies

    def sample_latencies(self) -> List[LatencySample]:
        """One noisy measurement per task (a single inference each)."""
        steady = self.steady_state_latencies()
        if self.thermal is not None:
            self.thermal.step(self._busy_fraction())
        samples = []
        for tid, lat in steady.items():
            noisy = lat * float(
                np.exp(self._rng.normal(0.0, self.noise_sigma))
            ) if self.noise_sigma > 0 else lat
            samples.append(
                LatencySample(
                    task_id=tid,
                    resource=self._allocation[tid],
                    latency_ms=noisy,
                )
            )
        return samples

    def measure_period(
        self,
        n_samples: int = 20,
        steady_latencies: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Average measured latency per task over a control period.

        ``steady_latencies`` lets a batched caller (the fleet tick, a
        baseline's grid scan) inject steady-state latencies it already
        computed through one backend solve, skipping the recomputation
        here. It is ignored when a thermal model is attached — there the
        steady state drifts within the period and must be resampled.
        """
        if n_samples < 1:
            raise DeviceError(f"n_samples must be >= 1, got {n_samples}")
        with obs.span(
            "device.measure_period",
            category="device",
            n_tasks=len(self._tasks),
            n_samples=n_samples,
        ):
            if self.thermal is not None:
                sums = {tid: 0.0 for tid in self._tasks}
                for _ in range(n_samples):
                    for sample in self.sample_latencies():
                        sums[sample.task_id] += sample.latency_ms
                means = {tid: total / n_samples for tid, total in sums.items()}
            else:
                # Thermal-free steady state is constant across the period:
                # compute it once (or accept a precomputed batch row) and
                # draw the whole noise matrix in one call. The (sample,
                # task) draw order matches the per-sample loop, so the RNG
                # stream — and therefore every downstream number — is
                # bit-identical to sampling one inference at a time.
                steady = (
                    dict(steady_latencies)
                    if steady_latencies is not None
                    else self.steady_state_latencies()
                )
                if set(steady) != set(self._tasks):
                    raise DeviceError(
                        "steady_latencies task ids do not match the taskset: "
                        f"{sorted(set(steady) ^ set(self._tasks))}"
                    )
                ids = list(self._tasks)
                lat = np.array([steady[tid] for tid in ids], dtype=np.float64)
                if self.noise_sigma > 0:
                    noise = self._rng.normal(
                        0.0, self.noise_sigma, size=(n_samples, len(ids))
                    )
                    noisy = lat[np.newaxis, :] * np.exp(noise)
                else:
                    noisy = np.broadcast_to(lat, (n_samples, len(ids)))
                # Sequential accumulation (not a pairwise np.sum) to match
                # the scalar loop's addition order bit-for-bit.
                totals = np.zeros(len(ids), dtype=np.float64)
                for row in range(n_samples):
                    totals = totals + noisy[row]
                means = {
                    tid: float(totals[j] / n_samples) for j, tid in enumerate(ids)
                }
        obs.counter("device_measurements").inc()
        latency_hist = obs.histogram("device_task_latency_ms")
        for mean_ms in means.values():
            latency_hist.observe(mean_ms)
        if self.edge is not None:
            # Record offload metrics against the period's pre-advance link
            # state, then advance the drift trace: every evaluation inside
            # a period — scalar or batched — saw the same snapshot.
            offloaded = [
                self._tasks[tid]
                for tid, res in self._allocation.items()
                if res is Resource.EDGE
            ]
            self.edge.record_period(offloaded)
            self.edge.advance_period()
        return means

    def isolation_latency(self, task_id: str, resource: Resource) -> float:
        """Table I lookup for a registered task."""
        return self.profile_of(task_id).latency(resource)

    # ------------------------------------------------------------- internals

    def _busy_fraction(self) -> float:
        """Rough overall utilization in [0, 1], drives the thermal model."""
        state = self.contention.processor_state(self.placements(), self._load)
        ratios = []
        for proc, streams in state.streams.items():
            if proc is Processor.GPU:
                streams = streams + state.render_gpu_streams
            ratios.append(min(1.0, streams / self.soc.capacity[proc]))
        return float(np.mean(ratios)) if ratios else 0.0

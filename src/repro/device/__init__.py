"""Heterogeneous mobile SoC substrate.

The paper evaluates on real phones (Google Pixel 7, Samsung Galaxy S22).
This package replaces the silicon with a parametric simulator:

- :mod:`repro.device.resources` — allocation choices (CPU / GPU delegate /
  NNAPI delegate) and physical processors (CPU / GPU / NPU).
- :mod:`repro.device.soc` — SoC descriptions with per-processor capacities
  and rendering-throughput constants.
- :mod:`repro.device.profiles` — the paper's Table I isolation latencies.
- :mod:`repro.device.load` — the static placement/load value types
  (:class:`TaskPlacement`, :class:`SystemLoad`) shared with lower layers.
- :mod:`repro.device.contention` — the processor-sharing contention model
  that generates the Fig. 2 phenomena (co-location slowdown, NNAPI op
  splitting, rendering interference on the GPU, communication overhead).
- :mod:`repro.device.executor` — the simulated device: holds a taskset and
  render load, produces noisy latency measurements, supports live
  reallocation.
- :mod:`repro.device.thermal` — optional thermal-throttling extension.
"""

from repro.device.contention import ContentionModel
from repro.device.executor import DeviceSimulator, LatencySample
from repro.device.load import SystemLoad, TaskPlacement
from repro.device.resources import (
    ALL_RESOURCES,
    Processor,
    Resource,
    resource_from_name,
)
from repro.device.power import PowerModel, ProcessorPower, energy_aware_cost
from repro.device.soc import RenderCostModel, SoCSpec, galaxy_s22_soc, pixel7_soc
from repro.device.thermal import ThermalModel

__all__ = [
    "ALL_RESOURCES",
    "ContentionModel",
    "DeviceSimulator",
    "LatencySample",
    "PowerModel",
    "Processor",
    "ProcessorPower",
    "RenderCostModel",
    "Resource",
    "SoCSpec",
    "SystemLoad",
    "TaskPlacement",
    "ThermalModel",
    "energy_aware_cost",
    "galaxy_s22_soc",
    "pixel7_soc",
    "resource_from_name",
]

"""Thermal throttling extension (beyond the paper; off by default).

The paper's §VI notes HBO targets sustained AR sessions; on real phones a
sustained AI+AR load heats the SoC and triggers frequency throttling,
which inflates every latency. This simple first-order model lets the
ablation benches explore how HBO's choices shift when the device
throttles: temperature follows utilization with an exponential time
constant, and the latency multiplier grows once temperature exceeds the
throttle threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


class ThermalModel:
    """First-order SoC temperature with a soft throttle curve.

    Parameters
    ----------
    ambient_c / max_heat_c:
        Idle temperature and the additional degrees reached at 100%
        sustained utilization.
    time_constant_steps:
        Steps for the temperature to close ~63% of the gap to its target.
    throttle_start_c:
        Temperature where throttling begins.
    throttle_slope:
        Latency multiplier gained per degree above the threshold.
    """

    def __init__(
        self,
        ambient_c: float = 30.0,
        max_heat_c: float = 25.0,
        time_constant_steps: float = 40.0,
        throttle_start_c: float = 45.0,
        throttle_slope: float = 0.02,
    ) -> None:
        if max_heat_c < 0:
            raise ConfigurationError(f"max_heat_c must be >= 0, got {max_heat_c}")
        if time_constant_steps <= 0:
            raise ConfigurationError(
                f"time_constant_steps must be > 0, got {time_constant_steps}"
            )
        if throttle_slope < 0:
            raise ConfigurationError(
                f"throttle_slope must be >= 0, got {throttle_slope}"
            )
        self.ambient_c = float(ambient_c)
        self.max_heat_c = float(max_heat_c)
        self.time_constant_steps = float(time_constant_steps)
        self.throttle_start_c = float(throttle_start_c)
        self.throttle_slope = float(throttle_slope)
        self.temperature_c = float(ambient_c)

    def step(self, utilization: float) -> None:
        """Advance one control step at the given utilization ∈ [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        target = self.ambient_c + self.max_heat_c * utilization
        alpha = 1.0 / self.time_constant_steps
        self.temperature_c += alpha * (target - self.temperature_c)

    def throttle_factor(self) -> float:
        """Current latency multiplier (1.0 when cool)."""
        excess = max(0.0, self.temperature_c - self.throttle_start_c)
        return 1.0 + self.throttle_slope * excess

    def reset(self) -> None:
        self.temperature_c = self.ambient_c


@dataclass(frozen=True)
class ThermalSpec:
    """Declarative thermal-episode parameters (picklable, hashable).

    The fleet config and the scenario catalog carry one of these instead
    of a live :class:`ThermalModel` — model instances hold mutable
    temperature state and must be built fresh per session (and per shard
    worker). Fields mirror the model's constructor; see there for
    semantics. Validation happens in :meth:`build` via the model's own
    constructor checks.
    """

    ambient_c: float = 30.0
    max_heat_c: float = 25.0
    time_constant_steps: float = 40.0
    throttle_start_c: float = 45.0
    throttle_slope: float = 0.02

    def build(self) -> ThermalModel:
        """A fresh, cool model with these parameters."""
        return ThermalModel(
            ambient_c=self.ambient_c,
            max_heat_c=self.max_heat_c,
            time_constant_steps=self.time_constant_steps,
            throttle_start_c=self.throttle_start_c,
            throttle_slope=self.throttle_slope,
        )

"""Static isolation-latency profiles (the paper's Table I).

These are the measured response times, in milliseconds, of TensorFlow Lite
models running **in isolation** (no other AI tasks, no virtual objects) on
each allocation choice. ``None`` marks the paper's "NA" entries — model/
delegate combinations that do not work (e.g. deconv-munet and deeplabv3
have no NNAPI path on the Pixel 7, efficientdet-lite has none on either
device).

Two additions beyond Table I, both used by the paper's evaluation but not
profiled in the table:

- ``mnist`` — the digit classifier of tasksets CF1/CF2. §V-D states it
  "has similar latencies across all resources"; we give it small,
  near-equal latencies with a slight GPU edge so that CF1 contains three
  GPU-preferring tasks (mnist + 2× model-metadata) and three
  NNAPI-preferring ones, exactly as §V-B describes.
- Per-model ``npu_coverage`` — the fraction of an NNAPI-delegated model's
  compute that the NPU absorbs (the rest falls back to the GPU,
  footnote 2 of the paper). Quantized classifiers map well onto the NPU
  (high coverage); segmentation models with exotic ops map poorly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.device.resources import Resource
from repro.errors import UnknownModelError

PIXEL7 = "Google Pixel 7"
GALAXY_S22 = "Samsung Galaxy S22"
PIXEL6A = "Google Pixel 6a"
GALAXY_A54 = "Samsung Galaxy A54"

#: Task-type codes from Table I (plus DC for the mnist digit classifier).
TASK_TYPES = {
    "IS": "Image Segmentation",
    "OD": "Object Detection",
    "IC": "Image Classification",
    "GD": "Gesture Detection",
    "DC": "Digit Classification",
}


@dataclass(frozen=True)
class StaticProfile:
    """Isolation latencies (ms) of one model on one device.

    ``cpu_demand`` / ``gpu_demand`` are *stream weights*: how many
    equivalent inference streams one continuously-running instance of the
    model places on the processor. Heavyweight multithreaded segmentation
    models saturate the whole big-core cluster (> 1), tiny classifiers use
    a fraction of it (< 1).

    ``input_bytes`` / ``output_bytes`` size the wire payload when the
    inference is offloaded to an edge server (:mod:`repro.edge`): a
    compressed camera frame up, the inference result down. They do not
    affect any on-device path.
    """

    model: str
    task_type: str
    latency_ms: Mapping[Resource, Optional[float]]
    npu_coverage: float
    cpu_demand: float = 1.0
    gpu_demand: float = 1.0
    input_bytes: int = 18_000
    output_bytes: int = 4_004

    def __post_init__(self) -> None:
        if self.task_type not in TASK_TYPES:
            raise UnknownModelError(
                f"unknown task type {self.task_type!r} for {self.model!r}"
            )
        if not 0.0 <= self.npu_coverage <= 1.0:
            raise UnknownModelError(
                f"{self.model!r}: npu_coverage must be in [0, 1], "
                f"got {self.npu_coverage}"
            )
        for name in ("cpu_demand", "gpu_demand"):
            if getattr(self, name) <= 0:
                raise UnknownModelError(
                    f"{self.model!r}: {name} must be > 0, got {getattr(self, name)}"
                )
        for name in ("input_bytes", "output_bytes"):
            if getattr(self, name) <= 0:
                raise UnknownModelError(
                    f"{self.model!r}: {name} must be > 0, got {getattr(self, name)}"
                )

    def supports(self, resource: Resource) -> bool:
        return self.latency_ms.get(resource) is not None

    def latency(self, resource: Resource) -> float:
        value = self.latency_ms.get(resource)
        if value is None:
            raise UnknownModelError(
                f"{self.model!r} has no profile on {resource} (Table I 'NA')"
            )
        return float(value)

    def best_resource(self) -> Tuple[Resource, float]:
        """The *on-device* resource with the lowest isolation latency.

        This defines both the affinity and τ^e of Eq. 4. ``EDGE`` entries
        (added by :func:`repro.edge.runtime.extend_profile`) are excluded:
        Table I has no edge column, and keeping τ^e device-defined makes ε
        comparable between device-only and edge-enabled runs.
        """
        options = [
            (res, lat)
            for res, lat in self.latency_ms.items()
            if lat is not None and res is not Resource.EDGE
        ]
        res, lat = min(options, key=lambda pair: pair[1])
        return res, float(lat)


#: Offload payload sizes per model: (input_bytes, output_bytes). Inputs are
#: JPEG-compressed camera frames at the model's input resolution; outputs
#: are the raw result tensors (masks for segmentation, boxes/logits
#: otherwise). Used only by the edge subsystem.
_MODEL_IO_BYTES: Dict[str, Tuple[int, int]] = {
    "deconv-munet": (22_000, 50_176),
    "deeplabv3": (24_000, 66_049),
    "efficientdet-lite": (30_000, 4_800),
    "mobilenetDetv1": (27_000, 4_000),
    "efficientclass-lite0": (18_000, 4_004),
    "inception-v1-q": (18_000, 4_004),
    "mobilenet-v1": (18_000, 4_004),
    "model-metadata": (16_000, 1_008),
    "mnist": (3_136, 40),
}


def _profile(
    model: str,
    task_type: str,
    gpu: Optional[float],
    nnapi: Optional[float],
    cpu: Optional[float],
    npu_coverage: float,
    cpu_demand: float = 1.0,
    gpu_demand: float = 1.0,
) -> StaticProfile:
    input_bytes, output_bytes = _MODEL_IO_BYTES[model]
    return StaticProfile(
        model=model,
        task_type=task_type,
        latency_ms={
            Resource.GPU_DELEGATE: gpu,
            Resource.NNAPI: nnapi,
            Resource.CPU: cpu,
        },
        npu_coverage=npu_coverage,
        cpu_demand=cpu_demand,
        gpu_demand=gpu_demand,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
    )


# Table I, Galaxy S22 columns: (GPU, NNAPI, CPU).
_S22_PROFILES = {
    "deconv-munet": _profile(
        "deconv-munet", "IS", 18, 33, 58, 0.45, cpu_demand=1.5, gpu_demand=1.2
    ),
    "deeplabv3": _profile(
        "deeplabv3", "IS", 45, 27, 46, 0.65, cpu_demand=1.5, gpu_demand=1.3
    ),
    "efficientdet-lite": _profile(
        "efficientdet-lite", "OD", 72, None, 68, 0.0, cpu_demand=1.3, gpu_demand=1.2
    ),
    "mobilenetDetv1": _profile(
        "mobilenetDetv1", "OD", 38, 13, 38, 0.80, cpu_demand=1.0, gpu_demand=1.0
    ),
    "efficientclass-lite0": _profile(
        "efficientclass-lite0", "IC", 28, 10, 29, 0.85, cpu_demand=0.8, gpu_demand=0.8
    ),
    "inception-v1-q": _profile(
        "inception-v1-q", "IC", 28, 8, 36, 0.90, cpu_demand=0.8, gpu_demand=0.8
    ),
    "mobilenet-v1": _profile(
        "mobilenet-v1", "IC", 26, 9.5, 28, 0.85, cpu_demand=0.8, gpu_demand=0.8
    ),
    "model-metadata": _profile(
        "model-metadata", "GD", 12.7, 18, 14, 0.55, cpu_demand=0.7, gpu_demand=0.35
    ),
    "mnist": _profile(
        "mnist", "DC", 5.6, 6.5, 6.0, 0.85, cpu_demand=0.15, gpu_demand=0.15
    ),
}

# Table I, Google Pixel 7 columns: (GPU, NNAPI, CPU).
_PIXEL7_PROFILES = {
    "deconv-munet": _profile(
        "deconv-munet", "IS", 17.9, None, 65.9, 0.0, cpu_demand=1.5, gpu_demand=1.2
    ),
    "deeplabv3": _profile(
        "deeplabv3", "IS", 136.6, None, 110.1, 0.0, cpu_demand=1.5, gpu_demand=1.3
    ),
    "efficientdet-lite": _profile(
        "efficientdet-lite", "OD", 109.8, None, 97.3, 0.0, cpu_demand=1.3, gpu_demand=1.2
    ),
    "mobilenetDetv1": _profile(
        "mobilenetDetv1", "OD", 56.5, 18.1, 48.9, 0.80, cpu_demand=1.0, gpu_demand=1.0
    ),
    "efficientclass-lite0": _profile(
        "efficientclass-lite0", "IC", 43.37, 18.3, 41.5, 0.85, cpu_demand=0.8, gpu_demand=0.8
    ),
    "inception-v1-q": _profile(
        "inception-v1-q", "IC", 60.8, 8.7, 63.2, 0.90, cpu_demand=0.8, gpu_demand=0.8
    ),
    "mobilenet-v1": _profile(
        "mobilenet-v1", "IC", 37.1, 10.2, 40.5, 0.85, cpu_demand=0.8, gpu_demand=0.8
    ),
    "model-metadata": _profile(
        "model-metadata", "GD", 24.6, 40.7, 25.5, 0.55, cpu_demand=0.7, gpu_demand=0.35
    ),
    "mnist": _profile(
        "mnist", "DC", 5.8, 6.5, 6.2, 0.85, cpu_demand=0.15, gpu_demand=0.15
    ),
}

def _scaled_profiles(
    base: Dict[str, StaticProfile],
    gpu_scale: float,
    nnapi_scale: float,
    cpu_scale: float,
    npu_coverage_scale: float = 1.0,
) -> Dict[str, StaticProfile]:
    """Derive a device's Table-I-style latency table from a measured one.

    The two extra tiers below were not profiled by the paper; their tables
    are scaled interpolations of the measured Pixel-7 / S22 columns. The
    per-resource scale factors are calibrated against public Geekbench 6 /
    GFXBench Aztec ratios between the SoCs (see the tier constants below),
    rounded to 0.1 ms like Table I. "NA" entries stay NA — a missing
    delegate path does not appear on a weaker bin of the same SoC family —
    and ``npu_coverage`` shrinks on tiers whose NPU supports fewer ops.
    """
    scaled: Dict[str, StaticProfile] = {}
    scales = {
        Resource.GPU_DELEGATE: gpu_scale,
        Resource.NNAPI: nnapi_scale,
        Resource.CPU: cpu_scale,
    }
    for name, profile in base.items():
        latency_ms: Dict[Resource, Optional[float]] = {}
        for resource, scale in scales.items():
            value = profile.latency_ms.get(resource)
            latency_ms[resource] = (
                None if value is None else round(float(value) * scale, 1)
            )
        scaled[name] = StaticProfile(
            model=profile.model,
            task_type=profile.task_type,
            latency_ms=latency_ms,
            npu_coverage=round(profile.npu_coverage * npu_coverage_scale, 3),
            cpu_demand=profile.cpu_demand,
            gpu_demand=profile.gpu_demand,
            input_bytes=profile.input_bytes,
            output_bytes=profile.output_bytes,
        )
    return scaled


# Mid tier: Google Pixel 6a (Tensor G1, Mali-G78). Same delegate stack as
# the Pixel 7, one SoC generation back: Geekbench 6 multicore ratio
# G2/G1 ≈ 1.15, GFXBench Aztec ratio ≈ 1.3, and the first-gen TPU sustains
# slightly less of each graph, so NNAPI trails by ~1.2× with a small
# coverage haircut.
_PIXEL6A_PROFILES = _scaled_profiles(
    _PIXEL7_PROFILES,
    gpu_scale=1.3,
    nnapi_scale=1.2,
    cpu_scale=1.15,
    npu_coverage_scale=0.95,
)

# Low tier: Samsung Galaxy A54 (Exynos 1380, Mali-G68 MP5). Mid-range part
# roughly half an S22 on CPU throughput (Geekbench 6 multicore ≈ 0.55×)
# and well under half on graphics (Aztec ≈ 0.4×); its NPU runs quantized
# classifiers fine but falls back to the GPU for more ops, hence the
# larger coverage haircut.
_GALAXY_A54_PROFILES = _scaled_profiles(
    _S22_PROFILES,
    gpu_scale=2.4,
    nnapi_scale=1.7,
    cpu_scale=1.8,
    npu_coverage_scale=0.85,
)

_DEVICE_PROFILES: Dict[str, Dict[str, StaticProfile]] = {
    PIXEL7: _PIXEL7_PROFILES,
    GALAXY_S22: _S22_PROFILES,
    PIXEL6A: _PIXEL6A_PROFILES,
    GALAXY_A54: _GALAXY_A54_PROFILES,
}

#: Table I's alias used in the paper text ("efficient-litev0").
_MODEL_ALIASES = {
    "efficient-litev0": "efficientclass-lite0",
    "mobilenetv1": "mobilenet-v1",
}


def canonical_model_name(name: str) -> str:
    """Resolve paper-text aliases to the canonical registry name."""
    return _MODEL_ALIASES.get(name, name)


def device_names() -> Tuple[str, ...]:
    return tuple(_DEVICE_PROFILES)


def model_names(device: str) -> Tuple[str, ...]:
    if device not in _DEVICE_PROFILES:
        raise UnknownModelError(
            f"unknown device {device!r}; expected one of {device_names()}"
        )
    return tuple(_DEVICE_PROFILES[device])


def get_profile(device: str, model: str) -> StaticProfile:
    """Look up the Table I profile of ``model`` on ``device``."""
    if device not in _DEVICE_PROFILES:
        raise UnknownModelError(
            f"unknown device {device!r}; expected one of {device_names()}"
        )
    name = canonical_model_name(model)
    profiles = _DEVICE_PROFILES[device]
    if name not in profiles:
        raise UnknownModelError(
            f"unknown model {model!r} on {device}; "
            f"expected one of {sorted(profiles)}"
        )
    return profiles[name]

"""Static placement and load descriptors shared across layers.

:class:`TaskPlacement` and :class:`SystemLoad` are pure value types: a
task pinned to an allocation choice, and the AR-side load the renderer
puts on the SoC for one control period. They used to live in
:mod:`repro.device.contention`, but both the AR renderer (which
*produces* a ``SystemLoad``) and the vectorized backend (which type-hints
against both) sit below the dynamic contention model in the layer DAG —
importing them from there was an upward edge. They now live in this
leaf so every consumer points downward; ``repro.device.contention``
re-exports them for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.profiles import StaticProfile
from repro.device.resources import Resource
from repro.errors import DeviceError, IncompatibleDelegateError

__all__ = ["SystemLoad", "TaskPlacement"]


@dataclass(frozen=True)
class TaskPlacement:
    """One AI task instance pinned to an allocation choice."""

    task_id: str
    profile: StaticProfile
    resource: Resource

    def __post_init__(self) -> None:
        if not self.profile.supports(self.resource):
            raise IncompatibleDelegateError(self.profile.model, str(self.resource))


@dataclass(frozen=True)
class SystemLoad:
    """AR-side load on the SoC for the current period.

    ``rendered_triangles`` is the post-culling count that reaches the
    GPU's rasterizer; ``submitted_triangles`` is the pre-culling count the
    CPU-side driver still has to feed per frame (vertex submission happens
    before backface culling discards anything). When only one is known,
    constructors may pass ``submitted_triangles=None`` and the rendered
    value is used for both.
    """

    rendered_triangles: float = 0.0
    n_objects: int = 0
    submitted_triangles: float = None  # type: ignore[assignment]
    base_gpu_streams: float = 0.0  # camera preview + compositing of a live AR session

    def __post_init__(self) -> None:
        if self.base_gpu_streams < 0:
            raise DeviceError(
                f"base_gpu_streams must be >= 0, got {self.base_gpu_streams}"
            )
        if self.rendered_triangles < 0:
            raise DeviceError(
                f"rendered_triangles must be >= 0, got {self.rendered_triangles}"
            )
        if self.n_objects < 0:
            raise DeviceError(f"n_objects must be >= 0, got {self.n_objects}")
        if self.submitted_triangles is None:
            object.__setattr__(self, "submitted_triangles", self.rendered_triangles)
        if self.submitted_triangles < self.rendered_triangles - 1e-9:
            raise DeviceError(
                "submitted_triangles cannot be below rendered_triangles: "
                f"{self.submitted_triangles} < {self.rendered_triangles}"
            )

"""The contention model: per-task latency under co-location and rendering.

This is the mechanism behind the paper's motivation study (Fig. 2): the
latency of an AI task is not a property of (model, resource) alone — it
depends on every other task sharing the SoC and on how many triangles the
AR renderer is pushing through the GPU.

Model
-----
Every AI task runs inferences back-to-back (a closed loop), so each task
contributes a constant *demand stream* to the processor(s) its allocation
choice touches, weighted by the model's ``cpu_demand`` / ``gpu_demand``:

- ``CPU`` choice → one weighted stream on the CPU.
- ``GPU delegate`` → one weighted stream on the GPU.
- ``NNAPI`` → the model's ``npu_coverage`` fraction lands on the NPU and
  the remainder on the GPU (unsupported ops fall back, paper footnote 2).

Rendering loads the CPU with fractional streams (draw calls + triangle
driving) that pool with AI demand, and loads the GPU through a separate,
*asymmetric* channel: mobile GPUs give the graphics queue priority over
compute, so AI work on the GPU experiences a queueing-style penalty
``1/(1-ρ)`` as rendered triangles approach the device's render saturation
(:meth:`~repro.device.soc.SoCSpec.render_penalty`), while AI↔AI contention
on the same GPU stays a mild processor-sharing slowdown. NNAPI tasks
additionally pay a coordination cost that inflates with the overall GPU
slowdown — partition hand-offs stall behind the graphics queue. This
asymmetry reproduces Fig. 2b: piling AI tasks onto NNAPI degrades latency
gradually, while dropping a few hundred thousand triangles into the scene
spikes every GPU-touching task at once.

Per-task latency is then the isolation latency with each component
inflated by the slowdown of the processor that executes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.backend.plan import EvalPlan
from repro.backend.solve import solve

# TaskPlacement and SystemLoad moved to repro.device.load (layer leaf);
# re-exported here so existing `from repro.device.contention import ...`
# call sites keep working.
from repro.device.load import SystemLoad, TaskPlacement
from repro.device.resources import Processor, Resource
from repro.device.soc import SoCSpec
from repro.edge.share import (
    EdgeShare,
    edge_demand,
    edge_slowdown,
    edge_total_ms,
)
from repro.errors import DeviceError, EdgeError
from repro.units import Ms


@dataclass(frozen=True)
class ProcessorState:
    """Demand and slowdowns for the current placement set (diagnostics).

    ``streams`` holds AI demand per processor (CPU also includes the
    renderer's CPU-side driving work, which pools with AI demand there);
    ``render_gpu_streams`` is the graphics load on the GPU, kept separate
    because it acts through the priority channel. ``slowdown`` is the
    final multiplier AI work experiences on each processor (for the GPU:
    AI-sharing factor × render penalty).

    ``edge_streams``/``edge_slowdown`` describe the shared edge server
    when an :class:`~repro.edge.share.EdgeShare` was in play; they stay
    at their neutral defaults for device-only systems.
    """

    streams: Mapping[Processor, float]
    render_gpu_streams: float
    slowdown: Mapping[Processor, float]
    edge_streams: float = 0.0
    edge_slowdown: float = 1.0


class ContentionModel:
    """Computes steady-state per-task latencies for a placement set."""

    def __init__(self, soc: SoCSpec) -> None:
        self.soc = soc

    # ----------------------------------------------------------- aggregates

    def ai_streams(
        self, placements: Iterable[TaskPlacement], load: SystemLoad
    ) -> Dict[Processor, float]:
        """AI demand streams per processor (CPU includes render driving)."""
        streams = {
            Processor.CPU: self.soc.render_cost.cpu_streams(
                load.n_objects, load.submitted_triangles
            ),
            # The AR session's compute-queue load (camera compositing plus
            # per-draw-call work) pools with AI work on the GPU; only
            # rasterized triangles act through the priority channel.
            Processor.GPU: load.base_gpu_streams
            + self.soc.render_cost.gpu_object_streams(load.n_objects),
            Processor.NPU: 0.0,
        }
        for placement in placements:
            profile = placement.profile
            if placement.resource is Resource.CPU:
                streams[Processor.CPU] += profile.cpu_demand
            elif placement.resource is Resource.GPU_DELEGATE:
                streams[Processor.GPU] += profile.gpu_demand
            elif placement.resource is Resource.NNAPI:
                # NNAPI: split between NPU and GPU.
                streams[Processor.NPU] += profile.npu_coverage
                streams[Processor.GPU] += (
                    (1.0 - profile.npu_coverage) * profile.gpu_demand
                )
            elif placement.resource is Resource.EDGE:
                pass  # off-device: no SoC streams (edge streams are separate)
            else:
                raise DeviceError(
                    f"unhandled resource {placement.resource} for "
                    f"{placement.task_id!r}"
                )
        return streams

    def edge_streams(
        self, placements: Iterable[TaskPlacement], edge: EdgeShare
    ) -> float:
        """Total streams on the shared edge server: other tenants' demand
        plus this placement set's offloaded tasks, in placement order."""
        streams = edge.extern_streams
        for placement in placements:
            if placement.resource is Resource.EDGE:
                streams += edge_demand(placement.profile)
        return streams

    def processor_state(
        self,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
        edge: Optional[EdgeShare] = None,
    ) -> ProcessorState:
        """Streams and final AI slowdowns per processor."""
        placements = list(placements)
        streams = self.ai_streams(placements, load)
        render_gpu = self.soc.render_cost.gpu_triangle_streams(
            load.rendered_triangles
        )
        slowdown = {
            Processor.CPU: self.soc.slowdown(Processor.CPU, streams[Processor.CPU]),
            Processor.NPU: self.soc.slowdown(Processor.NPU, streams[Processor.NPU]),
            Processor.GPU: (
                self.soc.slowdown(Processor.GPU, streams[Processor.GPU])
                * self.soc.render_penalty(render_gpu)
            ),
        }
        if edge is None:
            return ProcessorState(
                streams=streams, render_gpu_streams=render_gpu, slowdown=slowdown
            )
        on_edge = self.edge_streams(placements, edge)
        return ProcessorState(
            streams=streams,
            render_gpu_streams=render_gpu,
            slowdown=slowdown,
            edge_streams=on_edge,
            edge_slowdown=edge_slowdown(on_edge, edge),
        )

    # ------------------------------------------------------------- latencies

    def nnapi_comm_multiplier(self, gpu_slowdown: float) -> float:
        """Coordination-cost inflation under GPU congestion."""
        return 1.0 + self.soc.nnapi_comm_gpu_factor * max(0.0, gpu_slowdown - 1.0)

    def task_latency(
        self,
        placement: TaskPlacement,
        state: ProcessorState,
        edge: Optional[EdgeShare] = None,
    ) -> Ms:
        """Steady-state latency (ms) of one placed task given system state."""
        profile = placement.profile
        if placement.resource is Resource.EDGE:
            # Offloaded: link transfer + server compute under sharing.
            if edge is None:
                raise EdgeError(
                    f"{placement.task_id!r} is placed on EDGE but no "
                    "EdgeShare was provided"
                )
            return edge_total_ms(profile, edge, state.edge_slowdown)
        iso = profile.latency(placement.resource)
        if placement.resource is Resource.CPU:
            return iso * state.slowdown[Processor.CPU]
        if placement.resource is Resource.GPU_DELEGATE:
            return iso * state.slowdown[Processor.GPU]
        # NNAPI: isolation latency = base coordination cost + compute work.
        base_comm = min(self.soc.nnapi_comm_ms, 0.5 * iso)
        work = iso - base_comm
        comm = base_comm * self.nnapi_comm_multiplier(state.slowdown[Processor.GPU])
        npu_part = profile.npu_coverage * work * state.slowdown[Processor.NPU]
        gpu_part = (1.0 - profile.npu_coverage) * work * state.slowdown[Processor.GPU]
        return comm + npu_part + gpu_part

    def latencies(
        self,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
        edge: Optional[EdgeShare] = None,
    ) -> Dict[str, Ms]:
        """Latency (ms) for every placed task under mutual contention.

        Evaluates through the vectorized backend as a one-row
        :class:`~repro.backend.plan.EvalPlan` in exact mode, which is
        bit-identical to composing :meth:`processor_state` with
        :meth:`task_latency` per task (the scalar methods above remain
        the executable reference the parity suite checks against).
        """
        placements = list(placements)
        ids = [p.task_id for p in placements]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise DeviceError(f"duplicate task ids in placement set: {dupes}")
        if not placements:
            return {}
        plan = EvalPlan.from_placement_rows([(self.soc, placements, load, edge)])
        result = solve(plan, exact=True)
        return plan.latency_map(result.latency_ms, 0)

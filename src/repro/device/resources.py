"""Allocation choices and physical processors.

The paper's scheduler picks, for each AI task, one of N coarse-grained
*allocation choices* (§II): run the whole model on the **CPU**, hand it to
the **GPU delegate** (all ops on GPU), or hand it to the **NNAPI delegate**
(ops split across NPU and GPU — ops unsupported by the NPU fall back to the
GPU, footnote 2). Physically, work lands on three *processors*: CPU, GPU,
NPU. The distinction matters because the NNAPI choice loads two processors
at once, and the GPU is also where AR rendering happens.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.errors import DeviceError


class Resource(enum.Enum):
    """An allocation choice exposed to the scheduler.

    The paper's N=3 on-device choices, plus ``EDGE`` — offloading the
    whole inference to an edge server over the wireless link (the
    :mod:`repro.edge` subsystem, off unless a system is built with an
    edge runtime).
    """

    CPU = "cpu"
    GPU_DELEGATE = "gpu"
    NNAPI = "nnapi"
    EDGE = "edge"

    @property
    def short(self) -> str:
        """One-letter code used in the paper's Fig. 2 annotations."""
        return {"cpu": "C", "gpu": "G", "nnapi": "N", "edge": "E"}[self.value]

    def __str__(self) -> str:
        return self.value


class Processor(enum.Enum):
    """A physical compute unit on the SoC."""

    CPU = "cpu"
    GPU = "gpu"
    NPU = "npu"

    def __str__(self) -> str:
        return self.value


#: Canonical resource ordering used throughout the library: index 0 is CPU,
#: 1 is the GPU delegate, 2 is NNAPI — matching the paper's examples
#: ("1 for CPU, 2 for GPU, 3 for NNAPI", §IV-D, zero-based here).
ALL_RESOURCES: Tuple[Resource, ...] = (
    Resource.CPU,
    Resource.GPU_DELEGATE,
    Resource.NNAPI,
)

#: Resource ordering for edge-enabled systems: the on-device trio plus
#: ``EDGE`` as the fourth allocation choice (N=4).
EDGE_RESOURCES: Tuple[Resource, ...] = ALL_RESOURCES + (Resource.EDGE,)

_NAME_ALIASES = {
    "cpu": Resource.CPU,
    "c": Resource.CPU,
    "gpu": Resource.GPU_DELEGATE,
    "gpu_delegate": Resource.GPU_DELEGATE,
    "g": Resource.GPU_DELEGATE,
    "nnapi": Resource.NNAPI,
    "n": Resource.NNAPI,
    "edge": Resource.EDGE,
    "e": Resource.EDGE,
}


def resource_from_name(name: str) -> Resource:
    """Parse a resource from a human-friendly name ('cpu', 'GPU', 'N', ...)."""
    key = name.strip().lower()
    if key not in _NAME_ALIASES:
        raise DeviceError(
            f"unknown resource {name!r}; expected one of {sorted(_NAME_ALIASES)}"
        )
    return _NAME_ALIASES[key]


def resource_index(
    resource: Resource, resources: Tuple[Resource, ...] = ALL_RESOURCES
) -> int:
    """Position of ``resource`` in ``resources`` (default on-device trio)."""
    return resources.index(resource)

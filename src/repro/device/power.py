"""Energy model extension (beyond the paper's metrics; eAR heritage).

HBO's predecessor eAR [11] optimized energy; the paper leaves energy out
of its cost but the substrate naturally supports it: every processor has
an idle and a busy power draw, utilization follows from the contention
model's demand streams, and rendering contributes its own draw. This
module estimates average system power and per-period energy so that
energy-aware variants (and the ablation bench) can price configurations.

Powers are rough literature figures for recent flagship SoCs (sustained,
not peak): big-core CPU cluster ~0.3 W idle / ~2.8 W busy, mobile GPU
~0.25 W / ~3.2 W, NPU ~0.1 W / ~1.4 W, plus a display/camera floor.
Absolute watts matter less than the *ordering* they induce between
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.resources import Processor, Resource
from repro.device.soc import SoCSpec
from repro.edge.share import (
    EdgeShare,
    edge_payload_bytes,
    edge_total_ms,
    edge_tx_ms,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessorPower:
    """Idle/busy draw of one processor, in watts."""

    idle_w: float
    busy_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.busy_w < self.idle_w:
            raise ConfigurationError(
                f"need 0 <= idle ({self.idle_w}) <= busy ({self.busy_w})"
            )

    def at_utilization(self, utilization: float) -> float:
        """Linear idle→busy interpolation at a [0, 1] utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        return self.idle_w + (self.busy_w - self.idle_w) * utilization


@dataclass(frozen=True)
class RadioPower:
    """Wireless-radio draw while offloading to the edge.

    LEAF/AIO-style framing: the radio dwells in a high-power active
    state (uplink ``tx_w``, downlink ``rx_w`` — typical Wi-Fi figures)
    only while a transfer is in flight, and falls back to a negligible
    connected-idle floor between frames. A continuously-inferring task
    keeps the radio active for the transfer slice of each inference
    cycle, so its duty cycle is ``tx_ms / total_latency_ms``.
    """

    tx_w: float = 1.1
    rx_w: float = 0.75
    idle_w: float = 0.01

    def __post_init__(self) -> None:
        if self.tx_w < 0 or self.rx_w < 0 or self.idle_w < 0:
            raise ConfigurationError(
                f"radio powers must be >= 0, got tx={self.tx_w} "
                f"rx={self.rx_w} idle={self.idle_w}"
            )

    def radio_power_w(
        self,
        placements: Sequence[TaskPlacement],
        edge: EdgeShare,
        edge_slowdown: float,
    ) -> float:
        """Average radio draw (W) for the EDGE-allocated placements.

        Each offloaded task contributes its transfer duty cycle at a
        tx/rx mix weighted by the up/down payload split; tasks running
        on-device contribute nothing beyond the idle floor.
        """
        total = self.idle_w
        for placement in placements:
            if placement.resource is not Resource.EDGE:
                continue
            profile = placement.profile
            tx_ms = edge_tx_ms(profile, edge)
            cycle_ms = edge_total_ms(profile, edge, edge_slowdown)
            if cycle_ms <= 0:
                continue
            duty = min(1.0, tx_ms / cycle_ms)
            up_fraction = profile.input_bytes / edge_payload_bytes(profile)
            active_w = up_fraction * self.tx_w + (1.0 - up_fraction) * self.rx_w
            total += duty * active_w
        return total


@dataclass(frozen=True)
class PowerModel:
    """System power as a function of processor utilizations."""

    processors: Mapping[Processor, ProcessorPower] = field(
        default_factory=lambda: {
            Processor.CPU: ProcessorPower(idle_w=0.3, busy_w=2.8),
            Processor.GPU: ProcessorPower(idle_w=0.25, busy_w=3.2),
            Processor.NPU: ProcessorPower(idle_w=0.1, busy_w=1.4),
        }
    )
    #: Display + camera + sensor floor of a live AR session.
    base_w: float = 1.2
    #: Radio accounting for edge offloading; only drawn upon when
    #: ``system_power_w`` is handed an edge share.
    radio: RadioPower = field(default_factory=RadioPower)

    def __post_init__(self) -> None:
        for proc in Processor:
            if proc not in self.processors:
                raise ConfigurationError(f"missing power spec for {proc}")
        if self.base_w < 0:
            raise ConfigurationError(f"base_w must be >= 0, got {self.base_w}")

    def utilizations(
        self,
        soc: SoCSpec,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
    ) -> Dict[Processor, float]:
        """Per-processor utilization in [0, 1] from the contention state.

        A processor at or beyond its stream capacity is fully busy;
        below it, utilization is the demand/capacity ratio. The GPU adds
        its render load (both channels) to the AI demand.
        """
        state = ContentionModel(soc).processor_state(placements, load)
        utilization: Dict[Processor, float] = {}
        for proc in Processor:
            streams = state.streams[proc]
            if proc is Processor.GPU:
                streams += state.render_gpu_streams
            utilization[proc] = min(1.0, streams / soc.capacity[proc])
        return utilization

    def system_power_w(
        self,
        soc: SoCSpec,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
        edge: Optional[EdgeShare] = None,
    ) -> float:
        """Average system draw (W) under a placement set and render load.

        With an edge share the radio's transfer duty cycle is added on
        top of the processor draws; ``None`` (the default) reproduces
        the pre-edge figure exactly.
        """
        placements = tuple(placements)
        utilization = self.utilizations(soc, placements, load)
        total = self.base_w
        for proc, u in utilization.items():
            total += self.processors[proc].at_utilization(u)
        if edge is not None:
            state = ContentionModel(soc).processor_state(placements, load, edge)
            total += self.radio.radio_power_w(placements, edge, state.edge_slowdown)
        return total

    def period_energy_j(
        self,
        soc: SoCSpec,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
        period_s: float,
        edge: Optional[EdgeShare] = None,
    ) -> float:
        """Energy (J) consumed over one control period."""
        if period_s <= 0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        return self.system_power_w(soc, placements, load, edge=edge) * period_s


def energy_aware_cost(
    quality: float,
    epsilon: float,
    power_w: float,
    w_latency: float = 2.5,
    w_power: float = 0.05,
    reference_power_w: float = 4.0,
) -> float:
    """An energy-extended Eq. 5: φ = −(Q − w·ε − w_p·(P/P_ref − 1)).

    ``w_power`` prices relative power draw against quality; the default
    keeps it a tiebreaker rather than a dominant term, matching the
    paper's positioning of energy as future work.
    """
    if w_power < 0 or reference_power_w <= 0:
        raise ConfigurationError("w_power must be >= 0 and reference_power_w > 0")
    power_term = w_power * (power_w / reference_power_w - 1.0)
    return -(quality - w_latency * epsilon - power_term)

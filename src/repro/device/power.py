"""Energy model extension (beyond the paper's metrics; eAR heritage).

HBO's predecessor eAR [11] optimized energy; the paper leaves energy out
of its cost but the substrate naturally supports it: every processor has
an idle and a busy power draw, utilization follows from the contention
model's demand streams, and rendering contributes its own draw. This
module estimates average system power and per-period energy so that
energy-aware variants (and the ablation bench) can price configurations.

Powers are rough literature figures for recent flagship SoCs (sustained,
not peak): big-core CPU cluster ~0.3 W idle / ~2.8 W busy, mobile GPU
~0.25 W / ~3.2 W, NPU ~0.1 W / ~1.4 W, plus a display/camera floor.
Absolute watts matter less than the *ordering* they induce between
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.device.contention import ContentionModel, SystemLoad, TaskPlacement
from repro.device.resources import Processor
from repro.device.soc import SoCSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProcessorPower:
    """Idle/busy draw of one processor, in watts."""

    idle_w: float
    busy_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.busy_w < self.idle_w:
            raise ConfigurationError(
                f"need 0 <= idle ({self.idle_w}) <= busy ({self.busy_w})"
            )

    def at_utilization(self, utilization: float) -> float:
        """Linear idle→busy interpolation at a [0, 1] utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        return self.idle_w + (self.busy_w - self.idle_w) * utilization


@dataclass(frozen=True)
class PowerModel:
    """System power as a function of processor utilizations."""

    processors: Mapping[Processor, ProcessorPower] = field(
        default_factory=lambda: {
            Processor.CPU: ProcessorPower(idle_w=0.3, busy_w=2.8),
            Processor.GPU: ProcessorPower(idle_w=0.25, busy_w=3.2),
            Processor.NPU: ProcessorPower(idle_w=0.1, busy_w=1.4),
        }
    )
    #: Display + camera + sensor floor of a live AR session.
    base_w: float = 1.2

    def __post_init__(self) -> None:
        for proc in Processor:
            if proc not in self.processors:
                raise ConfigurationError(f"missing power spec for {proc}")
        if self.base_w < 0:
            raise ConfigurationError(f"base_w must be >= 0, got {self.base_w}")

    def utilizations(
        self,
        soc: SoCSpec,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
    ) -> Dict[Processor, float]:
        """Per-processor utilization in [0, 1] from the contention state.

        A processor at or beyond its stream capacity is fully busy;
        below it, utilization is the demand/capacity ratio. The GPU adds
        its render load (both channels) to the AI demand.
        """
        state = ContentionModel(soc).processor_state(placements, load)
        utilization: Dict[Processor, float] = {}
        for proc in Processor:
            streams = state.streams[proc]
            if proc is Processor.GPU:
                streams += state.render_gpu_streams
            utilization[proc] = min(1.0, streams / soc.capacity[proc])
        return utilization

    def system_power_w(
        self,
        soc: SoCSpec,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
    ) -> float:
        """Average system draw (W) under a placement set and render load."""
        utilization = self.utilizations(soc, placements, load)
        total = self.base_w
        for proc, u in utilization.items():
            total += self.processors[proc].at_utilization(u)
        return total

    def period_energy_j(
        self,
        soc: SoCSpec,
        placements: Iterable[TaskPlacement],
        load: SystemLoad,
        period_s: float,
    ) -> float:
        """Energy (J) consumed over one control period."""
        if period_s <= 0:
            raise ConfigurationError(f"period_s must be > 0, got {period_s}")
        return self.system_power_w(soc, placements, load) * period_s


def energy_aware_cost(
    quality: float,
    epsilon: float,
    power_w: float,
    w_latency: float = 2.5,
    w_power: float = 0.05,
    reference_power_w: float = 4.0,
) -> float:
    """An energy-extended Eq. 5: φ = −(Q − w·ε − w_p·(P/P_ref − 1)).

    ``w_power`` prices relative power draw against quality; the default
    keeps it a tiebreaker rather than a dominant term, matching the
    paper's positioning of energy as future work.
    """
    if w_power < 0 or reference_power_w <= 0:
        raise ConfigurationError("w_power must be >= 0 and reference_power_w > 0")
    power_term = w_power * (power_w / reference_power_w - 1.0)
    return -(quality - w_latency * epsilon - power_term)

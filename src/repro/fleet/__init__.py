"""Multi-session fleet serving: N concurrent MAR sessions, one shared
edge optimizer, cross-session warm starting.

See :mod:`repro.fleet.scheduler` for the run loop, :mod:`repro.fleet.
store` for the warm-start store, :mod:`repro.fleet.batch` for the batched
GP service, and ``docs/fleet.md`` for the architecture overview.
"""

from repro.fleet.batch import (
    BatchedGPService,
    SharedOptimizerService,
    batched_expected_improvement,
    batched_kernel_matrix,
)
from repro.fleet.export import fleet_report_to_dict, fleet_result_to_dict
from repro.fleet.scheduler import (
    FleetConfig,
    FleetResult,
    FleetScheduler,
    run_fleet,
)
from repro.fleet.session import FleetSession, SessionPhase, SessionSpec
from repro.fleet.store import (
    SharedConfigStore,
    WarmStartEntry,
    warm_start_entry_from_dict,
    warm_start_entry_to_dict,
)
from repro.fleet.telemetry import (
    FleetAggregates,
    FleetSessionReport,
    convergence_histogram,
    cost_trajectories,
    fleet_aggregates,
    iterations_to_converge,
)

__all__ = [
    "BatchedGPService",
    "SharedOptimizerService",
    "batched_expected_improvement",
    "batched_kernel_matrix",
    "FleetConfig",
    "FleetResult",
    "fleet_report_to_dict",
    "fleet_result_to_dict",
    "FleetScheduler",
    "run_fleet",
    "FleetSession",
    "SessionPhase",
    "SessionSpec",
    "SharedConfigStore",
    "WarmStartEntry",
    "warm_start_entry_from_dict",
    "warm_start_entry_to_dict",
    "FleetAggregates",
    "FleetSessionReport",
    "convergence_histogram",
    "cost_trajectories",
    "fleet_aggregates",
    "iterations_to_converge",
]

"""One MAR session inside a fleet run.

A :class:`FleetSession` is the per-user slice of the fleet: a device +
scenario + taskset (one :class:`~repro.core.system.MARSystem`), its own
BO optimizer, and a lifecycle driven by the shared
:class:`~repro.fleet.scheduler.FleetScheduler` clock:

``WAITING`` (not yet arrived) → ``ACTIVE`` (one control period per fleet
tick, until the evaluation budget is spent) → ``DONE`` (best
configuration locked in, observations donated to the shared store).

On admission the session asks the :class:`~repro.fleet.store.
SharedConfigStore` for a warm start: if a similar environment was already
solved on the same device model, the donor's observations seed the
optimizer and the random initialization phase is skipped (see
:meth:`~repro.bo.optimizer.BayesianOptimizer.warm_start`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from repro.bo.kernels import Matern
from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import HBOSpace
from repro.core.algorithm import HBOIteration, IterationResult, PendingEvaluation
from repro.core.controller import HBOConfig
from repro.core.lookup import EnvironmentSignature
from repro.core.system import MARSystem
from repro.device.profiles import PIXEL7
from repro.edge.runtime import EdgeConfig, build_edge_runtime
from repro.edge.server import EdgeServer
from repro.errors import FleetError
from repro.fleet.store import SharedConfigStore, WarmStartEntry
from repro.sim.scenarios import build_system, place_catalog, scenario_catalog


class SessionPhase(enum.Enum):
    """Lifecycle state of a fleet session."""

    WAITING = "waiting"
    ACTIVE = "active"
    DONE = "done"


@dataclass(frozen=True)
class SessionSpec:
    """Static description of one fleet session.

    ``placement_seed`` controls object placement *independently* of the
    session's measurement-noise stream: sessions sharing a placement seed
    see bit-identical scenes (hence identical environment signatures),
    which is what makes cross-session warm starting fire.
    """

    session_id: str
    device: str = PIXEL7
    scenario: str = "SC1"
    taskset: str = "CF1"
    arrival_s: float = 0.0
    placement_seed: int = 7
    noise_sigma: float = 0.04
    samples_per_period: int = 20
    #: Override the per-session evaluation budget (defaults to the HBO
    #: config's ``total_evaluations``).
    n_evaluations: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.session_id:
            raise FleetError("session_id must be non-empty")
        if self.arrival_s < 0:
            raise FleetError(
                f"{self.session_id}: arrival_s must be >= 0, got {self.arrival_s}"
            )
        if self.n_evaluations is not None and self.n_evaluations < 1:
            raise FleetError(
                f"{self.session_id}: n_evaluations must be >= 1, "
                f"got {self.n_evaluations}"
            )


class FleetSession:
    """Runtime state of one session; stepped by the scheduler."""

    def __init__(
        self,
        spec: SessionSpec,
        config: HBOConfig,
        rng: np.random.Generator,
        edge: Optional[EdgeConfig] = None,
        edge_server: Optional[EdgeServer] = None,
    ) -> None:
        self.spec = spec
        self.config = config
        self.rng = rng
        self._edge_config = edge
        self._edge_server = edge_server
        self.phase = SessionPhase.WAITING
        self.system: Optional[MARSystem] = None
        self.optimizer: Optional[BayesianOptimizer] = None
        self.iteration: Optional[HBOIteration] = None
        self.signature: Optional[EnvironmentSignature] = None
        self.results: List[IterationResult] = []
        self.warm_entry: Optional[WarmStartEntry] = None
        self.start_tick: Optional[int] = None
        self.end_tick: Optional[int] = None
        self.budget = (
            spec.n_evaluations
            if spec.n_evaluations is not None
            else config.total_evaluations
        )

    # --------------------------------------------------------------- states

    @property
    def active(self) -> bool:
        return self.phase is SessionPhase.ACTIVE

    @property
    def done(self) -> bool:
        return self.phase is SessionPhase.DONE

    @property
    def warm_started(self) -> bool:
        return self.optimizer is not None and self.optimizer.warm_started

    @property
    def needs_guided_proposal(self) -> bool:
        """True when this tick's proposal should come from the shared
        batched GP pass instead of the session's own random sampler."""
        return (
            self.active
            and self.optimizer is not None
            and not self.optimizer.in_initial_phase
        )

    # ------------------------------------------------------------ lifecycle

    def admit(
        self,
        tick: int,
        store: Optional[SharedConfigStore] = None,
        warm_start: bool = True,
    ) -> None:
        """Bring the session up: build its system, consult the store, and
        construct a (possibly warm-started) optimizer."""
        if self.phase is not SessionPhase.WAITING:
            raise FleetError(f"{self.spec.session_id}: admitted twice")
        spec = self.spec
        # Placement is keyed by the spec (shared within a cohort); the
        # noise stream comes from the session's own decorrelated rng.
        session_seed = int(self.rng.integers(0, 2**31))
        # The link seed is drawn AFTER the session seed and ONLY when
        # edge is enabled, so device-only fleets consume exactly the
        # pre-edge draws from this stream (fixed-seed byte identity).
        edge_runtime = None
        if self._edge_config is not None:
            link_seed = int(self.rng.integers(0, 2**31))
            edge_runtime = build_edge_runtime(
                config=self._edge_config,
                seed=link_seed,
                session_id=spec.session_id,
                server=self._edge_server,
            )
        self.system = build_system(
            spec.scenario,
            spec.taskset,
            device=spec.device,
            seed=session_seed,
            noise_sigma=spec.noise_sigma,
            samples_per_period=spec.samples_per_period,
            place_objects=False,
            edge=edge_runtime,
        )
        place_catalog(
            self.system.scene,
            scenario_catalog(spec.scenario),
            seed=spec.placement_seed,
        )
        self.signature = EnvironmentSignature.of(self.system)

        cfg = self.config
        space = HBOSpace(self.system.n_resources, r_min=cfg.r_min)
        self.optimizer = BayesianOptimizer(
            space=space,
            n_initial=cfg.n_initial,
            kernel=Matern(length_scale=cfg.kernel_length_scale, nu=2.5),
            noise=cfg.noise,
            seed=self.rng,
        )
        if store is not None and warm_start:
            entry = store.warm_start_for(self.signature, scope=spec.device)
            if entry is not None and entry.observations:
                self.optimizer.warm_start(entry.to_observations())
                self.warm_entry = entry
        self.iteration = HBOIteration(
            self.system, self.optimizer, w=cfg.w, latency_only=cfg.latency_only
        )
        self.phase = SessionPhase.ACTIVE
        self.start_tick = tick

    def step_initial(self) -> IterationResult:
        """One control period with the session's own (random-phase) ask."""
        return self.finish_step(self.begin_initial())

    def step_guided(self, z: np.ndarray) -> IterationResult:
        """One control period evaluating a proposal computed by the shared
        batched optimizer service."""
        return self.finish_step(self.begin_guided(z))

    def begin_initial(self) -> PendingEvaluation:
        """Ask the session's own optimizer and apply the configuration."""
        if not self.active or self.iteration is None or self.optimizer is None:
            raise FleetError(f"{self.spec.session_id}: stepped while not active")
        return self.iteration.begin(self.optimizer.ask())

    def begin_guided(self, z: np.ndarray) -> PendingEvaluation:
        """Record and apply a proposal from the shared batched service."""
        if not self.active or self.iteration is None or self.optimizer is None:
            raise FleetError(f"{self.spec.session_id}: stepped while not active")
        z = np.asarray(z, dtype=float).ravel()
        self.optimizer.state.proposals.append(z.copy())
        return self.iteration.begin(z)

    def finish_step(
        self,
        pending: PendingEvaluation,
        steady_latencies: Optional[Mapping[str, float]] = None,
    ) -> IterationResult:
        """Measure + record a begun control period.

        The scheduler computes every stepped session's steady state in
        one :func:`repro.backend.solve` pass and injects each row here;
        passing ``None`` recomputes it locally (identical bits).
        """
        if not self.active or self.iteration is None:
            raise FleetError(f"{self.spec.session_id}: stepped while not active")
        result = self.iteration.finish(pending, steady_latencies=steady_latencies)
        self.results.append(result)
        return result

    @property
    def budget_exhausted(self) -> bool:
        return len(self.results) >= self.budget

    def finish(
        self, tick: int, store: Optional[SharedConfigStore] = None
    ) -> None:
        """Lock in the best configuration and donate to the shared store."""
        if not self.active:
            raise FleetError(f"{self.spec.session_id}: finished while not active")
        if not self.results or self.system is None or self.optimizer is None:
            raise FleetError(
                f"{self.spec.session_id}: finished with no evaluations"
            )
        best = min(self.results, key=lambda r: r.cost)
        self.system.apply(dict(best.allocation), best.triangle_ratio)
        if store is not None and self.signature is not None:
            # Donate only this session's own measurements — warm-start
            # observations would otherwise echo through the fleet forever.
            own = self.optimizer.state.observations[self.optimizer.n_warm :]
            store.donate(
                signature=self.signature,
                allocation=dict(best.allocation),
                triangle_ratio=best.triangle_ratio,
                reward=-best.cost,
                observations=own,
                scope=self.spec.device,
                session_id=self.spec.session_id,
            )
        # Leave the shared edge server: a finished session's offloaded
        # demand must stop slowing the tenants still running.
        if self.system.device.edge is not None:
            self.system.device.edge.release()
        self.phase = SessionPhase.DONE
        self.end_tick = tick

    # ------------------------------------------------------------ reporting

    def costs(self) -> List[float]:
        """Measured cost per control period, in evaluation order."""
        return [r.cost for r in self.results]

    def best_cost(self) -> float:
        if not self.results:
            raise FleetError(f"{self.spec.session_id}: no evaluations yet")
        return min(r.cost for r in self.results)

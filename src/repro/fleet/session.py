"""One MAR session inside a fleet run.

A :class:`FleetSession` is the per-user slice of the fleet: a device +
scenario + taskset (one :class:`~repro.core.system.MARSystem`), its own
BO optimizer, and a lifecycle driven by the shared
:class:`~repro.fleet.scheduler.FleetScheduler` clock:

``WAITING`` (not yet arrived) → ``ACTIVE`` (one control period per fleet
tick, until the evaluation budget is spent) → ``DONE`` (best
configuration locked in, observations donated to the shared store).

On admission the session asks the :class:`~repro.fleet.store.
SharedConfigStore` for a warm start: if a similar environment was already
solved on the same device model, the donor's observations seed the
optimizer and the random initialization phase is skipped (see
:meth:`~repro.bo.optimizer.BayesianOptimizer.warm_start`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.bo.kernels import Matern
from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import HBOSpace
from repro.core.algorithm import HBOIteration, IterationResult, PendingEvaluation
from repro.core.controller import HBOConfig
from repro.core.lookup import EnvironmentSignature
from repro.core.system import MARSystem
from repro.device.profiles import PIXEL7, StaticProfile
from repro.device.resources import Resource
from repro.device.thermal import ThermalSpec
from repro.edge.link import WirelessLink
from repro.edge.placement import PlacementOutcome, PlacementRequest, place
from repro.edge.runtime import EdgeConfig, EdgeRuntime, build_edge_runtime
from repro.edge.server import EdgeServer
from repro.edge.share import edge_demand
from repro.edge.topology import EdgeTopology
from repro.errors import FleetError
from repro.fleet.store import SharedConfigStore, WarmStartEntry
from repro.fleet.table import SessionTable
from repro.obs import runtime as obs
from repro.rng import derive_seed
from repro.sim.scenarios import (
    build_system,
    place_catalog,
    scenario_catalog,
    scenario_taskset,
)


class SessionPhase(enum.Enum):
    """Lifecycle state of a fleet session."""

    WAITING = "waiting"
    ACTIVE = "active"
    DONE = "done"


#: SessionTable integer phase codes ↔ enum members (index = code).
_PHASES = (SessionPhase.WAITING, SessionPhase.ACTIVE, SessionPhase.DONE)
_PHASE_CODE = {p: code for code, p in enumerate(_PHASES)}


@dataclass(frozen=True)
class SessionSpec:
    """Static description of one fleet session.

    ``placement_seed`` controls object placement *independently* of the
    session's measurement-noise stream: sessions sharing a placement seed
    see bit-identical scenes (hence identical environment signatures),
    which is what makes cross-session warm starting fire.
    """

    session_id: str
    device: str = PIXEL7
    scenario: str = "SC1"
    taskset: str = "CF1"
    arrival_s: float = 0.0
    placement_seed: int = 7
    noise_sigma: float = 0.04
    samples_per_period: int = 20
    #: The user's 1-D coordinate in the edge topology's distance space
    #: (only the ``nearest`` placement policy reads it).
    position: float = 0.0
    #: Override the per-session evaluation budget (defaults to the HBO
    #: config's ``total_evaluations``).
    n_evaluations: Optional[int] = None
    #: Mark this session as running hot: when the fleet config also sets
    #: ``thermal`` (the gate), the session's device gets a
    #: :class:`~repro.device.thermal.ThermalModel` built from it and its
    #: on-SoC latencies inflate as sustained load heats the chip.
    thermal: bool = False

    def __post_init__(self) -> None:
        if not self.session_id:
            raise FleetError("session_id must be non-empty")
        if self.arrival_s < 0:
            raise FleetError(
                f"{self.session_id}: arrival_s must be >= 0, got {self.arrival_s}"
            )
        if self.n_evaluations is not None and self.n_evaluations < 1:
            raise FleetError(
                f"{self.session_id}: n_evaluations must be >= 1, "
                f"got {self.n_evaluations}"
            )


def _offloadable_profiles(spec: SessionSpec) -> List[StaticProfile]:
    """The session's CPU-capable task profiles — the ones an edge server
    could host — in taskset order."""
    return [
        task.profile
        for task in scenario_taskset(spec.taskset, spec.device)
        if task.profile.supports(Resource.CPU)
    ]


def _device_fallback_resource(profile: StaticProfile) -> Resource:
    """Fastest on-device resource for a task coming back from the edge
    (mirrors the device's own failed-delegate fallback ranking)."""
    options = [
        (profile.latency(res), i, res)
        for i, res in enumerate(Resource)
        if res is not Resource.EDGE and profile.supports(res)
    ]
    return min(options)[2]


class FleetSession:
    """Runtime state of one session; stepped by the scheduler."""

    def __init__(
        self,
        spec: SessionSpec,
        config: HBOConfig,
        rng: np.random.Generator,
        edge: Optional[EdgeConfig] = None,
        edge_server: Optional[EdgeServer] = None,
        topology: Optional[EdgeTopology] = None,
        placement: str = "price-aware",
        table: Optional[SessionTable] = None,
        index: int = 0,
        thermal: Optional[ThermalSpec] = None,
    ) -> None:
        if edge is not None and topology is not None:
            raise FleetError(
                f"{spec.session_id}: a session offloads through either the "
                "legacy singleton edge config or a topology, not both"
            )
        self.spec = spec
        self.config = config
        self.rng = rng
        self._edge_config = edge
        self._edge_server = edge_server
        self._topology = topology
        self._placement_policy = placement
        # Double gate: the fleet config supplies the parameters AND the
        # spec opts this session in — either alone leaves the device
        # athermal, so legacy configs are byte-identical.
        self._thermal_spec = thermal if spec.thermal else None
        # The session is a row view: lifecycle scalars (phase, ticks,
        # budget cursor, best cost, trajectories) live in SessionTable
        # columns. A standalone session owns a private 1-row table so
        # the per-session API works without a scheduler.
        if table is None:
            table = SessionTable((spec,), config)
            index = 0
        if table.session_ids[index] != spec.session_id:
            raise FleetError(
                f"{spec.session_id}: bound to table row {index} which "
                f"belongs to {table.session_ids[index]!r}"
            )
        self.table = table
        self.index = int(index)
        #: Where this session landed (set on admission in topology mode).
        self.placement_outcome: Optional[PlacementOutcome] = None
        self._link_seed: Optional[int] = None
        self._est_streams = 0.0
        self._edge_profile: Optional[StaticProfile] = None
        self.system: Optional[MARSystem] = None
        self.optimizer: Optional[BayesianOptimizer] = None
        self.iteration: Optional[HBOIteration] = None
        self.signature: Optional[EnvironmentSignature] = None
        self.results: List[IterationResult] = []
        self.warm_entry: Optional[WarmStartEntry] = None

    # ------------------------------------------------------------ row views

    @property
    def phase(self) -> SessionPhase:
        return _PHASES[int(self.table.phase[self.index])]

    @phase.setter
    def phase(self, value: SessionPhase) -> None:
        self.table.phase[self.index] = _PHASE_CODE[value]

    @property
    def start_tick(self) -> Optional[int]:
        tick = int(self.table.start_tick[self.index])
        return None if tick < 0 else tick

    @start_tick.setter
    def start_tick(self, value: Optional[int]) -> None:
        self.table.start_tick[self.index] = -1 if value is None else value

    @property
    def end_tick(self) -> Optional[int]:
        tick = int(self.table.end_tick[self.index])
        return None if tick < 0 else tick

    @end_tick.setter
    def end_tick(self, value: Optional[int]) -> None:
        self.table.end_tick[self.index] = -1 if value is None else value

    @property
    def attached_tick(self) -> Optional[int]:
        """Tick of the most recent attach (admission or migration); the
        scheduler's migration dwell guard counts from here."""
        tick = int(self.table.attached_tick[self.index])
        return None if tick < 0 else tick

    @attached_tick.setter
    def attached_tick(self, value: Optional[int]) -> None:
        self.table.attached_tick[self.index] = -1 if value is None else value

    @property
    def migrations(self) -> int:
        return int(self.table.migrations[self.index])

    @migrations.setter
    def migrations(self, value: int) -> None:
        self.table.migrations[self.index] = value

    @property
    def edge_node(self) -> str:
        """Name of the node currently serving the session ("" when none)."""
        return self.table.edge_node[self.index]

    @edge_node.setter
    def edge_node(self, value: str) -> None:
        self.table.edge_node[self.index] = value

    @property
    def fallback_reason(self) -> str:
        """Why the session fell back to device-only mid-run ("" if never)."""
        return self.table.fallback_reason[self.index]

    @fallback_reason.setter
    def fallback_reason(self, value: str) -> None:
        self.table.fallback_reason[self.index] = value

    @property
    def budget(self) -> int:
        return int(self.table.budget[self.index])

    # --------------------------------------------------------------- states

    @property
    def active(self) -> bool:
        return self.phase is SessionPhase.ACTIVE

    @property
    def done(self) -> bool:
        return self.phase is SessionPhase.DONE

    @property
    def warm_started(self) -> bool:
        return self.optimizer is not None and self.optimizer.warm_started

    @property
    def needs_guided_proposal(self) -> bool:
        """True when this tick's proposal should come from the shared
        batched GP pass instead of the session's own random sampler."""
        return (
            self.active
            and self.optimizer is not None
            and not self.optimizer.in_initial_phase
        )

    # ------------------------------------------------------------ lifecycle

    def admit(
        self,
        tick: int,
        store: Optional[SharedConfigStore] = None,
        warm_start: bool = True,
    ) -> None:
        """Bring the session up: build its system, consult the store, and
        construct a (possibly warm-started) optimizer."""
        if self.phase is not SessionPhase.WAITING:
            raise FleetError(f"{self.spec.session_id}: admitted twice")
        spec = self.spec
        # Placement is keyed by the spec (shared within a cohort); the
        # noise stream comes from the session's own decorrelated rng.
        session_seed = int(self.rng.integers(0, 2**31))
        # The link seed is drawn AFTER the session seed and ONLY when
        # edge is enabled, so device-only fleets consume exactly the
        # pre-edge draws from this stream (fixed-seed byte identity).
        edge_runtime = None
        if self._edge_config is not None:
            link_seed = int(self.rng.integers(0, 2**31))
            edge_runtime = build_edge_runtime(
                config=self._edge_config,
                seed=link_seed,
                session_id=spec.session_id,
                server=self._edge_server,
            )
            self._link_seed = link_seed
        elif self._topology is not None:
            edge_runtime = self._admit_to_topology()
            if edge_runtime is not None:
                self.attached_tick = tick
        self._finish_admission(
            tick,
            session_seed,
            edge_runtime,
            store=store,
            warm_start=warm_start,
            entry=None,
        )

    def admit_directed(
        self,
        tick: int,
        directive: Tuple,
        warm_entry: Optional[WarmStartEntry] = None,
    ) -> None:
        """Shard-worker admission with coordinator-made decisions.

        The coordinator owns the store and the authoritative topology, so
        placement and warm lookup arrive as inputs; the RNG draws here
        replay :meth:`admit`'s exact order (session seed first, link seed
        only when an edge tenancy is actually granted), which is what
        keeps a sharded run byte-identical to ``shards=1``.

        ``directive``: ``("device",)`` (no edge), ``("legacy",)``
        (singleton edge server), ``("node", name)`` (admitted to a
        topology node), or ``("rejected",)`` (placement rejected —
        device fallback, no link draw).
        """
        if self.phase is not SessionPhase.WAITING:
            raise FleetError(f"{self.spec.session_id}: admitted twice")
        spec = self.spec
        session_seed = int(self.rng.integers(0, 2**31))
        edge_runtime = None
        kind = directive[0]
        if kind == "legacy":
            if self._edge_config is None:
                raise FleetError(f"{spec.session_id}: no edge config to admit to")
            link_seed = int(self.rng.integers(0, 2**31))
            edge_runtime = build_edge_runtime(
                config=self._edge_config,
                seed=link_seed,
                session_id=spec.session_id,
                server=self._edge_server,
            )
            self._link_seed = link_seed
        elif kind == "node":
            if self._topology is None:
                raise FleetError(f"{spec.session_id}: no topology to admit to")
            profiles = _offloadable_profiles(spec)
            est = 0.0
            for profile in profiles:
                est += edge_demand(profile)
            self._est_streams = est
            self._edge_profile = max(profiles, key=edge_demand)
            link_seed = int(self.rng.integers(0, 2**31))
            self._link_seed = link_seed
            node = self._topology.node(directive[1])
            link = WirelessLink(node.config.link, link_seed)
            self._topology.attach(spec.session_id, directive[1], link)
            self.edge_node = directive[1]
            edge_runtime = EdgeRuntime(
                EdgeConfig(server=node.config.server, link=node.config.link),
                node.server,
                link,
                session_id=spec.session_id,
                register=False,
            )
            self.attached_tick = tick
        elif kind not in ("device", "rejected"):
            raise FleetError(
                f"{spec.session_id}: unknown admission directive {kind!r}"
            )
        self._finish_admission(
            tick,
            session_seed,
            edge_runtime,
            store=None,
            warm_start=False,
            entry=warm_entry,
        )

    def _finish_admission(
        self,
        tick: int,
        session_seed: int,
        edge_runtime: Optional[EdgeRuntime],
        store: Optional[SharedConfigStore],
        warm_start: bool,
        entry: Optional[WarmStartEntry],
    ) -> None:
        """Shared admission tail: system, optimizer, warm seed, columns."""
        spec = self.spec
        self.system = build_system(
            spec.scenario,
            spec.taskset,
            device=spec.device,
            seed=session_seed,
            noise_sigma=spec.noise_sigma,
            samples_per_period=spec.samples_per_period,
            place_objects=False,
            edge=edge_runtime,
            thermal=(
                self._thermal_spec.build()
                if self._thermal_spec is not None
                else None
            ),
        )
        place_catalog(
            self.system.scene,
            scenario_catalog(spec.scenario),
            seed=spec.placement_seed,
        )
        self.signature = EnvironmentSignature.of(self.system)

        cfg = self.config
        space = HBOSpace(self.system.n_resources, r_min=cfg.r_min)
        self.optimizer = BayesianOptimizer(
            space=space,
            n_initial=cfg.n_initial,
            kernel=Matern(length_scale=cfg.kernel_length_scale, nu=2.5),
            noise=cfg.noise,
            seed=self.rng,
            gp_tier=cfg.gp_tier,
            sparse_threshold=cfg.gp_sparse_threshold,
        )
        if store is not None and warm_start:
            entry = store.warm_start_for(self.signature, scope=spec.device)
        # A donor whose observations live in a different-dimensional
        # space (a device-fallback session donating 3-simplex points
        # into a 4-simplex fleet, or vice versa) cannot seed this
        # optimizer; treat the hit as cold instead of corrupting the GP.
        if (
            entry is not None
            and entry.observations
            and len(entry.observations[0][0]) == space.dim
        ):
            self.optimizer.warm_start(entry.to_observations())
            self.warm_entry = entry
        self.iteration = HBOIteration(
            self.system, self.optimizer, w=cfg.w, latency_only=cfg.latency_only
        )
        self.phase = SessionPhase.ACTIVE
        self.start_tick = tick
        table, i = self.table, self.index
        table.space_dim[i] = space.dim
        table.n_warm[i] = self.optimizer.n_warm
        table.warm_started[i] = self.optimizer.warm_started
        table.warm_source[i] = (
            self.warm_entry.source_session if self.warm_entry else ""
        )
        table.obs_count[i] = len(self.optimizer.state.observations)
        table.init_plan_row(i, self.system.device)

    def _admit_to_topology(self) -> Optional[EdgeRuntime]:
        """Ask the topology for a server; None means device fallback.

        Runs the placement policy, and — only when a node admits the
        session — draws the link seed and binds the tenancy. Rejected
        sessions consume exactly the RNG draws of a device-only one, the
        same only-when-edge contract the legacy path keeps.
        """
        assert self._topology is not None
        spec = self.spec
        profiles = _offloadable_profiles(spec)
        if not profiles:
            return None
        est = 0.0
        for profile in profiles:
            est += edge_demand(profile)
        self._est_streams = est
        self._edge_profile = max(profiles, key=edge_demand)
        outcome = place(
            self._topology,
            PlacementRequest(
                session_id=spec.session_id,
                est_streams=est,
                position=spec.position,
                profile=self._edge_profile,
            ),
            self._placement_policy,
        )
        self.placement_outcome = outcome
        if outcome.node is None:
            obs.counter(
                "edge_admission_rejections", policy=self._placement_policy
            ).inc()
            return None
        link_seed = int(self.rng.integers(0, 2**31))
        self._link_seed = link_seed
        node = self._topology.node(outcome.node)
        link = WirelessLink(node.config.link, link_seed)
        self._topology.attach(spec.session_id, outcome.node, link)
        self.edge_node = outcome.node
        obs.counter(
            "edge_placements", policy=self._placement_policy, node=outcome.node
        ).inc()
        return EdgeRuntime(
            EdgeConfig(server=node.config.server, link=node.config.link),
            node.server,
            link,
            session_id=spec.session_id,
            register=False,
        )

    def fallback_to_device(self, reason: str) -> None:
        """Collapse the session from the 4-simplex to the device 3-simplex
        mid-run — shed by a saturated server or orphaned by an outage.

        The caller has already detached the tenancy from the topology.
        EDGE-placed tasks move to their fastest on-device resource, the
        optimizer is rebuilt over the 3-resource space (continuing this
        session's own RNG stream, so the whole fleet stays deterministic),
        and the accumulated cost trajectory keeps growing — no crash, no
        budget reset.
        """
        if self.system is None or self.optimizer is None:
            raise FleetError(
                f"{self.spec.session_id}: device fallback before admission"
            )
        device = self.system.device
        runtime = device.edge
        if runtime is None:
            raise FleetError(
                f"{self.spec.session_id}: device fallback without an edge "
                "runtime"
            )
        runtime.abandon()
        device.edge = None
        profile_of = {task.task_id: task.profile for task in self.system.taskset}
        for task_id, resource in device.allocation.items():
            if resource is Resource.EDGE:
                device.set_allocation(
                    task_id, _device_fallback_resource(profile_of[task_id])
                )
        cfg = self.config
        space = HBOSpace(self.system.n_resources, r_min=cfg.r_min)
        self.optimizer = BayesianOptimizer(
            space=space,
            n_initial=cfg.n_initial,
            kernel=Matern(length_scale=cfg.kernel_length_scale, nu=2.5),
            noise=cfg.noise,
            seed=self.rng,
            gp_tier=cfg.gp_tier,
            sparse_threshold=cfg.gp_sparse_threshold,
        )
        self.iteration = HBOIteration(
            self.system, self.optimizer, w=cfg.w, latency_only=cfg.latency_only
        )
        self.edge_node = ""
        self.attached_tick = None
        self.fallback_reason = reason
        # The rebuilt optimizer starts cold over the 3-simplex: mirror
        # that in the table's guided-selection and warm columns.
        table, i = self.table, self.index
        table.space_dim[i] = space.dim
        table.n_warm[i] = 0
        table.warm_started[i] = False
        table.obs_count[i] = 0
        obs.counter("edge_fallbacks", reason=reason).inc()

    def migrate_edge(self, node_name: str, tick: int) -> None:
        """Move this session's tenancy to ``node_name`` mid-run.

        The new link's drift trace is seeded from the admission link seed
        and the migration ordinal, so migration timing — not hidden
        state — is the only input to the new trace.
        """
        if self._topology is None:
            raise FleetError(
                f"{self.spec.session_id}: migration without a topology"
            )
        if self.system is None or self.system.device.edge is None:
            raise FleetError(
                f"{self.spec.session_id}: migration without an edge runtime"
            )
        runtime = self.system.device.edge
        session_id = self.spec.session_id
        demand = runtime.server.demand_of(session_id)
        previous = self._topology.detach(session_id)
        node = self._topology.node(node_name)
        assert self._link_seed is not None
        link = WirelessLink(
            node.config.link,
            derive_seed(self._link_seed, "migrate", str(self.migrations)),
        )
        self._topology.attach(session_id, node_name, link)
        runtime.migrate(
            EdgeConfig(server=node.config.server, link=node.config.link),
            node.server,
            link,
        )
        runtime.set_demand_streams(demand)
        self.migrations += 1
        self.edge_node = node_name
        self.attached_tick = tick
        obs.counter("edge_migrations", src=previous, dst=node_name).inc()

    def step_initial(self) -> IterationResult:
        """One control period with the session's own (random-phase) ask."""
        return self.finish_step(self.begin_initial())

    def step_guided(self, z: np.ndarray) -> IterationResult:
        """One control period evaluating a proposal computed by the shared
        batched optimizer service."""
        return self.finish_step(self.begin_guided(z))

    def begin_initial(self) -> PendingEvaluation:
        """Ask the session's own optimizer and apply the configuration."""
        if not self.active or self.iteration is None or self.optimizer is None:
            raise FleetError(f"{self.spec.session_id}: stepped while not active")
        return self.iteration.begin(self.optimizer.ask())

    def begin_guided(self, z: np.ndarray) -> PendingEvaluation:
        """Record and apply a proposal from the shared batched service."""
        if not self.active or self.iteration is None or self.optimizer is None:
            raise FleetError(f"{self.spec.session_id}: stepped while not active")
        z = np.asarray(z, dtype=float).ravel()
        self.optimizer.state.proposals.append(z.copy())
        return self.iteration.begin(z)

    def finish_step(
        self,
        pending: PendingEvaluation,
        steady_latencies: Optional[Mapping[str, float]] = None,
    ) -> IterationResult:
        """Measure + record a begun control period.

        The scheduler computes every stepped session's steady state in
        one :func:`repro.backend.solve` pass and injects each row here;
        passing ``None`` recomputes it locally (identical bits).
        """
        if not self.active or self.iteration is None:
            raise FleetError(f"{self.spec.session_id}: stepped while not active")
        result = self.iteration.finish(pending, steady_latencies=steady_latencies)
        self.results.append(result)
        self.table.record_result(
            self.index,
            result.cost,
            result.measurement.mean_latency_ms,
            result.measurement.quality,
            result.measurement.epsilon,
        )
        return result

    @property
    def budget_exhausted(self) -> bool:
        return len(self.results) >= self.budget

    def finish(
        self, tick: int, store: Optional[SharedConfigStore] = None
    ) -> Optional[Dict[str, Any]]:
        """Lock in the best configuration and donate to the shared store.

        Returns the donation payload (the exact ``store.donate`` kwargs)
        so a shard worker without the authoritative store can ship it to
        the coordinator; ``None`` when the session has no signature.
        """
        if not self.active:
            raise FleetError(f"{self.spec.session_id}: finished while not active")
        if not self.results or self.system is None or self.optimizer is None:
            raise FleetError(
                f"{self.spec.session_id}: finished with no evaluations"
            )
        best = min(self.results, key=lambda r: r.cost)
        allocation = dict(best.allocation)
        if self.system.device.edge is None:
            # A fallen-back session may still prefer a pre-fallback result
            # whose allocation placed tasks on EDGE; those tasks land on
            # their fastest on-device resource instead.
            profile_of = {
                task.task_id: task.profile for task in self.system.taskset
            }
            allocation = {
                task_id: (
                    _device_fallback_resource(profile_of[task_id])
                    if resource is Resource.EDGE
                    else resource
                )
                for task_id, resource in allocation.items()
            }
        self.system.apply(allocation, best.triangle_ratio)
        donation: Optional[Dict[str, Any]] = None
        if self.signature is not None:
            # Donate only this session's own measurements — warm-start
            # observations would otherwise echo through the fleet forever.
            own = self.optimizer.state.observations[self.optimizer.n_warm :]
            donation = dict(
                signature=self.signature,
                allocation=allocation,
                triangle_ratio=best.triangle_ratio,
                reward=-best.cost,
                observations=own,
                scope=self.spec.device,
                session_id=self.spec.session_id,
            )
            if store is not None:
                store.donate(**donation)
        # Leave the shared edge server: a finished session's offloaded
        # demand must stop slowing the tenants still running.
        if self.system.device.edge is not None:
            if self._topology is not None:
                # edge_node is kept for reporting: it names the node that
                # served the session through its final control period.
                self._topology.detach(self.spec.session_id)
                self.system.device.edge.abandon()
            else:
                self.system.device.edge.release()
        self.phase = SessionPhase.DONE
        self.end_tick = tick
        return donation

    # ------------------------------------------------------------ reporting

    def costs(self) -> List[float]:
        """Measured cost per control period, in evaluation order."""
        return [r.cost for r in self.results]

    def best_cost(self) -> float:
        if not self.results:
            raise FleetError(f"{self.spec.session_id}: no evaluations yet")
        return min(r.cost for r in self.results)

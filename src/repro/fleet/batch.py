"""Batched GP evaluation for the shared optimizer service.

A fleet tick needs one guided proposal per active session. Doing that
with per-session :class:`~repro.bo.gp.GaussianProcess` objects costs B
separate kernel evaluations, Cholesky factorizations, and acquisition
sweeps — a Python loop whose overhead dominates once the fleet grows.
This module runs the same math as ``gp.py`` across all sessions at once:

- datasets are padded to the largest session's size and stacked into a
  ``(B, n, n)`` covariance tensor; padded rows are *ghost* observations
  (zero cross-covariance, unit diagonal, zero target), which leaves every
  real posterior bit-identical to the per-session computation;
- the linear algebra (factor + solve) runs through numpy's batched
  ``linalg`` kernels, with the same jitter-escalation ladder as
  :class:`~repro.bo.gp.GaussianProcess`;
- Expected Improvement is evaluated on the full ``(B, C)`` posterior in
  one vectorized pass.

:class:`SharedOptimizerService` packages this as "give me B optimizers,
get B proposals", which is what :class:`~repro.fleet.scheduler.
FleetScheduler` calls once per tick.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from repro.bo.kernels import RBF, Kernel, Matern
from repro.bo.optimizer import BayesianOptimizer
from repro.errors import FleetError, GPFitError
from repro.obs import runtime as obs

_JITTERS = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)


def _batched_distances(xa: np.ndarray, xb: np.ndarray) -> np.ndarray:
    """Euclidean distances between row sets, batched: (B,m,d) × (B,n,d)
    → (B,m,n)."""
    sq = (
        np.sum(xa**2, axis=2)[:, :, None]
        + np.sum(xb**2, axis=2)[:, None, :]
        - 2.0 * np.einsum("bmd,bnd->bmn", xa, xb)
    )
    return np.sqrt(np.clip(sq, 0.0, None))


def batched_kernel_matrix(
    kernel: Kernel, xa: np.ndarray, xb: np.ndarray
) -> np.ndarray:
    """Cross-covariance tensor ``(B, m, n)`` for stacked row sets.

    Matérn-1/2 / 3/2 / 5/2 and RBF evaluate fully vectorized; any other
    kernel falls back to one ``kernel(x, z)`` call per batch element
    (correct, just not batched).
    """
    if xa.ndim != 3 or xb.ndim != 3 or xa.shape[0] != xb.shape[0]:
        raise FleetError(
            f"batched kernel expects (B,m,d)/(B,n,d) inputs, got "
            f"{xa.shape} and {xb.shape}"
        )
    if isinstance(kernel, Matern):
        r = _batched_distances(xa, xb) / kernel.length_scale
        if math.isclose(kernel.nu, 0.5):
            k = np.exp(-r)
        elif math.isclose(kernel.nu, 1.5):
            s = math.sqrt(3.0) * r
            k = (1.0 + s) * np.exp(-s)
        else:  # nu == 2.5
            s = math.sqrt(5.0) * r
            k = (1.0 + s + s**2 / 3.0) * np.exp(-s)
        return kernel.variance * k
    if isinstance(kernel, RBF):
        r = _batched_distances(xa, xb) / kernel.length_scale
        return kernel.variance * np.exp(-0.5 * r**2)
    return np.stack([kernel(a, b) for a, b in zip(xa, xb)])


def _kernel_variance(kernel: Kernel) -> float:
    """k(z, z) for a stationary kernel (prior variance at any point)."""
    probe = np.zeros((1, 1))
    return float(kernel.diag(probe)[0])


class BatchedGPService:
    """Fits and queries many sessions' GP surrogates in one pass.

    Mirrors :class:`~repro.bo.gp.GaussianProcess` (target standardization,
    noise on the diagonal, jitter escalation) but over a padded batch.
    """

    def __init__(self, kernel: Optional[Kernel] = None, noise: float = 1e-3) -> None:
        if noise < 0:
            raise GPFitError(f"noise must be >= 0, got {noise}")
        self.kernel = kernel if kernel is not None else Matern(length_scale=1.0, nu=2.5)
        self.noise = float(noise)

    def posterior(
        self,
        train_x: Sequence[np.ndarray],
        train_y: Sequence[np.ndarray],
        query_x: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior (mean, std), each ``(B, C)``, for B sessions at once.

        ``train_x[b]`` is session b's ``(n_b, d)`` dataset, ``train_y[b]``
        its costs, ``query_x`` the stacked ``(B, C, d)`` candidate pools.
        Sessions may have different ``n_b``; padding ghosts keep each
        session's posterior identical to a per-session
        :class:`GaussianProcess` fit.
        """
        n_batch = len(train_x)
        if n_batch == 0:
            raise GPFitError("posterior() needs at least one session")
        if len(train_y) != n_batch or query_x.shape[0] != n_batch:
            raise GPFitError(
                f"batch size mismatch: {n_batch} datasets, {len(train_y)} "
                f"targets, {query_x.shape[0]} query pools"
            )
        dim = query_x.shape[2]
        sizes = np.asarray([x.shape[0] for x in train_x])
        if np.any(sizes == 0):
            raise GPFitError("cannot fit a GP on zero observations")
        n_max = int(sizes.max())

        x_pad = np.zeros((n_batch, n_max, dim))
        y_pad = np.zeros((n_batch, n_max))
        mask = np.zeros((n_batch, n_max))
        for b, (x, y) in enumerate(zip(train_x, train_y)):
            x = np.asarray(x, dtype=float)
            y = np.asarray(y, dtype=float).ravel()
            if x.shape != (sizes[b], dim) or y.shape[0] != sizes[b]:
                raise GPFitError(
                    f"session {b}: dataset shape {x.shape} / targets "
                    f"{y.shape} inconsistent with ({sizes[b]}, {dim})"
                )
            if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
                raise GPFitError("GP training data contains NaN or inf")
            x_pad[b, : sizes[b]] = x
            y_pad[b, : sizes[b]] = y
            mask[b, : sizes[b]] = 1.0

        # Per-session target standardization (as gp.py's normalize_y).
        counts = mask.sum(axis=1)
        y_mean = (y_pad * mask).sum(axis=1) / counts
        centered = (y_pad - y_mean[:, None]) * mask
        y_std = np.sqrt((centered**2).sum(axis=1) / counts)
        y_std = np.where(y_std > 1e-12, y_std, 1.0)
        y_norm = centered / y_std[:, None]

        # Covariance with ghost padding: zero cross-covariance to padded
        # rows, unit diagonal there — the block stays positive definite
        # and real entries are untouched.
        k = batched_kernel_matrix(self.kernel, x_pad, x_pad)
        pair_mask = mask[:, :, None] * mask[:, None, :]
        k = k * pair_mask
        diag = np.arange(n_max)
        k[:, diag, diag] = np.where(
            mask > 0.5, k[:, diag, diag] + self.noise, 1.0
        )

        eye = np.eye(n_max)[None, :, :]
        solved: Optional[Tuple[np.ndarray, np.ndarray]] = None
        last_error: Optional[Exception] = None
        k_star = batched_kernel_matrix(self.kernel, query_x, x_pad)  # (B,C,n)
        k_star = k_star * mask[:, None, :]
        for jitter in _JITTERS:
            try:
                k_j = k + jitter * eye
                np.linalg.cholesky(k_j)  # PD check, matches gp.py semantics
                alpha = np.linalg.solve(k_j, y_norm[:, :, None])[:, :, 0]
                v = np.linalg.solve(k_j, k_star.transpose(0, 2, 1))  # (B,n,C)
                solved = (alpha, v)
                break
            except np.linalg.LinAlgError as exc:
                last_error = exc
        if solved is None:
            raise GPFitError(
                f"batched covariance not positive definite after jitter "
                f"escalation up to {_JITTERS[-1]}: {last_error}"
            )
        alpha, v = solved
        mean_n = np.einsum("bcn,bn->bc", k_star, alpha)
        prior_var = _kernel_variance(self.kernel)
        var_n = prior_var - np.einsum("bcn,bnc->bc", k_star, v)
        var_n = np.clip(var_n, 1e-12, None)
        mean = mean_n * y_std[:, None] + y_mean[:, None]
        std = np.sqrt(var_n) * y_std[:, None]
        return mean, std


def batched_expected_improvement(
    mean: np.ndarray, std: np.ndarray, best_y: np.ndarray, xi: float = 0.01
) -> np.ndarray:
    """EI over a ``(B, C)`` posterior with per-session incumbents.

    Same closed form as :class:`~repro.bo.acquisition.ExpectedImprovement`
    (cost minimization, exploration margin ``xi``), vectorized across the
    batch axis.
    """
    improvement = best_y[:, None] - mean - xi
    with np.errstate(divide="ignore", invalid="ignore"):
        u = improvement / std
        ei = improvement * norm.cdf(u) + std * norm.pdf(u)
    ei = np.where(std > 1e-12, ei, np.maximum(improvement, 0.0))
    return np.clip(ei, 0.0, None)


class SharedOptimizerService:
    """One-tick proposal engine: B guided optimizers in, B proposals out.

    Candidate pools mirror :meth:`BayesianOptimizer._candidate_pool`
    (uniform samples plus local perturbations of the incumbent) but with a
    fixed per-session pool size so the whole fleet scores as one tensor.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-3,
        xi: float = 0.01,
        n_candidates: int = 256,
        n_local: int = 32,
    ) -> None:
        if n_candidates < 1:
            raise FleetError(f"n_candidates must be >= 1, got {n_candidates}")
        if n_local < 0:
            raise FleetError(f"n_local must be >= 0, got {n_local}")
        self.gp = BatchedGPService(kernel=kernel, noise=noise)
        self.xi = float(xi)
        self.n_candidates = int(n_candidates)
        self.n_local = int(n_local)
        #: Batched GP passes executed (telemetry).
        self.batches = 0
        #: Session-proposals served through those passes.
        self.proposals_served = 0

    def _candidates(
        self, optimizer: BayesianOptimizer, rng: np.random.Generator
    ) -> np.ndarray:
        pools = [optimizer.space.sample(rng, size=self.n_candidates)]
        if self.n_local > 0:
            incumbent = optimizer.best().z
            per_scale = max(1, self.n_local // 2)
            # perturb_batch consumes the generator exactly like per_scale
            # sequential perturb() calls (see HBOSpace.perturb_batch), so
            # this vectorization leaves proposals bit-identical — it was
            # ~50% of the fleet tick as a Python loop.
            batch = getattr(optimizer.space, "perturb_batch", None)
            for scale in (0.05, 0.15):
                if batch is not None:
                    pools.append(batch(incumbent, scale, per_scale, rng))
                else:
                    pools.append(
                        np.asarray(
                            [
                                optimizer.space.perturb(incumbent, scale, rng)
                                for _ in range(per_scale)
                            ]
                        )
                    )
        return np.vstack(pools)

    def propose(
        self,
        optimizers: Sequence[BayesianOptimizer],
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        """Guided proposals for every optimizer, via one batched GP pass.

        All optimizers must share the search-space dimension and have at
        least one observation. Falls back to uniform exploration (matching
        the single-session optimizer's degenerate-fit behavior) if the
        batched fit is impossible or a session's scores are all
        non-finite.
        """
        if not optimizers:
            return []
        if len(rngs) != len(optimizers):
            raise FleetError(
                f"{len(optimizers)} optimizers but {len(rngs)} rng streams"
            )
        dims = {opt.space.dim for opt in optimizers}
        if len(dims) != 1:
            raise FleetError(
                f"cannot batch optimizers over mixed space dimensions: {sorted(dims)}"
            )
        candidates = np.stack(
            [self._candidates(opt, rng) for opt, rng in zip(optimizers, rngs)]
        )  # (B, C, d)
        # surrogate_dataset() is every observation on the exact tier and
        # the deterministic support subset on the sparse tier, so sparse
        # sessions are priced here exactly as a per-session fit would —
        # and they cap the padded batch width at their support budget.
        datasets = [opt.surrogate_dataset() for opt in optimizers]
        train_x = [x for x, _ in datasets]
        train_y = [y for _, y in datasets]
        best_y = np.asarray([opt.best().cost for opt in optimizers])
        with obs.span(
            "fleet.batched_gp", category="fleet", n_sessions=len(optimizers)
        ) as span:
            try:
                mean, std = self.gp.posterior(train_x, train_y, candidates)
                scores = batched_expected_improvement(mean, std, best_y, xi=self.xi)
            except GPFitError:
                scores = None
                span.set(degenerate_fit=True)
        self.batches += 1
        self.proposals_served += len(optimizers)
        obs.counter("fleet_gp_batches").inc()
        obs.histogram("fleet_gp_batch_size", edges=(1, 2, 4, 8, 16, 32, 64)).observe(
            len(optimizers)
        )

        proposals: List[np.ndarray] = []
        for b, (opt, rng) in enumerate(zip(optimizers, rngs)):
            if scores is None or not np.any(np.isfinite(scores[b])):
                z = opt.space.sample(rng, size=1)[0]
            else:
                z = candidates[b, int(np.nanargmax(scores[b]))]
            proposals.append(opt.space.project(z))
        return proposals

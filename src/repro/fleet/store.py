"""Shared configuration store: the §VI lookup table generalized across
sessions.

:class:`~repro.core.lookup.LookupTable` remembers configurations for one
device's environments. A fleet-serving edge optimizer can do better: when
a *new* session arrives whose :class:`~repro.core.lookup.
EnvironmentSignature` resembles one an earlier session already solved,
the stored entry also carries the donor's BO *observations*, so the
newcomer warm-starts its optimizer from real (configuration, cost) pairs
instead of cold random initialization.

:class:`SharedConfigStore` partitions entries by *scope* (the fleet keys
scopes by device model, so a Pixel 7 never warm-starts from Galaxy S22
measurements) and tracks fleet-wide hit/transfer rates. The whole store
serializes to JSON, so warm-start state survives across fleet runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bo.optimizer import Observation
from repro.core.lookup import (
    EnvironmentSignature,
    LookupTable,
    PathLike,
    StoredConfiguration,
    signature_from_dict,
    signature_to_dict,
)
from repro.device.resources import Resource, resource_from_name
from repro.errors import ConfigurationError
from repro.obs import runtime as obs


@dataclass(frozen=True)
class WarmStartEntry(StoredConfiguration):
    """A stored configuration plus the BO observations that found it.

    ``observations`` holds (z vector, cost) pairs as plain tuples so the
    entry is hashable and JSON-serializable; rebuild optimizer-ready
    :class:`~repro.bo.optimizer.Observation` objects with
    :meth:`to_observations`.
    """

    observations: Tuple[Tuple[Tuple[float, ...], float], ...] = ()
    source_session: str = ""

    def to_observations(self) -> List[Observation]:
        """Optimizer-ready observations (lowest donor cost first)."""
        return [
            Observation(z=np.asarray(z, dtype=float), cost=float(cost))
            for z, cost in self.observations
        ]


def warm_start_entry_to_dict(entry: WarmStartEntry) -> Dict[str, Any]:
    """Serialize a :class:`WarmStartEntry` to plain JSON types."""
    return {
        "signature": signature_to_dict(entry.signature),
        "allocation": {task: str(res) for task, res in entry.allocation.items()},
        "triangle_ratio": entry.triangle_ratio,
        "reward": entry.reward,
        "observations": [
            {"z": list(z), "cost": cost} for z, cost in entry.observations
        ],
        "source_session": entry.source_session,
    }


def warm_start_entry_from_dict(data: Mapping[str, Any]) -> WarmStartEntry:
    """Rebuild a :class:`WarmStartEntry` from its exported form."""
    return WarmStartEntry(
        signature=signature_from_dict(data["signature"]),
        allocation={
            task: resource_from_name(name)
            for task, name in data["allocation"].items()
        },
        triangle_ratio=float(data["triangle_ratio"]),
        reward=float(data["reward"]),
        observations=tuple(
            (tuple(float(v) for v in obs["z"]), float(obs["cost"]))
            for obs in data.get("observations", [])
        ),
        source_session=str(data.get("source_session", "")),
    )


class SharedConfigStore:
    """Cross-session warm-start store for a fleet-serving edge optimizer.

    One :class:`~repro.core.lookup.LookupTable` per *scope* (device
    model), holding :class:`WarmStartEntry` values. Lookup hits within a
    scope transfer the donor's observations to the requesting session;
    the store counts donations, lookups, and transfers fleet-wide.

    Parameters
    ----------
    max_entries_per_scope:
        Bound of each scope's table (LRU-by-hit eviction, inherited from
        :class:`LookupTable`).
    similarity_threshold:
        Maximum :meth:`EnvironmentSignature.distance_to` for a hit. The
        fleet default is looser than the single-device lookup default
        (0.35 vs 0.15): a warm start only *seeds* BO, which then refines,
        so approximate donors are still useful.
    max_observations:
        Observations kept per donated entry (the lowest-cost ones); bounds
        both the store's footprint and the warm-start payload.
    observation_budget:
        Optional *store-wide* cap on the total number of observations
        held across every scope and entry. ``max_observations`` bounds
        each entry, but a busy fleet keeps adding entries, so the
        aggregate donor set still grows without bound — exactly the
        streaming-observation regime the sparse GP tier exists for. When
        the budget is exceeded after a donation, :meth:`_enforce_budget`
        trims observations from the least-recently-hit entries first
        (highest-cost observations within each entry go first); the
        configurations themselves survive, only their donor payloads
        shrink. ``None`` (default) keeps the pre-budget behavior.
    """

    def __init__(
        self,
        max_entries_per_scope: int = 64,
        similarity_threshold: float = 0.35,
        max_observations: int = 8,
        observation_budget: Optional[int] = None,
    ) -> None:
        if max_observations < 1:
            raise ConfigurationError(
                f"max_observations must be >= 1, got {max_observations}"
            )
        if observation_budget is not None and observation_budget < 1:
            raise ConfigurationError(
                f"observation_budget must be >= 1 or None, got {observation_budget}"
            )
        self.max_entries_per_scope = int(max_entries_per_scope)
        self.similarity_threshold = float(similarity_threshold)
        self.max_observations = int(max_observations)
        self.observation_budget = (
            None if observation_budget is None else int(observation_budget)
        )
        self._tables: Dict[str, LookupTable] = {}
        self.donations = 0
        self.transfers = 0
        #: Observations dropped by budget enforcement over the store's life.
        self.evicted_observations = 0

    # ------------------------------------------------------------- tables

    def table_for(self, scope: str = "") -> LookupTable:
        """The scope's table, created on first use."""
        if scope not in self._tables:
            self._tables[scope] = LookupTable(
                max_entries=self.max_entries_per_scope,
                similarity_threshold=self.similarity_threshold,
            )
        return self._tables[scope]

    def scopes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())

    # ------------------------------------------------------------ protocol

    def donate(
        self,
        signature: EnvironmentSignature,
        allocation: Mapping[str, Resource],
        triangle_ratio: float,
        reward: float,
        observations: Sequence[Observation],
        scope: str = "",
        session_id: str = "",
    ) -> WarmStartEntry:
        """Store a finished session's best configuration and the
        observations that found it; returns the stored entry."""
        kept = sorted(observations, key=lambda o: o.cost)[: self.max_observations]
        entry = WarmStartEntry(
            signature=signature,
            allocation=dict(allocation),
            triangle_ratio=float(triangle_ratio),
            reward=float(reward),
            observations=tuple(
                (tuple(float(v) for v in o.z), float(o.cost)) for o in kept
            ),
            source_session=session_id,
        )
        self.table_for(scope).store(entry)
        self.donations += 1
        obs.counter("store_donations", scope=scope or "default").inc()
        self._enforce_budget()
        return entry

    def _enforce_budget(self) -> None:
        """Trim stored observations down to ``observation_budget``.

        Victim order is least-recently-hit entries first (scopes visited
        in sorted order), mirroring the table's own LRU eviction; within
        an entry the highest-cost observations go first (donations are
        stored cost-ascending, so the trim drops the tuple's tail). A
        fully trimmed entry keeps its configuration: it can still serve
        lookup hits, it just no longer ships donor observations.
        """
        if self.observation_budget is None:
            return
        excess = self.total_observations - self.observation_budget
        if excess <= 0:
            return
        for scope in self.scopes():
            table = self._tables[scope]
            for entry in table.entries():  # least-recently-hit first
                if excess <= 0:
                    return
                if not isinstance(entry, WarmStartEntry) or not entry.observations:
                    continue
                drop = min(excess, len(entry.observations))
                trimmed = WarmStartEntry(
                    signature=entry.signature,
                    allocation=entry.allocation,
                    triangle_ratio=entry.triangle_ratio,
                    reward=entry.reward,
                    observations=entry.observations[
                        : len(entry.observations) - drop
                    ],
                    source_session=entry.source_session,
                )
                table.replace(entry, trimmed)
                excess -= drop
                self.evicted_observations += drop
                obs.counter(
                    "store_evicted_observations", scope=scope or "default"
                ).inc(drop)

    def warm_start_for(
        self, signature: EnvironmentSignature, scope: str = ""
    ) -> Optional[WarmStartEntry]:
        """Closest donated entry within the similarity threshold, or None.

        A hit that carries observations counts as a *transfer* (the
        fleet-wide statistic the warm-vs-cold experiment reports).
        """
        label = scope or "default"
        obs.counter("store_lookups", scope=label).inc()
        entry = self.table_for(scope).lookup(signature)
        if entry is None:
            obs.counter("store_misses", scope=label).inc()
            return None
        obs.counter("store_hits", scope=label).inc()
        if not isinstance(entry, WarmStartEntry):
            # A plain StoredConfiguration (e.g. loaded from a legacy
            # single-device table) has no observations to transfer.
            entry = WarmStartEntry(
                signature=entry.signature,
                allocation=entry.allocation,
                triangle_ratio=entry.triangle_ratio,
                reward=entry.reward,
            )
        if entry.observations:
            self.transfers += 1
            obs.counter("store_transfers", scope=label).inc()
        return entry

    # ------------------------------------------------------------- metrics

    @property
    def hits(self) -> int:
        return sum(t.hits for t in self._tables.values())

    @property
    def misses(self) -> int:
        return sum(t.misses for t in self._tables.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def transfer_rate(self) -> float:
        """Fraction of lookups that shipped donor observations."""
        total = self.hits + self.misses
        return self.transfers / total if total else 0.0

    @property
    def total_observations(self) -> int:
        """Observations currently held across every scope and entry."""
        return sum(
            len(entry.observations)
            for table in self._tables.values()
            for entry in table.entries()
            if isinstance(entry, WarmStartEntry)
        )

    def stats(self) -> Dict[str, Any]:
        """Fleet-wide counters, JSON-ready (used by telemetry export)."""
        return {
            "entries": len(self),
            "scopes": list(self.scopes()),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "donations": self.donations,
            "transfers": self.transfers,
            "transfer_rate": self.transfer_rate,
            "total_observations": self.total_observations,
            "observation_budget": self.observation_budget,
            "evicted_observations": self.evicted_observations,
        }

    # -------------------------------------------------------- persistence

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the whole store (all scopes, entries, counters)."""
        scopes_data: Dict[str, Any] = {}
        for scope in self.scopes():
            table = self._tables[scope]
            scopes_data[scope] = {
                "hits": table.hits,
                "misses": table.misses,
                "entries": [
                    warm_start_entry_to_dict(e)
                    for e in table.entries()
                    if isinstance(e, WarmStartEntry)
                ],
            }
        return {
            "max_entries_per_scope": self.max_entries_per_scope,
            "similarity_threshold": self.similarity_threshold,
            "max_observations": self.max_observations,
            "observation_budget": self.observation_budget,
            "donations": self.donations,
            "transfers": self.transfers,
            "evicted_observations": self.evicted_observations,
            "scopes": scopes_data,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SharedConfigStore":
        """Rebuild a store from :meth:`to_dict` output.

        The eviction-budget fields shipped after the original format, so
        they default (no budget, zero evictions) when absent — pre-budget
        JSON saves load unchanged.
        """
        budget = data.get("observation_budget")
        store = cls(
            max_entries_per_scope=int(data["max_entries_per_scope"]),
            similarity_threshold=float(data["similarity_threshold"]),
            max_observations=int(data["max_observations"]),
            observation_budget=None if budget is None else int(budget),
        )
        for scope, scope_data in data.get("scopes", {}).items():
            table = store.table_for(scope)
            for entry_data in scope_data.get("entries", []):
                table.store(warm_start_entry_from_dict(entry_data))
            table.hits = int(scope_data.get("hits", 0))
            table.misses = int(scope_data.get("misses", 0))
        store.donations = int(data.get("donations", 0))
        store.transfers = int(data.get("transfers", 0))
        store.evicted_observations = int(data.get("evicted_observations", 0))
        return store

    def save(self, path: PathLike) -> None:
        """Write the store to ``path`` as pretty-printed JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: PathLike) -> "SharedConfigStore":
        """Read a store previously written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict):
            raise ConfigurationError(f"{path}: expected a JSON object at top level")
        return cls.from_dict(data)

"""JSON export of fleet runs.

These helpers lived in :mod:`repro.sim.export` until the layering
analyzer (RL006) flagged the edge: ``repro.sim`` sits below
``repro.fleet`` in the layer DAG, so even a ``TYPE_CHECKING`` import of
the fleet result types was an upward dependency. The fleet serializers
now live with the fleet; :mod:`repro.sim.export` keeps thin lazy
wrappers for existing call sites (an allowlisted backward-compat seam).

The schema is shard-agnostic: a ``shards > 1`` run feeds the exact same
`FleetResult` through here and serializes byte-identically to
``shards=1`` — no extra keys, no shard provenance. Sharding is a
stepping strategy, not an output format (see :mod:`repro.fleet.shard`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.scheduler import FleetResult
    from repro.fleet.telemetry import FleetSessionReport
    from repro.obs.metrics import MetricsRegistry

__all__ = ["fleet_report_to_dict", "fleet_result_to_dict"]


def fleet_report_to_dict(report: "FleetSessionReport") -> Dict[str, Any]:
    """Serialize one session's fleet report."""
    return {
        "session_id": report.session_id,
        "device": report.device,
        "scenario": report.scenario,
        "taskset": report.taskset,
        "arrival_s": report.arrival_s,
        "start_tick": report.start_tick,
        "end_tick": report.end_tick,
        "warm_started": report.warm_started,
        "n_warm": report.n_warm,
        "warm_source": report.warm_source,
        "costs": [float(c) for c in report.costs],
        "latencies_ms": [float(v) for v in report.latencies_ms],
        "qualities": [float(v) for v in report.qualities],
        "best_cost": report.best_cost,
        "cohort_best_cost": report.cohort_best_cost,
        "converged_at": report.converged_at,
        "epsilons": [float(v) for v in report.epsilons],
        "placed_node": report.placed_node,
        "edge_node": report.edge_node,
        "fallback_reason": report.fallback_reason,
        "migrations": report.migrations,
    }


def fleet_result_to_dict(
    result: "FleetResult", metrics: "Optional[MetricsRegistry]" = None
) -> Dict[str, Any]:
    """Serialize a whole fleet run (sessions, aggregates, store/service
    counters). The determinism tests compare two runs through this
    function, so every value here must be reproducible from the seed.

    Pass the run's :class:`~repro.obs.metrics.MetricsRegistry` to embed
    its snapshot under a ``"metrics"`` key (snapshots contain sim-derived
    values only, so they are as reproducible as the rest of the export).
    """
    aggregates = result.aggregates
    exported: Dict[str, Any] = {
        "tick_s": result.tick_s,
        "ticks": result.ticks,
        "sessions": [fleet_report_to_dict(r) for r in result.reports],
        "aggregates": {
            "n_sessions": aggregates.n_sessions,
            "n_evaluations": aggregates.n_evaluations,
            "p50_latency_ms": aggregates.p50_latency_ms,
            "p95_latency_ms": aggregates.p95_latency_ms,
            "p50_quality": aggregates.p50_quality,
            "p95_quality": aggregates.p95_quality,
            "mean_best_cost": aggregates.mean_best_cost,
            "median_converged_warm": aggregates.median_converged_warm,
            "median_converged_cold": aggregates.median_converged_cold,
            "p95_epsilon": aggregates.p95_epsilon,
        },
        "histogram": {str(k): v for k, v in result.histogram.items()},
        "store": result.store_stats,
        "service": result.service_stats,
    }
    if result.topology_stats is not None:
        exported["topology"] = result.topology_stats
    if metrics is not None:
        exported["metrics"] = metrics.snapshot()
    return exported

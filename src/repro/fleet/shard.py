"""Shard-parallel fleet cohorts: N worker processes, one deterministic run.

``FleetConfig.shards > 1`` splits the spec list into contiguous cohorts,
each stepped by a persistent worker process, with a coordinator owning
every piece of state sessions share across shard boundaries:

- the :class:`~repro.fleet.store.SharedConfigStore` (warm lookups at
  admission, donations at retirement),
- the authoritative :class:`~repro.edge.topology.EdgeTopology` / legacy
  singleton :class:`~repro.edge.server.EdgeServer` (placement, admission,
  shedding, migration, and the registration-order external-demand sums),
- the :class:`~repro.sim.clock.SimClock` and every lifecycle decision.

Workers own what never crosses a shard boundary: the heavyweight session
objects (system, optimizer, GP service) and — crucially — the per-session
RNG streams. :func:`repro.rng.spawn_shard_rngs` hands shard ``k`` exactly
the contiguous block of ``spawn_rngs(seed, n)`` children its specs would
have received unsharded, and :meth:`~repro.fleet.session.FleetSession.
admit_directed` replays :meth:`~repro.fleet.session.FleetSession.admit`'s
draw order, so every session consumes bit-identical randomness at any
shard count.

Each tick runs in lockstep:

1. **Coordinator phase** — drift/outage upkeep, admissions (placement on
   the authoritative topology + warm-start lookup, shipped down as
   directives), shed and migration commands, all in the exact order the
   in-process scheduler would apply them.
2. **Worker begin** — apply commands, one batched GP pass per space dim
   (batch-composition invariant, so per-shard sub-batches equal the
   global batch bitwise), apply configurations, publish edge demands.
3. **Demand barrier** (edge modes only) — the coordinator folds worker
   demands into the authoritative servers and returns each tenant's
   external-stream sum, computed in global registration order; demand is
   only written during begins and externs only read after, so one
   barrier per tick suffices for bitwise parity.
4. **Worker finish** — inject externs, one columnar
   :func:`~repro.backend.solve.solve` over the shard's stepped rows
   (row-independent, padding-invariant), measure, retire; donations ride
   up as payloads.
5. **Coordinator close** — donations applied in global spec order,
   retiring tenancies released, phases advanced.

The final merge is columnar: each worker ships its
:meth:`~repro.fleet.table.SessionTable.shard_payload`, the coordinator
:meth:`~repro.fleet.table.SessionTable.absorb`-s the contiguous blocks,
and reports/aggregates come from the same column math as ``shards=1``.
"""

from __future__ import annotations

import math
import multiprocessing as mp
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lookup import EnvironmentSignature
from repro.edge.link import WirelessLink
from repro.edge.placement import (
    PlacementOutcome,
    PlacementRequest,
    migration_candidate,
    place,
)
from repro.edge.server import EdgeServer
from repro.edge.share import edge_demand
from repro.edge.topology import EdgeTopology
from repro.errors import FleetError, UnknownTenantError
from repro.fleet.batch import SharedOptimizerService
from repro.fleet.scheduler import (
    FleetConfig,
    FleetResult,
    batched_steady,
    propose_and_begin,
)
from repro.fleet.session import (
    FleetSession,
    SessionSpec,
    _offloadable_profiles,
)
from repro.fleet.store import SharedConfigStore, WarmStartEntry
from repro.fleet.table import PHASE_ACTIVE, PHASE_DONE, SessionTable
from repro.obs import runtime as obs
from repro.rng import SeedLike, spawn_shard_rngs
from repro.sim.clock import SimClock
from repro.sim.scenarios import (
    build_system,
    network_drift_scale,
    place_catalog,
    scenario_catalog,
)

#: Seed of the coordinator's placeholder links. The coordinator never
#: samples a link (workers own the drift traces, seeded from their own
#: session streams), so the value is irrelevant — it only satisfies the
#: topology's attach signature.
_PLACEHOLDER_LINK_SEED = 0


def shard_sizes(n_specs: int, shards: int) -> List[int]:
    """Contiguous near-equal split: earlier shards take the remainder.

    Pure function of its arguments, shared by the coordinator and the
    RNG-stream partition so both always agree on the block boundaries.
    """
    if n_specs < 1:
        raise FleetError(f"need at least one spec, got {n_specs}")
    if shards < 1:
        raise FleetError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n_specs)
    base, extra = divmod(n_specs, shards)
    return [base + (1 if k < extra else 0) for k in range(shards)]


class _MirrorEdgeServer(EdgeServer):
    """Worker-side stand-in for a coordinator-owned :class:`EdgeServer`.

    Holds only the shard's own tenants, so its native external-demand sum
    would miss every other shard; the coordinator computes externs on the
    authoritative server (full tenant set, registration order) and
    injects them here at the per-tick demand barrier.
    """

    def __init__(self, config: Any) -> None:
        super().__init__(config)
        self.extern_override: Dict[str, float] = {}

    def extern_streams(self, tenant_id: str) -> float:
        if tenant_id not in self._demand_streams:
            raise UnknownTenantError(
                tenant_id, self.config.name, "extern_streams"
            )
        return self.extern_override.get(tenant_id, 0.0)


def _mirror_topology(config: FleetConfig) -> Optional[EdgeTopology]:
    """A worker's topology: real nodes, servers swapped for mirrors."""
    if config.topology is None:
        return None
    topology = EdgeTopology(config.topology)
    for node in topology.nodes:
        node.server = _MirrorEdgeServer(node.config.server)
    return topology


class _ShardWorker:
    """One shard's in-process state machine (runs inside the worker)."""

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        config: FleetConfig,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        self.config = config
        self.clock = SimClock()
        self.table = SessionTable(specs, config.hbo)
        self.service = SharedOptimizerService()
        self.edge_server: Optional[_MirrorEdgeServer] = (
            _MirrorEdgeServer(config.edge.server)
            if config.edge is not None
            else None
        )
        self.topology = _mirror_topology(config)
        self.sessions = [
            FleetSession(
                spec,
                config.hbo,
                rng,
                edge=config.edge,
                edge_server=self.edge_server,
                topology=self.topology,
                placement=config.placement,
                table=self.table,
                index=i,
                thermal=config.thermal,
            )
            for i, (spec, rng) in enumerate(zip(specs, rngs))
        ]
        self._session_of = {s.spec.session_id: s for s in self.sessions}
        self._stepped: List[Tuple[int, Any]] = []
        self._dims: List[int] = []
        self._n_guided = 0

    def _maintain_mirror(self) -> None:
        """Replay drift/outage upkeep on the mirror topology.

        Drift scales and outage windows are pure functions of sim time
        and config, so the worker recomputes them instead of receiving
        commands; outage fallbacks touch only this shard's own tenants,
        making the cross-shard detach order irrelevant.
        """
        if self.topology is None:
            return
        now_s = self.clock.now_s
        drift = self.config.edge_drift
        for node in self.topology.nodes:
            if drift and node.name in drift:
                node.set_bandwidth_scale(
                    network_drift_scale(now_s, tuple(drift[node.name]))
                )
            down = any(
                episode.node == node.name and episode.covers(now_s)
                for episode in self.config.edge_outages
            )
            if down != node.in_outage:
                node.set_outage(down)
                if down:
                    for session_id in node.server.tenant_ids:
                        self.topology.detach(session_id)
                        self._session_of[session_id].fallback_to_device(
                            "outage"
                        )

    def tick_begin(self, msg: Dict[str, Any]) -> Dict[str, float]:
        """Apply coordinator commands, propose, begin; return demands."""
        tick = int(msg["tick"])
        self._maintain_mirror()
        for local_idx, directive, entry in msg["admit"]:
            self.sessions[local_idx].admit_directed(
                tick, directive, warm_entry=entry
            )
        for local_idx in msg["shed"]:
            session = self.sessions[local_idx]
            assert self.topology is not None
            self.topology.detach(session.spec.session_id)
            session.fallback_to_device("shed")
        for local_idx, node_name in msg["migrate"]:
            self.sessions[local_idx].migrate_edge(node_name, tick)
        self._stepped, self._dims, self._n_guided = propose_and_begin(
            self.service, self.table, self.sessions
        )
        demands: Dict[str, float] = {}
        if self.edge_server is not None:
            demands.update(self.edge_server.snapshot())
        if self.topology is not None:
            for node in self.topology.nodes:
                demands.update(node.server.snapshot())
        return demands

    def inject_externs(self, externs: Dict[str, float]) -> None:
        if self.edge_server is not None:
            self.edge_server.extern_override = externs
        if self.topology is not None:
            for node in self.topology.nodes:
                node.server.extern_override = externs

    def tick_finish(self, tick: int) -> Dict[str, Any]:
        """Solve, measure, retire; ship worker-truth events up."""
        stepped = self._stepped
        for (i, pending), steady in zip(
            stepped,
            batched_steady(self.table, self.sessions, [i for i, _ in stepped]),
        ):
            self.sessions[i].finish_step(pending, steady_latencies=steady)
        retired: List[int] = []
        donations: List[Tuple[int, Optional[Dict[str, Any]]]] = []
        for i in self.table.exhausted_indices():
            donation = self.sessions[int(i)].finish(tick, store=None)
            retired.append(int(i))
            donations.append((int(i), donation))
        self.clock.advance(self.config.tick_s)
        return {
            "n_guided": self._n_guided,
            "dims": self._dims,
            "retired": retired,
            "donations": donations,
        }


def _shard_worker_main(
    conn: Any,
    specs: Sequence[SessionSpec],
    config: FleetConfig,
    rngs: Sequence[np.random.Generator],
) -> None:
    """Worker process entry point: lockstep command loop until ``stop``."""
    worker = _ShardWorker(specs, config, rngs)
    edge_mode = config.edge is not None or config.topology is not None
    try:
        while True:
            msg = conn.recv()
            op = msg["op"]
            if op == "tick":
                demands = worker.tick_begin(msg)
                if edge_mode:
                    conn.send({"demands": demands})
                    worker.inject_externs(conn.recv()["externs"])
                conn.send(worker.tick_finish(int(msg["tick"])))
            elif op == "collect":
                conn.send(worker.table.shard_payload())
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol guard
                raise FleetError(f"unknown shard op {op!r}")
    finally:
        conn.close()


class ShardedFleetScheduler:
    """Coordinator for a shard-parallel fleet run.

    Drop-in for :class:`~repro.fleet.scheduler.FleetScheduler.run` —
    same constructor shape, same :class:`FleetResult`, byte-identical
    output at any shard count for a fixed seed.
    """

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        seed: SeedLike = None,
        config: Optional[FleetConfig] = None,
        store: Optional[SharedConfigStore] = None,
    ) -> None:
        specs = tuple(specs)
        if not specs:
            raise FleetError("a fleet needs at least one session spec")
        ids = [spec.session_id for spec in specs]
        duplicates = sorted({s for s in ids if ids.count(s) > 1})
        if duplicates:
            raise FleetError(f"duplicate session ids: {duplicates}")
        self.specs = specs
        self.config = config if config is not None else FleetConfig()
        self.store = store if store is not None else SharedConfigStore()
        self.clock = SimClock()
        self.table = SessionTable(specs, self.config.hbo)
        self.edge_server: Optional[EdgeServer] = (
            EdgeServer(self.config.edge.server)
            if self.config.edge is not None
            else None
        )
        self.topology: Optional[EdgeTopology] = (
            EdgeTopology(self.config.topology)
            if self.config.topology is not None
            else None
        )
        self._edge_mode = (
            self.edge_server is not None or self.topology is not None
        )
        self._row_of = {spec.session_id: i for i, spec in enumerate(specs)}
        # Pure per-spec inputs the migration guard needs (the in-process
        # scheduler reads them off live sessions; they depend only on the
        # spec, so the coordinator recomputes them).
        self._est_streams: List[float] = []
        self._edge_profiles: List[Optional[Any]] = []
        for spec in specs:
            profiles = _offloadable_profiles(spec)
            est = 0.0
            for profile in profiles:
                est += edge_demand(profile)
            self._est_streams.append(est)
            self._edge_profiles.append(
                max(profiles, key=edge_demand) if profiles else None
            )
        self._signatures: Dict[
            Tuple[str, str, str, int], EnvironmentSignature
        ] = {}
        self._placement_outcomes: List[Optional[PlacementOutcome]] = [
            None
        ] * len(specs)
        self._shed_fallbacks = 0
        self._outage_fallbacks = 0
        self._batches = 0
        self._proposals = 0

        sizes = shard_sizes(len(specs), self.config.shards)
        self._starts: List[int] = []
        start = 0
        for size in sizes:
            self._starts.append(start)
            start += size
        self._sizes = sizes
        shard_rngs = spawn_shard_rngs(seed, sizes)
        method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        ctx = mp.get_context(method)
        self._conns: List[Any] = []
        self._procs: List[Any] = []
        for k, (block_start, size) in enumerate(zip(self._starts, sizes)):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child,
                    specs[block_start : block_start + size],
                    self.config,
                    shard_rngs[k],
                ),
                name=f"fleet-shard-{k}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    # ----------------------------------------------------------- addressing

    def _shard_local(self, row: int) -> Tuple[int, int]:
        """(shard index, local row) of a global table row."""
        for k in range(len(self._starts) - 1, -1, -1):
            if row >= self._starts[k]:
                return k, row - self._starts[k]
        raise FleetError(f"row {row} outside every shard")  # pragma: no cover

    # --------------------------------------------------- coordinator phase A

    def _maintain_topology(self) -> None:
        """Authoritative drift/outage upkeep (decision mirror of
        :meth:`FleetScheduler._maintain_topology`); workers replay the
        pure parts themselves, so no commands are shipped."""
        assert self.topology is not None
        now_s = self.clock.now_s
        drift = self.config.edge_drift
        for node in self.topology.nodes:
            if drift and node.name in drift:
                node.set_bandwidth_scale(
                    network_drift_scale(now_s, tuple(drift[node.name]))
                )
            down = any(
                episode.node == node.name and episode.covers(now_s)
                for episode in self.config.edge_outages
            )
            if down != node.in_outage:
                node.set_outage(down)
                if down:
                    for session_id in node.server.tenant_ids:
                        self.topology.detach(session_id)
                        self._note_fallback(self._row_of[session_id])
                        self._outage_fallbacks += 1

    def _note_fallback(self, row: int) -> None:
        self.table.edge_node[row] = ""
        self.table.attached_tick[row] = -1

    def _signature_of(self, spec: SessionSpec) -> EnvironmentSignature:
        """The spec's environment signature, cached per cohort.

        The signature depends on the scene (scenario + placement seed)
        and the taskset — never on the session's measurement-noise seed —
        so the coordinator computes it from a throwaway system without
        touching any session RNG stream.
        """
        key = (spec.scenario, spec.taskset, spec.device, spec.placement_seed)
        cached = self._signatures.get(key)
        if cached is not None:
            return cached
        system = build_system(
            spec.scenario,
            spec.taskset,
            device=spec.device,
            seed=0,
            noise_sigma=spec.noise_sigma,
            samples_per_period=spec.samples_per_period,
            place_objects=False,
        )
        place_catalog(
            system.scene,
            scenario_catalog(spec.scenario),
            seed=spec.placement_seed,
        )
        signature = EnvironmentSignature.of(system)
        self._signatures[key] = signature
        return signature

    def _place_session(self, row: int, spec: SessionSpec, tick: int) -> Tuple:
        """Run placement on the authoritative topology; returns the
        admission directive for the owning worker."""
        assert self.topology is not None
        profiles = _offloadable_profiles(spec)
        if not profiles:
            return ("device",)
        outcome = place(
            self.topology,
            PlacementRequest(
                session_id=spec.session_id,
                est_streams=self._est_streams[row],
                position=spec.position,
                profile=self._edge_profiles[row],
            ),
            self.config.placement,
        )
        self._placement_outcomes[row] = outcome
        if outcome.node is None:
            obs.counter(
                "edge_admission_rejections", policy=self.config.placement
            ).inc()
            return ("rejected",)
        node = self.topology.node(outcome.node)
        self.topology.attach(
            spec.session_id,
            outcome.node,
            WirelessLink(node.config.link, _PLACEHOLDER_LINK_SEED),
        )
        self.table.edge_node[row] = outcome.node
        self.table.attached_tick[row] = tick
        obs.counter(
            "edge_placements",
            policy=self.config.placement,
            node=outcome.node,
        ).inc()
        return ("node", outcome.node)

    def _admit_arrivals(
        self, tick: int, commands: List[Dict[str, Any]]
    ) -> None:
        for i in self.table.due_indices(self.clock.now_s):
            spec = self.specs[i]
            entry: Optional[WarmStartEntry] = None
            if self.config.warm_start:
                entry = self.store.warm_start_for(
                    self._signature_of(spec), scope=spec.device
                )
            if self.edge_server is not None:
                self.edge_server.register(spec.session_id)
                directive: Tuple = ("legacy",)
            elif self.topology is not None:
                directive = self._place_session(int(i), spec, tick)
            else:
                directive = ("device",)
            self.table.phase[i] = PHASE_ACTIVE
            self.table.start_tick[i] = tick
            shard, local = self._shard_local(int(i))
            commands[shard]["admit"].append((local, directive, entry))

    def _shed_overloaded(self, commands: List[Dict[str, Any]]) -> None:
        assert self.topology is not None
        for node in self.topology.nodes:
            for session_id in self.topology.shed_candidates(node.name):
                self.topology.detach(session_id)
                row = self._row_of[session_id]
                self._note_fallback(row)
                self._shed_fallbacks += 1
                shard, local = self._shard_local(row)
                commands[shard]["shed"].append(local)

    def _migrate_sessions(
        self, tick: int, commands: List[Dict[str, Any]]
    ) -> None:
        assert self.topology is not None
        migration = self.topology.config.migration
        if not migration.enabled:
            return
        table = self.table
        for row in range(table.n):
            if table.phase[row] != PHASE_ACTIVE or not table.edge_node[row]:
                continue
            attached = int(table.attached_tick[row])
            if attached < 0 or tick - attached < migration.dwell_ticks:
                continue
            profile = self._edge_profiles[row]
            if profile is None:
                continue
            session_id = self.specs[row].session_id
            node = self.topology.node(table.edge_node[row])
            demand = node.server.demand_of(session_id)
            target = migration_candidate(
                self.topology,
                session_id,
                profile,
                demand if demand > 0 else self._est_streams[row],
            )
            if target is None:
                continue
            previous = self.topology.detach(session_id)
            target_node = self.topology.node(target)
            self.topology.attach(
                session_id,
                target,
                WirelessLink(target_node.config.link, _PLACEHOLDER_LINK_SEED),
            )
            # Carry the published demand across, exactly like the live
            # runtime's migrate path, so same-tick utilization reads on
            # the authoritative servers match the in-process scheduler.
            target_node.server.set_demand(session_id, demand)
            table.edge_node[row] = target
            table.attached_tick[row] = tick
            table.migrations[row] += 1
            shard, local = self._shard_local(row)
            commands[shard]["migrate"].append((local, target))
            obs.counter("edge_migrations", src=previous, dst=target).inc()

    # -------------------------------------------------------------- barrier

    def _server_of(self, session_id: str) -> EdgeServer:
        if self.edge_server is not None:
            return self.edge_server
        assert self.topology is not None
        node_name = self.topology.assignment_of(session_id)
        if node_name is None:  # pragma: no cover - protocol guard
            raise FleetError(f"{session_id}: demand from unattached session")
        return self.topology.node(node_name).server

    def _demand_barrier(self) -> None:
        """Fold worker demands into the authoritative servers, answer
        with every tenant's external-stream sum."""
        merged: Dict[str, float] = {}
        for conn in self._conns:
            merged.update(conn.recv()["demands"])
        for session_id, demand in merged.items():
            self._server_of(session_id).set_demand(session_id, demand)
        externs = {
            session_id: self._server_of(session_id).extern_streams(session_id)
            for session_id in merged
        }
        for conn in self._conns:
            conn.send({"externs": externs})

    # ------------------------------------------------------------- stepping

    def _step(self, tick: int) -> None:
        with obs.span("fleet.tick", category="fleet", tick=tick) as span:
            commands: List[Dict[str, Any]] = [
                {"admit": [], "shed": [], "migrate": []} for _ in self._conns
            ]
            if self.topology is not None:
                self._maintain_topology()
            self._admit_arrivals(tick, commands)
            if self.topology is not None:
                self._shed_overloaded(commands)
                self._migrate_sessions(tick, commands)
            for conn, command in zip(self._conns, commands):
                conn.send({"op": "tick", "tick": tick, **command})
            if self._edge_mode:
                self._demand_barrier()
            table = self.table
            active_idx = table.active_indices()
            dims_union: set = set()
            n_guided = 0
            reported_retired: List[int] = []
            donations: List[Tuple[int, Optional[Dict[str, Any]]]] = []
            for start, conn in zip(self._starts, self._conns):
                events = conn.recv()
                n_guided += int(events["n_guided"])
                dims_union.update(events["dims"])
                reported_retired.extend(
                    start + local for local in events["retired"]
                )
                donations.extend(
                    (start + local, payload)
                    for local, payload in events["donations"]
                )
            self._batches += len(dims_union)
            self._proposals += n_guided
            # Every active row steps exactly once per tick; retirement is
            # the same budget comparison the workers ran, asserted below.
            table.n_results[active_idx] += 1
            retiring = table.exhausted_indices()
            if sorted(reported_retired) != [int(i) for i in retiring]:
                raise FleetError(
                    f"tick {tick}: worker retirements {sorted(reported_retired)} "
                    f"disagree with coordinator budget accounting "
                    f"{[int(i) for i in retiring]}"
                )
            for row, payload in sorted(donations, key=lambda item: item[0]):
                if payload is not None:
                    self.store.donate(**payload)
            for i in retiring:
                session_id = self.specs[int(i)].session_id
                if self.topology is not None:
                    if self.topology.assignment_of(session_id) is not None:
                        self.topology.detach(session_id)
                elif self.edge_server is not None:
                    self.edge_server.release(session_id)
                table.phase[i] = PHASE_DONE
                table.end_tick[i] = tick
            span.set(n_active=len(active_idx), n_guided=n_guided)
            if self.topology is not None:
                for node in self.topology.nodes:
                    obs.gauge("edge_server_load", node=node.name).set(
                        node.utilization
                    )
            self.clock.advance(self.config.tick_s)
        obs.counter("fleet_ticks").inc()
        obs.gauge("fleet_active_sessions").set(len(active_idx))

    def run(self) -> FleetResult:
        """Drive the sharded fleet until every session has drained."""
        table = self.table
        max_arrival_s = float(table.arrival_s.max())
        max_ticks = (
            int(math.ceil(max_arrival_s / self.config.tick_s))
            + table.max_budget
            + 4
        )
        tick = 0
        try:
            while not table.all_done():
                if tick > max_ticks:
                    stuck = [
                        self.specs[i].session_id
                        for i in np.nonzero(table.phase != PHASE_DONE)[0]
                    ]
                    raise FleetError(
                        f"fleet did not drain within {max_ticks} ticks; "
                        f"stuck sessions: {stuck}"
                    )
                self._step(tick)
                tick += 1
            for conn in self._conns:
                conn.send({"op": "collect"})
            for start, conn in zip(self._starts, self._conns):
                table.absorb(start, conn.recv())
        finally:
            self._shutdown()
        reports = table.build_reports(self._placement_outcomes)
        return FleetResult(
            reports=reports,
            aggregates=table.aggregates(),
            histogram=table.histogram(),
            store_stats=self.store.stats(),
            service_stats={
                "batches": self._batches,
                "proposals_served": self._proposals,
            },
            ticks=tick,
            tick_s=self.config.tick_s,
            topology_stats=self._topology_stats(),
        )

    def _topology_stats(self) -> Optional[Dict[str, Any]]:
        """Same roll-up (and suppression rule) as the in-process
        scheduler: ``None`` for legacy mode and singleton topologies."""
        if (
            self.topology is None
            or self.config.topology is None
            or self.config.topology.is_singleton
        ):
            return None
        placements = {node.name: 0 for node in self.topology.nodes}
        rejections = 0
        for outcome in self._placement_outcomes:
            if outcome is not None:
                if outcome.node is None:
                    rejections += 1
                else:
                    placements[outcome.node] += 1
        return {
            "n_nodes": len(self.topology.nodes),
            "placement_policy": self.config.placement,
            "placements": placements,
            "rejections": rejections,
            "sheds": self._shed_fallbacks,
            "outage_fallbacks": self._outage_fallbacks,
            "migrations": int(self.table.migrations.sum()),
            "final_utilization": {
                node.name: node.utilization for node in self.topology.nodes
            },
        }

    def _shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send({"op": "stop"})
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker guard
                proc.terminate()
                proc.join(timeout=5)

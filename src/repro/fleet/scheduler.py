"""The fleet scheduler: many MAR sessions against one edge optimizer.

The paper tunes one device; an edge server actually serves *fleets* —
many users, mixed device models, mixed scenes, arriving and leaving at
different times. :class:`FleetScheduler` simulates that: sessions are
admitted from their specs as the shared :class:`~repro.sim.clock.
SimClock` passes their arrival time, every active session runs one
control period per tick, and guided-phase proposals for all sessions come
out of one batched GP pass (:class:`~repro.fleet.batch.
SharedOptimizerService`) instead of per-session fits.

Determinism contract: ``spawn_rngs(seed, n)`` hands each session its own
decorrelated stream in spec order, sessions are admitted and stepped in
spec order, and nothing draws from a shared stream — so one seed
reproduces the whole fleet trace bit-for-bit regardless of how sessions
interleave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.backend.plan import EvalPlan
from repro.backend.solve import solve
from repro.core.algorithm import PendingEvaluation
from repro.core.controller import HBOConfig
from repro.edge.placement import migration_candidate, resolve_policy
from repro.edge.runtime import EdgeConfig
from repro.edge.server import EdgeServer
from repro.edge.topology import EdgeTopology, EdgeTopologyConfig
from repro.errors import FleetError
from repro.fleet.batch import SharedOptimizerService
from repro.fleet.session import FleetSession, SessionPhase, SessionSpec
from repro.fleet.store import SharedConfigStore
from repro.fleet.telemetry import (
    FleetAggregates,
    FleetSessionReport,
    convergence_histogram,
    fleet_aggregates,
    iterations_to_converge,
)
from repro.obs import runtime as obs
from repro.rng import SeedLike, spawn_rngs
from repro.sim.clock import SimClock
from repro.sim.scenarios import ServerOutage, network_drift_scale


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level knobs (per-session BO knobs live in ``hbo``)."""

    tick_s: float = 1.0  # one control period per session per tick
    warm_start: bool = True  # consult the shared store on admission
    hbo: HBOConfig = field(default_factory=HBOConfig)
    #: Edge offloading (off by default): when set, the scheduler stands
    #: up ONE shared :class:`~repro.edge.server.EdgeServer` and every
    #: session gets its own wireless link + tenancy on it, so sessions
    #: contend for edge compute across the fleet.
    edge: Optional[EdgeConfig] = None
    #: Multi-server edge topology (mutually exclusive with ``edge``):
    #: sessions are placed onto one of N nodes at arrival, admission can
    #: reject them onto their devices, saturated nodes shed tenants, and
    #: drift can migrate them — see :mod:`repro.edge.topology`.
    topology: Optional[EdgeTopologyConfig] = None
    #: Placement policy name for topology mode (see
    #: :data:`repro.edge.placement.PLACEMENT_POLICIES`).
    placement: str = "price-aware"
    #: Per-node scheduled bandwidth drift, node name → (time_s, scale)
    #: breakpoints (topology mode only).
    edge_drift: Optional[Mapping[str, Tuple[Tuple[float, float], ...]]] = None
    #: Scheduled server outages (topology mode only).
    edge_outages: Tuple[ServerOutage, ...] = ()

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise FleetError(f"tick_s must be > 0, got {self.tick_s}")
        if self.edge is not None and self.topology is not None:
            raise FleetError(
                "configure either the legacy singleton edge or a topology, "
                "not both"
            )
        resolve_policy(self.placement)
        if self.topology is None and (self.edge_drift or self.edge_outages):
            raise FleetError(
                "edge_drift/edge_outages require a topology; the legacy "
                "singleton edge has no named servers to schedule against"
            )
        if self.topology is not None:
            names = {node.name for node in self.topology.nodes}
            for name in self.edge_drift or {}:
                if name not in names:
                    raise FleetError(
                        f"edge_drift names unknown node {name!r} "
                        f"(topology has {sorted(names)})"
                    )
            for episode in self.edge_outages:
                if episode.node not in names:
                    raise FleetError(
                        f"edge_outages names unknown node {episode.node!r} "
                        f"(topology has {sorted(names)})"
                    )


@dataclass
class FleetResult:
    """Outcome of one fleet run (see :mod:`repro.fleet.telemetry`)."""

    reports: Tuple[FleetSessionReport, ...]
    aggregates: FleetAggregates
    histogram: Dict[int, int]
    store_stats: Dict[str, Any]
    service_stats: Dict[str, Any]
    ticks: int
    tick_s: float
    #: Placement/admission/migration roll-up for topology runs. ``None``
    #: for legacy runs AND for a singleton topology (the PR 5-equivalent
    #: shape), so single-server output stays byte-identical.
    topology_stats: Optional[Dict[str, Any]] = None

    def report_for(self, session_id: str) -> FleetSessionReport:
        for report in self.reports:
            if report.session_id == session_id:
                return report
        raise FleetError(f"no session {session_id!r} in this fleet run")


class FleetScheduler:
    """Admits, steps, and drains a fleet of MAR sessions."""

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        seed: SeedLike = None,
        config: Optional[FleetConfig] = None,
        store: Optional[SharedConfigStore] = None,
        service: Optional[SharedOptimizerService] = None,
    ) -> None:
        specs = tuple(specs)
        if not specs:
            raise FleetError("a fleet needs at least one session spec")
        ids = [spec.session_id for spec in specs]
        duplicates = sorted({s for s in ids if ids.count(s) > 1})
        if duplicates:
            raise FleetError(f"duplicate session ids: {duplicates}")
        self.specs = specs
        self.config = config if config is not None else FleetConfig()
        self.store = store if store is not None else SharedConfigStore()
        self.service = service if service is not None else SharedOptimizerService()
        self.clock = SimClock()
        #: The fleet's shared edge server (None when edge is off): all
        #: sessions register as tenants of this one instance, so one
        #: session's offloaded demand slows every other's.
        self.edge_server: Optional[EdgeServer] = (
            EdgeServer(self.config.edge.server)
            if self.config.edge is not None
            else None
        )
        #: The live multi-server topology all sessions share in topology
        #: mode (None otherwise).
        self.topology: Optional[EdgeTopology] = (
            EdgeTopology(self.config.topology)
            if self.config.topology is not None
            else None
        )
        rngs = spawn_rngs(seed, len(specs))
        self.sessions: List[FleetSession] = [
            FleetSession(
                spec,
                self.config.hbo,
                rng,
                edge=self.config.edge,
                edge_server=self.edge_server,
                topology=self.topology,
                placement=self.config.placement,
            )
            for spec, rng in zip(specs, rngs)
        ]
        self._session_of: Dict[str, FleetSession] = {
            s.spec.session_id: s for s in self.sessions
        }
        self._shed_fallbacks = 0
        self._outage_fallbacks = 0

    # ------------------------------------------------------------- stepping

    def _admit_arrivals(self, tick: int) -> None:
        now_s = self.clock.now_s
        for session in self.sessions:
            if (
                session.phase is SessionPhase.WAITING
                and session.spec.arrival_s <= now_s
            ):
                session.admit(
                    tick, store=self.store, warm_start=self.config.warm_start
                )

    def step(self, tick: int) -> None:
        """One fleet tick: admit, propose (batched), evaluate, retire.

        Evaluation is batched end to end: guided proposals come out of
        one :class:`SharedOptimizerService` GP pass, every stepped
        session's configuration is applied (``begin``), all their steady
        states are computed in **one** :func:`repro.backend.solve` over a
        multi-row :class:`~repro.backend.plan.EvalPlan` (heterogeneous
        devices and tasksets ride in the same batch), and each session
        then finishes its control period from its row. Sessions own
        decorrelated RNG streams and the backend's rows are independent,
        so the result is bit-identical to stepping sessions one at a
        time.
        """
        with obs.span("fleet.tick", category="fleet", tick=tick) as span:
            if self.topology is not None:
                self._maintain_topology()
            self._admit_arrivals(tick)
            if self.topology is not None:
                self._shed_overloaded()
                self._migrate_sessions(tick)
            active = [s for s in self.sessions if s.active]
            guided = [s for s in active if s.needs_guided_proposal]
            initial = [s for s in active if not s.needs_guided_proposal]
            stepped: List[Tuple[FleetSession, PendingEvaluation]] = []
            if guided:
                # Sessions that fell back to the device run a 3-simplex
                # next to their 4-simplex peers; the batched GP pass can
                # only mix equal dimensions, so group by space dim (one
                # group — the identical legacy call — when homogeneous).
                by_dim: Dict[int, List[FleetSession]] = {}
                for session in guided:
                    assert session.optimizer is not None
                    by_dim.setdefault(session.optimizer.space.dim, []).append(
                        session
                    )
                for dim in sorted(by_dim):
                    group = by_dim[dim]
                    proposals = self.service.propose(
                        [s.optimizer for s in group], [s.rng for s in group]
                    )
                    for session, z in zip(group, proposals):
                        stepped.append((session, session.begin_guided(z)))
            for session in initial:
                stepped.append((session, session.begin_initial()))
            for (session, pending), steady in zip(
                stepped, self._batched_steady(stepped)
            ):
                session.finish_step(pending, steady_latencies=steady)
            for session in active:
                if session.budget_exhausted:
                    session.finish(tick, store=self.store)
            span.set(n_active=len(active), n_guided=len(guided))
            if self.topology is not None:
                for node in self.topology.nodes:
                    obs.gauge("edge_server_load", node=node.name).set(
                        node.utilization
                    )
            # Advance inside the span so a tick renders with its real
            # sim-time width (tick_s) instead of as a zero-width slice.
            self.clock.advance(self.config.tick_s)
        obs.counter("fleet_ticks").inc()
        obs.gauge("fleet_active_sessions").set(len(active))

    # ----------------------------------------------------- topology upkeep

    def _maintain_topology(self) -> None:
        """Apply this tick's scheduled cell drift and outage windows.

        Runs before admissions so arrivals are placed against the state
        they would actually experience. A node *entering* an outage sheds
        every tenant onto its device (graceful fallback); a node leaving
        one simply starts admitting again.
        """
        assert self.topology is not None
        now_s = self.clock.now_s
        drift = self.config.edge_drift
        for node in self.topology.nodes:
            if drift and node.name in drift:
                node.set_bandwidth_scale(
                    network_drift_scale(now_s, tuple(drift[node.name]))
                )
            down = any(
                episode.node == node.name and episode.covers(now_s)
                for episode in self.config.edge_outages
            )
            if down != node.in_outage:
                node.set_outage(down)
                if down:
                    for session_id in node.server.tenant_ids:
                        self.topology.detach(session_id)
                        self._session_of[session_id].fallback_to_device(
                            "outage"
                        )
                        self._outage_fallbacks += 1

    def _shed_overloaded(self) -> None:
        """Push the newest tenants of any saturated node back onto their
        devices until its utilization re-enters the admission band."""
        assert self.topology is not None
        for node in self.topology.nodes:
            for session_id in self.topology.shed_candidates(node.name):
                self.topology.detach(session_id)
                self._session_of[session_id].fallback_to_device("shed")
                self._shed_fallbacks += 1

    def _migrate_sessions(self, tick: int) -> None:
        """Move sessions whose node drifted expensive, hysteresis-bounded.

        A session migrates only after the configured dwell on its current
        node and only to a candidate pricing the offload at least the
        hysteresis fraction cheaper — both read from the topology's
        :class:`~repro.edge.topology.MigrationConfig`.
        """
        assert self.topology is not None
        migration = self.topology.config.migration
        if not migration.enabled:
            return
        for session in self.sessions:
            if not session.active or not session.edge_node:
                continue
            if (
                session.attached_tick is None
                or tick - session.attached_tick < migration.dwell_ticks
            ):
                continue
            profile = session._edge_profile
            runtime = session.system.device.edge if session.system else None
            if profile is None or runtime is None:
                continue
            demand = runtime.server.demand_of(session.spec.session_id)
            target = migration_candidate(
                self.topology,
                session.spec.session_id,
                profile,
                demand if demand > 0 else session._est_streams,
            )
            if target is not None:
                session.migrate_edge(target, tick)

    def _batched_steady(
        self, stepped: Sequence[Tuple[FleetSession, PendingEvaluation]]
    ) -> List[Optional[Dict[str, float]]]:
        """Steady-state latencies for all stepped sessions, one solve.

        Sessions with a thermal model get ``None`` — their steady state
        drifts within the period, so the device resamples it locally.
        """
        rows = []
        row_of: Dict[int, int] = {}
        for i, (session, _) in enumerate(stepped):
            assert session.system is not None
            device = session.system.device
            if device.thermal is None:
                row_of[i] = len(rows)
                rows.append(
                    (
                        device.soc,
                        device.placements(),
                        device.load,
                        device.edge_share(),
                    )
                )
        if not rows:
            return [None] * len(stepped)
        plan = EvalPlan.from_placement_rows(rows)
        result = solve(plan, exact=True)
        return [
            plan.latency_map(result.latency_ms, row_of[i]) if i in row_of else None
            for i in range(len(stepped))
        ]

    def run(self) -> FleetResult:
        """Drive the fleet until every session has drained."""
        max_arrival_s = max(spec.arrival_s for spec in self.specs)
        max_budget = max(s.budget for s in self.sessions)
        max_ticks = (
            int(math.ceil(max_arrival_s / self.config.tick_s)) + max_budget + 4
        )
        tick = 0
        while not all(s.done for s in self.sessions):
            if tick > max_ticks:
                stuck = [s.spec.session_id for s in self.sessions if not s.done]
                raise FleetError(
                    f"fleet did not drain within {max_ticks} ticks; "
                    f"stuck sessions: {stuck}"
                )
            self.step(tick)
            tick += 1
        # Convergence is time-to-target against the best cost anyone in
        # the same (device, scenario, taskset) cohort ever measured, so
        # warm and cold sessions are judged against the same bar.
        cohort_best: Dict[Tuple[str, str, str], float] = {}
        for session in self.sessions:
            key = self._cohort_key(session)
            cohort_best[key] = min(
                cohort_best.get(key, float("inf")), session.best_cost()
            )
        reports = tuple(
            self._report(s, cohort_best[self._cohort_key(s)])
            for s in self.sessions
        )
        return FleetResult(
            reports=reports,
            aggregates=fleet_aggregates(reports),
            histogram=convergence_histogram(reports),
            store_stats=self.store.stats(),
            service_stats={
                "batches": self.service.batches,
                "proposals_served": self.service.proposals_served,
            },
            ticks=tick,
            tick_s=self.config.tick_s,
            topology_stats=self._topology_stats(),
        )

    def _topology_stats(self) -> Optional[Dict[str, Any]]:
        """Roll up placement/admission/migration outcomes for reporting.

        ``None`` in legacy mode and for a singleton topology — the
        PR 5-equivalent shape must render byte-identically to PR 5.
        """
        if (
            self.topology is None
            or self.config.topology is None
            or self.config.topology.is_singleton
        ):
            return None
        placements = {node.name: 0 for node in self.topology.nodes}
        rejections = 0
        migrations = 0
        for session in self.sessions:
            outcome = session.placement_outcome
            if outcome is not None:
                if outcome.node is None:
                    rejections += 1
                else:
                    placements[outcome.node] += 1
            migrations += session.migrations
        return {
            "n_nodes": len(self.topology.nodes),
            "placement_policy": self.config.placement,
            "placements": placements,
            "rejections": rejections,
            "sheds": self._shed_fallbacks,
            "outage_fallbacks": self._outage_fallbacks,
            "migrations": migrations,
            "final_utilization": {
                node.name: node.utilization for node in self.topology.nodes
            },
        }

    # ------------------------------------------------------------ reporting

    @staticmethod
    def _cohort_key(session: FleetSession) -> Tuple[str, str, str]:
        spec = session.spec
        return (spec.device, spec.scenario, spec.taskset)

    def _report(
        self, session: FleetSession, cohort_best_cost: float
    ) -> FleetSessionReport:
        if not session.done or session.start_tick is None or session.end_tick is None:
            raise FleetError(
                f"{session.spec.session_id}: cannot report an unfinished session"
            )
        costs = tuple(session.costs())
        assert session.optimizer is not None  # done implies admitted
        return FleetSessionReport(
            session_id=session.spec.session_id,
            device=session.spec.device,
            scenario=session.spec.scenario,
            taskset=session.spec.taskset,
            arrival_s=session.spec.arrival_s,
            start_tick=session.start_tick,
            end_tick=session.end_tick,
            warm_started=session.warm_started,
            n_warm=session.optimizer.n_warm,
            warm_source=(
                session.warm_entry.source_session if session.warm_entry else ""
            ),
            costs=costs,
            latencies_ms=tuple(
                r.measurement.mean_latency_ms for r in session.results
            ),
            qualities=tuple(r.measurement.quality for r in session.results),
            best_cost=min(costs),
            cohort_best_cost=cohort_best_cost,
            converged_at=iterations_to_converge(costs, target=cohort_best_cost),
            epsilons=tuple(r.measurement.epsilon for r in session.results),
            placed_node=(
                session.placement_outcome.node or ""
                if session.placement_outcome is not None
                else ""
            ),
            edge_node=session.edge_node,
            fallback_reason=session.fallback_reason,
            migrations=session.migrations,
        )


def run_fleet(
    specs: Sequence[SessionSpec],
    seed: SeedLike = None,
    config: Optional[FleetConfig] = None,
    store: Optional[SharedConfigStore] = None,
) -> FleetResult:
    """Build a scheduler, run the fleet, return the result."""
    return FleetScheduler(specs, seed=seed, config=config, store=store).run()

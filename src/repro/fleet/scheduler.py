"""The fleet scheduler: many MAR sessions against one edge optimizer.

The paper tunes one device; an edge server actually serves *fleets* —
many users, mixed device models, mixed scenes, arriving and leaving at
different times. :class:`FleetScheduler` simulates that: sessions are
admitted from their specs as the shared :class:`~repro.sim.clock.
SimClock` passes their arrival time, every active session runs one
control period per tick, and guided-phase proposals for all sessions come
out of one batched GP pass (:class:`~repro.fleet.batch.
SharedOptimizerService`) instead of per-session fits.

Determinism contract: ``spawn_rngs(seed, n)`` hands each session its own
decorrelated stream in spec order, sessions are admitted and stepped in
spec order, and nothing draws from a shared stream — so one seed
reproduces the whole fleet trace bit-for-bit regardless of how sessions
interleave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backend.solve import solve
from repro.core.algorithm import PendingEvaluation
from repro.core.controller import HBOConfig
from repro.edge.placement import migration_candidate, resolve_policy
from repro.edge.runtime import EdgeConfig
from repro.edge.server import EdgeServer
from repro.edge.topology import EdgeTopology, EdgeTopologyConfig
from repro.errors import FleetError
from repro.fleet.batch import SharedOptimizerService
from repro.fleet.session import FleetSession, SessionSpec
from repro.fleet.store import SharedConfigStore
from repro.fleet.table import PHASE_DONE, SessionTable
from repro.fleet.telemetry import FleetAggregates, FleetSessionReport
from repro.obs import runtime as obs
from repro.rng import SeedLike, spawn_rngs
from repro.device.thermal import ThermalSpec
from repro.sim.clock import SimClock
from repro.sim.events import SceneEvent
from repro.sim.scenarios import ServerOutage, apply_network_drift, network_drift_scale


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level knobs (per-session BO knobs live in ``hbo``)."""

    tick_s: float = 1.0  # one control period per session per tick
    warm_start: bool = True  # consult the shared store on admission
    hbo: HBOConfig = field(default_factory=HBOConfig)
    #: Edge offloading (off by default): when set, the scheduler stands
    #: up ONE shared :class:`~repro.edge.server.EdgeServer` and every
    #: session gets its own wireless link + tenancy on it, so sessions
    #: contend for edge compute across the fleet.
    edge: Optional[EdgeConfig] = None
    #: Multi-server edge topology (mutually exclusive with ``edge``):
    #: sessions are placed onto one of N nodes at arrival, admission can
    #: reject them onto their devices, saturated nodes shed tenants, and
    #: drift can migrate them — see :mod:`repro.edge.topology`.
    topology: Optional[EdgeTopologyConfig] = None
    #: Placement policy name for topology mode (see
    #: :data:`repro.edge.placement.PLACEMENT_POLICIES`).
    placement: str = "price-aware"
    #: Per-node scheduled bandwidth drift, node name → (time_s, scale)
    #: breakpoints (topology mode only).
    edge_drift: Optional[Mapping[str, Tuple[Tuple[float, float], ...]]] = None
    #: Scheduled server outages (topology mode only).
    edge_outages: Tuple[ServerOutage, ...] = ()
    #: Shard-parallel cohorts: split the spec list into this many
    #: contiguous blocks, each stepped in its own worker process (see
    #: :mod:`repro.fleet.shard`). Any value reproduces the ``shards=1``
    #: output byte-for-byte at the same seed.
    shards: int = 1
    #: Thermal-throttling gate (off by default): when set, sessions whose
    #: spec carries ``thermal=True`` get a fresh
    #: :class:`~repro.device.thermal.ThermalModel` built from these
    #: parameters on admission. ``None`` keeps every device athermal
    #: regardless of spec flags — the legacy byte-identical path.
    thermal: Optional[ThermalSpec] = None
    #: Per-session scene-event scripts, session id → time-sorted events
    #: (absolute fleet sim time). The scheduler fires each session's due
    #: events once, right before that tick's proposals, so the §IV-E
    #: distance→culling→latency mechanism runs inside fleet runs. Built
    #: by the scenario engine's mobility axis; ``None`` (default) is the
    #: legacy static-scene path. Requires ``shards == 1``.
    session_events: Optional[Mapping[str, Tuple[SceneEvent, ...]]] = None
    #: Per-session wireless-link bandwidth schedules, session id →
    #: (time_s, scale) breakpoints — the mobility axis's link half (a
    #: user walking away from their serving cell). Applied to the
    #: session's own link each tick; scales must respect the link's
    #: ``[min_scale, max_scale]`` band. Requires an edge (legacy or
    #: topology) and ``shards == 1``.
    link_drift: Optional[Mapping[str, Tuple[Tuple[float, float], ...]]] = None

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise FleetError(f"tick_s must be > 0, got {self.tick_s}")
        if self.shards < 1:
            raise FleetError(f"shards must be >= 1, got {self.shards}")
        if self.edge is not None and self.topology is not None:
            raise FleetError(
                "configure either the legacy singleton edge or a topology, "
                "not both"
            )
        resolve_policy(self.placement)
        if self.topology is None and (self.edge_drift or self.edge_outages):
            raise FleetError(
                "edge_drift/edge_outages require a topology; the legacy "
                "singleton edge has no named servers to schedule against"
            )
        if self.topology is not None:
            names = {node.name for node in self.topology.nodes}
            for name in self.edge_drift or {}:
                if name not in names:
                    raise FleetError(
                        f"edge_drift names unknown node {name!r} "
                        f"(topology has {sorted(names)})"
                    )
            for episode in self.edge_outages:
                if episode.node not in names:
                    raise FleetError(
                        f"edge_outages names unknown node {episode.node!r} "
                        f"(topology has {sorted(names)})"
                    )
        if self.shards > 1 and (self.session_events or self.link_drift):
            raise FleetError(
                "session_events/link_drift run in the coordinator's tick "
                "loop and are not shard-aware; use shards=1"
            )
        if self.link_drift and self.edge is None and self.topology is None:
            raise FleetError(
                "link_drift needs an edge (legacy or topology) — device-only "
                "sessions have no wireless link to drift"
            )
        for sid, script in (self.session_events or {}).items():
            times = [event.time_s for event in script]
            if times != sorted(times):
                raise FleetError(
                    f"session_events[{sid!r}] must be time-sorted"
                )


def propose_and_begin(
    service: SharedOptimizerService,
    table: SessionTable,
    sessions: Sequence[FleetSession],
) -> Tuple[List[Tuple[int, PendingEvaluation]], List[int], int]:
    """Batched ask + apply for every active table row, in row order.

    Guided rows are grouped by the ``space_dim`` column (ascending) and
    each group takes one :class:`SharedOptimizerService` GP pass;
    initial-phase rows ask their own samplers. Returns the begun
    ``(row, pending)`` pairs, the dims proposed, and the guided count —
    shared verbatim by the in-process scheduler and the shard workers so
    both paths step bit-identically.
    """
    active_idx = table.active_indices()
    guided_mask = table.guided_mask()
    n_guided = int(np.count_nonzero(guided_mask))
    stepped: List[Tuple[int, PendingEvaluation]] = []
    dims_used: List[int] = []
    if n_guided:
        # Sessions that fell back to the device run a 3-simplex next to
        # their 4-simplex peers; the batched GP pass can only mix equal
        # dimensions, so group by space dim (one group — the identical
        # legacy call — when homogeneous).
        guided_idx = np.nonzero(guided_mask)[0]
        dims = table.space_dim[guided_idx]
        for dim in np.unique(dims):
            group = guided_idx[dims == dim]
            dims_used.append(int(dim))
            proposals = service.propose(
                [sessions[i].optimizer for i in group],
                [sessions[i].rng for i in group],
            )
            for i, z in zip(group, proposals):
                stepped.append((int(i), sessions[i].begin_guided(z)))
    for i in active_idx:
        if not guided_mask[i]:
            stepped.append((int(i), sessions[i].begin_initial()))
    return stepped, dims_used, n_guided


def batched_steady(
    table: SessionTable,
    sessions: Sequence[FleetSession],
    stepped: Sequence[int],
) -> List[Optional[Dict[str, float]]]:
    """Steady-state latencies for all stepped table rows, one solve.

    The per-tick pricing columns are refreshed for each stepped row and
    the multi-row :class:`~repro.backend.plan.EvalPlan` is sliced
    straight out of the table (no per-session ``TaskPlacement``
    dataclass hop). Sessions with a thermal model get ``None`` — their
    steady state drifts within the period, so the device resamples it
    locally.
    """
    rows: List[int] = []
    for i in stepped:
        if table.thermal[i]:
            continue
        session = sessions[i]
        assert session.system is not None
        table.refresh_plan_row(i, session.system.device)
        rows.append(i)
    if not rows:
        return [None] * len(stepped)
    plan = table.build_plan(rows)
    result = solve(plan, exact=True)
    row_of = {i: r for r, i in enumerate(rows)}
    return [
        plan.latency_map(result.latency_ms, row_of[i]) if i in row_of else None
        for i in stepped
    ]


@dataclass
class FleetResult:
    """Outcome of one fleet run (see :mod:`repro.fleet.telemetry`)."""

    reports: Tuple[FleetSessionReport, ...]
    aggregates: FleetAggregates
    histogram: Dict[int, int]
    store_stats: Dict[str, Any]
    service_stats: Dict[str, Any]
    ticks: int
    tick_s: float
    #: Placement/admission/migration roll-up for topology runs. ``None``
    #: for legacy runs AND for a singleton topology (the PR 5-equivalent
    #: shape), so single-server output stays byte-identical.
    topology_stats: Optional[Dict[str, Any]] = None

    def report_for(self, session_id: str) -> FleetSessionReport:
        for report in self.reports:
            if report.session_id == session_id:
                return report
        raise FleetError(f"no session {session_id!r} in this fleet run")


class FleetScheduler:
    """Admits, steps, and drains a fleet of MAR sessions."""

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        seed: SeedLike = None,
        config: Optional[FleetConfig] = None,
        store: Optional[SharedConfigStore] = None,
        service: Optional[SharedOptimizerService] = None,
    ) -> None:
        specs = tuple(specs)
        if not specs:
            raise FleetError("a fleet needs at least one session spec")
        ids = [spec.session_id for spec in specs]
        duplicates = sorted({s for s in ids if ids.count(s) > 1})
        if duplicates:
            raise FleetError(f"duplicate session ids: {duplicates}")
        self.specs = specs
        self.config = config if config is not None else FleetConfig()
        self.store = store if store is not None else SharedConfigStore()
        self.service = service if service is not None else SharedOptimizerService()
        self.clock = SimClock()
        #: The fleet's shared edge server (None when edge is off): all
        #: sessions register as tenants of this one instance, so one
        #: session's offloaded demand slows every other's.
        self.edge_server: Optional[EdgeServer] = (
            EdgeServer(self.config.edge.server)
            if self.config.edge is not None
            else None
        )
        #: The live multi-server topology all sessions share in topology
        #: mode (None otherwise).
        self.topology: Optional[EdgeTopology] = (
            EdgeTopology(self.config.topology)
            if self.config.topology is not None
            else None
        )
        rngs = spawn_rngs(seed, len(specs))
        #: Columnar source of truth for lifecycle/trajectory/pricing state;
        #: every FleetSession below is a row view into it.
        self.table = SessionTable(specs, self.config.hbo)
        self.sessions: List[FleetSession] = [
            FleetSession(
                spec,
                self.config.hbo,
                rng,
                edge=self.config.edge,
                edge_server=self.edge_server,
                topology=self.topology,
                placement=self.config.placement,
                table=self.table,
                index=i,
                thermal=self.config.thermal,
            )
            for i, (spec, rng) in enumerate(zip(specs, rngs))
        ]
        self._session_of: Dict[str, FleetSession] = {
            s.spec.session_id: s for s in self.sessions
        }
        known = set(self._session_of)
        for field_name in ("session_events", "link_drift"):
            mapping = getattr(self.config, field_name) or {}
            unknown = sorted(set(mapping) - known)
            if unknown:
                raise FleetError(
                    f"{field_name} names unknown session ids: {unknown}"
                )
        #: Per-session cursor into its event script (events fire once).
        self._event_cursors: Dict[str, int] = {}
        self._shed_fallbacks = 0
        self._outage_fallbacks = 0

    # ------------------------------------------------------------- stepping

    def _admit_arrivals(self, tick: int) -> None:
        # Due-mask selection over the table's arrival/phase columns; the
        # due rows come back in spec order, matching the legacy scan.
        for i in self.table.due_indices(self.clock.now_s):
            self.sessions[i].admit(
                tick, store=self.store, warm_start=self.config.warm_start
            )

    def step(self, tick: int) -> None:
        """One fleet tick: admit, propose (batched), evaluate, retire.

        Evaluation is batched end to end: guided proposals come out of
        one :class:`SharedOptimizerService` GP pass, every stepped
        session's configuration is applied (``begin``), all their steady
        states are computed in **one** :func:`repro.backend.solve` over a
        multi-row :class:`~repro.backend.plan.EvalPlan` (heterogeneous
        devices and tasksets ride in the same batch), and each session
        then finishes its control period from its row. Sessions own
        decorrelated RNG streams and the backend's rows are independent,
        so the result is bit-identical to stepping sessions one at a
        time.
        """
        with obs.span("fleet.tick", category="fleet", tick=tick) as span:
            if self.topology is not None:
                self._maintain_topology()
            self._admit_arrivals(tick)
            if self.topology is not None:
                self._shed_overloaded()
                self._migrate_sessions(tick)
            if self.config.session_events or self.config.link_drift:
                self._apply_scenario_hooks()
            # Columnar selection: active / guided / initial come from
            # phase + observation-count masks, not attribute scans.
            # Every active row steps, so len(stepped) is the active count.
            table = self.table
            stepped, _, n_guided = propose_and_begin(
                self.service, table, self.sessions
            )
            for (i, pending), steady in zip(
                stepped,
                batched_steady(table, self.sessions, [i for i, _ in stepped]),
            ):
                self.sessions[i].finish_step(pending, steady_latencies=steady)
            # Batched phase transition: the budget column names this
            # tick's retirements; per-session finish() does the heavy
            # lifting (donation, tenancy release) in spec order.
            for i in table.exhausted_indices():
                self.sessions[i].finish(tick, store=self.store)
            span.set(n_active=len(stepped), n_guided=n_guided)
            if self.topology is not None:
                for node in self.topology.nodes:
                    obs.gauge("edge_server_load", node=node.name).set(
                        node.utilization
                    )
            # Advance inside the span so a tick renders with its real
            # sim-time width (tick_s) instead of as a zero-width slice.
            self.clock.advance(self.config.tick_s)
        obs.counter("fleet_ticks").inc()
        obs.gauge("fleet_active_sessions").set(len(stepped))

    # ----------------------------------------------------- scenario hooks

    def _apply_scenario_hooks(self) -> None:
        """Fire due scene events and scheduled per-session link drift.

        Runs after admissions/shed/migrate and before the batched
        proposals, so a scene or link change takes effect inside the same
        tick's evaluation. Sessions are visited in spec order and each
        event fires exactly once (a per-session cursor); events due while
        a session was still waiting all fire on its first active tick.
        Per-session drift is applied after topology-level cell drift
        (:meth:`_maintain_topology`), so a mobility schedule wins over
        its node's backhaul schedule for that session's own link.
        """
        now_s = self.clock.now_s
        events = self.config.session_events or {}
        drift = self.config.link_drift or {}
        for session in self.sessions:
            if not session.active or session.system is None:
                continue
            sid = session.spec.session_id
            script = events.get(sid)
            if script:
                cursor = self._event_cursors.get(sid, 0)
                while cursor < len(script) and script[cursor].time_s <= now_s:
                    script[cursor].apply(session.system.scene)
                    obs.counter("fleet_scene_events").inc()
                    cursor += 1
                self._event_cursors[sid] = cursor
            schedule = drift.get(sid)
            runtime = session.system.device.edge
            if schedule and runtime is not None:
                apply_network_drift(runtime.link, now_s, tuple(schedule))

    # ----------------------------------------------------- topology upkeep

    def _maintain_topology(self) -> None:
        """Apply this tick's scheduled cell drift and outage windows.

        Runs before admissions so arrivals are placed against the state
        they would actually experience. A node *entering* an outage sheds
        every tenant onto its device (graceful fallback); a node leaving
        one simply starts admitting again.
        """
        assert self.topology is not None
        now_s = self.clock.now_s
        drift = self.config.edge_drift
        for node in self.topology.nodes:
            if drift and node.name in drift:
                node.set_bandwidth_scale(
                    network_drift_scale(now_s, tuple(drift[node.name]))
                )
            down = any(
                episode.node == node.name and episode.covers(now_s)
                for episode in self.config.edge_outages
            )
            if down != node.in_outage:
                node.set_outage(down)
                if down:
                    for session_id in node.server.tenant_ids:
                        self.topology.detach(session_id)
                        self._session_of[session_id].fallback_to_device(
                            "outage"
                        )
                        self._outage_fallbacks += 1

    def _shed_overloaded(self) -> None:
        """Push the newest tenants of any saturated node back onto their
        devices until its utilization re-enters the admission band."""
        assert self.topology is not None
        for node in self.topology.nodes:
            for session_id in self.topology.shed_candidates(node.name):
                self.topology.detach(session_id)
                self._session_of[session_id].fallback_to_device("shed")
                self._shed_fallbacks += 1

    def _migrate_sessions(self, tick: int) -> None:
        """Move sessions whose node drifted expensive, hysteresis-bounded.

        A session migrates only after the configured dwell on its current
        node and only to a candidate pricing the offload at least the
        hysteresis fraction cheaper — both read from the topology's
        :class:`~repro.edge.topology.MigrationConfig`.
        """
        assert self.topology is not None
        migration = self.topology.config.migration
        if not migration.enabled:
            return
        for session in self.sessions:
            if not session.active or not session.edge_node:
                continue
            if (
                session.attached_tick is None
                or tick - session.attached_tick < migration.dwell_ticks
            ):
                continue
            profile = session._edge_profile
            runtime = session.system.device.edge if session.system else None
            if profile is None or runtime is None:
                continue
            demand = runtime.server.demand_of(session.spec.session_id)
            target = migration_candidate(
                self.topology,
                session.spec.session_id,
                profile,
                demand if demand > 0 else session._est_streams,
            )
            if target is not None:
                session.migrate_edge(target, tick)

    def run(self) -> FleetResult:
        """Drive the fleet until every session has drained."""
        table = self.table
        max_arrival_s = float(table.arrival_s.max())
        max_ticks = (
            int(math.ceil(max_arrival_s / self.config.tick_s))
            + table.max_budget
            + 4
        )
        tick = 0
        while not table.all_done():
            if tick > max_ticks:
                stuck = [
                    self.specs[i].session_id
                    for i in np.nonzero(table.phase != PHASE_DONE)[0]
                ]
                raise FleetError(
                    f"fleet did not drain within {max_ticks} ticks; "
                    f"stuck sessions: {stuck}"
                )
            self.step(tick)
            tick += 1
        # Reports, aggregates, and the convergence histogram all come
        # from trajectory columns; the cohort convergence target is the
        # table's vectorized per-cohort best (value-identical to the
        # per-session reduction, asserted in the test suite).
        reports = table.build_reports(
            [s.placement_outcome for s in self.sessions]
        )
        return FleetResult(
            reports=reports,
            aggregates=table.aggregates(),
            histogram=table.histogram(),
            store_stats=self.store.stats(),
            service_stats={
                "batches": self.service.batches,
                "proposals_served": self.service.proposals_served,
            },
            ticks=tick,
            tick_s=self.config.tick_s,
            topology_stats=self._topology_stats(),
        )

    def _topology_stats(self) -> Optional[Dict[str, Any]]:
        """Roll up placement/admission/migration outcomes for reporting.

        ``None`` in legacy mode and for a singleton topology — the
        PR 5-equivalent shape must render byte-identically to PR 5.
        """
        if (
            self.topology is None
            or self.config.topology is None
            or self.config.topology.is_singleton
        ):
            return None
        placements = {node.name: 0 for node in self.topology.nodes}
        rejections = 0
        migrations = 0
        for session in self.sessions:
            outcome = session.placement_outcome
            if outcome is not None:
                if outcome.node is None:
                    rejections += 1
                else:
                    placements[outcome.node] += 1
            migrations += session.migrations
        return {
            "n_nodes": len(self.topology.nodes),
            "placement_policy": self.config.placement,
            "placements": placements,
            "rejections": rejections,
            "sheds": self._shed_fallbacks,
            "outage_fallbacks": self._outage_fallbacks,
            "migrations": migrations,
            "final_utilization": {
                node.name: node.utilization for node in self.topology.nodes
            },
        }

def run_fleet(
    specs: Sequence[SessionSpec],
    seed: SeedLike = None,
    config: Optional[FleetConfig] = None,
    store: Optional[SharedConfigStore] = None,
) -> FleetResult:
    """Build a scheduler, run the fleet, return the result.

    ``config.shards > 1`` routes through the shard-parallel coordinator
    (:mod:`repro.fleet.shard`); any shard count reproduces the
    ``shards=1`` result byte-for-byte at the same seed.
    """
    cfg = config if config is not None else FleetConfig()
    if cfg.shards > 1:
        from repro.fleet.shard import ShardedFleetScheduler

        return ShardedFleetScheduler(
            specs, seed=seed, config=cfg, store=store
        ).run()
    return FleetScheduler(specs, seed=seed, config=cfg, store=store).run()

"""Fleet telemetry: per-session trajectories and fleet-wide aggregates.

The warm-vs-cold experiment needs two read-outs per session — the cost
trajectory (did BO find a good configuration?) and the number of control
periods it took to get close to its eventual best (how fast?) — plus
fleet-level percentiles of the latencies and qualities users actually
experienced while the optimizers explored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FleetError

#: Absolute floor of the convergence band: HBO cost measurements carry
#: noise of roughly this magnitude (per-period means of noisy latencies
#: through the w-weighted cost), so a tighter band would measure lucky
#: noise draws instead of convergence.
CONVERGENCE_FLOOR = 0.2


def iterations_to_converge(
    costs: Sequence[float],
    rel_tol: float = 0.05,
    floor: float = CONVERGENCE_FLOOR,
    target: Optional[float] = None,
) -> int:
    """Control periods until the measured cost first came within
    ``rel_tol`` of ``target`` (1-based; the time-to-target metric).

    ``target`` defaults to the trajectory's own best; the fleet passes the
    best cost any session of the same cohort ever measured, so warm and
    cold sessions chase the *same* bar. The band is ``target +
    max(rel_tol * |target|, floor)``; a trajectory that never enters it
    is censored at its own length.
    """
    if not costs:
        raise FleetError("cannot compute convergence of an empty trajectory")
    if rel_tol < 0:
        raise FleetError(f"rel_tol must be >= 0, got {rel_tol}")
    bar = min(costs) if target is None else float(target)
    threshold = bar + max(rel_tol * abs(bar), floor)
    for i, cost in enumerate(costs):
        if cost <= threshold:
            return i + 1
    return len(costs)


@dataclass(frozen=True)
class FleetSessionReport:
    """Everything the fleet remembers about one finished session."""

    session_id: str
    device: str
    scenario: str
    taskset: str
    arrival_s: float
    start_tick: int
    end_tick: int
    warm_started: bool
    n_warm: int
    warm_source: str  # donor session id, "" when cold
    costs: Tuple[float, ...]
    latencies_ms: Tuple[float, ...]  # mean frame latency per control period
    qualities: Tuple[float, ...]
    best_cost: float
    cohort_best_cost: float  # best cost any same-cohort session measured
    converged_at: int  # time-to-cohort-target, see iterations_to_converge
    #: Eq. 4 normalized latency per control period (the bench's p95 ε
    #: input); empty only for reports predating the epsilon trajectory.
    epsilons: Tuple[float, ...] = ()
    #: Topology node chosen at admission ("" = rejected or no topology).
    placed_node: str = ""
    #: Node serving the session through its final period ("" = device).
    edge_node: str = ""
    #: Why the session fell back to device-only mid-run ("" if never):
    #: "shed" (saturated server) or "outage" (server went down).
    fallback_reason: str = ""
    #: Number of mid-run server migrations.
    migrations: int = 0

    def __post_init__(self) -> None:
        if not self.costs:
            raise FleetError(f"{self.session_id}: report has no evaluations")
        if len(self.latencies_ms) != len(self.costs) or len(self.qualities) != len(
            self.costs
        ):
            raise FleetError(
                f"{self.session_id}: trajectory lengths disagree "
                f"({len(self.costs)} costs, {len(self.latencies_ms)} latencies, "
                f"{len(self.qualities)} qualities)"
            )
        if self.epsilons and len(self.epsilons) != len(self.costs):
            raise FleetError(
                f"{self.session_id}: epsilon trajectory length disagrees "
                f"({len(self.costs)} costs, {len(self.epsilons)} epsilons)"
            )


@dataclass(frozen=True)
class FleetAggregates:
    """Fleet-wide summary over every control period of every session."""

    n_sessions: int
    n_evaluations: int
    p50_latency_ms: float
    p95_latency_ms: float
    p50_quality: float
    p95_quality: float
    mean_best_cost: float
    median_converged_warm: Optional[float]  # None when no warm sessions
    median_converged_cold: Optional[float]  # None when no cold sessions
    #: Pooled p95 of Eq. 4 normalized latency across every control period
    #: (None when reports carry no epsilon trajectories). This is the
    #: admission-control bench's headline number: shedding work off a
    #: saturated server should cut the worst-case ε tail.
    p95_epsilon: Optional[float] = None


def fleet_aggregates(reports: Sequence[FleetSessionReport]) -> FleetAggregates:
    """Pool every session's per-period measurements into fleet percentiles
    and split median convergence by warm/cold start."""
    if not reports:
        raise FleetError("cannot aggregate an empty fleet")
    latencies = np.concatenate([np.asarray(r.latencies_ms) for r in reports])
    qualities = np.concatenate([np.asarray(r.qualities) for r in reports])
    warm = [r.converged_at for r in reports if r.warm_started]
    cold = [r.converged_at for r in reports if not r.warm_started]
    epsilon_rows = [np.asarray(r.epsilons) for r in reports if r.epsilons]
    p95_epsilon = (
        float(np.percentile(np.concatenate(epsilon_rows), 95))
        if epsilon_rows
        else None
    )
    return FleetAggregates(
        n_sessions=len(reports),
        n_evaluations=int(latencies.shape[0]),
        p50_latency_ms=float(np.percentile(latencies, 50)),
        p95_latency_ms=float(np.percentile(latencies, 95)),
        p50_quality=float(np.percentile(qualities, 50)),
        p95_quality=float(np.percentile(qualities, 95)),
        mean_best_cost=float(np.mean([r.best_cost for r in reports])),
        median_converged_warm=float(np.median(warm)) if warm else None,
        median_converged_cold=float(np.median(cold)) if cold else None,
        p95_epsilon=p95_epsilon,
    )


def convergence_from_columns(
    costs: np.ndarray,
    lengths: np.ndarray,
    targets: np.ndarray,
    rel_tol: float = 0.05,
    floor: float = CONVERGENCE_FLOOR,
) -> np.ndarray:
    """Vectorized :func:`iterations_to_converge` over trajectory columns.

    ``costs`` is the fleet's ``(n, max_budget)`` trajectory matrix,
    ``lengths`` the valid prefix per row, ``targets`` the per-row cohort
    bar. Value-identical to calling the scalar helper per row (same
    threshold arithmetic, same first-hit / censoring semantics).
    """
    costs = np.asarray(costs, dtype=np.float64)
    lengths = np.asarray(lengths, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.float64)
    if np.any(lengths < 1):
        raise FleetError("cannot compute convergence of an empty trajectory")
    if rel_tol < 0:
        raise FleetError(f"rel_tol must be >= 0, got {rel_tol}")
    thresholds = targets + np.maximum(rel_tol * np.abs(targets), floor)
    valid = np.arange(costs.shape[1])[None, :] < lengths[:, None]
    with np.errstate(invalid="ignore"):  # padding slots may be NaN
        within = valid & (costs <= thresholds[:, None])
    hit = within.any(axis=1)
    first = np.argmax(within, axis=1) + 1
    return np.where(hit, first, lengths)


def aggregates_from_columns(
    latencies_ms: np.ndarray,
    qualities: np.ndarray,
    epsilons: np.ndarray,
    lengths: np.ndarray,
    best_cost: np.ndarray,
    warm_started: np.ndarray,
    converged_at: np.ndarray,
) -> FleetAggregates:
    """:func:`fleet_aggregates` computed from trajectory columns.

    The boolean prefix mask flattens row-major — session order, then
    period order — which is exactly the concatenation order of the
    per-report path, so every percentile sees the same values in the
    same positions and the outputs are bit-identical (asserted in the
    test suite).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n_sessions = int(lengths.shape[0])
    if n_sessions == 0:
        raise FleetError("cannot aggregate an empty fleet")
    valid = np.arange(latencies_ms.shape[1])[None, :] < lengths[:, None]
    latencies = latencies_ms[valid]
    pooled_qualities = qualities[valid]
    pooled_epsilons = epsilons[valid]
    warm_started = np.asarray(warm_started, dtype=bool)
    warm = converged_at[warm_started]
    cold = converged_at[~warm_started]
    return FleetAggregates(
        n_sessions=n_sessions,
        n_evaluations=int(latencies.shape[0]),
        p50_latency_ms=float(np.percentile(latencies, 50)),
        p95_latency_ms=float(np.percentile(latencies, 95)),
        p50_quality=float(np.percentile(pooled_qualities, 50)),
        p95_quality=float(np.percentile(pooled_qualities, 95)),
        mean_best_cost=float(np.mean(np.asarray(best_cost, dtype=np.float64))),
        median_converged_warm=float(np.median(warm)) if warm.size else None,
        median_converged_cold=float(np.median(cold)) if cold.size else None,
        p95_epsilon=(
            float(np.percentile(pooled_epsilons, 95))
            if pooled_epsilons.size
            else None
        ),
    )


def convergence_histogram(
    reports: Sequence[FleetSessionReport],
) -> Dict[int, int]:
    """How many sessions converged after exactly k control periods."""
    histogram: Dict[int, int] = {}
    for report in reports:
        histogram[report.converged_at] = histogram.get(report.converged_at, 0) + 1
    return dict(sorted(histogram.items()))


def cost_trajectories(
    reports: Sequence[FleetSessionReport],
) -> Dict[str, List[float]]:
    """Running-minimum cost per session (the Fig. 4c-style series)."""
    return {
        r.session_id: np.minimum.accumulate(np.asarray(r.costs)).tolist()
        for r in reports
    }

"""Columnar fleet state: one :class:`SessionTable` instead of N dicts.

The scheduler's source of truth for session lifecycle, trajectories, and
per-tick pricing inputs is a structure-of-arrays table — the same move
PR 4's :class:`~repro.backend.plan.EvalPlan` made for per-config
pricing, applied to the fleet itself (exemplar: habitat-lab's
``batched_env.py`` vectorized stepping). :class:`~repro.fleet.session.
FleetSession` stays the per-session API, but its lifecycle scalars are
row views into this table, so:

- the scheduler selects due / active / guided / retiring sessions with
  column masks instead of Python attribute scans;
- each tick's steady-state :class:`~repro.backend.plan.EvalPlan` is
  sliced straight out of preassembled columns (no per-session
  ``TaskPlacement`` dataclass hop);
- fleet aggregates, convergence, and reports come from column math
  (:func:`repro.fleet.telemetry.aggregates_from_columns`), not from
  re-walking per-session Python lists;
- a shard worker's sub-table merges back into the coordinator's table
  by contiguous row block, which is what makes the sharded run's output
  byte-identical to ``shards=1``.

Numeric column values are bit-identical to what the per-session objects
held: they are written from the same floats at the same points in the
lifecycle, never recomputed through a different formula.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.plan import (
    KIND_EDGE,
    KIND_PAD,
    EvalPlan,
    resource_kind,
)
from repro.device.resources import Processor, Resource
from repro.edge.share import edge_compute_ms, edge_demand, edge_tx_ms
from repro.errors import FleetError
from repro.fleet.telemetry import (
    FleetSessionReport,
    aggregates_from_columns,
    convergence_from_columns,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import HBOConfig
    from repro.device.executor import DeviceSimulator
    from repro.fleet.session import SessionSpec
    from repro.fleet.telemetry import FleetAggregates

#: Integer phase codes backing :class:`~repro.fleet.session.SessionPhase`.
PHASE_WAITING, PHASE_ACTIVE, PHASE_DONE = 0, 1, 2

#: Number of non-EDGE resource kinds tabulated in ``iso_by_kind``
#: (KIND_CPU / KIND_GPU / KIND_NNAPI index its last axis directly).
_N_DEVICE_KINDS = 3


class SessionTable:
    """Structure-of-arrays state for ``n`` fleet sessions.

    Lifecycle, trajectory, and plan-input columns live here; heavyweight
    per-session objects (system, optimizer, RNG stream) stay on the
    :class:`~repro.fleet.session.FleetSession` row views.
    """

    def __init__(
        self, specs: Sequence["SessionSpec"], hbo: "HBOConfig"
    ) -> None:
        specs = tuple(specs)
        if not specs:
            raise FleetError("a session table needs at least one spec")
        n = len(specs)
        self.n = n
        self.specs = specs
        self.session_ids: Tuple[str, ...] = tuple(s.session_id for s in specs)
        self.n_initial = int(hbo.n_initial)

        # ------------------------------------------------------ static spec
        self.arrival_s = np.array([s.arrival_s for s in specs], dtype=np.float64)
        self.budget = np.array(
            [
                s.n_evaluations
                if s.n_evaluations is not None
                else hbo.total_evaluations
                for s in specs
            ],
            dtype=np.int64,
        )
        self.max_budget = int(self.budget.max())
        # Cohort codes in first-seen spec order, for vectorized
        # per-cohort best-cost reduction.
        self.cohort_keys: List[Tuple[str, str, str]] = []
        codes: Dict[Tuple[str, str, str], int] = {}
        cohort = np.empty(n, dtype=np.int64)
        for i, s in enumerate(specs):
            key = (s.device, s.scenario, s.taskset)
            if key not in codes:
                codes[key] = len(self.cohort_keys)
                self.cohort_keys.append(key)
            cohort[i] = codes[key]
        self.cohort_code = cohort

        # ------------------------------------------------------- lifecycle
        self.phase = np.full(n, PHASE_WAITING, dtype=np.int64)
        self.start_tick = np.full(n, -1, dtype=np.int64)
        self.end_tick = np.full(n, -1, dtype=np.int64)
        self.n_results = np.zeros(n, dtype=np.int64)
        #: Observation count of the session's *current* optimizer — reset
        #: to zero on device fallback, exactly like the rebuilt optimizer.
        self.obs_count = np.zeros(n, dtype=np.int64)
        self.space_dim = np.zeros(n, dtype=np.int64)
        self.n_warm = np.zeros(n, dtype=np.int64)
        self.warm_started = np.zeros(n, dtype=bool)
        self.migrations = np.zeros(n, dtype=np.int64)
        self.attached_tick = np.full(n, -1, dtype=np.int64)
        self.best_cost = np.full(n, np.inf, dtype=np.float64)
        # String state (small, cold): plain Python lists indexed by row.
        self.warm_source: List[str] = [""] * n
        self.edge_node: List[str] = [""] * n
        self.fallback_reason: List[str] = [""] * n

        # ---------------------------------------------------- trajectories
        shape = (n, self.max_budget)
        self.costs = np.full(shape, np.nan, dtype=np.float64)
        self.latencies_ms = np.full(shape, np.nan, dtype=np.float64)
        self.qualities = np.full(shape, np.nan, dtype=np.float64)
        self.epsilons = np.full(shape, np.nan, dtype=np.float64)

        # ---------------------------------------------------- plan columns
        # Task-slot axis grows to the widest admitted session.
        self.m_slots = 0
        self.n_tasks = np.zeros(n, dtype=np.int64)
        self.task_ids: List[Tuple[str, ...]] = [()] * n
        self.task_iso = np.zeros((n, 0), dtype=np.float64)
        self.task_kind = np.full((n, 0), KIND_PAD, dtype=np.int64)
        self.task_cpu_demand = np.zeros((n, 0), dtype=np.float64)
        self.task_gpu_demand = np.zeros((n, 0), dtype=np.float64)
        self.task_npu_coverage = np.zeros((n, 0), dtype=np.float64)
        #: Static isolation latency per (slot, non-EDGE kind); EDGE slots
        #: are priced per tick through :func:`edge_compute_ms`.
        self.iso_by_kind = np.zeros((n, 0, _N_DEVICE_KINDS), dtype=np.float64)
        self.static_edge_demand = np.zeros((n, 0), dtype=np.float64)
        self.task_edge_tx = np.zeros((n, 0), dtype=np.float64)
        self.task_edge_demand = np.zeros((n, 0), dtype=np.float64)
        self._profiles: List[Tuple] = [()] * n
        self.has_edge = np.zeros(n, dtype=bool)
        self.thermal = np.zeros(n, dtype=bool)
        self.n_objects = np.zeros(n, dtype=np.float64)
        self.submitted_triangles = np.zeros(n, dtype=np.float64)
        self.rendered_triangles = np.zeros(n, dtype=np.float64)
        self.base_gpu_streams = np.zeros(n, dtype=np.float64)
        self.soc_capacity = np.zeros((n, 3), dtype=np.float64)
        self.soc_queue_exponent = np.zeros((n, 3), dtype=np.float64)
        self.soc_scalars = {
            name: np.zeros(n, dtype=np.float64)
            for name in (
                "nnapi_comm_ms",
                "nnapi_comm_gpu_factor",
                "gpu_render_saturation",
                "gpu_render_exponent",
                "gpu_render_rho_max",
                "cpu_objects_per_stream",
                "cpu_triangles_per_stream",
                "gpu_objects_per_stream",
                "gpu_triangles_per_stream",
            )
        }
        # Matching from_placement_rows' defaults for edge-block scalars.
        self.edge_capacity = np.ones(n, dtype=np.float64)
        self.edge_queue_exponent = np.ones(n, dtype=np.float64)
        self.edge_extern = np.zeros(n, dtype=np.float64)

    # ------------------------------------------------------------ masks

    def due_indices(self, now_s: float) -> np.ndarray:
        """Rows WAITING whose arrival time has passed, in spec order."""
        return np.nonzero(
            (self.phase == PHASE_WAITING) & (self.arrival_s <= now_s)
        )[0]

    def active_indices(self) -> np.ndarray:
        return np.nonzero(self.phase == PHASE_ACTIVE)[0]

    def guided_mask(self) -> np.ndarray:
        """Active rows past their optimizer's random-initialization phase.

        Mirrors ``BayesianOptimizer.in_initial_phase`` (``n_observations <
        n_initial``) through the ``obs_count`` column.
        """
        return (self.phase == PHASE_ACTIVE) & (self.obs_count >= self.n_initial)

    def exhausted_indices(self) -> np.ndarray:
        """Active rows whose evaluation budget is spent (retire this tick)."""
        return np.nonzero(
            (self.phase == PHASE_ACTIVE) & (self.n_results >= self.budget)
        )[0]

    def all_done(self) -> bool:
        return bool(np.all(self.phase == PHASE_DONE))

    # ------------------------------------------------------- row lifecycle

    def _grow_slots(self, m: int) -> None:
        if m <= self.m_slots:
            return
        pad = m - self.m_slots

        def wide(arr: np.ndarray, fill: float) -> np.ndarray:
            out = np.full(
                arr.shape[:1] + (m,) + arr.shape[2:], fill, dtype=arr.dtype
            )
            out[:, : self.m_slots] = arr
            return out

        self.task_iso = wide(self.task_iso, 0.0)
        self.task_kind = wide(self.task_kind, KIND_PAD)
        self.task_cpu_demand = wide(self.task_cpu_demand, 0.0)
        self.task_gpu_demand = wide(self.task_gpu_demand, 0.0)
        self.task_npu_coverage = wide(self.task_npu_coverage, 0.0)
        self.static_edge_demand = wide(self.static_edge_demand, 0.0)
        self.task_edge_tx = wide(self.task_edge_tx, 0.0)
        self.task_edge_demand = wide(self.task_edge_demand, 0.0)
        grown = np.zeros(
            (self.n, m, _N_DEVICE_KINDS), dtype=np.float64
        )
        grown[:, : self.m_slots] = self.iso_by_kind
        self.iso_by_kind = grown
        self.m_slots = m
        del pad

    def init_plan_row(self, i: int, device: "DeviceSimulator") -> None:
        """Record row ``i``'s static pricing inputs at admission.

        Everything that never changes mid-run — SoC parameters, task
        demand profiles, the per-(slot, resource) isolation-latency table
        — is written once here; :meth:`refresh_plan_row` only touches the
        per-tick columns.
        """
        soc = device.soc
        items = list(device.placement_items())
        k = len(items)
        self._grow_slots(k)
        self.n_tasks[i] = k
        self.task_ids[i] = tuple(tid for tid, _ in items)
        profiles = tuple(device.profile_of(tid) for tid, _ in items)
        self._profiles[i] = profiles
        for j, profile in enumerate(profiles):
            self.task_cpu_demand[i, j] = profile.cpu_demand
            self.task_gpu_demand[i, j] = profile.gpu_demand
            self.task_npu_coverage[i, j] = profile.npu_coverage
            self.static_edge_demand[i, j] = edge_demand(profile)
            for res in (Resource.CPU, Resource.GPU_DELEGATE, Resource.NNAPI):
                if profile.supports(res):
                    self.iso_by_kind[i, j, resource_kind(res)] = (
                        profile.latency(res)
                    )
        for proc, col in (
            (Processor.CPU, 0),
            (Processor.GPU, 1),
            (Processor.NPU, 2),
        ):
            self.soc_capacity[i, col] = soc.capacity[proc]
            self.soc_queue_exponent[i, col] = soc.queue_exponent[proc]
        for name, arr in self.soc_scalars.items():
            if name.endswith("per_stream"):
                arr[i] = getattr(soc.render_cost, name)
            else:
                arr[i] = getattr(soc, name)
        self.thermal[i] = device.thermal is not None
        self.has_edge[i] = device.edge is not None

    def refresh_plan_row(self, i: int, device: "DeviceSimulator") -> None:
        """Update row ``i``'s per-tick pricing inputs after ``begin``.

        Same floats :meth:`EvalPlan.from_placement_rows` would compute
        from ``(soc, placements, load, edge_share)`` — the static parts
        come from the admission-time tables, the dynamic parts from the
        same helper calls on the same live state.
        """
        k = int(self.n_tasks[i])
        kinds = np.fromiter(
            (resource_kind(res) for _, res in device.placement_items()),
            dtype=np.int64,
            count=k,
        )
        self.task_kind[i, :k] = kinds
        share = device.edge_share()
        if share is None:
            self.task_iso[i, :k] = self.iso_by_kind[i, np.arange(k), kinds]
            self.has_edge[i] = False
        else:
            self.has_edge[i] = True
            self.edge_capacity[i] = share.capacity_streams
            self.edge_queue_exponent[i] = share.queue_exponent
            self.edge_extern[i] = share.extern_streams
            profiles = self._profiles[i]
            edge_slots = kinds == KIND_EDGE
            self.task_iso[i, :k] = np.where(
                edge_slots,
                0.0,
                self.iso_by_kind[i, np.arange(k), np.where(edge_slots, 0, kinds)],
            )
            self.task_edge_tx[i, :k] = 0.0
            self.task_edge_demand[i, :k] = np.where(
                edge_slots, self.static_edge_demand[i, :k], 0.0
            )
            for j in np.nonzero(edge_slots)[0]:
                self.task_iso[i, j] = edge_compute_ms(profiles[j], share)
                self.task_edge_tx[i, j] = edge_tx_ms(profiles[j], share)
        load = device.load
        self.n_objects[i] = float(load.n_objects)
        self.submitted_triangles[i] = float(load.submitted_triangles)
        self.rendered_triangles[i] = float(load.rendered_triangles)
        self.base_gpu_streams[i] = float(load.base_gpu_streams)

    def record_result(
        self,
        i: int,
        cost: float,
        latency_ms: float,
        quality: float,
        epsilon: float,
    ) -> None:
        """Append one control period's measurements to row ``i``."""
        n = int(self.n_results[i])
        if n >= self.max_budget:
            raise FleetError(
                f"{self.session_ids[i]}: trajectory overflow at {n} results"
            )
        self.costs[i, n] = cost
        self.latencies_ms[i, n] = latency_ms
        self.qualities[i, n] = quality
        self.epsilons[i, n] = epsilon
        if cost < self.best_cost[i]:
            self.best_cost[i] = cost
        self.n_results[i] = n + 1
        self.obs_count[i] += 1

    # ------------------------------------------------------------ plan build

    def build_plan(self, rows: Sequence[int]) -> EvalPlan:
        """One multi-row :class:`EvalPlan` sliced straight from columns."""
        idx = np.asarray(rows, dtype=np.int64)
        if idx.size == 0:
            raise FleetError("cannot build a plan over zero rows")
        m = int(self.n_tasks[idx].max())
        any_edge = bool(self.has_edge[idx].any())
        return EvalPlan.from_arrays(
            task_iso_ms=self.task_iso[idx, :m],
            task_kind=self.task_kind[idx, :m],
            task_cpu_demand=self.task_cpu_demand[idx, :m],
            task_gpu_demand=self.task_gpu_demand[idx, :m],
            task_npu_coverage=self.task_npu_coverage[idx, :m],
            n_objects=self.n_objects[idx],
            submitted_triangles=self.submitted_triangles[idx],
            rendered_triangles=self.rendered_triangles[idx],
            base_gpu_streams=self.base_gpu_streams[idx],
            capacity=self.soc_capacity[idx],
            queue_exponent=self.soc_queue_exponent[idx],
            task_edge_tx_ms=self.task_edge_tx[idx, :m] if any_edge else None,
            task_edge_demand=(
                self.task_edge_demand[idx, :m] if any_edge else None
            ),
            edge_capacity=self.edge_capacity[idx] if any_edge else None,
            edge_queue_exponent=(
                self.edge_queue_exponent[idx] if any_edge else None
            ),
            edge_extern_streams=self.edge_extern[idx] if any_edge else None,
            row_task_ids=tuple(self.task_ids[i] for i in idx),
            **{
                name: arr[idx] for name, arr in self.soc_scalars.items()
            },
        )

    # ------------------------------------------------------------ reporting

    def cohort_best(self) -> np.ndarray:
        """Per-row best cost over the row's (device, scenario, taskset)
        cohort — the shared convergence target."""
        if np.any(self.n_results < 1):
            missing = [
                self.session_ids[i]
                for i in np.nonzero(self.n_results < 1)[0]
            ]
            raise FleetError(f"sessions with no evaluations: {missing}")
        per_cohort = np.full(len(self.cohort_keys), np.inf, dtype=np.float64)
        np.minimum.at(per_cohort, self.cohort_code, self.best_cost)
        return per_cohort[self.cohort_code]

    def converged_at(self) -> np.ndarray:
        """Vectorized time-to-cohort-target per row (1-based, censored)."""
        return convergence_from_columns(
            self.costs, self.n_results, self.cohort_best()
        )

    def aggregates(self) -> "FleetAggregates":
        return aggregates_from_columns(
            latencies_ms=self.latencies_ms,
            qualities=self.qualities,
            epsilons=self.epsilons,
            lengths=self.n_results,
            best_cost=self.best_cost,
            warm_started=self.warm_started,
            converged_at=self.converged_at(),
        )

    def histogram(self) -> Dict[int, int]:
        values, counts = np.unique(self.converged_at(), return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def build_reports(
        self, placement_outcomes: Sequence[Optional[object]]
    ) -> Tuple[FleetSessionReport, ...]:
        """Per-session reports assembled from columns (all rows DONE).

        ``placement_outcomes[i]`` is the row's
        :class:`~repro.edge.placement.PlacementOutcome` or ``None``; it
        only feeds the ``placed_node`` string, matching the legacy
        per-session report path field for field.
        """
        if not self.all_done():
            raise FleetError("cannot report a fleet that has not drained")
        targets = self.cohort_best()
        converged = self.converged_at()
        reports = []
        for i, spec in enumerate(self.specs):
            n = int(self.n_results[i])
            outcome = placement_outcomes[i]
            reports.append(
                FleetSessionReport(
                    session_id=spec.session_id,
                    device=spec.device,
                    scenario=spec.scenario,
                    taskset=spec.taskset,
                    arrival_s=spec.arrival_s,
                    start_tick=int(self.start_tick[i]),
                    end_tick=int(self.end_tick[i]),
                    warm_started=bool(self.warm_started[i]),
                    n_warm=int(self.n_warm[i]),
                    warm_source=self.warm_source[i],
                    costs=tuple(float(c) for c in self.costs[i, :n]),
                    latencies_ms=tuple(
                        float(v) for v in self.latencies_ms[i, :n]
                    ),
                    qualities=tuple(float(q) for q in self.qualities[i, :n]),
                    best_cost=float(self.best_cost[i]),
                    cohort_best_cost=float(targets[i]),
                    converged_at=int(converged[i]),
                    epsilons=tuple(float(e) for e in self.epsilons[i, :n]),
                    placed_node=(
                        (getattr(outcome, "node", None) or "")
                        if outcome is not None
                        else ""
                    ),
                    edge_node=self.edge_node[i],
                    fallback_reason=self.fallback_reason[i],
                    migrations=int(self.migrations[i]),
                )
            )
        return tuple(reports)

    # ------------------------------------------------------------- sharding

    def absorb(self, start: int, payload: Dict[str, np.ndarray]) -> None:
        """Merge a shard worker's contiguous row block back, in order.

        ``payload`` carries the worker-truth columns for rows
        ``start:start+k``; the coordinator's own bookkeeping columns
        (phase, ticks, placement) are left alone.
        """
        k = int(payload["n_results"].shape[0])
        sl = slice(start, start + k)
        width = payload["costs"].shape[1]
        self.costs[sl, :width] = payload["costs"]
        self.latencies_ms[sl, :width] = payload["latencies_ms"]
        self.qualities[sl, :width] = payload["qualities"]
        self.epsilons[sl, :width] = payload["epsilons"]
        self.n_results[sl] = payload["n_results"]
        self.best_cost[sl] = payload["best_cost"]
        self.n_warm[sl] = payload["n_warm"]
        self.warm_started[sl] = payload["warm_started"]
        self.migrations[sl] = payload["migrations"]
        for offset, source in enumerate(payload["warm_source"]):
            self.warm_source[start + offset] = source
        for offset, node in enumerate(payload["edge_node"]):
            self.edge_node[start + offset] = node
        for offset, reason in enumerate(payload["fallback_reason"]):
            self.fallback_reason[start + offset] = reason

    def shard_payload(self) -> Dict[str, np.ndarray]:
        """The worker-truth columns :meth:`absorb` consumes."""
        return {
            "costs": self.costs,
            "latencies_ms": self.latencies_ms,
            "qualities": self.qualities,
            "epsilons": self.epsilons,
            "n_results": self.n_results,
            "best_cost": self.best_cost,
            "n_warm": self.n_warm,
            "warm_started": self.warm_started,
            "migrations": self.migrations,
            "warm_source": list(self.warm_source),
            "edge_node": list(self.edge_node),
            "fallback_reason": list(self.fallback_reason),
        }

"""The replayable scenario catalog: named spec → seed → identical fleet.

A :class:`ScenarioSpec` is a frozen, JSON-serializable description of a
fleet workload along the generator's axes (arrival process, device mix,
workload mix/churn, mobility, thermal episodes, serving mode). The
catalog registry maps ~8 curated names to specs;
:func:`compile_scenario` turns ``(spec, seed)`` into concrete
:class:`~repro.fleet.session.SessionSpec` lists plus a ready
:class:`~repro.fleet.scheduler.FleetConfig` — event scripts, link
schedules, thermal gates and all.

Replay contract: ``compile_scenario`` is a pure function of its
arguments. The same ``(spec, seed, hbo)`` always produce byte-identical
session specs, schedules, and scripts, and running the compiled fleet
reproduces the same trace — that is what ``make scenario-smoke`` and the
Hypothesis purity suite assert. The ``legacy-fleet`` entry compiles
through the original hand-written staggered-cohort schedule, so at seed
2024 it replays the pre-catalog ``repro fleet`` byte-for-byte.

Modeled on habitat-lab's episode/dataset structure: the spec is the
dataset definition, a compiled scenario is the episode list, and the
JSON form is the on-disk interchange format (same axes, same defaults,
reloadable with :func:`load_spec`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.controller import HBOConfig
from repro.device.profiles import GALAXY_A54, GALAXY_S22, PIXEL6A, PIXEL7
from repro.device.thermal import ThermalSpec
from repro.edge.runtime import EdgeConfig
from repro.edge.topology import default_topology
from repro.errors import ScenarioError
from repro.fleet.scheduler import FleetConfig
from repro.fleet.session import SessionSpec
from repro.rng import derive_seed
from repro.scenarios.generator import (
    DEFAULT_SEED,
    default_fleet_specs,
    device_mix,
    diurnal_arrivals,
    flash_crowd_arrivals,
    mobility_events,
    mobility_flags,
    mobility_link_schedule,
    thermal_flags,
    user_positions,
    workload_mix,
)
from repro.sim.events import SceneEvent
from repro.sim.scenarios import ServerOutage, staggered_drift_schedules

#: Serving modes a scenario can compile into (the sweep's second axis).
SERVING_MODES: Tuple[str, ...] = ("device", "legacy-edge", "topology")

#: Arrival processes the generator implements.
ARRIVAL_PROCESSES: Tuple[str, ...] = (
    "diurnal",
    "flash-crowd",
    "staggered-cohort",
)


@dataclass(frozen=True)
class ArrivalSpec:
    """Arrival-process parameters (fields beyond the chosen ``process``
    are simply ignored, which keeps the JSON schema flat)."""

    process: str = "diurnal"
    period_s: float = 240.0
    peak_to_base: float = 4.0
    window_s: float = 90.0
    burst_time_s: float = 30.0
    burst_sigma_s: float = 4.0
    burst_fraction: float = 0.7
    follow_gap_s: float = 3.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ScenarioError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )


@dataclass(frozen=True)
class DeviceMixSpec:
    """Weighted device-model mix, ordered for determinism."""

    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ScenarioError("device mix needs at least one entry")


@dataclass(frozen=True)
class WorkloadMixSpec:
    """Weighted (scenario, taskset) mix with optional mid-run churn."""

    weights: Tuple[Tuple[str, str, float], ...]
    churn_time_s: float = -1.0  # negative disables churn
    churn_weights: Tuple[Tuple[str, str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.weights:
            raise ScenarioError("workload mix needs at least one entry")
        if self.churn_time_s >= 0 and not self.churn_weights:
            raise ScenarioError(
                "churn_time_s set but churn_weights empty — nothing to "
                "churn to"
            )


@dataclass(frozen=True)
class MobilitySpec:
    """User-mobility axis: link-scale schedules + DistanceChange scripts."""

    fraction: float = 1.0
    n_breakpoints: int = 3
    scale_floor: float = 0.3
    scale_ceil: float = 1.4
    n_moves: int = 2
    max_radius_m: float = 2.5

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ScenarioError(
                f"mobility fraction must be in (0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class ThermalEpisodeSpec:
    """Thermal-throttling axis: which fraction runs hot, and how hot."""

    hot_fraction: float = 0.5
    model: ThermalSpec = field(default_factory=ThermalSpec)

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ScenarioError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )


@dataclass(frozen=True)
class ServingSpec:
    """How the compiled fleet is served (the sweep's second axis)."""

    mode: str = "device"
    n_servers: int = 3
    placement: str = "price-aware"
    #: When set (topology mode), nodes get staggered collapse schedules
    #: via :func:`repro.sim.scenarios.staggered_drift_schedules`.
    node_drift_stagger_s: float = -1.0  # negative disables node drift
    outages: Tuple[ServerOutage, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in SERVING_MODES:
            raise ScenarioError(
                f"unknown serving mode {self.mode!r}; "
                f"expected one of {SERVING_MODES}"
            )
        if self.n_servers < 1:
            raise ScenarioError(
                f"n_servers must be >= 1, got {self.n_servers}"
            )
        if self.mode != "topology" and (
            self.node_drift_stagger_s >= 0 or self.outages
        ):
            raise ScenarioError(
                "node drift and outages are topology-mode features"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, frozen, replayable fleet workload."""

    name: str
    description: str
    n_sessions: int
    #: Active-window hint for the per-session mobility axes (seconds of
    #: session lifetime the schedules spread over).
    duration_hint_s: float
    arrivals: ArrivalSpec
    devices: Optional[DeviceMixSpec] = None
    workload: Optional[WorkloadMixSpec] = None
    mobility: Optional[MobilitySpec] = None
    thermal: Optional[ThermalEpisodeSpec] = None
    serving: ServingSpec = field(default_factory=ServingSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.n_sessions < 1:
            raise ScenarioError(
                f"{self.name}: n_sessions must be >= 1, got {self.n_sessions}"
            )
        if self.duration_hint_s <= 0:
            raise ScenarioError(
                f"{self.name}: duration_hint_s must be > 0, "
                f"got {self.duration_hint_s}"
            )
        legacy = self.arrivals.process == "staggered-cohort"
        if legacy:
            if self.devices is not None or self.workload is not None:
                raise ScenarioError(
                    f"{self.name}: the staggered-cohort process uses the "
                    "fixed legacy cohort table; devices/workload must be None"
                )
            if self.mobility is not None or self.thermal is not None:
                raise ScenarioError(
                    f"{self.name}: the legacy schedule predates the "
                    "mobility/thermal axes; both must be None"
                )
        else:
            if self.devices is None or self.workload is None:
                raise ScenarioError(
                    f"{self.name}: generated scenarios need devices and "
                    "workload mixes"
                )


@dataclass(frozen=True)
class CompiledScenario:
    """``compile_scenario``'s output: everything a fleet run needs."""

    spec: ScenarioSpec
    seed: int
    session_specs: Tuple[SessionSpec, ...]
    fleet_config: FleetConfig
    #: Seed for :func:`repro.fleet.scheduler.run_fleet` — the same
    #: ``derive_seed(seed, "fleet")`` the legacy experiment driver uses.
    fleet_seed: int

    @property
    def arrival_schedule(self) -> Tuple[float, ...]:
        return tuple(s.arrival_s for s in self.session_specs)


def _short_device(device: str) -> str:
    """'Google Pixel 6a' → 'pixel6a' (the legacy session-id convention)."""
    return "".join(device.split()[1:]).lower()


def compile_scenario(
    spec: ScenarioSpec,
    seed: int = DEFAULT_SEED,
    hbo: Optional[HBOConfig] = None,
    n_sessions: Optional[int] = None,
) -> CompiledScenario:
    """Compile ``(spec, seed)`` into session specs + a fleet config.

    Pure function of its arguments (the replay contract): each axis draws
    from its own :func:`~repro.rng.derive_seed` stream, so compiling
    twice — in this process or any other — yields byte-identical output.
    ``n_sessions`` overrides the spec's population (the sweep and the
    smoke target shrink scenarios without forking specs).
    """
    cfg = hbo if hbo is not None else HBOConfig()
    n = n_sessions if n_sessions is not None else spec.n_sessions
    if n < 1:
        raise ScenarioError(f"n_sessions override must be >= 1, got {n}")
    serving = spec.serving

    if spec.arrivals.process == "staggered-cohort":
        session_specs = tuple(
            default_fleet_specs(
                n, cfg, seed=seed, follow_gap_s=spec.arrivals.follow_gap_s
            )
        )
        session_events: Dict[str, Tuple[SceneEvent, ...]] = {}
        link_drift: Dict[str, Tuple[Tuple[float, float], ...]] = {}
        thermal_gate: Optional[ThermalSpec] = None
    else:
        if spec.arrivals.process == "diurnal":
            arrivals_s = diurnal_arrivals(
                n,
                seed,
                period_s=spec.arrivals.period_s,
                peak_to_base=spec.arrivals.peak_to_base,
            )
        else:
            arrivals_s = flash_crowd_arrivals(
                n,
                seed,
                window_s=spec.arrivals.window_s,
                burst_time_s=spec.arrivals.burst_time_s,
                burst_sigma_s=spec.arrivals.burst_sigma_s,
                burst_fraction=spec.arrivals.burst_fraction,
            )
        assert spec.devices is not None and spec.workload is not None
        devices = device_mix(n, seed, spec.devices.weights)
        workloads = workload_mix(
            arrivals_s,
            seed,
            spec.workload.weights,
            churn_time_s=spec.workload.churn_time_s,
            churn_weights=spec.workload.churn_weights,
        )
        hot = (
            thermal_flags(n, seed, spec.thermal.hot_fraction)
            if spec.thermal is not None
            else (False,) * n
        )
        positions = user_positions(n, seed)
        specs: List[SessionSpec] = []
        for i in range(n):
            scenario, taskset = workloads[i]
            specs.append(
                SessionSpec(
                    session_id=(
                        f"u{i:03d}-{_short_device(devices[i])}-{scenario}"
                    ),
                    device=devices[i],
                    scenario=scenario,
                    taskset=taskset,
                    arrival_s=arrivals_s[i],
                    placement_seed=derive_seed(
                        seed, "scenario-placement", spec.name, scenario,
                        devices[i],
                    ),
                    position=positions[i],
                    thermal=hot[i],
                )
            )
        session_specs = tuple(specs)
        session_events = {}
        link_drift = {}
        if spec.mobility is not None:
            mob = spec.mobility
            mobile = mobility_flags(n, seed, mob.fraction)
            window_s = min(spec.duration_hint_s, float(cfg.total_evaluations))
            for i, session in enumerate(session_specs):
                if not mobile[i]:
                    continue
                session_events[session.session_id] = mobility_events(
                    seed,
                    session.session_id,
                    start_s=session.arrival_s + 1.0,
                    duration_s=window_s,
                    n_moves=mob.n_moves,
                    max_radius_m=mob.max_radius_m,
                )
                if serving.mode != "device":
                    link_drift[session.session_id] = mobility_link_schedule(
                        seed,
                        session.session_id,
                        start_s=session.arrival_s,
                        duration_s=window_s,
                        n_breakpoints=mob.n_breakpoints,
                        scale_floor=mob.scale_floor,
                        scale_ceil=mob.scale_ceil,
                    )
        thermal_gate = spec.thermal.model if spec.thermal is not None else None

    edge_cfg = EdgeConfig() if serving.mode == "legacy-edge" else None
    topo_cfg = (
        default_topology(serving.n_servers)
        if serving.mode == "topology"
        else None
    )
    edge_drift: Optional[Mapping[str, Tuple[Tuple[float, float], ...]]] = None
    if topo_cfg is not None and serving.node_drift_stagger_s >= 0:
        edge_drift = staggered_drift_schedules(
            tuple(node.name for node in topo_cfg.nodes),
            stagger_s=serving.node_drift_stagger_s,
        )
    fleet_config = FleetConfig(
        hbo=cfg,
        edge=edge_cfg,
        topology=topo_cfg,
        placement=serving.placement,
        edge_drift=edge_drift,
        edge_outages=serving.outages if topo_cfg is not None else (),
        thermal=thermal_gate,
        session_events=session_events or None,
        link_drift=link_drift or None,
    )
    return CompiledScenario(
        spec=spec,
        seed=seed,
        session_specs=session_specs,
        fleet_config=fleet_config,
        fleet_seed=derive_seed(seed, "fleet"),
    )


def with_serving_mode(
    spec: ScenarioSpec, mode: str, n_servers: Optional[int] = None
) -> ScenarioSpec:
    """The same scenario re-served: swap the serving axis, keep the rest.

    Topology-only features (node drift, outages) are dropped when leaving
    topology mode — the workload axes are untouched, which is what makes
    per-scenario serving-mode comparisons apples-to-apples.
    """
    if mode not in SERVING_MODES:
        raise ScenarioError(
            f"unknown serving mode {mode!r}; expected one of {SERVING_MODES}"
        )
    old = spec.serving
    keep_topology = mode == "topology"
    serving = ServingSpec(
        mode=mode,
        n_servers=n_servers if n_servers is not None else old.n_servers,
        placement=old.placement,
        node_drift_stagger_s=(
            old.node_drift_stagger_s if keep_topology else -1.0
        ),
        outages=old.outages if keep_topology else (),
    )
    return dataclasses.replace(spec, serving=serving)


# ------------------------------------------------------------- registry


def _build_catalog() -> Dict[str, ScenarioSpec]:
    flagship_mix = DeviceMixSpec(
        weights=((PIXEL7, 0.35), (GALAXY_S22, 0.35), (PIXEL6A, 0.2),
                 (GALAXY_A54, 0.1))
    )
    budget_mix = DeviceMixSpec(
        weights=((GALAXY_A54, 0.55), (PIXEL6A, 0.25), (PIXEL7, 0.1),
                 (GALAXY_S22, 0.1))
    )
    even_mix = DeviceMixSpec(
        weights=((PIXEL7, 0.25), (GALAXY_S22, 0.25), (PIXEL6A, 0.25),
                 (GALAXY_A54, 0.25))
    )
    light_workload = WorkloadMixSpec(
        weights=(("SC1", "CF1", 0.6), ("SC2", "CF2", 0.4))
    )
    specs = (
        ScenarioSpec(
            name="legacy-fleet",
            description=(
                "The original hand-written staggered-cohort schedule: one "
                "cold donor per (device, scenario) cohort, warm followers "
                "after. Replays the pre-catalog `repro fleet` "
                "byte-for-byte at seed 2024."
            ),
            n_sessions=16,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(process="staggered-cohort"),
        ),
        ScenarioSpec(
            name="diurnal-baseline",
            description=(
                "A calm day: one sinusoidal traffic wave over a mixed "
                "four-tier fleet, no mobility, no thermal stress. The "
                "reference point the stress scenarios are judged against."
            ),
            n_sessions=12,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(
                process="diurnal", period_s=240.0, peak_to_base=4.0
            ),
            devices=flagship_mix,
            workload=light_workload,
        ),
        ScenarioSpec(
            name="flash-crowd",
            description=(
                "A venue-door burst: 70% of the fleet arrives within a few "
                "seconds of t=30 s, stressing admission control and the "
                "batched GP pass with simultaneous cold starts."
            ),
            n_sessions=14,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(
                process="flash-crowd",
                window_s=90.0,
                burst_time_s=30.0,
                burst_sigma_s=4.0,
                burst_fraction=0.7,
            ),
            devices=flagship_mix,
            workload=light_workload,
            serving=ServingSpec(mode="topology", n_servers=3),
        ),
        ScenarioSpec(
            name="commuter-mobility",
            description=(
                "Every user is walking: per-session wireless bandwidth "
                "schedules plus DistanceChange scripts drive the paper's "
                "§IV-E distance→culling→latency mechanism inside a served "
                "fleet."
            ),
            n_sessions=10,
            duration_hint_s=45.0,
            arrivals=ArrivalSpec(
                process="diurnal", period_s=120.0, peak_to_base=2.0
            ),
            devices=flagship_mix,
            workload=light_workload,
            mobility=MobilitySpec(
                fraction=1.0,
                n_breakpoints=3,
                scale_floor=0.3,
                scale_ceil=1.4,
                n_moves=2,
                max_radius_m=2.5,
            ),
            serving=ServingSpec(mode="legacy-edge"),
        ),
        ScenarioSpec(
            name="hot-device",
            description=(
                "Summer sidewalk: 60% of a budget-heavy fleet runs "
                "thermally throttled, so on-SoC latencies drift upward "
                "within sessions and the controller must keep re-finding "
                "the frontier."
            ),
            n_sessions=10,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(
                process="diurnal", period_s=180.0, peak_to_base=1.5
            ),
            devices=budget_mix,
            workload=light_workload,
            thermal=ThermalEpisodeSpec(
                hot_fraction=0.6,
                model=ThermalSpec(
                    max_heat_c=25.0,
                    time_constant_steps=25.0,
                    throttle_start_c=40.0,
                    throttle_slope=0.03,
                ),
            ),
        ),
        ScenarioSpec(
            name="mixed-fleet-churn",
            description=(
                "App-mix churn: the fleet starts CF1-heavy and flips "
                "CF2-heavy mid-wave, so late arrivals bring a different "
                "model mix than the store's donors optimized for."
            ),
            n_sessions=14,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(
                process="diurnal", period_s=300.0, peak_to_base=3.0
            ),
            devices=even_mix,
            workload=WorkloadMixSpec(
                weights=(("SC1", "CF1", 0.8), ("SC2", "CF2", 0.2)),
                churn_time_s=120.0,
                churn_weights=(("SC1", "CF1", 0.2), ("SC2", "CF2", 0.8)),
            ),
        ),
        ScenarioSpec(
            name="network-collapse",
            description=(
                "Backhaul trouble: a four-node topology whose cells "
                "collapse on staggered schedules while one node takes a "
                "full outage — exercising migration, shedding, and "
                "graceful device fallback under load."
            ),
            n_sessions=12,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(
                process="flash-crowd",
                window_s=60.0,
                burst_time_s=15.0,
                burst_sigma_s=6.0,
                burst_fraction=0.5,
            ),
            devices=flagship_mix,
            workload=light_workload,
            serving=ServingSpec(
                mode="topology",
                n_servers=4,
                node_drift_stagger_s=10.0,
                outages=(ServerOutage(node="edge-1", start_s=20.0, end_s=35.0),),
            ),
        ),
        ScenarioSpec(
            name="low-tier-surge",
            description=(
                "A push notification lands on the budget fleet: an A54-"
                "dominated flash crowd, a third of it thermally stressed, "
                "served by a small two-node topology."
            ),
            n_sessions=14,
            duration_hint_s=60.0,
            arrivals=ArrivalSpec(
                process="flash-crowd",
                window_s=75.0,
                burst_time_s=20.0,
                burst_sigma_s=3.0,
                burst_fraction=0.85,
            ),
            devices=budget_mix,
            workload=WorkloadMixSpec(
                weights=(("SC1", "CF1", 0.7), ("SC2", "CF2", 0.3))
            ),
            thermal=ThermalEpisodeSpec(hot_fraction=0.35),
            serving=ServingSpec(mode="topology", n_servers=2),
        ),
    )
    return {spec.name: spec for spec in specs}


_CATALOG: Dict[str, ScenarioSpec] = _build_catalog()


def scenario_names() -> Tuple[str, ...]:
    """Catalog entries in registration order."""
    return tuple(_CATALOG)


def get_scenario(name: str) -> ScenarioSpec:
    if name not in _CATALOG:
        raise ScenarioError(
            f"unknown scenario {name!r}; catalog has {sorted(_CATALOG)}"
        )
    return _CATALOG[name]


# ------------------------------------------------------------------ JSON


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """JSON-able form of a spec (tuples become lists; see
    :func:`spec_from_dict` for the inverse)."""
    return dataclasses.asdict(spec)


def _pairs(rows: Any) -> Tuple[Tuple[Any, ...], ...]:
    return tuple(tuple(row) for row in rows)


def spec_from_dict(payload: Mapping[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its JSON form.

    Raises :class:`~repro.errors.ScenarioError` on unknown or missing
    fields — a truncated or hand-edited catalog file should fail loudly,
    not compile into a subtly different workload.
    """
    try:
        data = dict(payload)
        arrivals = ArrivalSpec(**data.pop("arrivals"))
        devices_raw = data.pop("devices")
        devices = (
            DeviceMixSpec(weights=_pairs(devices_raw["weights"]))
            if devices_raw is not None
            else None
        )
        workload_raw = data.pop("workload")
        workload = (
            WorkloadMixSpec(
                weights=_pairs(workload_raw["weights"]),
                churn_time_s=workload_raw["churn_time_s"],
                churn_weights=_pairs(workload_raw["churn_weights"]),
            )
            if workload_raw is not None
            else None
        )
        mobility_raw = data.pop("mobility")
        mobility = (
            MobilitySpec(**mobility_raw) if mobility_raw is not None else None
        )
        thermal_raw = data.pop("thermal")
        thermal = (
            ThermalEpisodeSpec(
                hot_fraction=thermal_raw["hot_fraction"],
                model=ThermalSpec(**thermal_raw["model"]),
            )
            if thermal_raw is not None
            else None
        )
        serving_raw = dict(data.pop("serving"))
        serving = ServingSpec(
            mode=serving_raw["mode"],
            n_servers=serving_raw["n_servers"],
            placement=serving_raw["placement"],
            node_drift_stagger_s=serving_raw["node_drift_stagger_s"],
            outages=tuple(
                ServerOutage(**outage) for outage in serving_raw["outages"]
            ),
        )
        return ScenarioSpec(
            arrivals=arrivals,
            devices=devices,
            workload=workload,
            mobility=mobility,
            thermal=thermal,
            serving=serving,
            **data,
        )
    except ScenarioError:
        raise
    except (KeyError, TypeError) as exc:
        raise ScenarioError(f"malformed scenario payload: {exc}") from exc


def dump_spec(spec: ScenarioSpec) -> str:
    """Canonical JSON text of one spec (sorted keys, 2-space indent,
    trailing newline) — the byte-stable on-disk form."""
    return json.dumps(spec_to_dict(spec), sort_keys=True, indent=2) + "\n"


def load_spec(text: str) -> ScenarioSpec:
    """Inverse of :func:`dump_spec`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"scenario JSON does not parse: {exc}") from exc
    if not isinstance(payload, dict):
        raise ScenarioError(
            f"scenario JSON must be an object, got {type(payload).__name__}"
        )
    return spec_from_dict(payload)

"""Run compiled scenarios and export byte-stable artifacts.

The runner is the thin layer between the catalog and the fleet: it
compiles a spec, hands the result to
:func:`repro.fleet.scheduler.run_fleet`, and renders/export the outcome
deterministically. ``export_json`` is the byte-comparison surface —
``make scenario-smoke`` runs one scenario twice at a fixed seed and
``cmp``s the two exports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.core.controller import HBOConfig
from repro.fleet.scheduler import FleetResult, run_fleet
from repro.scenarios.catalog import (
    CompiledScenario,
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    with_serving_mode,
)
from repro.scenarios.generator import DEFAULT_SEED


@dataclass(frozen=True)
class ScenarioRun:
    """One executed scenario: what was compiled plus what happened."""

    compiled: CompiledScenario
    result: FleetResult


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    seed: int = DEFAULT_SEED,
    hbo: Optional[HBOConfig] = None,
    n_sessions: Optional[int] = None,
    mode: Optional[str] = None,
) -> ScenarioRun:
    """Compile and execute one scenario (by catalog name or spec).

    ``mode`` re-serves the scenario through
    :func:`~repro.scenarios.catalog.with_serving_mode`; ``hbo`` and
    ``n_sessions`` shrink budgets/populations for sweeps and smokes.
    Deterministic end to end: same arguments, same
    :class:`~repro.fleet.scheduler.FleetResult` bytes.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if mode is not None:
        spec = with_serving_mode(spec, mode)
    compiled = compile_scenario(spec, seed, hbo=hbo, n_sessions=n_sessions)
    result = run_fleet(
        compiled.session_specs,
        seed=compiled.fleet_seed,
        config=compiled.fleet_config,
    )
    return ScenarioRun(compiled=compiled, result=result)


def export_run(run: ScenarioRun) -> Dict[str, Any]:
    """JSON-able summary of a run — the replay-comparison artifact.

    Everything in here is derived deterministically from the run; two
    runs of the same ``(scenario, seed)`` serialize to identical bytes
    via :func:`export_json`.
    """
    agg = run.result.aggregates
    return {
        "scenario": run.compiled.spec.name,
        "seed": run.compiled.seed,
        "fleet_seed": run.compiled.fleet_seed,
        "serving_mode": run.compiled.spec.serving.mode,
        "n_sessions": len(run.compiled.session_specs),
        "ticks": run.result.ticks,
        "tick_s": run.result.tick_s,
        "arrivals_s": list(run.compiled.arrival_schedule),
        "sessions": [
            {
                "session_id": r.session_id,
                "device": r.device,
                "scenario": r.scenario,
                "taskset": r.taskset,
                "arrival_s": r.arrival_s,
                "warm_started": r.warm_started,
                "warm_source": r.warm_source,
                "best_cost": r.best_cost,
                "converged_at": r.converged_at,
                "n_periods": len(r.costs),
                "placed_node": r.placed_node,
                "edge_node": r.edge_node,
                "fallback_reason": r.fallback_reason,
                "migrations": r.migrations,
            }
            for r in run.result.reports
        ],
        "aggregates": {
            "n_evaluations": agg.n_evaluations,
            "p50_latency_ms": agg.p50_latency_ms,
            "p95_latency_ms": agg.p95_latency_ms,
            "p50_quality": agg.p50_quality,
            "p95_quality": agg.p95_quality,
            "mean_best_cost": agg.mean_best_cost,
            "median_converged_warm": agg.median_converged_warm,
            "median_converged_cold": agg.median_converged_cold,
            "p95_epsilon": agg.p95_epsilon,
        },
    }


def export_json(run: ScenarioRun) -> str:
    """Canonical JSON text of :func:`export_run` (sorted keys, 2-space
    indent, trailing newline) — the byte-comparison form."""
    return json.dumps(export_run(run), sort_keys=True, indent=2) + "\n"


def render_run(run: ScenarioRun) -> str:
    """Human-readable report for ``repro scenario run``."""
    spec = run.compiled.spec
    agg = run.result.aggregates
    lines = [
        f"scenario {spec.name} (seed {run.compiled.seed}, "
        f"serving {spec.serving.mode}, "
        f"{len(run.compiled.session_specs)} sessions, "
        f"{run.result.ticks} ticks)",
        f"  {spec.description}",
        "",
        f"{'session':<28} {'device':<20} {'arr_s':>7} {'warm':>5} "
        f"{'best':>8} {'conv':>5} {'node':>8}",
    ]
    for r in run.result.reports:
        warm = "yes" if r.warm_started else "no"
        node = r.edge_node if r.edge_node else "device"
        lines.append(
            f"{r.session_id:<28} {r.device:<20} {r.arrival_s:>7.2f} "
            f"{warm:>5} {r.best_cost:>8.4f} {r.converged_at:>5d} {node:>8}"
        )
    lines.append("")
    lines.append(
        f"fleet p50/p95 latency {agg.p50_latency_ms:.2f}/"
        f"{agg.p95_latency_ms:.2f} ms, mean best cost "
        f"{agg.mean_best_cost:.4f}"
    )
    if agg.p95_epsilon is not None:
        lines.append(f"fleet p95 epsilon {agg.p95_epsilon:.4f}")
    warm_txt = (
        f"{agg.median_converged_warm:.1f}"
        if agg.median_converged_warm is not None
        else "n/a"
    )
    cold_txt = (
        f"{agg.median_converged_cold:.1f}"
        if agg.median_converged_cold is not None
        else "n/a"
    )
    lines.append(
        f"median periods-to-target warm {warm_txt}, cold {cold_txt}"
    )
    return "\n".join(lines) + "\n"

"""Composable, pure-function scenario axes.

Every function here is a pure function of its arguments: randomness comes
from a private stream derived via :func:`repro.rng.derive_seed` from the
caller's seed plus the axis name (and, for per-session axes, the session
label), so the same ``(seed, parameters)`` always produce bit-identical
output no matter which other axes ran before. That is the whole replay
contract of the catalog (:mod:`repro.scenarios.catalog`): a compiled
scenario is a deterministic function of ``(spec, seed)``.

The axes:

- **Arrival processes** — :func:`diurnal_arrivals` (sinusoidal intensity,
  inverse-CDF sampled) and :func:`flash_crowd_arrivals` (a normal burst
  over a uniform background) produce the fleet's arrival schedule;
  :func:`default_fleet_specs` is the original hand-written
  staggered-cohort schedule, moved here so the ``legacy-fleet`` catalog
  entry replays the PR 2 fleet byte-for-byte.
- **Device mix** — :func:`device_mix` draws device models from a weighted
  registry mix (including the mid/low tiers added with this subsystem).
- **Workload mix / churn** — :func:`workload_mix` draws (scenario,
  taskset) pairs, optionally switching weight tables at a churn time.
- **Mobility** — :func:`mobility_link_schedule` (per-session wireless
  bandwidth breakpoints: the user walking relative to their cell) and
  :func:`mobility_events` (per-session ``DistanceChange`` scripts: the
  user walking relative to their virtual objects, the paper's §IV-E
  distance→culling→latency mechanism).
- **Thermal episodes** — :func:`thermal_flags` marks the sessions that
  run hot (the fleet builds a ThermalModel for them, see
  ``FleetConfig.thermal``).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.controller import HBOConfig
from repro.device.profiles import GALAXY_S22, PIXEL7, device_names
from repro.errors import ExperimentError, ScenarioError
from repro.fleet.session import SessionSpec
from repro.rng import derive_seed, make_rng
from repro.sim.events import DistanceChange, SceneEvent

#: The paper's publication year — the seed every legacy CLI path uses.
DEFAULT_SEED = 2024

#: The (device, scenario, taskset) cohorts the original fleet mixed.
COHORTS: Tuple[Tuple[str, str, str], ...] = (
    (PIXEL7, "SC1", "CF1"),
    (GALAXY_S22, "SC1", "CF1"),
    (PIXEL7, "SC2", "CF2"),
    (GALAXY_S22, "SC2", "CF2"),
)


def default_fleet_specs(
    n_sessions: int,
    config: HBOConfig,
    seed: int = DEFAULT_SEED,
    follow_gap_s: float = 3.0,
) -> List[SessionSpec]:
    """A mixed-cohort fleet with staggered arrivals.

    One donor per cohort arrives at t = 0 and optimizes cold; the
    remaining sessions round-robin over the cohorts and arrive (staggered
    by ``follow_gap_s``) only after every donor has finished, so each
    finds a matching donation in the store. Sessions within a cohort share
    a placement seed (identical scenes → signature distance 0) but keep
    independent measurement-noise streams.

    Moved verbatim from ``repro.experiments.fleet`` (which still
    re-exports it): this is the hand-written schedule behind ``repro
    fleet`` at seed 2024, now also the ``legacy-fleet`` catalog entry.
    """
    if n_sessions < 1:
        raise ExperimentError(f"n_sessions must be >= 1, got {n_sessions}")
    cohorts = COHORTS[: min(len(COHORTS), n_sessions)]
    donors_done_s = float(config.total_evaluations + 2)
    specs: List[SessionSpec] = []
    for index in range(n_sessions):
        device, scenario, taskset = cohorts[index % len(cohorts)]
        is_donor = index < len(cohorts)
        follower_rank = index - len(cohorts)
        specs.append(
            SessionSpec(
                session_id=f"s{index:02d}-{''.join(device.split()[1:]).lower()}-{scenario}",
                device=device,
                scenario=scenario,
                taskset=taskset,
                arrival_s=(
                    0.0 if is_donor else donors_done_s + follow_gap_s * follower_rank
                ),
                placement_seed=derive_seed(seed, "fleet-placement", scenario, device),
                # Spread users across the topology's distance axis so the
                # `nearest` placement policy has real choices to make
                # (pure function of the index; unused outside topology
                # mode, where the field is simply ignored).
                position=10.0 * (index % 4),
            )
        )
    return specs


# ------------------------------------------------------------- arrivals


def diurnal_arrivals(
    n_sessions: int,
    seed: int,
    period_s: float = 240.0,
    peak_to_base: float = 4.0,
    start_s: float = 0.0,
) -> Tuple[float, ...]:
    """Arrival times following one sinusoidal traffic wave.

    The instantaneous arrival intensity is ``1 + (peak_to_base - 1) *
    (1 - cos(2πt / period_s)) / 2`` — a trough at t = 0 and t =
    ``period_s``, a peak at ``period_s / 2`` — and arrivals are sampled
    by pushing sorted uniform quantiles through the inverse cumulative
    intensity (a time-rescaled Poisson process with the count pinned to
    ``n_sessions``). Times are rounded to 1 ms and returned sorted.
    """
    if n_sessions < 1:
        raise ScenarioError(f"n_sessions must be >= 1, got {n_sessions}")
    if period_s <= 0:
        raise ScenarioError(f"period_s must be > 0, got {period_s}")
    if peak_to_base < 1.0:
        raise ScenarioError(
            f"peak_to_base must be >= 1 (peak at least the base rate), "
            f"got {peak_to_base}"
        )
    rng = make_rng(derive_seed(seed, "scenario-axis", "diurnal"))
    quantiles = np.sort(rng.uniform(0.0, 1.0, n_sessions))
    grid_s = np.linspace(0.0, period_s, 2049)
    intensity = 1.0 + (peak_to_base - 1.0) * 0.5 * (
        1.0 - np.cos(2.0 * np.pi * grid_s / period_s)
    )
    cumulative = np.cumsum(intensity)
    cumulative = (cumulative - cumulative[0]) / (cumulative[-1] - cumulative[0])
    times_s = np.interp(quantiles, cumulative, grid_s) + start_s
    return tuple(round(float(t), 3) for t in times_s)


def flash_crowd_arrivals(
    n_sessions: int,
    seed: int,
    window_s: float = 90.0,
    burst_time_s: float = 30.0,
    burst_sigma_s: float = 4.0,
    burst_fraction: float = 0.7,
) -> Tuple[float, ...]:
    """Arrival times for a flash crowd: a tight normal burst around
    ``burst_time_s`` over a uniform background across ``window_s``.

    ``burst_fraction`` of the sessions belong to the burst (a venue
    door opening, a push notification landing); the rest trickle in
    uniformly. Negative burst draws clamp to 0. Rounded to 1 ms, sorted.
    """
    if n_sessions < 1:
        raise ScenarioError(f"n_sessions must be >= 1, got {n_sessions}")
    if window_s <= 0:
        raise ScenarioError(f"window_s must be > 0, got {window_s}")
    if burst_sigma_s <= 0:
        raise ScenarioError(f"burst_sigma_s must be > 0, got {burst_sigma_s}")
    if not 0.0 <= burst_fraction <= 1.0:
        raise ScenarioError(
            f"burst_fraction must be in [0, 1], got {burst_fraction}"
        )
    if not 0.0 <= burst_time_s <= window_s:
        raise ScenarioError(
            f"burst_time_s must be inside [0, window_s], got {burst_time_s}"
        )
    rng = make_rng(derive_seed(seed, "scenario-axis", "flash-crowd"))
    n_burst = int(round(n_sessions * burst_fraction))
    background = rng.uniform(0.0, window_s, n_sessions - n_burst)
    burst = rng.normal(burst_time_s, burst_sigma_s, n_burst)
    times_s = np.sort(np.concatenate([background, np.maximum(burst, 0.0)]))
    return tuple(round(float(t), 3) for t in times_s)


# ----------------------------------------------------------- device mix


def device_mix(
    n_sessions: int,
    seed: int,
    weights: Sequence[Tuple[str, float]],
) -> Tuple[str, ...]:
    """Draw one device model per session from a weighted registry mix.

    ``weights`` is an ordered sequence of ``(device_name, weight)`` pairs
    (order matters for determinism — a dict would also work in CPython
    but the catalog stores tuples to make the contract explicit). Every
    device must exist in :func:`repro.device.profiles.device_names` and
    weights must be positive.
    """
    if n_sessions < 1:
        raise ScenarioError(f"n_sessions must be >= 1, got {n_sessions}")
    if not weights:
        raise ScenarioError("device_mix needs at least one (device, weight)")
    known = set(device_names())
    names = [name for name, _weight in weights]
    for name, weight in weights:
        if name not in known:
            raise ScenarioError(
                f"unknown device {name!r} in mix; registry has {sorted(known)}"
            )
        if weight <= 0:
            raise ScenarioError(f"device weight for {name!r} must be > 0")
    if len(set(names)) != len(names):
        raise ScenarioError(f"duplicate devices in mix: {names}")
    rng = make_rng(derive_seed(seed, "scenario-axis", "device-mix"))
    raw = np.array([weight for _name, weight in weights], dtype=np.float64)
    chosen = rng.choice(len(names), size=n_sessions, p=raw / raw.sum())
    return tuple(names[int(i)] for i in chosen)


# ------------------------------------------------------- workload churn


def workload_mix(
    arrivals_s: Sequence[float],
    seed: int,
    weights: Sequence[Tuple[str, str, float]],
    churn_time_s: float = -1.0,
    churn_weights: Sequence[Tuple[str, str, float]] = (),
) -> Tuple[Tuple[str, str], ...]:
    """Draw one (scenario, taskset) pair per session, with optional churn.

    Sessions arriving at or after ``churn_time_s`` draw from
    ``churn_weights`` instead of ``weights`` — the app's model mix
    shifting mid-day (a new filter going viral, a heavier model rolling
    out). A negative ``churn_time_s`` (the default) disables churn. One
    uniform draw is consumed per session regardless of which table it
    lands in, so adding churn does not shift any other axis's stream.
    """

    def _validate(table: Sequence[Tuple[str, str, float]], label: str) -> None:
        if not table:
            raise ScenarioError(f"{label} needs at least one entry")
        for scenario, taskset, weight in table:
            if scenario not in ("SC1", "SC2"):
                raise ScenarioError(
                    f"{label}: unknown scenario {scenario!r} (SC1/SC2)"
                )
            if taskset not in ("CF1", "CF2"):
                raise ScenarioError(
                    f"{label}: unknown taskset {taskset!r} (CF1/CF2)"
                )
            if weight <= 0:
                raise ScenarioError(
                    f"{label}: weight for ({scenario}, {taskset}) must be > 0"
                )

    _validate(weights, "workload weights")
    if churn_time_s >= 0:
        _validate(churn_weights, "churn weights")
    rng = make_rng(derive_seed(seed, "scenario-axis", "workload-mix"))

    def _pick(
        table: Sequence[Tuple[str, str, float]], quantile: float
    ) -> Tuple[str, str]:
        total = sum(weight for _s, _t, weight in table)
        acc = 0.0
        for scenario, taskset, weight in table:
            acc += weight / total
            if quantile <= acc:
                return scenario, taskset
        return table[-1][0], table[-1][1]

    picks: List[Tuple[str, str]] = []
    for arrival_s in arrivals_s:
        quantile = float(rng.uniform(0.0, 1.0))
        table = (
            churn_weights
            if 0 <= churn_time_s <= arrival_s
            else weights
        )
        picks.append(_pick(table, quantile))
    return tuple(picks)


# -------------------------------------------------------------- mobility


def mobility_link_schedule(
    seed: int,
    label: str,
    start_s: float,
    duration_s: float,
    n_breakpoints: int = 3,
    scale_floor: float = 0.3,
    scale_ceil: float = 1.4,
) -> Tuple[Tuple[float, float], ...]:
    """Per-session wireless bandwidth breakpoints for a moving user.

    Returns ``(time_s, scale)`` pairs in the shape
    :func:`repro.sim.scenarios.apply_network_drift` consumes: nominal at
    t = 0, then ``n_breakpoints`` scale changes uniform over the
    session's active window — the user walking toward/away from their
    serving cell, through doorways, behind obstructions. Scales stay
    inside ``[scale_floor, scale_ceil]``; keep that inside the link's
    configured ``[min_scale, max_scale]`` band or the fleet will reject
    the schedule at apply time.
    """
    if duration_s <= 0:
        raise ScenarioError(f"duration_s must be > 0, got {duration_s}")
    if n_breakpoints < 1:
        raise ScenarioError(f"n_breakpoints must be >= 1, got {n_breakpoints}")
    if not 0 < scale_floor <= scale_ceil:
        raise ScenarioError(
            f"need 0 < scale_floor <= scale_ceil, got "
            f"[{scale_floor}, {scale_ceil}]"
        )
    rng = make_rng(derive_seed(seed, "scenario-axis", "mobility-link", label))
    times_s = np.sort(rng.uniform(start_s, start_s + duration_s, n_breakpoints))
    scales = rng.uniform(scale_floor, scale_ceil, n_breakpoints)
    schedule: List[Tuple[float, float]] = [(0.0, 1.0)]
    for time_s, scale in zip(times_s, scales):
        schedule.append((round(float(time_s), 3), round(float(scale), 3)))
    return tuple(schedule)


def mobility_events(
    seed: int,
    label: str,
    start_s: float,
    duration_s: float,
    n_moves: int = 2,
    max_radius_m: float = 2.5,
) -> Tuple[SceneEvent, ...]:
    """A per-session ``DistanceChange`` script for a moving user.

    ``n_moves`` user repositions uniform over the session's active
    window, each to a point within ``max_radius_m`` of the scene origin
    (where :func:`repro.sim.scenarios.place_catalog` scatters the
    objects). Stepping away grows every object's distance, the §IV-E
    culling threshold kicks in, rendered triangles drop, and latency
    falls — the mechanism the paper's Fig. 8 tail demonstrates — then
    stepping back reverses it. Returns a time-sorted script.
    """
    if duration_s <= 0:
        raise ScenarioError(f"duration_s must be > 0, got {duration_s}")
    if n_moves < 1:
        raise ScenarioError(f"n_moves must be >= 1, got {n_moves}")
    if max_radius_m <= 0:
        raise ScenarioError(f"max_radius_m must be > 0, got {max_radius_m}")
    rng = make_rng(derive_seed(seed, "scenario-axis", "mobility-user", label))
    times_s = np.sort(rng.uniform(start_s, start_s + duration_s, n_moves))
    events: List[SceneEvent] = []
    for time_s in times_s:
        direction = rng.normal(0.0, 1.0, 3)
        norm = float(np.linalg.norm(direction))
        if norm < 1e-12:  # a degenerate all-zeros draw; keep a unit vector
            direction = np.array([1.0, 0.0, 0.0])
            norm = 1.0
        radius_m = float(rng.uniform(0.3, max_radius_m))
        position = direction / norm * radius_m
        events.append(
            DistanceChange(
                time_s=round(float(time_s), 3),
                user_position=(
                    round(float(position[0]), 3),
                    round(float(position[1]), 3),
                    round(float(position[2]), 3),
                ),
            )
        )
    return tuple(events)


def mobility_flags(
    n_sessions: int, seed: int, fraction: float
) -> Tuple[bool, ...]:
    """Mark which sessions belong to the mobile cohort (one uniform draw
    per session against ``fraction``, on its own stream so toggling
    mobility never shifts the thermal or mix axes)."""
    if n_sessions < 1:
        raise ScenarioError(f"n_sessions must be >= 1, got {n_sessions}")
    if not 0.0 <= fraction <= 1.0:
        raise ScenarioError(f"fraction must be in [0, 1], got {fraction}")
    rng = make_rng(derive_seed(seed, "scenario-axis", "mobility-select"))
    draws = rng.uniform(0.0, 1.0, n_sessions)
    return tuple(bool(draw < fraction) for draw in draws)


# --------------------------------------------------------------- thermal


def thermal_flags(
    n_sessions: int, seed: int, hot_fraction: float
) -> Tuple[bool, ...]:
    """Mark which sessions run thermally throttled.

    One uniform draw per session compared against ``hot_fraction`` — a
    fraction of the fleet sits in direct sunlight or on a charger. The
    fleet only builds thermal models for flagged sessions when the
    compiled config also carries ``FleetConfig.thermal`` (the gate).
    """
    if n_sessions < 1:
        raise ScenarioError(f"n_sessions must be >= 1, got {n_sessions}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ScenarioError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    rng = make_rng(derive_seed(seed, "scenario-axis", "thermal"))
    draws = rng.uniform(0.0, 1.0, n_sessions)
    return tuple(bool(draw < hot_fraction) for draw in draws)


# -------------------------------------------------------------- position


def user_positions(
    n_sessions: int, seed: int, span_m: float = 30.0
) -> Tuple[float, ...]:
    """Each user's coordinate on the topology's 1-D distance axis.

    Uniform over ``[0, span_m)`` — :func:`repro.edge.topology.
    default_topology` spaces nodes 10 distance units apart, so the
    default span covers a 4-node metro area. Only the ``nearest``
    placement policy reads it; harmless elsewhere.
    """
    if n_sessions < 1:
        raise ScenarioError(f"n_sessions must be >= 1, got {n_sessions}")
    if span_m <= 0:
        raise ScenarioError(f"span_m must be > 0, got {span_m}")
    rng = make_rng(derive_seed(seed, "scenario-axis", "position"))
    draws = rng.uniform(0.0, span_m, n_sessions)
    return tuple(round(float(d), 3) for d in draws)

"""Scenario diversity engine: seeded generators + a replayable catalog.

``generator`` holds the pure axis functions (arrival processes, device
and workload mixes, mobility schedules, thermal flags); ``catalog``
freezes named combinations into :class:`ScenarioSpec` entries and
compiles ``(spec, seed)`` into fleet-ready configs; ``runner`` executes
compiled scenarios and exports byte-stable artifacts.

Everything here is deterministic by construction — each axis draws from
its own :func:`repro.rng.derive_seed` stream — so a scenario name plus a
seed is a complete, replayable description of a fleet workload.
"""

from repro.scenarios.catalog import (
    ArrivalSpec,
    CompiledScenario,
    DeviceMixSpec,
    MobilitySpec,
    ScenarioSpec,
    ServingSpec,
    ThermalEpisodeSpec,
    WorkloadMixSpec,
    compile_scenario,
    dump_spec,
    get_scenario,
    load_spec,
    scenario_names,
    spec_from_dict,
    spec_to_dict,
    with_serving_mode,
)
from repro.scenarios.generator import (
    COHORTS,
    DEFAULT_SEED,
    default_fleet_specs,
    device_mix,
    diurnal_arrivals,
    flash_crowd_arrivals,
    mobility_events,
    mobility_flags,
    mobility_link_schedule,
    thermal_flags,
    user_positions,
    workload_mix,
)
from repro.scenarios.runner import (
    ScenarioRun,
    export_json,
    export_run,
    render_run,
    run_scenario,
)

__all__ = [
    "ArrivalSpec",
    "COHORTS",
    "CompiledScenario",
    "DEFAULT_SEED",
    "DeviceMixSpec",
    "MobilitySpec",
    "ScenarioRun",
    "ScenarioSpec",
    "ServingSpec",
    "ThermalEpisodeSpec",
    "WorkloadMixSpec",
    "compile_scenario",
    "default_fleet_specs",
    "device_mix",
    "diurnal_arrivals",
    "dump_spec",
    "export_json",
    "export_run",
    "flash_crowd_arrivals",
    "get_scenario",
    "load_spec",
    "mobility_events",
    "mobility_flags",
    "mobility_link_schedule",
    "render_run",
    "run_scenario",
    "scenario_names",
    "spec_from_dict",
    "spec_to_dict",
    "thermal_flags",
    "user_positions",
    "with_serving_mode",
    "workload_mix",
]

"""The HBO controller: per-activation optimization runs.

An *activation* (triggered by the event-based policy or explicitly) runs
Algorithm 1 for a fixed number of iterations — the paper seeds the BO
dataset D with 5 random configurations and then executes 15 guided
iterations "to ensure convergence" (§V-B) — and finally re-applies the
configuration with the lowest observed cost, which stays in force until
the next activation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.remote import NetworkLink

import numpy as np

from repro.bo.acquisition import AcquisitionFunction, ExpectedImprovement
from repro.bo.kernels import Kernel, Matern
from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import HBOSpace
from repro.core.algorithm import HBOIteration, IterationResult
from repro.core.system import MARSystem, Measurement
from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class HBOConfig:
    """Hyperparameters of an HBO deployment (paper defaults)."""

    w: float = 2.5  # Eq. 3 latency/quality weight (§V-B)
    n_initial: int = 5  # random configurations seeding D (§V-B)
    n_iterations: int = 15  # guided BO iterations per activation (§V-B)
    r_min: float = 0.1  # Constraint 10 lower bound on x
    kernel_length_scale: float = 1.0  # Eq. 7's l
    noise: float = 1e-3  # GP observation-noise variance
    latency_only: bool = False  # BNT's simplified cost
    #: Evaluate the configuration already running as the first dataset
    #: entry of each activation. The paper seeds D with random configs
    #: only; including the incumbent guarantees an activation never
    #: settles on something worse than the status quo.
    seed_incumbent: bool = True
    #: Energy extension (off by default, beyond the paper): price the
    #: system's relative power draw into the BO cost with this weight —
    #: see :func:`repro.device.power.energy_aware_cost`.
    w_power: float = 0.0
    #: Surrogate tier: ``"exact"`` (paper behavior, full O(n³) refits) or
    #: ``"sparse"`` (auto-switch to a budgeted subset-of-data GP once the
    #: dataset outgrows ``gp_sparse_threshold`` — see ``docs/optimizer.md``).
    gp_tier: str = "exact"
    #: The sparse tier's switch point n* and support budget.
    gp_sparse_threshold: int = 64

    def __post_init__(self) -> None:
        if self.w < 0:
            raise ConfigurationError(f"w must be >= 0, got {self.w}")
        if self.n_initial < 1:
            raise ConfigurationError(f"n_initial must be >= 1, got {self.n_initial}")
        if self.n_iterations < 0:
            raise ConfigurationError(
                f"n_iterations must be >= 0, got {self.n_iterations}"
            )
        if not 0.0 <= self.r_min < 1.0:
            raise ConfigurationError(f"r_min must be in [0, 1), got {self.r_min}")
        if self.w_power < 0:
            raise ConfigurationError(f"w_power must be >= 0, got {self.w_power}")
        if self.gp_tier not in ("exact", "sparse"):
            raise ConfigurationError(
                f"gp_tier must be 'exact' or 'sparse', got {self.gp_tier!r}"
            )
        if self.gp_sparse_threshold < 4:
            raise ConfigurationError(
                f"gp_sparse_threshold must be >= 4, got {self.gp_sparse_threshold}"
            )

    @property
    def total_evaluations(self) -> int:
        """Evaluated configurations per activation (random + guided)."""
        return self.n_initial + self.n_iterations


@dataclass
class HBORunResult:
    """The outcome of one activation."""

    iterations: List[IterationResult] = field(default_factory=list)
    final_measurement: Optional[Measurement] = None

    @property
    def best_index(self) -> int:
        if not self.iterations:
            raise ConfigurationError("activation produced no iterations")
        costs = [it.cost for it in self.iterations]
        return int(np.argmin(costs))

    @property
    def best(self) -> IterationResult:
        return self.iterations[self.best_index]

    def best_cost_trajectory(self) -> np.ndarray:
        """Running minimum cost per iteration (Fig. 4c / Fig. 7 series)."""
        return np.minimum.accumulate([it.cost for it in self.iterations])

    def consecutive_distances(self) -> np.ndarray:
        """Euclidean distance between consecutive BO points (Fig. 6a)."""
        pts = np.asarray([it.z for it in self.iterations])
        if pts.shape[0] < 2:
            return np.empty(0)
        return np.linalg.norm(np.diff(pts, axis=0), axis=1)


class HBOController:
    """Runs activations against a :class:`~repro.core.system.MARSystem`."""

    def __init__(
        self,
        system: MARSystem,
        config: Optional[HBOConfig] = None,
        kernel: Optional[Kernel] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        offload_link: Optional["NetworkLink"] = None,
        seed: SeedLike = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else HBOConfig()
        self._kernel = kernel
        self._acquisition = acquisition
        self._offload_link = offload_link
        self._rng = make_rng(seed)
        self.activations: List[HBORunResult] = []
        #: Network accounting of the last offloaded activation (None when
        #: BO runs on-device, the default).
        self.last_offload_stats = None

    def _count_lattice_anchors(self, space: HBOSpace) -> Optional[np.ndarray]:
        """Candidate anchors at the centers of the heuristic's rounding
        cells: one proportion vector per integer task-count split, crossed
        with a coarse triangle-ratio grid. For small tasksets some count
        cells are narrow slivers of the simplex that uniform sampling can
        miss entirely; anchoring guarantees the acquisition scores them.
        """
        m = len(self.system.taskset)
        n = space.n_resources
        if m == 0:
            return None
        from itertools import product

        count_vectors = [
            counts
            for counts in product(range(m + 1), repeat=n)
            if sum(counts) == m
        ]
        if len(count_vectors) > 128:  # large tasksets: sampling covers cells
            return None
        x_grid = np.linspace(self.config.r_min, 1.0, 5)
        anchors = []
        for counts in count_vectors:
            c = np.asarray(counts, dtype=float) / m
            for x in x_grid:
                anchors.append(np.concatenate([c, [x]]))
        return np.asarray(anchors)

    def _build_optimizer(self) -> BayesianOptimizer:
        cfg = self.config
        space = HBOSpace(self.system.n_resources, r_min=cfg.r_min)
        return BayesianOptimizer(
            space=space,
            n_initial=cfg.n_initial,
            kernel=self._kernel
            if self._kernel is not None
            else Matern(length_scale=cfg.kernel_length_scale, nu=2.5),
            acquisition=self._acquisition
            if self._acquisition is not None
            else ExpectedImprovement(),
            noise=cfg.noise,
            anchors=self._count_lattice_anchors(space),
            seed=self._rng,
            gp_tier=cfg.gp_tier,
            sparse_threshold=cfg.gp_sparse_threshold,
        )

    def _evaluate_incumbent(self, optimizer: BayesianOptimizer) -> "IterationResult":
        """Measure the currently-running configuration and record it in
        the BO dataset (see ``HBOConfig.seed_incumbent``)."""
        from repro.core.algorithm import IterationResult
        from repro.core.cost import cost_from_measurement, latency_cost

        cfg = self.config
        space: HBOSpace = optimizer.space  # type: ignore[assignment]
        allocation = self.system.device.allocation
        m = max(1, len(allocation))
        counts = np.zeros(self.system.n_resources)
        resources = self.system.resources
        for resource in allocation.values():
            counts[resources.index(resource)] += 1
        proportions = counts / m
        ratio = float(
            np.clip(self.system.scene.triangle_ratio, cfg.r_min, 1.0)
        )
        z = space.project(space.join(proportions, ratio))
        measurement = self.system.measure()
        if cfg.latency_only:
            phi = latency_cost(measurement.epsilon, cfg.w)
        elif cfg.w_power > 0:
            from repro.device.power import PowerModel, energy_aware_cost

            power_w = PowerModel().system_power_w(
                self.system.device.soc,
                self.system.device.placements(),
                self.system.device.load,
                edge=self.system.edge_share(),
            )
            phi = energy_aware_cost(
                measurement.quality,
                measurement.epsilon,
                power_w,
                w_latency=cfg.w,
                w_power=cfg.w_power,
            )
        else:
            phi = cost_from_measurement(measurement, cfg.w)
        optimizer.tell(z, phi)
        return IterationResult(
            z=z,
            proportions=proportions,
            triangle_ratio=ratio,
            allocation=allocation,
            object_ratios=self.system.scene.ratios(),
            measurement=measurement,
            cost=phi,
        )

    def activate(self) -> HBORunResult:
        """One full activation: explore, then lock in the best config.

        The optimizer is fresh per activation (the paper re-initializes D
        with random configurations on each activation, §V-D).
        """
        cfg = self.config
        optimizer = self._build_optimizer()
        if self._offload_link is not None:
            # §VI: run BO on an edge server; ask/tell cross the network.
            from repro.core.remote import RemoteOptimizerProxy

            optimizer = RemoteOptimizerProxy(
                optimizer, link=self._offload_link, seed=self._rng
            )
        step = HBOIteration(
            self.system,
            optimizer,
            w=cfg.w,
            latency_only=cfg.latency_only,
            w_power=cfg.w_power,
        )
        result = HBORunResult()
        with obs.span(
            "hbo.activation",
            category="core",
            n_evaluations=cfg.total_evaluations,
            offloaded=self._offload_link is not None,
        ):
            if cfg.seed_incumbent and len(self.system.scene) > 0:
                result.iterations.append(self._evaluate_incumbent(optimizer))
            for _ in range(cfg.total_evaluations):
                result.iterations.append(step.run_once())
        obs.counter("hbo_activations").inc()

        # Re-apply the lowest-cost configuration found (post-loop, §IV-D).
        best = result.best
        if cfg.latency_only:
            self.system.apply_uniform_ratio(best.allocation, 1.0)
        else:
            self.system.apply(best.allocation, best.triangle_ratio)
        result.final_measurement = self.system.measure()
        self.activations.append(result)
        if self._offload_link is not None:
            self.last_offload_stats = optimizer.stats
        return result

"""Activation policies (§IV-E).

HBO does not re-optimize on a timer. The event-based policy records the
reward B_t achieved right after an optimization as a *reference* and then
monitors the live reward periodically (every 2 s in the paper's Fig. 8
experiment). A new optimization is triggered when the reward drifts from
the reference by more than a tunable fraction — the paper uses asymmetric
boundaries: 5% for an *increase* (an opportunity appeared, e.g. the user
stepped back and quality improved for free) and 10% for a *decrease* (a
regression, e.g. a heavy object landed). The very first object placement
always triggers, to establish the reference.

:class:`PeriodicPolicy` reproduces the comparison policy of Fig. 8b.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError


class EventBasedPolicy:
    """The paper's event-based activation policy.

    ``confirmations`` adds hysteresis against measurement noise: the drift
    must be observed on that many *consecutive* monitoring samples before
    an activation fires (a single noisy reward sample re-optimizing the
    whole system would defeat the policy's purpose of limiting overhead).
    """

    def __init__(
        self,
        increase_threshold: float = 0.05,
        decrease_threshold: float = 0.10,
        confirmations: int = 2,
        min_scale: float = 1.0,
    ) -> None:
        if increase_threshold <= 0:
            raise ConfigurationError(
                f"increase_threshold must be > 0, got {increase_threshold}"
            )
        if decrease_threshold <= 0:
            raise ConfigurationError(
                f"decrease_threshold must be > 0, got {decrease_threshold}"
            )
        if confirmations < 1:
            raise ConfigurationError(
                f"confirmations must be >= 1, got {confirmations}"
            )
        if min_scale <= 0:
            raise ConfigurationError(f"min_scale must be > 0, got {min_scale}")
        self.increase_threshold = float(increase_threshold)
        self.decrease_threshold = float(decrease_threshold)
        self.confirmations = int(confirmations)
        self.min_scale = float(min_scale)
        self._reference: Optional[float] = None
        self._drift_streak = 0

    @property
    def reference(self) -> Optional[float]:
        """The reward recorded after the last optimization (None before
        the first activation)."""
        return self._reference

    def should_activate(self, current_reward: float) -> bool:
        """Decide whether the observed reward warrants re-optimizing."""
        if self._reference is None:
            return True  # first placement: establish the reference
        ref = self._reference
        # Relative drift with a scale floor: the reward B = Q − w·ε crosses
        # zero routinely, and dividing by a near-zero reference would turn
        # measurement noise into constant re-activations.
        scale = max(abs(ref), self.min_scale)
        drift = (current_reward - ref) / scale
        drifting = (
            drift >= self.increase_threshold or drift <= -self.decrease_threshold
        )
        if drifting:
            self._drift_streak += 1
        else:
            self._drift_streak = 0
        return self._drift_streak >= self.confirmations

    def record_reference(self, reward: float) -> None:
        """Store the post-optimization reward as the new reference."""
        self._reference = float(reward)
        self._drift_streak = 0

    def reset(self) -> None:
        self._reference = None
        self._drift_streak = 0


class PeriodicPolicy:
    """Re-optimize every ``period`` monitoring steps (Fig. 8b)."""

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self.period = int(period)
        self._steps_since = None  # type: Optional[int]

    @property
    def reference(self) -> Optional[float]:
        return None

    def should_activate(self, current_reward: float) -> bool:
        if self._steps_since is None:
            return True
        return self._steps_since >= self.period

    def record_reference(self, reward: float) -> None:
        self._steps_since = 0

    def step(self) -> None:
        """Advance one monitoring interval."""
        if self._steps_since is not None:
            self._steps_since += 1

    def reset(self) -> None:
        self._steps_since = None

"""HBO core: the paper's primary contribution.

- :mod:`repro.core.cost` — reward/cost functions (Eq. 3–5) and the
  normalized latency metric (Eq. 4).
- :mod:`repro.core.system` — the MAR system facade binding taskset,
  device, scene and renderer; the "plant" both HBO and the baselines
  control.
- :mod:`repro.core.allocation` — the heuristic translating BO's
  fractional resource proportions into per-task allocations
  (Algorithm 1, Lines 2–22).
- :mod:`repro.core.algorithm` — one full HBO iteration (Algorithm 1).
- :mod:`repro.core.activation` — event-based (§IV-E) and periodic
  activation policies.
- :mod:`repro.core.controller` — the HBO controller tying it together.
- :mod:`repro.core.lookup` — the §VI environment lookup-table extension.
- :mod:`repro.core.remote` — the §VI edge-offloaded BO extension.
"""

from repro.core.activation import EventBasedPolicy, PeriodicPolicy
from repro.core.algorithm import HBOIteration, IterationResult, run_hbo_iteration
from repro.core.allocation import allocate_tasks, proportions_to_counts
from repro.core.controller import HBOConfig, HBOController, HBORunResult
from repro.core.cost import cost_from_measurement, normalized_average_latency, reward
from repro.core.lookup import EnvironmentSignature, LookupAwareController, LookupTable
from repro.core.remote import NetworkLink, RemoteOptimizerProxy
from repro.core.system import MARSystem, Measurement

__all__ = [
    "EnvironmentSignature",
    "EventBasedPolicy",
    "HBOConfig",
    "HBOController",
    "HBOIteration",
    "HBORunResult",
    "IterationResult",
    "LookupAwareController",
    "LookupTable",
    "MARSystem",
    "Measurement",
    "NetworkLink",
    "RemoteOptimizerProxy",
    "PeriodicPolicy",
    "allocate_tasks",
    "cost_from_measurement",
    "normalized_average_latency",
    "proportions_to_counts",
    "reward",
    "run_hbo_iteration",
]

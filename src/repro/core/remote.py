"""Edge-offloaded Bayesian optimization (the paper's §VI overhead remedy).

"The Bayesian Optimization algorithm can be executed on a local edge
server to eliminate its overhead from local computations ... by uploading
the obtained performance from the cost calculator to the server and
downloading the next configuration to test ... The payload for exchanging
such information is in the order of a few Bytes."

:class:`RemoteOptimizerProxy` wraps a :class:`~repro.bo.optimizer.
BayesianOptimizer` living "on the server": every ``ask``/``tell`` crosses
a simulated network link, accounting round-trip time and payload bytes,
while the device-side compute cost of the GP drops to zero. The proxy is
drop-in compatible with :class:`~repro.core.algorithm.HBOIteration`
(same ask/tell/space surface), so a controller can be pointed at an edge
server with one argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.bo.optimizer import BayesianOptimizer, Observation, OptimizerState, SpaceLike
from repro.edge.link import NetworkLink
from repro.obs import runtime as obs
from repro.rng import SeedLike, make_rng

__all__ = ["NetworkLink", "OffloadStats", "RemoteOptimizerProxy"]


@dataclass
class OffloadStats:
    """Network accounting for one activation's worth of BO traffic."""

    exchanges: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    network_ms: float = 0.0
    #: Exchanges that carried more than one observation (``tell_many`` /
    #: ``warm_start``): the batching amortizes per-exchange framing and
    #: round trips across the whole payload.
    batched_exchanges: int = 0
    #: Observations shipped inside batched exchanges.
    batched_observations: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    @property
    def mean_bytes_per_exchange(self) -> float:
        return self.total_bytes / self.exchanges if self.exchanges else 0.0


class RemoteOptimizerProxy:
    """Ask/tell facade over an optimizer running on an edge server.

    The serialized payloads are what the paper describes: a configuration
    vector down (N+1 float32 values) and a scalar cost up (one float32
    plus the echoed vector) — a few dozen bytes per control period.
    """

    #: float32 per coordinate + a small framing overhead.
    _FRAME_BYTES = 16

    def __init__(
        self,
        optimizer: BayesianOptimizer,
        link: Optional[NetworkLink] = None,
        seed: SeedLike = None,
    ) -> None:
        self._optimizer = optimizer
        self.link = link if link is not None else NetworkLink()
        self.stats = OffloadStats()
        self._rng = make_rng(seed)

    # ------------------------------------------------- optimizer interface

    @property
    def space(self) -> SpaceLike:
        return self._optimizer.space

    @property
    def state(self) -> OptimizerState:
        return self._optimizer.state

    @property
    def n_observations(self) -> int:
        return self._optimizer.n_observations

    @property
    def in_initial_phase(self) -> bool:
        return self._optimizer.in_initial_phase

    def _vector_bytes(self) -> int:
        return 4 * self.space.dim + self._FRAME_BYTES

    def _record_exchange(self, kind: str, payload_bytes: int, transfer_ms: float) -> None:
        obs.counter("remote_exchanges", kind=kind).inc()
        obs.histogram("remote_payload_bytes").observe(payload_bytes)
        obs.histogram("remote_network_ms").observe(transfer_ms)

    def ask(self) -> np.ndarray:
        """Download the next configuration from the server."""
        z = self._optimizer.ask()
        payload = self._vector_bytes()
        self.stats.exchanges += 1
        self.stats.bytes_down += payload
        self.stats.bytes_up += self._FRAME_BYTES  # the request frame
        transfer = self.link.transfer_ms(payload, self._rng)
        self.stats.network_ms += transfer
        self._record_exchange("ask", payload, transfer)
        return z

    def tell(self, z: np.ndarray, cost: float) -> None:
        """Upload the measured cost of a configuration."""
        payload = self._vector_bytes() + 4  # echoed vector + float32 cost
        self.stats.exchanges += 1
        self.stats.bytes_up += payload
        self.stats.bytes_down += self._FRAME_BYTES  # the ack
        transfer = self.link.transfer_ms(payload, self._rng)
        self.stats.network_ms += transfer
        self._record_exchange("tell", payload, transfer)
        self._optimizer.tell(z, cost)

    def _batched_payload_bytes(self, n_observations: int) -> int:
        """Upload size of ``n_observations`` (vector, cost) pairs shipped
        in one exchange: one shared frame instead of one per observation."""
        per_observation = 4 * self.space.dim + 4  # float32 vector + cost
        return n_observations * per_observation + self._FRAME_BYTES

    def _account_batch(self, n_observations: int) -> None:
        payload = self._batched_payload_bytes(n_observations)
        self.stats.exchanges += 1
        self.stats.batched_exchanges += 1
        self.stats.batched_observations += n_observations
        self.stats.bytes_up += payload
        self.stats.bytes_down += self._FRAME_BYTES  # the ack
        transfer = self.link.transfer_ms(payload, self._rng)
        self.stats.network_ms += transfer
        self._record_exchange("batch", payload, transfer)

    def tell_many(self, observations: Sequence[Tuple[np.ndarray, float]]) -> None:
        """Upload a batch of measured costs in a single exchange.

        Fleet deployments report several sessions' control periods per
        tick; shipping them together pays one round trip and one frame for
        the whole batch instead of per observation, so the per-observation
        network cost shrinks as the batch grows.
        """
        if not observations:
            return
        self._account_batch(len(observations))
        for z, cost in observations:
            self._optimizer.tell(z, cost)

    def warm_start(self, observations: Sequence[Observation]) -> int:
        """Ship donor observations to the server-side optimizer.

        The transfer is one batched exchange (same accounting as
        :meth:`tell_many`); see
        :meth:`~repro.bo.optimizer.BayesianOptimizer.warm_start`.
        """
        if observations:
            self._account_batch(len(observations))
        return self._optimizer.warm_start(observations)

    def best(self) -> Observation:
        return self._optimizer.best()

    # ------------------------------------------------------------ reporting

    def mean_exchange_ms(self) -> float:
        """Average network cost per ask/tell — the §VI overhead figure."""
        if self.stats.exchanges == 0:
            return 0.0
        return self.stats.network_ms / self.stats.exchanges

"""Batched noise-free scoring of Algorithm-1 candidate configurations.

The scalar control loop prices one configuration per control period by
actually driving the system (apply → measure → tell). Enumeration-grid
callers — acquisition frontiers, baseline grid scans, design-space sweeps
— need the *model's* view of thousands of candidates without touching
the live system or its RNG streams. :class:`FrontierEvaluator` maps a
batch of BO vectors ``z = [c; x]`` through the same deterministic
pipeline Algorithm 1 uses:

1. ``c`` → integer counts (:func:`~repro.core.allocation.
   proportions_to_counts_batch`) → per-task allocations (memoized queue
   drains, :func:`~repro.core.allocation.allocations_for_counts`);
2. ``x`` → per-object triangle ratios via the batched TD heuristic
   (:func:`~repro.ar.distribution.distribute_triangles_batch`);
3. allocations + ratios → one :class:`~repro.backend.plan.EvalPlan`
   solved in a single :func:`repro.backend.solve` pass → ε, Q and φ per
   candidate.

Scores are the *steady-state* (noise-free) values: what a measurement
with ``noise_sigma = 0`` would return. They agree with the scalar
apply/measure path to ≤ 1e-9 (the grid path uses the solver's fast
mode, whose powers may differ from libm by 1 ulp).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backend.plan import EvalPlan, resource_kind
from repro.backend.solve import SolveResult, solve
from repro.ar.distribution import distribute_triangles_batch
from repro.core.allocation import allocations_for_counts, proportions_to_counts_batch
from repro.core.system import MARSystem
from repro.device.resources import Resource
from repro.edge.share import edge_compute_ms, edge_demand, edge_tx_ms
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrontierResult:
    """Scores for a batch of candidate configurations.

    Arrays are indexed by candidate row; ``allocations[k]`` is the
    per-task resource map row ``k`` decoded to (shared dict objects —
    rows with equal count vectors share one allocation).
    """

    zs: np.ndarray  # (n, d): the evaluated BO vectors
    proportions: np.ndarray  # (n, R)
    triangle_ratio: np.ndarray  # (n,): x actually applied (1.0 if latency-only)
    counts: np.ndarray  # (n, R) int
    allocations: Tuple[Mapping[str, Resource], ...]
    object_ids: Tuple[str, ...]  # sorted instance ids (TD order)
    object_ratios: np.ndarray  # (n, L)
    latency_ms: np.ndarray  # (n, M) per-task steady latency
    epsilon: np.ndarray  # (n,)
    quality: np.ndarray  # (n,)
    phi: np.ndarray  # (n,)

    @property
    def n_candidates(self) -> int:
        return int(self.zs.shape[0])

    @property
    def best_index(self) -> int:
        """Row of the lowest cost φ (ties → first row, deterministic)."""
        return int(np.argmin(self.phi))


class FrontierEvaluator:
    """Scores batches of BO vectors against one system, without touching it.

    The constructor snapshots everything the score depends on — task
    profiles, expected latencies, scene geometry, degradation parameters,
    SoC constants — so repeated :meth:`evaluate` calls do no per-call
    Python work beyond the (memoized) allocation decode.
    """

    def __init__(
        self, system: MARSystem, w: float, latency_only: bool = False
    ) -> None:
        if w < 0:
            raise ConfigurationError(f"w must be >= 0, got {w}")
        self.system = system
        self.w = float(w)
        self.latency_only = bool(latency_only)
        self.n_resources = system.n_resources

        taskset = system.taskset
        self._taskset = taskset
        self._task_ids: Tuple[str, ...] = taskset.task_ids
        n_tasks = len(taskset)
        #: The resource tuple this frontier scores over (4 columns with
        #: edge) and the edge pricing snapshot taken at construction —
        #: frontier scores are steady-state, so a fixed share is the
        #: model's view, matching what a measurement under the same share
        #: would return.
        self._resources: Tuple[Resource, ...] = system.resources
        self._edge_share = system.edge_share()
        n_res = len(self._resources)
        # Isolation-latency lookup: (task, resource-index) → ms; NaN marks
        # incompatible pairs, which the allocator never selects. The EDGE
        # column holds the *server-compute* part only — transfer rides in
        # the plan's task_edge_tx_ms, mirroring the scalar decomposition.
        self._lat_table = np.full((n_tasks, n_res), np.nan, dtype=np.float64)
        for j, task in enumerate(taskset):
            for r, res in enumerate(self._resources):
                if not task.profile.supports(res):
                    continue
                if res is Resource.EDGE:
                    assert self._edge_share is not None
                    self._lat_table[j, r] = edge_compute_ms(
                        task.profile, self._edge_share
                    )
                else:
                    self._lat_table[j, r] = task.profile.latency(res)
        self._kind_of_res = np.array(
            [resource_kind(res) for res in self._resources], dtype=np.int64
        )
        self._res_index = {res: r for r, res in enumerate(self._resources)}
        if self._edge_share is not None:
            share = self._edge_share
            self._edge_tx = np.array(
                [edge_tx_ms(t.profile, share) for t in taskset],
                dtype=np.float64,
            )
            self._edge_dem = np.array(
                [edge_demand(t.profile) for t in taskset], dtype=np.float64
            )
        self._cpu_demand = np.array(
            [t.profile.cpu_demand for t in taskset], dtype=np.float64
        )
        self._gpu_demand = np.array(
            [t.profile.gpu_demand for t in taskset], dtype=np.float64
        )
        self._npu_coverage = np.array(
            [t.profile.npu_coverage for t in taskset], dtype=np.float64
        )
        expected = taskset.expected_latencies()
        self._expected = np.array(
            [expected[tid] for tid in self._task_ids], dtype=np.float64
        )

        # Scene snapshot in TD (sorted-id) order.
        self._objects = system.objects_map()
        self._distances = system.scene.distances()
        ids = sorted(self._objects)
        self._object_ids: Tuple[str, ...] = tuple(ids)
        self._max_tris = np.array(
            [self._objects[i].max_triangles for i in ids], dtype=np.float64
        )
        self._cull = np.array(
            [
                system.render_model.culled_fraction(self._distances[i])
                for i in ids
            ],
            dtype=np.float64,
        )
        params = [self._objects[i].degradation.params for i in ids]
        self._obj_a = np.array([p.a for p in params], dtype=np.float64)
        self._obj_b = np.array([p.b for p in params], dtype=np.float64)
        self._obj_c = np.array([p.c for p in params], dtype=np.float64)
        # D^{d_i} with Python-float pow, matching DegradationModel.error.
        self._obj_denom = np.array(
            [self._distances[i] ** p.d for i, p in zip(ids, params)],
            dtype=np.float64,
        )
        # Per-allocation task rows, memoized by count vector.
        self._alloc_rows: Dict[
            Tuple[int, ...], Tuple[np.ndarray, np.ndarray]
        ] = {}

    # ----------------------------------------------------------------- public

    def evaluate(self, zs: np.ndarray) -> FrontierResult:
        """Score ``zs`` (shape ``(n, R + 1)``) in one backend solve."""
        zs = np.asarray(zs, dtype=np.float64)
        if zs.ndim == 1:
            zs = zs[np.newaxis, :]
        n_res = self.n_resources
        if zs.ndim != 2 or zs.shape[1] != n_res + 1:
            raise ConfigurationError(
                f"candidates must have shape (n, {n_res + 1}), got {zs.shape}"
            )
        proportions = zs[:, :n_res]
        n = zs.shape[0]
        if self.latency_only:
            ratios = np.ones(n, dtype=np.float64)
        else:
            ratios = zs[:, n_res].copy()

        counts = proportions_to_counts_batch(proportions, len(self._taskset))
        allocations = allocations_for_counts(
            self._taskset, counts, self._resources
        )
        kind, iso = self._task_rows(counts, allocations)

        ids, obj_ratios = distribute_triangles_batch(
            self._objects,
            self._distances,
            ratios,
            reference_ratio=self.system.td_reference_ratio,
        )
        drawn = obj_ratios * self._max_tris
        submitted = drawn.sum(axis=1) if ids else np.zeros(n)
        rendered = (drawn * self._cull).sum(axis=1) if ids else np.zeros(n)

        quality_block: Dict[str, Optional[np.ndarray]] = {
            "obj_ratio": None,
            "obj_a": None,
            "obj_b": None,
            "obj_c": None,
            "obj_denom": None,
        }
        if not self.latency_only:
            shape = (n, len(ids))
            quality_block = {
                "obj_ratio": obj_ratios,
                "obj_a": np.broadcast_to(self._obj_a, shape),
                "obj_b": np.broadcast_to(self._obj_b, shape),
                "obj_c": np.broadcast_to(self._obj_c, shape),
                "obj_denom": np.broadcast_to(self._obj_denom, shape),
            }

        edge_block: Dict[str, np.ndarray] = {}
        if self._edge_share is not None:
            share = self._edge_share
            edge_block = {
                "task_edge_tx_ms": np.broadcast_to(self._edge_tx, iso.shape),
                "task_edge_demand": np.broadcast_to(self._edge_dem, iso.shape),
                "edge_capacity": np.full(n, share.capacity_streams),
                "edge_queue_exponent": np.full(n, share.queue_exponent),
                "edge_extern_streams": np.full(n, share.extern_streams),
            }

        plan = EvalPlan.for_single_soc(
            self.system.device.soc,
            task_iso_ms=iso,
            task_kind=kind,
            task_cpu_demand=np.broadcast_to(self._cpu_demand, iso.shape),
            task_gpu_demand=np.broadcast_to(self._gpu_demand, iso.shape),
            task_npu_coverage=np.broadcast_to(self._npu_coverage, iso.shape),
            n_objects=np.full(n, float(len(ids))),
            submitted_triangles=submitted,
            rendered_triangles=rendered,
            base_gpu_streams=np.full(
                n, self.system.render_model.base_gpu_streams
            ),
            task_expected_ms=np.broadcast_to(self._expected, iso.shape),
            w=self.w,
            **quality_block,
            **edge_block,  # type: ignore[arg-type]
        )
        result: SolveResult = solve(plan)
        assert result.epsilon is not None and result.phi is not None
        quality = (
            result.quality
            if result.quality is not None
            else np.ones(n, dtype=np.float64)
        )
        return FrontierResult(
            zs=zs,
            proportions=proportions,
            triangle_ratio=ratios,
            counts=counts,
            allocations=tuple(allocations),
            object_ids=tuple(ids),
            object_ratios=obj_ratios,
            latency_ms=result.latency_ms,
            epsilon=result.epsilon,
            quality=quality,
            phi=result.phi,
        )

    # -------------------------------------------------------------- internals

    def _task_rows(
        self,
        counts: np.ndarray,
        allocations: Sequence[Mapping[str, Resource]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (kind, isolation-latency) task arrays.

        Memoized on the count vector — the allocation is a pure function
        of it — so a thousand-row grid builds only as many distinct rows
        as there are distinct counts.
        """
        kind_rows: List[np.ndarray] = []
        iso_rows: List[np.ndarray] = []
        for row, alloc in zip(counts, allocations):
            key = tuple(int(v) for v in row)
            cached = self._alloc_rows.get(key)
            if cached is None:
                res_ix = np.array(
                    [self._res_index[alloc[tid]] for tid in self._task_ids],
                    dtype=np.int64,
                )
                cached = (
                    self._kind_of_res[res_ix],
                    self._lat_table[np.arange(len(self._task_ids)), res_ix],
                )
                self._alloc_rows[key] = cached
            kind_rows.append(cached[0])
            iso_rows.append(cached[1])
        return np.stack(kind_rows), np.stack(iso_rows)

"""The MAR system facade — the "plant" that HBO and the baselines control.

:class:`MARSystem` binds together the four substrates:

- a :class:`~repro.models.tasks.TaskSet` of continuously-inferring AI
  tasks,
- a :class:`~repro.device.executor.DeviceSimulator` (the phone),
- a :class:`~repro.ar.scene.Scene` of placed virtual objects,
- a :class:`~repro.ar.renderer.RenderLoadModel` converting the scene into
  device load.

A controller interacts with it through exactly two verbs, mirroring the
paper's control loop: :meth:`apply` a configuration (per-task allocation +
total triangle ratio, distributed per-object by TD) and :meth:`measure`
the resulting performance over a control period (average per-task latency,
Eq. 4 normalized latency ε, Eq. 2 quality Q).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.ar.distribution import distribute_triangles
from repro.ar.objects import VirtualObject
from repro.ar.renderer import RenderLoadModel
from repro.ar.scene import Scene
from repro.core.cost import normalized_average_latency, reward
from repro.device.executor import DeviceSimulator
from repro.device.resources import ALL_RESOURCES, EDGE_RESOURCES, Resource
from repro.edge.share import EdgeShare
from repro.errors import ConfigurationError
from repro.models.tasks import TaskSet


@dataclass(frozen=True)
class Measurement:
    """Performance observed over one control period."""

    latencies_ms: Mapping[str, float]  # per task
    epsilon: float  # Eq. 4
    quality: float  # Eq. 2
    triangle_ratio: float  # overall x actually drawn
    allocation: Mapping[str, Resource]

    def reward(self, w: float) -> float:
        """Eq. 3 for this measurement."""
        return reward(self.quality, self.epsilon, w)

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms.values()) / len(self.latencies_ms)


class MARSystem:
    """A running MAR app: taskset + device + scene + renderer."""

    def __init__(
        self,
        taskset: TaskSet,
        device: DeviceSimulator,
        scene: Scene,
        render_model: Optional[RenderLoadModel] = None,
        samples_per_period: int = 20,
        td_reference_ratio: float = 0.5,
    ) -> None:
        if samples_per_period < 1:
            raise ConfigurationError(
                f"samples_per_period must be >= 1, got {samples_per_period}"
            )
        self.taskset = taskset
        self.device = device
        self.scene = scene
        self.render_model = render_model if render_model is not None else RenderLoadModel()
        self.samples_per_period = int(samples_per_period)
        self.td_reference_ratio = float(td_reference_ratio)
        # Register tasks on the device at their affinity allocation.
        for task in taskset:
            if task.task_id not in device.task_ids:
                device.add_task(task.task_id, task.profile)
        self._expected = taskset.expected_latencies()
        self.refresh_load()

    # ------------------------------------------------------------- plumbing

    @property
    def resources(self) -> Tuple[Resource, ...]:
        """The allocation choices this system schedules over: the
        paper's on-device trio, plus ``EDGE`` when the device carries an
        edge runtime (N becomes 4)."""
        if self.device.edge is not None:
            return EDGE_RESOURCES
        return ALL_RESOURCES

    @property
    def n_resources(self) -> int:
        return len(self.resources)  # the paper's N (3, or 4 with edge)

    def edge_share(self) -> Optional[EdgeShare]:
        """The device's current edge pricing snapshot (``None`` when the
        edge subsystem is off)."""
        return self.device.edge_share()

    def objects_map(self) -> Dict[str, VirtualObject]:
        return {p.instance_id: p.obj for p in self.scene}

    def refresh_load(self) -> None:
        """Recompute device load from the current scene (call after any
        scene mutation: object add/remove, ratio change, user move)."""
        self.device.set_load(self.render_model.system_load(self.scene))

    # ------------------------------------------------------------- control

    def apply(
        self, allocation: Mapping[str, Resource], triangle_ratio: float
    ) -> Dict[str, float]:
        """Enforce a configuration: reallocate tasks, redistribute
        triangles via TD, redraw. Returns the per-object ratios chosen."""
        self.device.apply_allocation(dict(allocation))
        objects = self.objects_map()
        if objects:
            ratios = distribute_triangles(
                objects,
                self.scene.distances(),
                triangle_ratio,
                reference_ratio=self.td_reference_ratio,
            )
            self.scene.apply_ratios(ratios)
        else:
            ratios = {}
        self.refresh_load()
        return ratios

    def apply_uniform_ratio(
        self, allocation: Mapping[str, Resource], triangle_ratio: float
    ) -> Dict[str, float]:
        """Like :meth:`apply` but with a uniform per-object ratio (used by
        baselines that do not run TD)."""
        self.device.apply_allocation(dict(allocation))
        ratios = {iid: max(0.05, triangle_ratio) for iid in self.scene.instance_ids}
        self.scene.apply_ratios(ratios)
        self.refresh_load()
        return ratios

    def measure(
        self,
        samples: Optional[int] = None,
        steady_latencies: Optional[Mapping[str, float]] = None,
    ) -> Measurement:
        """Observe one control period under the current configuration.

        ``steady_latencies`` forwards precomputed noise-free latencies to
        the device (see :meth:`DeviceSimulator.measure_period`) so batched
        callers can share one backend solve across many measurements.
        """
        n = samples if samples is not None else self.samples_per_period
        latencies = self.device.measure_period(
            n_samples=n, steady_latencies=steady_latencies
        )
        epsilon = normalized_average_latency(latencies, self._expected)
        return Measurement(
            latencies_ms=latencies,
            epsilon=epsilon,
            quality=self.scene.average_quality(),
            triangle_ratio=self.scene.triangle_ratio,
            allocation=self.device.allocation,
        )

    def measure_reward(self, w: float, samples: Optional[int] = None) -> float:
        """Eq. 3 under the current configuration (used by the monitor)."""
        return self.measure(samples).reward(w)

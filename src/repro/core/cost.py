"""Reward and cost functions (the paper's Eq. 3–5).

The controller maximizes, per period t,

    B_t = Q_t − w · ε_t                                         (Eq. 3)

where Q_t is the average virtual-object quality (Eq. 2) and ε_t the
average *normalized* AI latency

    ε_t = (1/M) Σ_m (τ_m,t − τ_m^e) / τ_m^e                      (Eq. 4)

with τ_m^e the task's expected latency on its best resource in isolation
(Table I affinity). BO minimizes the cost φ = −B_t (Eq. 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError
from repro.units import Ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.system import Measurement


def normalized_average_latency(
    measured_ms: Mapping[str, Ms], expected_ms: Mapping[str, Ms]
) -> float:
    """Eq. 4: mean relative latency inflation over all AI tasks.

    A value of 0 means every task runs at its isolation-best latency;
    1.0 means tasks take on average twice their expected time. Negative
    values are possible in principle (measurement noise below the
    profiled value) and are kept, not clamped — the optimizer should see
    the real signal.
    """
    if set(measured_ms) != set(expected_ms):
        raise ConfigurationError(
            "measured/expected task id sets differ: "
            f"{sorted(set(measured_ms) ^ set(expected_ms))}"
        )
    if not measured_ms:
        return 0.0
    total = 0.0
    for task_id, measured in measured_ms.items():
        expected = expected_ms[task_id]
        if expected <= 0:
            raise ConfigurationError(
                f"{task_id!r}: expected latency must be > 0, got {expected}"
            )
        if measured < 0:
            raise ConfigurationError(
                f"{task_id!r}: measured latency must be >= 0, got {measured}"
            )
        total += (measured - expected) / expected
    return total / len(measured_ms)


def reward(quality: float, epsilon: float, w: float) -> float:
    """Eq. 3: B = Q − w · ε. ``w`` weighs AI latency against quality."""
    if w < 0:
        raise ConfigurationError(f"weight w must be >= 0, got {w}")
    return quality - w * epsilon


def cost(quality: float, epsilon: float, w: float) -> float:
    """Eq. 5's objective: φ = −B. Lower is better."""
    return -reward(quality, epsilon, w)


def cost_from_measurement(measurement: "Measurement", w: float) -> float:
    """φ for a completed control-period measurement."""
    return cost(measurement.quality, measurement.epsilon, w)


def latency_cost(epsilon: float, w: float) -> float:
    """Eq. 5's latency-only variant (BNT ablation): φ = w · ε.

    Quality is held fixed by the baseline, so the objective reduces to
    the weighted latency degradation alone.
    """
    return w * epsilon

"""One full HBO iteration (the paper's Algorithm 1).

Each iteration: BO proposes (c, x) → the heuristic maps c to per-task
allocations → TD distributes x·T^max across objects → the system runs one
control period → measured (ε, Q) become the cost φ = −(Q − w·ε) → the BO
dataset D is updated. :class:`HBOIteration` packages this as a reusable
step so the controller, the baselines (BNT reuses it with a latency-only
cost), and the benches all drive the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.bo.optimizer import BayesianOptimizer
from repro.bo.space import HBOSpace
from repro.core.allocation import allocate_tasks, proportions_to_counts
from repro.core.cost import cost_from_measurement, latency_cost
from repro.core.frontier import FrontierEvaluator, FrontierResult
from repro.core.system import MARSystem, Measurement
from repro.device.resources import Resource
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IterationResult:
    """Everything Algorithm 1 produced in one iteration."""

    z: np.ndarray  # the BO point [c; x]
    proportions: np.ndarray  # c
    triangle_ratio: float  # x
    allocation: Mapping[str, Resource]
    object_ratios: Mapping[str, float]
    measurement: Measurement
    cost: float  # φ = −B


@dataclass(frozen=True)
class PendingEvaluation:
    """An iteration that has been applied but not yet measured.

    :meth:`HBOIteration.begin` applies the configuration and returns
    this; :meth:`HBOIteration.finish` measures, prices and tells. The
    split exists so a batched driver (the fleet tick) can apply many
    sessions' configurations, evaluate all their steady states through
    one backend solve, and only then run each measurement.
    """

    z: np.ndarray
    proportions: np.ndarray
    triangle_ratio: float
    allocation: Mapping[str, Resource]
    object_ratios: Mapping[str, float]


class HBOIteration:
    """Callable performing Algorithm 1 once per invocation.

    Parameters
    ----------
    system:
        The MAR system to control.
    optimizer:
        The BO loop over an :class:`~repro.bo.space.HBOSpace` whose
        dimension matches ``system.n_resources + 1``.
    w:
        The latency/quality weight of Eq. 3.
    latency_only:
        When True the cost ignores quality (the BNT baseline's simplified
        formulation); the triangle ratio is still part of the BO vector
        but is pinned to 1 before being applied.
    w_power:
        Energy extension (beyond the paper, default off): with a positive
        weight the cost also prices the system's relative power draw via
        :func:`repro.device.power.energy_aware_cost`.
    """

    def __init__(
        self,
        system: MARSystem,
        optimizer: BayesianOptimizer,
        w: float,
        latency_only: bool = False,
        w_power: float = 0.0,
    ) -> None:
        space = optimizer.space
        if not isinstance(space, HBOSpace):
            raise ConfigurationError(
                f"HBO requires an HBOSpace optimizer, got {type(space).__name__}"
            )
        if space.n_resources != system.n_resources:
            raise ConfigurationError(
                f"space has {space.n_resources} resources but the system "
                f"has {system.n_resources}"
            )
        if w < 0:
            raise ConfigurationError(f"w must be >= 0, got {w}")
        if w_power < 0:
            raise ConfigurationError(f"w_power must be >= 0, got {w_power}")
        self.system = system
        self.optimizer = optimizer
        self.w = float(w)
        self.latency_only = bool(latency_only)
        self.w_power = float(w_power)
        self._power_model = None
        if self.w_power > 0:
            from repro.device.power import PowerModel

            self._power_model = PowerModel()

    def score_candidates(self, zs: np.ndarray) -> FrontierResult:
        """Score a batch of candidate configurations without running them.

        One :func:`repro.backend.solve` pass prices every row of ``zs``
        (steady-state, noise-free): the live system, its RNG streams and
        the BO dataset are untouched. Grid scans and acquisition
        frontiers use this instead of ``evaluate`` in a loop.
        """
        return FrontierEvaluator(
            self.system, self.w, latency_only=self.latency_only
        ).evaluate(zs)

    def run_once(self) -> IterationResult:
        """Execute Algorithm 1 for one control period."""
        return self.evaluate(self.optimizer.ask())  # Line 1

    def evaluate(self, z: np.ndarray) -> IterationResult:
        """Execute Lines 2–26 for an externally proposed configuration.

        The fleet's shared optimizer service computes proposals for many
        sessions in one batched GP pass and feeds each session its ``z``
        through this entry point; ``run_once`` is the single-session path
        where the session's own optimizer proposes.
        """
        return self.finish(self.begin(z))

    def begin(self, z: np.ndarray) -> PendingEvaluation:
        """Lines 2–23: decode ``z`` and apply the configuration.

        Leaves the system configured but unmeasured; pair with
        :meth:`finish`. Batched drivers run many ``begin``\\ s, solve all
        steady states in one :func:`repro.backend.solve` call, and feed
        each row back through ``finish(pending, steady_latencies=...)``.
        """
        space: HBOSpace = self.optimizer.space  # type: ignore[assignment]
        point = space.split(z)
        triangle_ratio = 1.0 if self.latency_only else point.triangle_ratio

        counts = proportions_to_counts(point.proportions, len(self.system.taskset))
        allocation = allocate_tasks(
            self.system.taskset, counts, self.system.resources
        )  # Lines 2–22
        object_ratios = self.system.apply(allocation, triangle_ratio)  # Line 23
        return PendingEvaluation(
            z=z,
            proportions=point.proportions,
            triangle_ratio=triangle_ratio,
            allocation=allocation,
            object_ratios=object_ratios,
        )

    def finish(
        self,
        pending: PendingEvaluation,
        steady_latencies: Optional[Mapping[str, float]] = None,
    ) -> IterationResult:
        """Lines 24–26: measure, price and record a begun evaluation."""
        measurement = self.system.measure(
            steady_latencies=steady_latencies
        )  # Line 24
        allocation = pending.allocation

        if self.latency_only:
            phi = latency_cost(measurement.epsilon, self.w)
        elif self._power_model is not None:
            from repro.device.power import energy_aware_cost

            power_w = self._power_model.system_power_w(
                self.system.device.soc,
                self.system.device.placements(),
                self.system.device.load,
                edge=self.system.edge_share(),
            )
            phi = energy_aware_cost(
                measurement.quality,
                measurement.epsilon,
                power_w,
                w_latency=self.w,
                w_power=self.w_power,
            )
        else:
            phi = cost_from_measurement(measurement, self.w)  # Line 25
        self.optimizer.tell(pending.z, phi)  # Line 26

        return IterationResult(
            z=pending.z,
            proportions=pending.proportions,
            triangle_ratio=pending.triangle_ratio,
            allocation=allocation,
            object_ratios=pending.object_ratios,
            measurement=measurement,
            cost=phi,
        )


def run_hbo_iteration(
    system: MARSystem,
    optimizer: BayesianOptimizer,
    w: float,
    latency_only: bool = False,
) -> IterationResult:
    """Functional shorthand for a single Algorithm 1 pass."""
    return HBOIteration(system, optimizer, w, latency_only=latency_only).run_once()

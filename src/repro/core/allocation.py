"""Heuristic AI-task allocation (Algorithm 1, Lines 2–22).

BO emits fractional per-resource usage proportions ``c``; this module
translates them into a concrete per-task assignment in two steps:

1. :func:`proportions_to_counts` (Lines 2–12) — round each ``c_i · M``
   down, then hand the ``r`` remaining tasks to resources in
   non-increasing ``c_i`` order (ties broken by resource index, so results
   are deterministic).
2. :func:`allocate_tasks` (Lines 13–22) — drain a priority queue of
   (isolation latency, task, resource) entries profiled offline: the
   globally fastest (task, resource) pair is assigned first; once a task
   is placed its other entries are discarded, and once a resource's count
   is exhausted all entries targeting it are discarded.

Deviation from the pseudo-code, documented: the paper's queue drain
assumes every task can land on whatever counts remain. With
delegate-incompatible models (Table I "NA" entries) the drain can strand
a task whose compatible resources are exhausted; we finish with a
fallback pass that places stranded tasks on their fastest *compatible*
resource, preferring ones with spare count.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.device.resources import ALL_RESOURCES, Resource
from repro.errors import AllocationError
from repro.models.tasks import TaskSet


def proportions_to_counts(proportions: Sequence[float], n_tasks: int) -> List[int]:
    """Lines 2–12: fractional usages → integer task counts per resource."""
    c = np.asarray(proportions, dtype=float)
    if c.ndim != 1 or c.size == 0:
        raise AllocationError(f"proportions must be a non-empty vector, got {c!r}")
    if n_tasks < 0:
        raise AllocationError(f"n_tasks must be >= 0, got {n_tasks}")
    if np.any(c < -1e-9) or abs(float(c.sum()) - 1.0) > 1e-6:
        raise AllocationError(
            f"proportions must be non-negative and sum to 1, got {c.tolist()}"
        )

    counts = [int(np.floor(ci * n_tasks)) for ci in c]
    remaining = n_tasks - sum(counts)
    if remaining > 0:
        # Non-increasing usage order; ties by resource index for determinism.
        order = sorted(range(len(c)), key=lambda i: (-c[i], i))
        for i in order:
            if remaining <= 0:
                break
            counts[i] += 1
            remaining -= 1
    return counts


def proportions_to_counts_batch(
    proportions: np.ndarray, n_tasks: int
) -> np.ndarray:
    """Vectorized Lines 2–12 over an ``(n_rows, n_resources)`` batch.

    Row ``k`` of the result equals ``proportions_to_counts(proportions[k],
    n_tasks)`` exactly: the floor uses the same ``c_i · M`` float product,
    and the leftover tasks go to resources in non-increasing-``c_i`` order
    with ties broken by resource index (a stable argsort on ``-c``).
    """
    c = np.asarray(proportions, dtype=float)
    if c.ndim != 2 or c.shape[1] == 0:
        raise AllocationError(
            f"proportions must be a 2-d batch, got shape {c.shape}"
        )
    if n_tasks < 0:
        raise AllocationError(f"n_tasks must be >= 0, got {n_tasks}")
    sums = np.sum(c, axis=1)
    bad = np.any(c < -1e-9, axis=1) | (np.abs(sums - 1.0) > 1e-6)
    if np.any(bad):
        row = int(np.argmax(bad))
        raise AllocationError(
            "proportions must be non-negative and sum to 1, got "
            f"{c[row].tolist()} (row {row})"
        )

    counts = np.floor(c * n_tasks).astype(np.int64)
    remaining = n_tasks - counts.sum(axis=1)
    order = np.argsort(-c, axis=1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order, np.broadcast_to(np.arange(c.shape[1]), c.shape), axis=1
    )
    counts += ranks < remaining[:, np.newaxis]
    return counts


def allocations_for_counts(
    taskset: TaskSet,
    counts: np.ndarray,
    resources: Tuple[Resource, ...] = ALL_RESOURCES,
) -> List[Dict[str, Resource]]:
    """Per-row :func:`allocate_tasks`, memoized on the count vector.

    A frontier grid proposes thousands of configurations but only
    ``O(M²)`` distinct count vectors exist for M tasks over 3 resources,
    so the expensive queue drain runs once per *distinct* row and the
    rest is a dictionary lookup.
    """
    counts = np.asarray(counts)
    if counts.ndim != 2 or counts.shape[1] != len(resources):
        raise AllocationError(
            f"counts must have shape (n_rows, {len(resources)}), "
            f"got {counts.shape}"
        )
    memo: Dict[Tuple[int, ...], Dict[str, Resource]] = {}
    out: List[Dict[str, Resource]] = []
    for row in counts:
        key = tuple(int(v) for v in row)
        if key not in memo:
            memo[key] = allocate_tasks(taskset, list(key), resources)
        out.append(memo[key])
    return out


def build_priority_queue(
    taskset: TaskSet,
    resources: Tuple[Resource, ...] = ALL_RESOURCES,
) -> List[Tuple[float, str, int, Resource]]:
    """The queue ``P``: one (isolation latency, task id, resource index,
    resource) entry per compatible pair, heap-ordered by latency (profiled
    offline, §IV-C). The resource index breaks exact latency ties — Table I
    contains them (e.g. mobilenetDetv1 at 38 ms on both GPU and CPU on the
    S22) and ``Resource`` enums are not orderable."""
    entries: List[Tuple[float, str, int, Resource]] = []
    for task in taskset:
        for index, resource in enumerate(resources):
            if task.profile.supports(resource):
                entries.append(
                    (task.profile.latency(resource), task.task_id, index, resource)
                )
    heapq.heapify(entries)
    return entries


def allocate_tasks(
    taskset: TaskSet,
    counts: Sequence[int],
    resources: Tuple[Resource, ...] = ALL_RESOURCES,
) -> Dict[str, Resource]:
    """Lines 13–22 (+ compatibility fallback): counts → per-task resources.

    ``counts[i]`` is the number of tasks resource ``resources[i]``
    should receive; the counts must sum to ``len(taskset)``. The default
    resource set is the on-device trio; edge-enabled systems pass
    :data:`~repro.device.resources.EDGE_RESOURCES` (N=4).
    """
    counts = list(counts)
    if len(counts) != len(resources):
        raise AllocationError(
            f"expected {len(resources)} counts, got {len(counts)}"
        )
    if any(k < 0 for k in counts):
        raise AllocationError(f"counts must be >= 0, got {counts}")
    if sum(counts) != len(taskset):
        raise AllocationError(
            f"counts sum to {sum(counts)} but taskset has {len(taskset)} tasks"
        )

    remaining = {res: counts[i] for i, res in enumerate(resources)}
    queue = build_priority_queue(taskset, resources)
    assigned: Dict[str, Resource] = {}
    closed_resources: set = set()

    while queue and len(assigned) < len(taskset):
        _latency, task_id, _index, resource = heapq.heappop(queue)
        if task_id in assigned or resource in closed_resources:
            continue  # lazily-deleted entry (Lines 20/22)
        if remaining[resource] > 0:
            assigned[task_id] = resource
            remaining[resource] -= 1
        else:
            closed_resources.add(resource)

    # Fallback for stranded tasks (compatibility-induced; see module doc).
    for task in taskset:
        if task.task_id in assigned:
            continue
        options = [
            (0 if remaining[res] > 0 else 1, task.profile.latency(res), res)
            for res in resources
            if task.profile.supports(res)
        ]
        if not options:
            raise AllocationError(
                f"task {task.task_id!r} is compatible with no resource"
            )
        _, _, best = min(options)
        assigned[task.task_id] = best
        if remaining[best] > 0:
            remaining[best] -= 1

    return assigned


def allocation_counts(
    allocation: Dict[str, Resource],
    resources: Tuple[Resource, ...] = ALL_RESOURCES,
) -> Dict[Resource, int]:
    """How many tasks each resource received (reporting helper)."""
    counts = {res: 0 for res in resources}
    for resource in allocation.values():
        counts[resource] = counts.get(resource, 0) + 1
    return counts

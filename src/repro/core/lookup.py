"""The §VI lookup-table extension: reuse configurations in familiar
environments instead of re-optimizing.

The paper's proposed future work for fast-paced scenarios: "construct a
lookup table that stores environmental conditions, including maximum
triangle count, average distances, and task configurations ... when the
user's interaction approaches conditions that closely resemble those
stored in the table, the framework could choose to simply apply the
solution from the lookup table instead of initiating a new and
potentially unnecessary HBO activation."

This module implements exactly that:

- :class:`EnvironmentSignature` — the condition key the paper lists:
  total maximum triangle count, object count, average user-object
  distance, and the taskset composition.
- :class:`LookupTable` — a bounded store of (signature → configuration,
  achieved reward) entries with a scale-aware similarity metric.
- :class:`LookupAwareController` — wraps :class:`HBOController`: on
  activation it first consults the table; a close-enough hit applies the
  stored configuration (one control period instead of ~20), a miss runs
  a full activation and stores the result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.controller import HBOController, HBORunResult
from repro.core.system import MARSystem, Measurement
from repro.device.resources import Resource, resource_from_name
from repro.errors import ConfigurationError

PathLike = Union[str, Path]


@dataclass(frozen=True)
class EnvironmentSignature:
    """The environmental conditions the paper's §VI table keys on."""

    total_max_triangles: float
    n_objects: int
    mean_distance_m: float
    taskset_key: Tuple[str, ...]  # sorted task model names (with multiplicity)

    def __post_init__(self) -> None:
        if self.total_max_triangles < 0:
            raise ConfigurationError(
                f"total_max_triangles must be >= 0, got {self.total_max_triangles}"
            )
        if self.n_objects < 0:
            raise ConfigurationError(f"n_objects must be >= 0, got {self.n_objects}")
        if self.mean_distance_m < 0:
            raise ConfigurationError(
                f"mean_distance_m must be >= 0, got {self.mean_distance_m}"
            )

    @classmethod
    def of(cls, system: MARSystem) -> "EnvironmentSignature":
        """Extract the current environment signature from a live system."""
        distances = list(system.scene.distances().values())
        return cls(
            total_max_triangles=system.scene.total_max_triangles,
            n_objects=len(system.scene),
            mean_distance_m=float(np.mean(distances)) if distances else 0.0,
            taskset_key=tuple(sorted(t.model for t in system.taskset)),
        )

    def distance_to(self, other: "EnvironmentSignature") -> float:
        """Scale-aware dissimilarity in [0, ∞); ∞ for different tasksets.

        Triangle counts compare on a relative scale (a 10% change in
        T^max matters equally at 100k and 1M), object counts and mean
        distances on absolute scales matched to their typical ranges.
        """
        if self.taskset_key != other.taskset_key:
            return float("inf")
        tri_scale = max(self.total_max_triangles, other.total_max_triangles, 1.0)
        d_tri = abs(self.total_max_triangles - other.total_max_triangles) / tri_scale
        d_objects = abs(self.n_objects - other.n_objects) / 5.0
        d_dist = abs(self.mean_distance_m - other.mean_distance_m) / 1.0
        return float(d_tri + d_objects + d_dist)


def signature_to_dict(signature: EnvironmentSignature) -> Dict[str, Any]:
    """Serialize an :class:`EnvironmentSignature` to plain JSON types."""
    return {
        "total_max_triangles": signature.total_max_triangles,
        "n_objects": signature.n_objects,
        "mean_distance_m": signature.mean_distance_m,
        "taskset_key": list(signature.taskset_key),
    }


def signature_from_dict(data: Mapping[str, Any]) -> EnvironmentSignature:
    """Rebuild an :class:`EnvironmentSignature` from its exported form."""
    return EnvironmentSignature(
        total_max_triangles=float(data["total_max_triangles"]),
        n_objects=int(data["n_objects"]),
        mean_distance_m=float(data["mean_distance_m"]),
        taskset_key=tuple(str(t) for t in data["taskset_key"]),
    )


@dataclass(frozen=True)
class StoredConfiguration:
    """A configuration remembered for an environment."""

    signature: EnvironmentSignature
    allocation: Mapping[str, Resource]
    triangle_ratio: float
    reward: float  # B achieved when this configuration was stored


def stored_configuration_to_dict(entry: StoredConfiguration) -> Dict[str, Any]:
    """Serialize a :class:`StoredConfiguration` to plain JSON types."""
    return {
        "signature": signature_to_dict(entry.signature),
        "allocation": {task: str(res) for task, res in entry.allocation.items()},
        "triangle_ratio": entry.triangle_ratio,
        "reward": entry.reward,
    }


def stored_configuration_from_dict(data: Mapping[str, Any]) -> StoredConfiguration:
    """Rebuild a :class:`StoredConfiguration` from its exported form."""
    return StoredConfiguration(
        signature=signature_from_dict(data["signature"]),
        allocation={
            task: resource_from_name(name)
            for task, name in data["allocation"].items()
        },
        triangle_ratio=float(data["triangle_ratio"]),
        reward=float(data["reward"]),
    )


class LookupTable:
    """A bounded store of environment → configuration entries.

    Eviction is least-recently-*hit*: environments the user keeps coming
    back to stay warm.
    """

    def __init__(
        self, max_entries: int = 32, similarity_threshold: float = 0.15
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        if similarity_threshold <= 0:
            raise ConfigurationError(
                f"similarity_threshold must be > 0, got {similarity_threshold}"
            )
        self.max_entries = int(max_entries)
        self.similarity_threshold = float(similarity_threshold)
        self._entries: List[StoredConfiguration] = []
        self._last_use: Dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, signature: EnvironmentSignature
    ) -> Optional[StoredConfiguration]:
        """Closest stored entry within the similarity threshold, or None."""
        self._tick += 1
        best_idx, best_distance = None, float("inf")
        for i, entry in enumerate(self._entries):
            d = signature.distance_to(entry.signature)
            if d < best_distance:
                best_idx, best_distance = i, d
        if best_idx is not None and best_distance <= self.similarity_threshold:
            self.hits += 1
            self._last_use[id(self._entries[best_idx])] = self._tick
            return self._entries[best_idx]
        self.misses += 1
        return None

    def store(self, entry: StoredConfiguration) -> None:
        """Insert an entry, replacing a near-duplicate signature if any."""
        self._tick += 1
        for i, existing in enumerate(self._entries):
            if entry.signature.distance_to(existing.signature) <= (
                self.similarity_threshold / 2.0
            ):
                self._entries[i] = entry
                self._last_use[id(entry)] = self._tick
                return
        self._entries.append(entry)
        self._last_use[id(entry)] = self._tick
        if len(self._entries) > self.max_entries:
            victim = min(
                self._entries, key=lambda e: self._last_use.get(id(e), 0)
            )
            self._entries.remove(victim)
            self._last_use.pop(id(victim), None)

    def replace(
        self, old: StoredConfiguration, new: StoredConfiguration
    ) -> None:
        """Swap ``old`` (matched by identity) for ``new`` in place.

        Unlike :meth:`store`, the slot keeps its recency: the eviction
        policy must not interpret an in-place rewrite (e.g. the shared
        store trimming observations to fit a budget) as a fresh use.
        """
        for i, entry in enumerate(self._entries):
            if entry is old:
                self._entries[i] = new
                self._last_use[id(new)] = self._last_use.pop(id(old), 0)
                return
        raise ConfigurationError("replace() target is not stored in this table")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entries(self) -> Tuple[StoredConfiguration, ...]:
        """Stored entries in least-recently-used-first order."""
        return tuple(
            sorted(self._entries, key=lambda e: self._last_use.get(id(e), 0))
        )

    # -------------------------------------------------------- persistence

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the table (entries in LRU order, plus hit counters) so
        fleet/session state survives across runs."""
        return {
            "max_entries": self.max_entries,
            "similarity_threshold": self.similarity_threshold,
            "hits": self.hits,
            "misses": self.misses,
            "entries": [stored_configuration_to_dict(e) for e in self.entries()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LookupTable":
        """Rebuild a table from :meth:`to_dict` output. Entries are
        restored in the serialized (LRU) order, so eviction behaves the
        same after a reload."""
        table = cls(
            max_entries=int(data["max_entries"]),
            similarity_threshold=float(data["similarity_threshold"]),
        )
        for entry_data in data.get("entries", []):
            table.store(stored_configuration_from_dict(entry_data))
        table.hits = int(data.get("hits", 0))
        table.misses = int(data.get("misses", 0))
        return table

    def save(self, path: PathLike) -> None:
        """Write the table to ``path`` as pretty-printed JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: PathLike) -> "LookupTable":
        """Read a table previously written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{path}: expected a JSON object at top level"
            )
        return cls.from_dict(data)


@dataclass
class LookupDecision:
    """What the lookup-aware controller did on one activation request."""

    from_table: bool
    measurement: Measurement
    run_result: Optional[HBORunResult] = None  # set on misses
    entry: Optional[StoredConfiguration] = None  # set on hits


class LookupAwareController:
    """HBO with the §VI environment lookup table in front of it."""

    def __init__(
        self,
        controller: HBOController,
        table: Optional[LookupTable] = None,
    ) -> None:
        self.controller = controller
        self.table = table if table is not None else LookupTable()

    @property
    def system(self) -> MARSystem:
        return self.controller.system

    def activate(self) -> LookupDecision:
        """Table-first activation: apply a remembered configuration when
        the environment looks familiar, otherwise run full HBO and
        remember the outcome."""
        signature = EnvironmentSignature.of(self.system)
        entry = self.table.lookup(signature)
        if entry is not None:
            # A hit costs one control period (apply + verify) instead of
            # a whole exploration phase.
            self.system.apply(dict(entry.allocation), entry.triangle_ratio)
            measurement = self.system.measure()
            return LookupDecision(
                from_table=True, measurement=measurement, entry=entry
            )

        result = self.controller.activate()
        measurement = (
            result.final_measurement
            if result.final_measurement is not None
            else result.best.measurement
        )
        self.table.store(
            StoredConfiguration(
                signature=signature,
                allocation=dict(result.best.allocation),
                triangle_ratio=result.best.triangle_ratio,
                reward=measurement.reward(self.controller.config.w),
            )
        )
        return LookupDecision(
            from_table=False, measurement=measurement, run_result=result
        )

"""The §VI lookup-table extension: reuse configurations in familiar
environments instead of re-optimizing.

The paper's proposed future work for fast-paced scenarios: "construct a
lookup table that stores environmental conditions, including maximum
triangle count, average distances, and task configurations ... when the
user's interaction approaches conditions that closely resemble those
stored in the table, the framework could choose to simply apply the
solution from the lookup table instead of initiating a new and
potentially unnecessary HBO activation."

This module implements exactly that:

- :class:`EnvironmentSignature` — the condition key the paper lists:
  total maximum triangle count, object count, average user-object
  distance, and the taskset composition.
- :class:`LookupTable` — a bounded store of (signature → configuration,
  achieved reward) entries with a scale-aware similarity metric.
- :class:`LookupAwareController` — wraps :class:`HBOController`: on
  activation it first consults the table; a close-enough hit applies the
  stored configuration (one control period instead of ~20), a miss runs
  a full activation and stores the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.controller import HBOController, HBORunResult
from repro.core.system import MARSystem, Measurement
from repro.device.resources import Resource
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EnvironmentSignature:
    """The environmental conditions the paper's §VI table keys on."""

    total_max_triangles: float
    n_objects: int
    mean_distance_m: float
    taskset_key: Tuple[str, ...]  # sorted task model names (with multiplicity)

    def __post_init__(self) -> None:
        if self.total_max_triangles < 0:
            raise ConfigurationError(
                f"total_max_triangles must be >= 0, got {self.total_max_triangles}"
            )
        if self.n_objects < 0:
            raise ConfigurationError(f"n_objects must be >= 0, got {self.n_objects}")
        if self.mean_distance_m < 0:
            raise ConfigurationError(
                f"mean_distance_m must be >= 0, got {self.mean_distance_m}"
            )

    @classmethod
    def of(cls, system: MARSystem) -> "EnvironmentSignature":
        """Extract the current environment signature from a live system."""
        distances = list(system.scene.distances().values())
        return cls(
            total_max_triangles=system.scene.total_max_triangles,
            n_objects=len(system.scene),
            mean_distance_m=float(np.mean(distances)) if distances else 0.0,
            taskset_key=tuple(sorted(t.model for t in system.taskset)),
        )

    def distance_to(self, other: "EnvironmentSignature") -> float:
        """Scale-aware dissimilarity in [0, ∞); ∞ for different tasksets.

        Triangle counts compare on a relative scale (a 10% change in
        T^max matters equally at 100k and 1M), object counts and mean
        distances on absolute scales matched to their typical ranges.
        """
        if self.taskset_key != other.taskset_key:
            return float("inf")
        tri_scale = max(self.total_max_triangles, other.total_max_triangles, 1.0)
        d_tri = abs(self.total_max_triangles - other.total_max_triangles) / tri_scale
        d_objects = abs(self.n_objects - other.n_objects) / 5.0
        d_dist = abs(self.mean_distance_m - other.mean_distance_m) / 1.0
        return float(d_tri + d_objects + d_dist)


@dataclass(frozen=True)
class StoredConfiguration:
    """A configuration remembered for an environment."""

    signature: EnvironmentSignature
    allocation: Mapping[str, Resource]
    triangle_ratio: float
    reward: float  # B achieved when this configuration was stored


class LookupTable:
    """A bounded store of environment → configuration entries.

    Eviction is least-recently-*hit*: environments the user keeps coming
    back to stay warm.
    """

    def __init__(
        self, max_entries: int = 32, similarity_threshold: float = 0.15
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"max_entries must be >= 1, got {max_entries}")
        if similarity_threshold <= 0:
            raise ConfigurationError(
                f"similarity_threshold must be > 0, got {similarity_threshold}"
            )
        self.max_entries = int(max_entries)
        self.similarity_threshold = float(similarity_threshold)
        self._entries: List[StoredConfiguration] = []
        self._last_use: Dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, signature: EnvironmentSignature
    ) -> Optional[StoredConfiguration]:
        """Closest stored entry within the similarity threshold, or None."""
        self._tick += 1
        best_idx, best_distance = None, float("inf")
        for i, entry in enumerate(self._entries):
            d = signature.distance_to(entry.signature)
            if d < best_distance:
                best_idx, best_distance = i, d
        if best_idx is not None and best_distance <= self.similarity_threshold:
            self.hits += 1
            self._last_use[id(self._entries[best_idx])] = self._tick
            return self._entries[best_idx]
        self.misses += 1
        return None

    def store(self, entry: StoredConfiguration) -> None:
        """Insert an entry, replacing a near-duplicate signature if any."""
        self._tick += 1
        for i, existing in enumerate(self._entries):
            if entry.signature.distance_to(existing.signature) <= (
                self.similarity_threshold / 2.0
            ):
                self._entries[i] = entry
                self._last_use[id(entry)] = self._tick
                return
        self._entries.append(entry)
        self._last_use[id(entry)] = self._tick
        if len(self._entries) > self.max_entries:
            victim = min(
                self._entries, key=lambda e: self._last_use.get(id(e), 0)
            )
            self._entries.remove(victim)
            self._last_use.pop(id(victim), None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class LookupDecision:
    """What the lookup-aware controller did on one activation request."""

    from_table: bool
    measurement: Measurement
    run_result: Optional[HBORunResult] = None  # set on misses
    entry: Optional[StoredConfiguration] = None  # set on hits


class LookupAwareController:
    """HBO with the §VI environment lookup table in front of it."""

    def __init__(
        self,
        controller: HBOController,
        table: Optional[LookupTable] = None,
    ) -> None:
        self.controller = controller
        self.table = table if table is not None else LookupTable()

    @property
    def system(self) -> MARSystem:
        return self.controller.system

    def activate(self) -> LookupDecision:
        """Table-first activation: apply a remembered configuration when
        the environment looks familiar, otherwise run full HBO and
        remember the outcome."""
        signature = EnvironmentSignature.of(self.system)
        entry = self.table.lookup(signature)
        if entry is not None:
            # A hit costs one control period (apply + verify) instead of
            # a whole exploration phase.
            self.system.apply(dict(entry.allocation), entry.triangle_ratio)
            measurement = self.system.measure()
            return LookupDecision(
                from_table=True, measurement=measurement, entry=entry
            )

        result = self.controller.activate()
        measurement = (
            result.final_measurement
            if result.final_measurement is not None
            else result.best.measurement
        )
        self.table.store(
            StoredConfiguration(
                signature=signature,
                allocation=dict(result.best.allocation),
                triangle_ratio=result.best.triangle_ratio,
                reward=measurement.reward(self.controller.config.w),
            )
        )
        return LookupDecision(
            from_table=False, measurement=measurement, run_result=result
        )

"""The ask/tell Bayesian optimization loop used by HBO (Alg. 1, Line 1).

Each HBO activation runs a fresh optimizer: the dataset D is seeded with a
handful of random configurations (5 in the paper's experiments), then each
iteration (a) fits the GP posterior on D, (b) maximizes the acquisition
function over a candidate pool, and (c) returns the chosen configuration to
the caller, which evaluates it on the live system for one control period and
reports the measured cost back via :meth:`BayesianOptimizer.tell`.

The acquisition maximizer is derivative-free: it scores a pool of uniform
samples from the constrained space plus local perturbations of the best
incumbents, which respects the simplex constraint by construction (gradient
steps would leave it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bo.acquisition import AcquisitionFunction, ExpectedImprovement
from repro.bo.gp import GaussianProcess, Surrogate
from repro.bo.kernels import Kernel, Matern
from repro.bo.space import BoxSpace, HBOSpace
from repro.bo.sparse import SparseGaussianProcess, select_support
from repro.errors import ConfigurationError, GPFitError
from repro.obs import runtime as obs
from repro.rng import SeedLike, make_rng

SpaceLike = Union[HBOSpace, BoxSpace]

GP_TIERS = ("exact", "sparse")


@dataclass(frozen=True)
class Observation:
    """One evaluated configuration and its measured cost."""

    z: np.ndarray
    cost: float

    def __post_init__(self) -> None:
        if not np.all(np.isfinite(self.z)):
            raise ConfigurationError(f"observation point has non-finite entries: {self.z}")
        if not np.isfinite(self.cost):
            raise ConfigurationError(f"observation cost is not finite: {self.cost}")


@dataclass
class OptimizerState:
    """Introspectable record of an optimizer run (used by the Fig. 6 bench)."""

    observations: List[Observation] = field(default_factory=list)
    proposals: List[np.ndarray] = field(default_factory=list)

    def best(self) -> Observation:
        if not self.observations:
            raise ConfigurationError("no observations recorded yet")
        return min(self.observations, key=lambda o: o.cost)

    def best_cost_trajectory(self) -> np.ndarray:
        """Running minimum of the observed cost, one entry per observation."""
        if not self.observations:
            return np.empty(0)
        return np.minimum.accumulate([o.cost for o in self.observations])

    def consecutive_distances(self) -> np.ndarray:
        """Euclidean distance between consecutive proposals (Fig. 6a)."""
        if len(self.proposals) < 2:
            return np.empty(0)
        pts = np.asarray(self.proposals)
        return np.linalg.norm(np.diff(pts, axis=0), axis=1)


class BayesianOptimizer:
    """Sample-efficient minimizer of a noisy black-box cost over a
    constrained space.

    Parameters
    ----------
    space:
        Search space providing ``sample`` / ``project`` / ``perturb`` /
        ``contains`` (e.g. :class:`~repro.bo.space.HBOSpace`).
    n_initial:
        Number of random configurations used to seed the dataset before
        the GP-guided phase starts (the paper uses 5).
    kernel / acquisition:
        Default to the paper's choices: Matérn-5/2 with length scale 1, and
        Expected Improvement.
    n_candidates:
        Size of the uniform candidate pool per ask.
    n_local:
        Number of perturbed candidates generated around each of the best
        few incumbents.
    noise:
        GP observation-noise variance; HBO cost observations are runtime
        measurements and genuinely noisy.
    gp_tier:
        ``"exact"`` (default) refits the full O(n³) GP every guided ask;
        ``"sparse"`` auto-switches to the budgeted
        :class:`~repro.bo.sparse.SparseGaussianProcess` once the dataset
        outgrows ``sparse_threshold``. Below the threshold the two tiers
        run the identical exact code path, so small-n behavior — and
        every tier-off run — is bit-for-bit unchanged.
    sparse_threshold:
        The auto-switch point n* and the sparse tier's support budget:
        fits at n ≤ n* are exact, larger ones condition on an n*-point
        support set chosen by :func:`~repro.bo.sparse.select_support`.
    """

    def __init__(
        self,
        space: SpaceLike,
        n_initial: int = 5,
        kernel: Optional[Kernel] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        n_candidates: int = 512,
        n_local: int = 64,
        noise: float = 1e-3,
        anchors: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        gp_tier: str = "exact",
        sparse_threshold: int = 64,
    ) -> None:
        if n_initial < 1:
            raise ConfigurationError(f"n_initial must be >= 1, got {n_initial}")
        if n_candidates < 1:
            raise ConfigurationError(f"n_candidates must be >= 1, got {n_candidates}")
        if n_local < 0:
            raise ConfigurationError(f"n_local must be >= 0, got {n_local}")
        if gp_tier not in GP_TIERS:
            raise ConfigurationError(
                f"gp_tier must be one of {GP_TIERS}, got {gp_tier!r}"
            )
        if sparse_threshold < 4:
            raise ConfigurationError(
                f"sparse_threshold must be >= 4, got {sparse_threshold}"
            )
        self.gp_tier = gp_tier
        self.sparse_threshold = int(sparse_threshold)
        self.space = space
        self.n_initial = int(n_initial)
        self.kernel = kernel if kernel is not None else Matern(length_scale=1.0, nu=2.5)
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()
        self.n_candidates = int(n_candidates)
        self.n_local = int(n_local)
        self.noise = float(noise)
        if anchors is not None:
            anchors = np.atleast_2d(np.asarray(anchors, dtype=float))
            anchors = np.asarray([space.project(a) for a in anchors])
        self.anchors = anchors
        self._rng = make_rng(seed)
        self.state = OptimizerState()
        self._pending: Optional[np.ndarray] = None
        # Cached surrogate for incremental (rank-1) refits: observations
        # are append-only, so a fit that is exactly one observation
        # behind extends in O(n²) instead of refactorizing in O(n³).
        self._surrogate: Optional[GaussianProcess] = None
        self._surrogate_n = 0
        #: Number of observations injected by :meth:`warm_start` (they sit
        #: at the front of ``state.observations``).
        self.n_warm = 0

    # ------------------------------------------------------------------ API

    @property
    def n_observations(self) -> int:
        return len(self.state.observations)

    @property
    def in_initial_phase(self) -> bool:
        """True while the optimizer is still collecting random seed points."""
        return self.n_observations < self.n_initial

    @property
    def warm_started(self) -> bool:
        """True when the dataset was seeded by :meth:`warm_start`."""
        return self.n_warm > 0

    def warm_start(self, observations: Sequence[Observation]) -> int:
        """Seed the dataset with observations transferred from a donor run.

        Cross-session warm starting: a new optimizer facing an environment
        similar to one already solved can start from the donor's (z, cost)
        pairs instead of cold random initialization. Injected observations
        count toward ``n_initial``, so a warm start with at least
        ``n_initial`` points skips the random phase entirely and the first
        ``ask`` is already GP-guided.

        Must be called before the first ``ask``/``tell``; donor points are
        projected into this optimizer's space. Returns the number of
        observations injected.
        """
        if self.state.observations or self._pending is not None:
            raise ConfigurationError(
                "warm_start() must be called before the first ask()/tell()"
            )
        for donor in observations:
            z = np.asarray(donor.z, dtype=float).ravel()
            if not self.space.contains(z, tol=1e-6):
                z = self.space.project(z)
            self.state.observations.append(Observation(z=z, cost=float(donor.cost)))
        self.n_warm = len(self.state.observations)
        obs.counter("bo_warm_observations").inc(self.n_warm)
        return self.n_warm

    def ask(self) -> np.ndarray:
        """Propose the next configuration to evaluate."""
        if self._pending is not None:
            raise ConfigurationError(
                "ask() called twice without an intervening tell(); "
                "report the cost of the previous proposal first"
            )
        if self.in_initial_phase:
            obs.counter("bo_asks", phase="initial").inc()
            z = self.space.sample(self._rng, size=1)[0]
        else:
            obs.counter("bo_asks", phase="guided").inc()
            with obs.span("bo.propose", category="bo", n_obs=self.n_observations):
                z = self._maximize_acquisition()
        self._pending = z
        self.state.proposals.append(z.copy())
        return z.copy()

    def tell(self, z: np.ndarray, cost: float) -> None:
        """Record the measured ``cost`` of configuration ``z``."""
        z = np.asarray(z, dtype=float).ravel()
        if not self.space.contains(z, tol=1e-6):
            z = self.space.project(z)
        self.state.observations.append(Observation(z=z, cost=float(cost)))
        self._pending = None

    def best(self) -> Observation:
        """Lowest-cost observation so far."""
        return self.state.best()

    def minimize(
        self, fn: Callable[[np.ndarray], float], n_iterations: int
    ) -> Observation:
        """Convenience driver: run ``n_iterations`` ask/evaluate/tell rounds.

        ``fn`` maps a configuration vector to a scalar cost. Returns the
        best observation. (HBO itself drives ask/tell manually because each
        evaluation spans a live control period.)
        """
        if n_iterations < 1:
            raise ConfigurationError(f"n_iterations must be >= 1, got {n_iterations}")
        for _ in range(n_iterations):
            z = self.ask()
            self.tell(z, float(fn(z)))
        return self.best()

    @property
    def sparse_active(self) -> bool:
        """True when the next surrogate fit will run on the sparse tier."""
        return (
            self.gp_tier == "sparse"
            and self.n_observations > self.sparse_threshold
        )

    def surrogate_dataset(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (x, y) dataset the surrogate conditions on *right now*.

        Exact tier (or sparse tier below n*): every observation. Sparse
        tier above n*: the deterministic support subset — the same
        subset :meth:`_fit_surrogate` would select, so external GP
        services (the fleet's batched proposal path) price sparse
        sessions identically to a per-session fit.
        """
        x = np.asarray([o.z for o in self.state.observations])
        y = np.asarray([o.cost for o in self.state.observations])
        if self.sparse_active:
            support = select_support(y, self.sparse_threshold, seed=0)
            return x[support], y[support]
        return x, y

    # ------------------------------------------------------------ internals

    def _fit_surrogate(self) -> Surrogate:
        observations = self.state.observations
        if self.sparse_active:
            return self._fit_sparse_surrogate()
        with obs.span("bo.gp_fit", category="bo", n_obs=len(observations)):
            if (
                self._surrogate is not None
                and len(observations) == self._surrogate_n + 1
            ):
                latest = observations[-1]
                fitted = self._surrogate.update(latest.z, latest.cost)
            else:
                x = np.asarray([o.z for o in observations])
                y = np.asarray([o.cost for o in observations])
                gp = GaussianProcess(kernel=self.kernel, noise=self.noise)
                fitted = gp.fit(x, y)
        self._surrogate = fitted
        self._surrogate_n = len(observations)
        obs.counter("bo_gp_fits").inc()
        return fitted

    def _fit_sparse_surrogate(self) -> SparseGaussianProcess:
        """Sparse-tier fit: O(m³) on a budgeted support set.

        Every probe here fires only past the n* switch, so tier-off runs
        (and sparse runs still below n*) emit byte-identical traces and
        snapshots. The rank-1 cache is dropped: it extends a factor over
        the *full* dataset, which the sparse tier no longer conditions on.
        """
        observations = self.state.observations
        x = np.asarray([o.z for o in observations])
        y = np.asarray([o.cost for o in observations])
        with obs.span(
            "bo.gp_fit", category="bo", n_obs=len(observations), tier="sparse"
        ):
            sgp = SparseGaussianProcess(
                kernel=self.kernel,
                noise=self.noise,
                max_support=self.sparse_threshold,
                seed=0,
            ).fit(x, y)
        self._surrogate = None
        self._surrogate_n = 0
        obs.counter("bo_gp_fits").inc()
        obs.counter("bo_gp_sparse_fits").inc()
        obs.histogram("bo_sparse_support_size").observe(float(sgp.n_support))
        return sgp

    def _candidate_pool(self) -> np.ndarray:
        pools = [self.space.sample(self._rng, size=self.n_candidates)]
        if self.anchors is not None:
            # Domain-informed anchors (e.g. the count-lattice cells the HBO
            # heuristic rounds to): guarantees the acquisition sees every
            # discrete allocation cell even when it is a narrow sliver of
            # the continuous simplex.
            pools.append(self.anchors)
        if self.n_local > 0 and self.state.observations:
            incumbents = sorted(self.state.observations, key=lambda o: o.cost)[:3]
            for scale in (0.05, 0.15):
                for inc in incumbents:
                    local = np.asarray(
                        [
                            self.space.perturb(inc.z, scale, self._rng)
                            for _ in range(max(1, self.n_local // (2 * len(incumbents))))
                        ]
                    )
                    pools.append(local)
        return np.vstack(pools)

    def _maximize_acquisition(self) -> np.ndarray:
        try:
            gp = self._fit_surrogate()
        except GPFitError:
            # Degenerate dataset (e.g. identical costs everywhere): fall
            # back to pure exploration rather than aborting the activation.
            return self.space.sample(self._rng, size=1)[0]
        best_y = self.best().cost
        candidates = self._candidate_pool()
        scores = self.acquisition(gp, candidates, best_y)
        if not np.any(np.isfinite(scores)):
            # Degenerate posterior (all-NaN scores): np.nanargmax would
            # raise. Fall back to the first candidate — deterministic,
            # and it leaves the RNG stream exactly as a scored pick
            # would, so fixed-seed runs that later leave the degenerate
            # regime stay reproducible.
            return candidates[0]
        return candidates[int(np.nanargmax(scores))]

"""Covariance kernels for Gaussian-process regression.

The paper (Eq. 7) uses the Matérn kernel with smoothness ν = 5/2 and
length scale l = 1:

    k(z, z') = σ² (1 + √5 r / l + 5 r² / 3 l²) exp(-√5 r / l)

where ``r`` is the Euclidean distance between the two configurations. We
also implement ν ∈ {1/2, 3/2} and the RBF (squared-exponential) kernel so
the ablation bench can compare kernel choices, plus a white-noise kernel
used to model observation noise.

All kernels evaluate a full cross-covariance matrix in one vectorized call:
``k(X, Z) -> (n, m)`` for ``X`` of shape ``(n, d)`` and ``Z`` of shape
``(m, d)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

_SUPPORTED_NU = (0.5, 1.5, 2.5)


def _as_2d(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ConfigurationError(f"kernel inputs must be 2-D, got shape {arr.shape}")
    return arr


def pairwise_distances(x: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between row sets ``x`` (n,d) and ``z`` (m,d)."""
    x = _as_2d(x)
    z = _as_2d(z)
    if x.shape[1] != z.shape[1]:
        raise ConfigurationError(
            f"dimension mismatch: {x.shape[1]} vs {z.shape[1]}"
        )
    # (x - z)^2 = x^2 + z^2 - 2 x.z, clipped to avoid tiny negatives.
    sq = (
        np.sum(x**2, axis=1)[:, None]
        + np.sum(z**2, axis=1)[None, :]
        - 2.0 * x @ z.T
    )
    return np.sqrt(np.clip(sq, 0.0, None))


class Kernel(ABC):
    """Base class for stationary covariance kernels."""

    @abstractmethod
    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Cross-covariance matrix between row sets ``x`` and ``z``."""

    def diag(self, x: np.ndarray) -> np.ndarray:
        """Variance at each row of ``x`` (the diagonal of ``k(x, x)``)."""
        x = _as_2d(x)
        return np.diag(self(x, x)).copy()

    def __add__(self, other: "Kernel") -> "Kernel":
        return Sum(self, other)


class Matern(Kernel):
    """Matérn kernel with smoothness ν ∈ {1/2, 3/2, 5/2}.

    ``nu=2.5`` with ``length_scale=1.0`` is the paper's configuration.
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        nu: float = 2.5,
        variance: float = 1.0,
    ) -> None:
        if length_scale <= 0:
            raise ConfigurationError(f"length_scale must be > 0, got {length_scale}")
        if variance <= 0:
            raise ConfigurationError(f"variance must be > 0, got {variance}")
        if nu not in _SUPPORTED_NU:
            raise ConfigurationError(
                f"nu must be one of {_SUPPORTED_NU}, got {nu} "
                "(half-integer Matérn only)"
            )
        self.length_scale = float(length_scale)
        self.nu = float(nu)
        self.variance = float(variance)

    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        r = pairwise_distances(x, z) / self.length_scale
        if math.isclose(self.nu, 0.5):
            k = np.exp(-r)
        elif math.isclose(self.nu, 1.5):
            s = math.sqrt(3.0) * r
            k = (1.0 + s) * np.exp(-s)
        else:  # nu == 2.5, Eq. 7 of the paper
            s = math.sqrt(5.0) * r
            k = (1.0 + s + s**2 / 3.0) * np.exp(-s)
        return self.variance * k

    def diag(self, x: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        return np.full(x.shape[0], self.variance)

    def __repr__(self) -> str:
        return (
            f"Matern(length_scale={self.length_scale}, nu={self.nu}, "
            f"variance={self.variance})"
        )


class RBF(Kernel):
    """Squared-exponential kernel (the ν → ∞ limit of Matérn)."""

    def __init__(self, length_scale: float = 1.0, variance: float = 1.0) -> None:
        if length_scale <= 0:
            raise ConfigurationError(f"length_scale must be > 0, got {length_scale}")
        if variance <= 0:
            raise ConfigurationError(f"variance must be > 0, got {variance}")
        self.length_scale = float(length_scale)
        self.variance = float(variance)

    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        r = pairwise_distances(x, z) / self.length_scale
        return self.variance * np.exp(-0.5 * r**2)

    def diag(self, x: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        return np.full(x.shape[0], self.variance)

    def __repr__(self) -> str:
        return f"RBF(length_scale={self.length_scale}, variance={self.variance})"


class WhiteNoise(Kernel):
    """Independent observation noise: ``σ_n² I`` on identical rows."""

    def __init__(self, noise: float = 1e-6) -> None:
        if noise < 0:
            raise ConfigurationError(f"noise must be >= 0, got {noise}")
        self.noise = float(noise)

    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        z = _as_2d(z)
        if x.shape == z.shape and np.array_equal(x, z):
            return self.noise * np.eye(x.shape[0])
        return np.zeros((x.shape[0], z.shape[0]))

    def diag(self, x: np.ndarray) -> np.ndarray:
        x = _as_2d(x)
        return np.full(x.shape[0], self.noise)

    def __repr__(self) -> str:
        return f"WhiteNoise(noise={self.noise})"


class Sum(Kernel):
    """Pointwise sum of two kernels."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        return self.left(x, z) + self.right(x, z)

    def diag(self, x: np.ndarray) -> np.ndarray:
        return self.left.diag(x) + self.right.diag(x)

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


def make_kernel(name: str, length_scale: float = 1.0, variance: float = 1.0) -> Kernel:
    """Construct a kernel by name: ``matern12 | matern32 | matern52 | rbf``."""
    table = {
        "matern12": lambda: Matern(length_scale, nu=0.5, variance=variance),
        "matern32": lambda: Matern(length_scale, nu=1.5, variance=variance),
        "matern52": lambda: Matern(length_scale, nu=2.5, variance=variance),
        "rbf": lambda: RBF(length_scale, variance=variance),
    }
    key = name.lower()
    if key not in table:
        raise ConfigurationError(
            f"unknown kernel {name!r}; expected one of {sorted(table)}"
        )
    return table[key]()

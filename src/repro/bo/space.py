"""Constrained search spaces for the HBO optimizer.

The paper's optimization variables (§IV-C, Constraints 8–10) are:

- ``c = [c_1, ..., c_N]`` — the proportion of AI tasks allocated to each of
  the N resources. Each ``c_i ∈ [0, 1]`` and ``Σ c_i = 1``: a point on the
  (N-1)-dimensional probability simplex.
- ``x`` — the total triangle-count ratio, bounded in ``[R_min, 1]``.

BO operates over the joint vector ``z = [c; x]``. These spaces know how to
sample uniformly, validate membership, project arbitrary vectors back onto
the feasible set, and generate local perturbations (used by the acquisition
maximizer to refine around incumbents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import SearchSpaceError
from repro.rng import SeedLike, make_rng

_TOL = 1e-8


class SimplexSpace:
    """The probability simplex {c ∈ [0,1]^n : Σ c_i = 1}."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise SearchSpaceError(f"simplex needs at least 1 coordinate, got {n}")
        self.n = int(n)

    @property
    def dim(self) -> int:
        return self.n

    def sample(self, rng: SeedLike, size: int = 1) -> np.ndarray:
        """Uniform samples on the simplex (flat Dirichlet), shape (size, n)."""
        gen = make_rng(rng)
        if size < 1:
            raise SearchSpaceError(f"size must be >= 1, got {size}")
        return gen.dirichlet(np.ones(self.n), size=size)

    def contains(self, c: np.ndarray, tol: float = _TOL) -> bool:
        c = np.asarray(c, dtype=float).ravel()
        if c.shape[0] != self.n:
            return False
        return bool(
            np.all(c >= -tol)
            and np.all(c <= 1.0 + tol)
            and abs(float(np.sum(c)) - 1.0) <= max(tol, 1e-6)
        )

    def project(self, c: np.ndarray) -> np.ndarray:
        """Euclidean projection of ``c`` onto the simplex.

        Uses the sorting algorithm of Held, Wolfe & Crowder; O(n log n).
        Always returns a valid simplex point, even for wildly infeasible
        input.
        """
        v = np.asarray(c, dtype=float).ravel()
        if v.shape[0] != self.n:
            raise SearchSpaceError(
                f"expected {self.n} coordinates, got {v.shape[0]}"
            )
        if not np.all(np.isfinite(v)):
            raise SearchSpaceError("cannot project non-finite vector")
        u = np.sort(v)[::-1]
        css = np.cumsum(u)
        rho_candidates = u + (1.0 - css) / np.arange(1, self.n + 1)
        rho = int(np.nonzero(rho_candidates > 0)[0][-1])
        theta = (css[rho] - 1.0) / (rho + 1)
        w = np.clip(v - theta, 0.0, None)
        # For large-magnitude input, cancellation in ``css - 1`` can leave
        # the sum off by ~1e-9; renormalize so Σw = 1 to machine precision
        # (the support is already correct, so this is a tiny rescale).
        return w / float(np.sum(w))

    def perturb(
        self, c: np.ndarray, scale: float, rng: SeedLike
    ) -> np.ndarray:
        """Gaussian jitter followed by projection back onto the simplex."""
        gen = make_rng(rng)
        noisy = np.asarray(c, dtype=float).ravel() + gen.normal(0.0, scale, self.n)
        return self.project(noisy)

    def project_rows(self, c: np.ndarray) -> np.ndarray:
        """Row-wise simplex projection of a ``(k, n)`` matrix.

        Bit-identical to calling :meth:`project` per row (same sort /
        cumsum / clip / renormalize sequence, applied along ``axis=1``).
        """
        v = np.asarray(c, dtype=float)
        if v.ndim != 2 or v.shape[1] != self.n:
            raise SearchSpaceError(
                f"expected (k, {self.n}) rows, got shape {v.shape}"
            )
        if not np.all(np.isfinite(v)):
            raise SearchSpaceError("cannot project non-finite vector")
        u = np.sort(v, axis=1)[:, ::-1]
        css = np.cumsum(u, axis=1)
        rho_candidates = u + (1.0 - css) / np.arange(1, self.n + 1)
        # Last strictly-positive candidate per row (always exists: the
        # largest coordinate's candidate is positive).
        rho = (self.n - 1) - np.argmax((rho_candidates > 0)[:, ::-1], axis=1)
        theta = (css[np.arange(v.shape[0]), rho] - 1.0) / (rho + 1)
        w = np.clip(v - theta[:, None], 0.0, None)
        return w / np.sum(w, axis=1, dtype=float)[:, None]


class BoxSpace:
    """An axis-aligned box ``[low_i, high_i]`` per coordinate."""

    def __init__(self, bounds: Sequence[Tuple[float, float]]) -> None:
        arr = np.asarray(bounds, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise SearchSpaceError(
                f"bounds must be a sequence of (low, high) pairs, got shape {arr.shape}"
            )
        if np.any(arr[:, 0] > arr[:, 1]):
            bad = arr[arr[:, 0] > arr[:, 1]]
            raise SearchSpaceError(f"low > high in bounds: {bad.tolist()}")
        self.low = arr[:, 0].copy()
        self.high = arr[:, 1].copy()

    @property
    def dim(self) -> int:
        return int(self.low.shape[0])

    def sample(self, rng: SeedLike, size: int = 1) -> np.ndarray:
        gen = make_rng(rng)
        if size < 1:
            raise SearchSpaceError(f"size must be >= 1, got {size}")
        return gen.uniform(self.low, self.high, size=(size, self.dim))

    def contains(self, x: np.ndarray, tol: float = _TOL) -> bool:
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            return False
        return bool(np.all(x >= self.low - tol) and np.all(x <= self.high + tol))

    def project(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise SearchSpaceError(f"expected {self.dim} coordinates, got {x.shape[0]}")
        if not np.all(np.isfinite(x)):
            raise SearchSpaceError("cannot project non-finite vector")
        return np.clip(x, self.low, self.high)

    def perturb(self, x: np.ndarray, scale: float, rng: SeedLike) -> np.ndarray:
        gen = make_rng(rng)
        span = self.high - self.low
        noisy = np.asarray(x, dtype=float).ravel() + gen.normal(0.0, scale * span)
        return self.project(noisy)


@dataclass(frozen=True)
class HBOPoint:
    """A decoded point of the HBO search space."""

    proportions: np.ndarray  # c, on the simplex
    triangle_ratio: float  # x, in [r_min, 1]

    def as_vector(self) -> np.ndarray:
        return np.concatenate([self.proportions, [self.triangle_ratio]])


class HBOSpace:
    """Joint space ``z = [c (simplex over N resources); x (triangle ratio)]``.

    Implements Constraints 8–10 of the paper: 0 ≤ c_i ≤ 1, Σ c_i = 1 and
    R_min ≤ x ≤ 1.
    """

    def __init__(self, n_resources: int, r_min: float = 0.1) -> None:
        if not 0.0 <= r_min < 1.0:
            raise SearchSpaceError(f"r_min must be in [0, 1), got {r_min}")
        self.simplex = SimplexSpace(n_resources)
        self.box = BoxSpace([(r_min, 1.0)])
        self.r_min = float(r_min)

    @property
    def n_resources(self) -> int:
        return self.simplex.n

    @property
    def dim(self) -> int:
        return self.simplex.dim + self.box.dim

    def split(self, z: np.ndarray) -> HBOPoint:
        """Decode a joint vector into (proportions, triangle_ratio)."""
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.dim:
            raise SearchSpaceError(f"expected {self.dim} coordinates, got {z.shape[0]}")
        return HBOPoint(
            proportions=z[: self.simplex.n].copy(),
            triangle_ratio=float(z[self.simplex.n]),
        )

    def join(self, proportions: np.ndarray, triangle_ratio: float) -> np.ndarray:
        c = np.asarray(proportions, dtype=float).ravel()
        if c.shape[0] != self.simplex.n:
            raise SearchSpaceError(
                f"expected {self.simplex.n} proportions, got {c.shape[0]}"
            )
        return np.concatenate([c, [float(triangle_ratio)]])

    def sample(self, rng: SeedLike, size: int = 1) -> np.ndarray:
        gen = make_rng(rng)
        c = self.simplex.sample(gen, size)
        x = self.box.sample(gen, size)
        return np.hstack([c, x])

    def contains(self, z: np.ndarray, tol: float = _TOL) -> bool:
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.dim:
            return False
        return self.simplex.contains(z[: self.simplex.n], tol) and self.box.contains(
            z[self.simplex.n :], tol
        )

    def project(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.dim:
            raise SearchSpaceError(f"expected {self.dim} coordinates, got {z.shape[0]}")
        c = self.simplex.project(z[: self.simplex.n])
        x = self.box.project(z[self.simplex.n :])
        return np.concatenate([c, x])

    def perturb(self, z: np.ndarray, scale: float, rng: SeedLike) -> np.ndarray:
        gen = make_rng(rng)
        pt = self.split(z)
        c = self.simplex.perturb(pt.proportions, scale, gen)
        x = self.box.perturb(np.array([pt.triangle_ratio]), scale, gen)
        return np.concatenate([c, x])

    def perturb_batch(
        self, z: np.ndarray, scale: float, k: int, rng: SeedLike
    ) -> np.ndarray:
        """``k`` local perturbations of ``z`` in one vectorized draw.

        Stream-contract: consumes the generator exactly like ``k``
        sequential :meth:`perturb` calls and returns bit-identical rows.
        Each perturb call draws ``n`` normals at ``scale`` (simplex) then
        one at ``scale * span`` (box); a single ``(k, n+1)`` draw with a
        per-column scale vector replays that order row-major, and the
        projections vectorize row-wise.
        """
        if k < 1:
            raise SearchSpaceError(f"k must be >= 1, got {k}")
        gen = make_rng(rng)
        z = np.asarray(z, dtype=float).ravel()
        if z.shape[0] != self.dim:
            raise SearchSpaceError(f"expected {self.dim} coordinates, got {z.shape[0]}")
        n = self.simplex.n
        span = self.box.high - self.box.low
        scales = np.concatenate([np.full(n, float(scale)), scale * span])
        noisy = z[None, :] + gen.normal(0.0, scales, size=(k, self.dim))
        out = np.empty_like(noisy)
        out[:, :n] = self.simplex.project_rows(noisy[:, :n])
        out[:, n:] = np.clip(noisy[:, n:], self.box.low, self.box.high)
        return out

"""Acquisition functions for minimization-flavoured Bayesian optimization.

The paper selects Expected Improvement (EI) after comparing it against
Probability of Improvement ("too conservative during exploration") and
Lower Confidence Bound ("requires tuning a dedicated exploration/
exploitation parameter") — §IV-C. All three are implemented so the
ablation bench can reproduce that comparison.

Conventions: the surrogate models a *cost* φ to be **minimized**; each
acquisition returns a score to be **maximized** over candidates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np
from scipy.stats import norm

from repro.bo.gp import Surrogate
from repro.errors import ConfigurationError


class AcquisitionFunction(ABC):
    """Scores candidate points given a fitted surrogate (either tier)."""

    name: str = "base"

    @abstractmethod
    def __call__(
        self, gp: Surrogate, x: np.ndarray, best_y: float
    ) -> np.ndarray:
        """Score each row of ``x``; larger is better.

        ``best_y`` is the incumbent (lowest observed cost so far).
        """


class ExpectedImprovement(AcquisitionFunction):
    """EI(z) = E[max(0, best_y - φ(z))], with an exploration margin ξ.

    The closed form under a Gaussian posterior N(μ, σ²):

        EI = (best - μ - ξ) Φ(u) + σ ϕ(u),   u = (best - μ - ξ) / σ
    """

    name = "ei"

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ConfigurationError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def __call__(
        self, gp: Surrogate, x: np.ndarray, best_y: float
    ) -> np.ndarray:
        post = gp.predict(x)
        improvement = best_y - post.mean - self.xi
        with np.errstate(divide="ignore", invalid="ignore"):
            u = improvement / post.std
            ei = improvement * norm.cdf(u) + post.std * norm.pdf(u)
        ei = np.where(post.std > 1e-12, ei, np.maximum(improvement, 0.0))
        return np.clip(ei, 0.0, None)


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI(z) = P[φ(z) < best_y - ξ]; exploitation-heavy baseline."""

    name = "pi"

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise ConfigurationError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def __call__(
        self, gp: Surrogate, x: np.ndarray, best_y: float
    ) -> np.ndarray:
        post = gp.predict(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            u = (best_y - post.mean - self.xi) / post.std
        pi = norm.cdf(u)
        return np.where(post.std > 1e-12, pi, (post.mean < best_y - self.xi) * 1.0)


class LowerConfidenceBound(AcquisitionFunction):
    """LCB(z) = -(μ - κ σ); minimizing the optimistic bound of the cost.

    κ is the exploration/exploitation knob the paper calls out as a tuning
    burden.
    """

    name = "lcb"

    def __init__(self, kappa: float = 2.0) -> None:
        if kappa < 0:
            raise ConfigurationError(f"kappa must be >= 0, got {kappa}")
        self.kappa = float(kappa)

    def __call__(
        self, gp: Surrogate, x: np.ndarray, best_y: float
    ) -> np.ndarray:
        post = gp.predict(x)
        return -(post.mean - self.kappa * post.std)


def make_acquisition(
    name: str, xi: float = 0.01, kappa: float = 2.0
) -> AcquisitionFunction:
    """Construct an acquisition function by name: ``ei | pi | lcb``."""
    key = name.lower()
    if key == "ei":
        return ExpectedImprovement(xi=xi)
    if key == "pi":
        return ProbabilityOfImprovement(xi=xi)
    if key == "lcb":
        return LowerConfidenceBound(kappa=kappa)
    raise ConfigurationError(
        f"unknown acquisition {name!r}; expected 'ei', 'pi', or 'lcb'"
    )

"""Bayesian optimization engine (from scratch, numpy/scipy only).

This package implements the optimizer the paper builds HBO on (§IV-C):

- :mod:`repro.bo.kernels` — stationary covariance kernels, including the
  Matérn-5/2 kernel of Eq. 7.
- :mod:`repro.bo.gp` — Gaussian-process regression with exact Cholesky
  posterior and jitter escalation.
- :mod:`repro.bo.acquisition` — Expected Improvement (the paper's choice),
  plus Probability of Improvement and Lower Confidence Bound for the
  ablation study.
- :mod:`repro.bo.space` — the HBO search space: a probability simplex for
  the per-resource task proportions joined with a box for the triangle
  ratio (Constraints 8–10).
- :mod:`repro.bo.optimizer` — the ask/tell optimization loop with a random
  initialization phase.
- :mod:`repro.bo.sparse` — the scalable GP tier: subset-of-data
  approximation with deterministic, seeded support selection
  (``docs/optimizer.md``).
"""

from repro.bo.acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    make_acquisition,
)
from repro.bo.gp import GaussianProcess, GPPosterior, Surrogate
from repro.bo.kernels import RBF, Kernel, Matern, WhiteNoise
from repro.bo.optimizer import BayesianOptimizer, Observation
from repro.bo.space import BoxSpace, HBOSpace, SimplexSpace
from repro.bo.sparse import SparseGaussianProcess, select_support

__all__ = [
    "AcquisitionFunction",
    "BayesianOptimizer",
    "BoxSpace",
    "ExpectedImprovement",
    "GaussianProcess",
    "GPPosterior",
    "HBOSpace",
    "Kernel",
    "LowerConfidenceBound",
    "Matern",
    "Observation",
    "ProbabilityOfImprovement",
    "RBF",
    "SimplexSpace",
    "SparseGaussianProcess",
    "Surrogate",
    "WhiteNoise",
    "make_acquisition",
    "select_support",
]

"""The scalable GP tier: subset-of-data approximation with a budgeted,
deterministically selected support set.

Every :class:`~repro.bo.gp.GaussianProcess` fit factorizes the full
``(n, n)`` covariance — O(n³). One optimizer run stays small, but a
long-lived session (or a warm fleet whose sessions keep accumulating
donor observations) refits on an ever-growing dataset, and the refit
cost eventually dominates the control loop the optimizer is supposed to
keep cheap. :class:`SparseGaussianProcess` caps that cost: the surrogate
conditions on at most ``max_support`` observations, selected by
:func:`select_support` as a pure function of the observation sequence
and an integer seed (all randomness routed through :mod:`repro.rng`).

Tier contract:

- ``n ≤ max_support``: the support set is *all* observations in
  insertion order, so the fit is the exact GP fit — same operations in
  the same order, bit-identical posterior. This is the parity regime
  `tests/test_bo_sparse.py` pins.
- ``n > max_support``: the support set keeps the lowest-cost quarter
  (the incumbent region EI exploits), the most recent quarter (the
  region the optimizer is currently probing), and fills the rest with a
  seeded uniform draw from the remaining history (coverage). Fit cost
  is O(n log n) selection + O(m³) factorization with m fixed, so fit
  time stays flat as n grows — the BENCH_pr8.json curve.

The class exposes the same surface the acquisition functions and the
optimizer need (``fit`` / ``predict`` / ``is_fit`` / ``n_observations``),
so it drops in behind :class:`~repro.bo.optimizer.BayesianOptimizer`
without touching the acquisition code.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bo.gp import GaussianProcess, GPPosterior
from repro.bo.kernels import Kernel, _as_2d
from repro.errors import GPFitError
from repro.rng import derive_seed, make_rng


def select_support(
    y: np.ndarray, max_support: int, seed: int = 0
) -> np.ndarray:
    """Deterministic, seeded support-set selection for the sparse tier.

    Returns sorted indices into ``y`` (so the selected observations keep
    their insertion order, which is what makes the ``n ≤ max_support``
    regime bit-identical to the exact GP). Selection is a pure function
    of ``(seed, y)``:

    - all indices when ``n ≤ max_support``;
    - otherwise: the ``⌈m/4⌉`` lowest-cost observations (stable argsort,
      ties resolved by index), the ``⌈m/4⌉`` most recent ones, and a
      uniform without-replacement draw over the rest from
      ``make_rng(derive_seed(seed, "gp-support", n))``.
    """
    y = np.asarray(y, dtype=float).ravel()
    n = int(y.shape[0])
    if max_support < 4:
        raise GPFitError(f"max_support must be >= 4, got {max_support}")
    if n <= max_support:
        return np.arange(n)
    quarter = -(-max_support // 4)  # ceil division
    best = np.argsort(y, kind="stable")[:quarter]
    recent = np.arange(n - quarter, n)
    keep = np.union1d(best, recent)
    remainder = np.setdiff1d(np.arange(n), keep, assume_unique=False)
    n_fill = max_support - keep.shape[0]
    if n_fill > 0 and remainder.shape[0] > 0:
        rng = make_rng(derive_seed(seed, "gp-support", n))
        fill = rng.choice(
            remainder, size=min(n_fill, remainder.shape[0]), replace=False
        )
        keep = np.union1d(keep, fill)
    return np.sort(keep)


class SparseGaussianProcess:
    """Subset-of-data GP: exact regression on a budgeted support set.

    Parameters
    ----------
    kernel / noise / normalize_y:
        Forwarded verbatim to the underlying exact
        :class:`~repro.bo.gp.GaussianProcess`, so the two tiers share
        one implementation of the covariance, jitter-escalation, and
        target-standardization math.
    max_support:
        Support-set budget m (the tier's n*): datasets at or below this
        size are fit exactly; larger ones are subsampled by
        :func:`select_support`.
    seed:
        Integer seed of the support selection (NOT an RNG stream — the
        selection must be a pure function of the observation sequence,
        so replays and the batched fleet path agree).
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-4,
        normalize_y: bool = True,
        max_support: int = 64,
        seed: int = 0,
    ) -> None:
        if max_support < 4:
            raise GPFitError(f"max_support must be >= 4, got {max_support}")
        self.max_support = int(max_support)
        self.seed = int(seed)
        self._gp = GaussianProcess(
            kernel=kernel, noise=noise, normalize_y=normalize_y
        )
        self._n_total = 0
        self._support: Optional[np.ndarray] = None

    # ------------------------------------------------------------- surface

    @property
    def kernel(self) -> Kernel:
        return self._gp.kernel

    @property
    def noise(self) -> float:
        return self._gp.noise

    @property
    def is_fit(self) -> bool:
        return self._gp.is_fit

    @property
    def n_observations(self) -> int:
        """Size of the *full* dataset handed to the last :meth:`fit`."""
        return self._n_total

    @property
    def n_support(self) -> int:
        """Observations the posterior actually conditions on (≤ budget)."""
        return 0 if self._support is None else int(self._support.shape[0])

    @property
    def support_indices(self) -> np.ndarray:
        """Sorted indices of the support set within the last dataset."""
        if self._support is None:
            raise GPFitError("support_indices read before fit()")
        return self._support.copy()

    # ----------------------------------------------------------------- fit

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SparseGaussianProcess":
        """Select the support set and condition the exact GP on it."""
        x = _as_2d(x)
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise GPFitError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]} entries"
            )
        support = select_support(y, self.max_support, seed=self.seed)
        self._gp.fit(x[support], y[support])
        self._n_total = int(x.shape[0])
        self._support = support
        return self

    def predict(self, x: np.ndarray) -> GPPosterior:
        """Posterior N(μ(x), σ²(x)) of the support-set GP at rows of ``x``."""
        return self._gp.predict(x)

    def log_marginal_likelihood(self) -> float:
        """Log p(y_support | X_support) of the fitted support-set model."""
        return self._gp.log_marginal_likelihood()
